//! Records a full simulation trace through `aqua-telemetry` and shows the
//! three sink flavors: in-memory recorder, JSONL file export, and the
//! online invariant checker.
//!
//! ```sh
//! cargo run --release --example telemetry_trace [seed] [trace.jsonl]
//! ```

use aquatope::faas::prelude::*;
use aquatope::faas::types::ResourceConfig;
use aquatope::telemetry::{diff_jsonl, Fanout, InvariantChecker, JsonlWriter, Recorder, Telemetry};
use aquatope::workflows::apps;
use std::sync::{Arc, Mutex};

fn trace(seed: u64, out: Option<&str>) -> String {
    let mut registry = FunctionRegistry::new();
    let app = apps::ml_pipeline(&mut registry);

    let rec = Arc::new(Mutex::new(Recorder::unbounded()));
    let checker = Arc::new(Mutex::new(InvariantChecker::new(4, 65_536.0)));
    let mut sinks: Vec<aquatope::telemetry::SharedSink> = vec![rec.clone(), checker.clone()];
    if let Some(path) = out {
        sinks.push(Arc::new(Mutex::new(
            JsonlWriter::create(path).expect("open trace file"),
        )));
    }
    let tel = Telemetry::new(Arc::new(Mutex::new(Fanout::new(sinks))));

    let mut sim = FaasSim::builder()
        .workers(4, 40.0, 65_536)
        .registry(registry)
        .noise(NoiseModel::production())
        .seed(seed)
        .telemetry(tel.clone())
        .build();
    let configs = StageConfigs::uniform(&app.dag, ResourceConfig::default());
    let arrivals: Vec<SimTime> = (1..=30u64).map(|i| SimTime::from_secs(i * 7)).collect();
    sim.run_workflow_trace(&app.dag, &configs, &arrivals, SimTime::from_secs(400));
    tel.flush();

    checker.lock().unwrap().assert_ok();
    let jsonl = rec.lock().unwrap().to_jsonl();
    jsonl
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().map_or(7, |s| s.parse().expect("seed: u64"));
    let out = args.next();

    let jsonl = trace(seed, out.as_deref());
    let n = jsonl.lines().count();
    println!("recorded {n} events (seed {seed}); first and last:");
    if let Some(first) = jsonl.lines().next() {
        println!("  {first}");
    }
    if let Some(last) = jsonl.lines().next_back() {
        println!("  {last}");
    }

    // Replay with the same seed: the trace must be byte-identical.
    let replay = trace(seed, None);
    match diff_jsonl(&jsonl, &replay) {
        None => println!("replay with seed {seed}: byte-identical ({n} events)"),
        Some(d) => println!("replay DIVERGED: {d}"),
    }
    if let Some(path) = out {
        println!("wrote {path}");
    }
}
