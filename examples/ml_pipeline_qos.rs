//! Compare resource managers on the ML pipeline under one QoS target.
//!
//! Reproduces the flavour of the paper's §8.2 on a single app: Random,
//! Autoscale, CLITE, and AQUATOPE search for a cost-minimal configuration
//! meeting the same end-to-end QoS with the same evaluation budget; the
//! oracle's coordinate-descent optimum anchors the comparison.
//!
//! ```sh
//! cargo run --release --example ml_pipeline_qos
//! ```

use aquatope::alloc::{
    AquatopeRm, AutoscaleRm, Clite, OracleSearch, RandomSearch, ResourceManager, SimEvaluator,
};
use aquatope::faas::types::ConfigSpace;
use aquatope::faas::{FaasSim, FunctionRegistry, NoiseModel};
use aquatope::workflows::apps;

fn make_eval(seed: u64) -> (SimEvaluator, f64) {
    let mut registry = FunctionRegistry::new();
    let app = apps::ml_pipeline(&mut registry);
    let sim = FaasSim::builder()
        .workers(6, 40.0, 131_072)
        .registry(registry)
        .noise(NoiseModel::production())
        .seed(seed)
        .build();
    let qos = app.qos.as_secs_f64();
    (
        SimEvaluator::new(sim, app.dag, ConfigSpace::default(), 3, true),
        qos,
    )
}

fn main() {
    let budget = 36;
    println!("ML pipeline, QoS-constrained cost minimization (budget = {budget} evaluations)\n");

    // Oracle reference (larger budget, grid descent).
    let (mut eval, qos) = make_eval(1);
    let oracle = OracleSearch::default().optimize(&mut eval, qos, 400);
    let oracle_cost = oracle
        .best
        .as_ref()
        .map(|b| b.1)
        .expect("oracle finds a feasible configuration");
    println!(
        "{:<12} cost {:8.2}  (latency {:.2} s, {} evals)",
        "Oracle",
        oracle_cost,
        oracle.best.as_ref().unwrap().2,
        oracle.evaluations()
    );

    let managers: Vec<Box<dyn ResourceManager>> = vec![
        Box::new(RandomSearch::new(11)),
        Box::new(AutoscaleRm::new()),
        Box::new(Clite::new(11)),
        Box::new(AquatopeRm::new(11)),
    ];
    for mut m in managers {
        let (mut eval, qos) = make_eval(1);
        let out = m.optimize(&mut eval, qos, budget);
        match out.best {
            Some((_, cost, lat)) => println!(
                "{:<12} cost {:8.2}  ({:5.1}% of oracle, latency {:.2} s)",
                m.name(),
                cost,
                100.0 * cost / oracle_cost,
                lat
            ),
            None => println!("{:<12} found no QoS-feasible configuration", m.name()),
        }
    }
}
