//! Quickstart: run AQUATOPE end to end on one application.
//!
//! Builds the ML-pipeline workflow, lets the controller (1) search for a
//! cost-minimal per-stage resource configuration that meets the end-to-end
//! QoS and (2) replay a bursty invocation trace under the dynamic
//! pre-warmed container pool — then prints the plan and the run metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use aquatope::core::{Aquatope, AquatopeConfig, ClusterSpec, Workload};
use aquatope::faas::FunctionRegistry;
use aquatope::prelude::*;
use aquatope::workflows::{apps, RateTraceConfig};

fn main() {
    // 1. Register the application.
    let mut registry = FunctionRegistry::new();
    let app = apps::ml_pipeline(&mut registry);
    println!(
        "app: {} ({} stages, QoS = {:.1} s)",
        app.dag.name(),
        app.dag.num_stages(),
        app.qos.as_secs_f64()
    );

    // 2. Generate a 30-minute bursty trace (~12 invocations/min).
    let mut rng = SimRng::seed(7);
    let trace = RateTraceConfig {
        minutes: 30,
        mean_rpm: 12.0,
        ..RateTraceConfig::default()
    }
    .generate(&mut rng);
    println!(
        "trace: {} workflow invocations over 30 min",
        trace.arrivals.len()
    );

    // 3. Plan resources with the customized-BO manager.
    let controller = Aquatope::new(AquatopeConfig::fast());
    let cluster = ClusterSpec::default();
    let plan = controller.plan_app(&registry, &app, cluster);
    println!(
        "plan: {} evaluations → expected latency {:.2} s, cost {:.2}",
        plan.search_evaluations, plan.expected_latency, plan.expected_cost
    );
    for (i, cfg) in plan.configs.iter().enumerate() {
        let spec = registry.spec(app.dag.stage(i).function);
        println!(
            "  stage {i} ({:<24}) → {:.2} CPU, {:>6.0} MiB, concurrency {}",
            spec.name, cfg.cpu, cfg.memory_mb, cfg.concurrency
        );
    }

    // 4. Replay the trace under the dynamic pre-warmed pool.
    let workload = Workload {
        app,
        arrivals: trace.arrivals,
    };
    let report = controller.execute(
        &registry,
        std::slice::from_ref(&workload),
        &[plan],
        cluster,
        SimTime::from_secs(32 * 60),
    );
    println!("run : {report}");
    println!("cost: {:.1} (CPU·s + GB·s)", report.execution_cost);
}
