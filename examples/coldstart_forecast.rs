//! Invocation-pattern forecasting shoot-out (Table 1 flavour).
//!
//! Generates an Azure-like diurnal trace, extracts the per-minute
//! container-count series, and compares the prediction error (SMAPE) of
//! the naive keep-alive model, ARIMA, Holt-Winters, the Fourier model
//! (IceBreaker), a vanilla LSTM, and AQUATOPE's hybrid Bayesian NN — which
//! also reports its uncertainty.
//!
//! ```sh
//! cargo run --release --example coldstart_forecast
//! ```

use aquatope::forecast::{
    smape_eval, Arima, FourierPredictor, HoltWinters, HybridBayesian, HybridConfig, NaiveLast,
    Predictor, SeriesPoint, TriggerKind, VanillaLstm,
};
use aquatope::prelude::*;
use aquatope::workflows::RateTraceConfig;

fn main() {
    // A two-day diurnal trace with bursts.
    let mut rng = SimRng::seed(5);
    let trace = RateTraceConfig {
        minutes: 2 * 24 * 60,
        mean_rpm: 20.0,
        ..RateTraceConfig::default()
    }
    .generate(&mut rng);
    let counts = trace.counts_per_minute();
    let series: Vec<SeriesPoint> = counts
        .iter()
        .enumerate()
        .map(|(i, &c)| SeriesPoint::new(c, i as u64, TriggerKind::Http))
        .collect();
    let train_len = series.len() * 3 / 4;
    println!(
        "trace: {} minutes ({} train / {} test), mean {:.1} invocations/min\n",
        series.len(),
        train_len,
        series.len() - train_len,
        counts.iter().sum::<f64>() / counts.len() as f64
    );

    let mut models: Vec<Box<dyn Predictor>> = vec![
        Box::new(NaiveLast::new()),
        Box::new(Arima::new(12, 1)),
        Box::new(HoltWinters::new(0.5, 0.2)),
        Box::new(FourierPredictor::new(8, 256)),
        Box::new(VanillaLstm::with_seed(24, 3, 9)),
        Box::new(HybridBayesian::new(HybridConfig::default())),
    ];
    for model in &mut models {
        let report = smape_eval(model.as_mut(), &series, train_len);
        println!("{report}");
    }

    // Show the Bayesian model's uncertainty on one forecast.
    let mut hybrid = HybridBayesian::new(HybridConfig::default());
    hybrid.fit(&series[..train_len]);
    let f = hybrid.forecast(&series[..train_len]);
    println!(
        "\nhybrid forecast for minute {}: {:.1} ± {:.1} containers (MC-dropout 95% ≈ ±{:.1})",
        train_len,
        f.mean,
        f.std,
        1.96 * f.std
    );
}
