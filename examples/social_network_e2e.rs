//! End-to-end frameworks on the social network (Fig. 18 flavour).
//!
//! Runs the broadcast-style social network (with its socfb-Reed98-scale
//! synthetic graph) under three frameworks — autoscaling,
//! IceBreaker+CLITE, and AQUATOPE — on the same diurnal trace, and prints
//! QoS violations, cold starts, and resource time for each.
//!
//! ```sh
//! cargo run --release --example social_network_e2e
//! ```

use aquatope::core::{run_framework, AquatopeConfig, ClusterSpec, Framework, Workload};
use aquatope::faas::FunctionRegistry;
use aquatope::prelude::*;
use aquatope::workflows::{apps, RateTraceConfig, SocialGraph};

fn main() {
    let mut registry = FunctionRegistry::new();
    let graph = SocialGraph::reed98_like(0xFB);
    println!(
        "social graph: {} users, {} follow edges, mean degree {:.1}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.mean_degree()
    );
    let app = apps::social_network_with_graph(&mut registry, &graph);

    let mut rng = SimRng::seed(21);
    let trace = RateTraceConfig {
        minutes: 45,
        mean_rpm: 8.0,
        ..RateTraceConfig::default()
    }
    .generate(&mut rng);
    println!(
        "trace: {} posts over {} minutes (QoS = {:.1} s)\n",
        trace.arrivals.len(),
        45,
        app.qos.as_secs_f64()
    );

    let workloads = vec![Workload {
        app,
        arrivals: trace.arrivals,
    }];
    let cluster = ClusterSpec::default();
    let horizon = SimTime::from_secs(47 * 60);
    let cfg = AquatopeConfig::fast();

    println!(
        "{:<18} {:>10} {:>10} {:>12} {:>12}",
        "framework", "QoS viol", "cold", "CPU core·s", "mem GB·s"
    );
    for fw in [
        Framework::Autoscale,
        Framework::IceBreakerClite,
        Framework::Aquatope,
    ] {
        let report = run_framework(fw, &registry, &workloads, cluster, horizon, &cfg);
        println!(
            "{:<18} {:>9.1}% {:>9.1}% {:>12.1} {:>12.1}",
            fw.name(),
            100.0 * report.qos_violation_rate,
            100.0 * report.cold_start_rate,
            report.cpu_core_seconds,
            report.memory_gb_seconds
        );
    }
}
