//! Offline stub of `criterion`.
//!
//! Implements the API surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock measurement loop: warm up briefly, then time batches until a
//! fixed budget elapses and report mean ± spread. No plotting, no
//! statistics beyond min/mean/max.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    /// Total measurement budget per benchmark.
    measurement_time: Duration,
    /// Warm-up budget per benchmark.
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(400),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Overrides the measurement budget.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Overrides the warm-up budget.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// No-op kept for generated-main compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warm_up: self.warm_up_time,
            budget: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Final summary hook (no-op).
    pub fn final_summary(&mut self) {}
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    budget: Duration,
    /// Mean nanoseconds per iteration for each measured batch.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measures `routine` repeatedly within the configured budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up while estimating per-iteration cost.
        let warm_start = Instant::now();
        let mut iters_done = 0u64;
        while warm_start.elapsed() < self.warm_up || iters_done == 0 {
            black_box(routine());
            iters_done += 1;
            if iters_done >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done as f64;
        // Batch size targeting ~20 batches within the budget.
        let budget_secs = self.budget.as_secs_f64();
        let batch = ((budget_secs / 20.0 / per_iter.max(1e-9)).ceil() as u64).clamp(1, 1_000_000);
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed().as_secs_f64();
            self.samples.push(dt * 1e9 / batch as f64);
            if self.samples.len() >= 200 {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<32} (no samples)");
            return;
        }
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self
            .samples
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let fmt = |ns: f64| -> String {
            if ns < 1e3 {
                format!("{ns:.1} ns")
            } else if ns < 1e6 {
                format!("{:.2} µs", ns / 1e3)
            } else if ns < 1e9 {
                format!("{:.2} ms", ns / 1e6)
            } else {
                format!("{:.3} s", ns / 1e9)
            }
        };
        println!("{name:<32} time: [{} {} {}]", fmt(min), fmt(mean), fmt(max));
    }
}

/// Declares a benchmark group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }
}
