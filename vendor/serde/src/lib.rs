//! Offline stub of `serde`.
//!
//! The build container has no crates.io access. The workspace only uses
//! serde as derive markers on plain data types (actual serialization is
//! hand-rolled in `aqua-telemetry` and the `serde_json` shim), so this
//! stub provides marker traits with blanket implementations plus inert
//! derive macros. Swapping the real crate back in requires no source
//! changes downstream.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all
/// types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Mirror of `serde::de` for code importing `serde::de::DeserializeOwned`.
pub mod de {
    pub use crate::DeserializeOwned;
}
