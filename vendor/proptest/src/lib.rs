//! Offline stub of `proptest`.
//!
//! The build container has no crates.io access, so this crate implements
//! the subset of proptest's API the workspace uses: range strategies,
//! `prop::collection::vec`, `prop_map`, the `proptest!` test macro with
//! `#![proptest_config(...)]`, and the `prop_assert*` family.
//!
//! Unlike real proptest there is no shrinking and the case stream is
//! **deterministic** (seeded from the test body's location), which suits
//! this repo's reproducibility goals: a failing property test fails
//! identically on every run and in CI.

use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// A value generator (stand-in for `proptest::strategy::Strategy`).
///
/// No shrinking: `Value` is produced directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filters generated values (regenerates until `f` passes; panics
    /// after 1000 rejections).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row");
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Something usable as a collection size: a fixed size or a range.
    pub trait IntoSizeRange {
        /// Samples a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Generates vectors of values from `element` with length in `size`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration (stand-in for
/// `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Overrides the number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Stable 64-bit FNV-1a hash used to derive per-test seeds.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `fn name(binding in strategy, ...) { body }` items carrying attributes
/// (`#[test]`, doc comments).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let base = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::new(base ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D));
                $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )*
                $body
            }
        }
        $crate::proptest_impl! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property (panics with context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
}

/// Skips a case when its precondition fails. Without shrinking or case
/// replacement we simply return from the case body, which under-counts
/// cases but preserves semantics for the properties in this workspace.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Glob-import surface matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestRng,
    };

    /// Alias module so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let f = Strategy::generate(&(-3.0f64..3.0), &mut rng);
            assert!((-3.0..3.0).contains(&f));
            let u = Strategy::generate(&(5u64..10), &mut rng);
            assert!((5..10).contains(&u));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = Strategy::generate(&collection::vec(0u64..5, 1..4), &mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn map_applies() {
        let mut rng = TestRng::new(3);
        let s = (0u64..10).prop_map(|v| v * 2);
        for _ in 0..50 {
            assert_eq!(Strategy::generate(&s, &mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself works end to end.
        #[test]
        fn macro_generates_cases(x in 0u64..100, xs in prop::collection::vec(0.0f64..1.0, 0..5)) {
            prop_assert!(x < 100);
            prop_assert!(xs.len() < 5);
        }
    }
}
