//! Offline stub of `serde_derive`.
//!
//! The shimmed `serde` crate gives `Serialize`/`Deserialize` blanket
//! implementations, so the derive macros have nothing to generate — they
//! exist only so `#[derive(Serialize, Deserialize)]` attributes in the
//! workspace keep compiling without crates.io access.

use proc_macro::TokenStream;

/// Inert `#[derive(Serialize)]`: the blanket impl in the `serde` shim
/// already covers every type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Inert `#[derive(Deserialize)]`: the blanket impl in the `serde` shim
/// already covers every type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
