//! Offline stub of the `rand` crate.
//!
//! The build container has no crates.io access, so this workspace vendors
//! the minimal subset of `rand`'s API that the repo actually uses: the
//! [`RngCore`] and [`SeedableRng`] traits (implemented by
//! `aqua_sim::SimRng`) and the [`Error`] type. Everything is
//! signature-compatible with `rand` 0.8 so the real crate can be swapped
//! back in without code changes.

use std::fmt;

/// Error type returned by fallible RNG operations.
///
/// The deterministic generators in this workspace never fail, so this is
/// an empty shell kept only for signature compatibility.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible version of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A generator seedable from fixed-size byte state (mirrors
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed byte-array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, splat across the seed bytes.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for (chunk, byte) in seed
            .as_mut()
            .iter_mut()
            .zip(state.to_le_bytes().iter().cycle())
        {
            *chunk = *byte;
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    impl SeedableRng for Counter {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Counter(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn seed_from_u64_roundtrips() {
        let mut a = Counter::seed_from_u64(7);
        let mut b = Counter::seed_from_u64(7);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn try_fill_bytes_defaults_to_fill() {
        let mut c = Counter(0);
        let mut buf = [0u8; 4];
        c.try_fill_bytes(&mut buf).unwrap();
        assert_ne!(buf, [0u8; 4]);
    }
}
