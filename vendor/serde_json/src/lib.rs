//! Offline stub of `serde_json`.
//!
//! Provides the subset the workspace uses: the [`Value`] tree, the
//! [`json!`] literal macro, and [`to_string`] / [`to_string_pretty`] for
//! `Value`s. Object keys preserve insertion order so experiment JSON files
//! are byte-stable across runs.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as integer when lossless).
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// A JSON number: integer when lossless, float otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating point.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(v) => write!(f, "{v}"),
            Number::UInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v.is_finite() {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{:.1}", v)
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no NaN/Inf; serde_json emits null.
                    write!(f, "null")
                }
            }
        }
    }
}

impl Value {
    /// Returns the float value of a JSON number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::Int(v)) => Some(*v as f64),
            Value::Number(Number::UInt(v)) => Some(*v as f64),
            Value::Number(Number::Float(v)) => Some(*v),
            _ => None,
        }
    }

    /// Returns the integer value, if this is a lossless integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::Int(v)) => Some(*v),
            Value::Number(Number::UInt(v)) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Returns the string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the array contents, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Looks up an object key (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

/// Any sized convertible value can also convert by reference — this is
/// what lets `json!` accept `&f64`, `&usize`, `&&str`, `&Vec<f64>`, and
/// friends the way real serde_json's `Serialize`-based macro does.
impl<T: Clone> From<&T> for Value
where
    Value: From<T>,
{
    fn from(v: &T) -> Self {
        Value::from(v.clone())
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Number(Number::Float(v as f64))
    }
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(Number::Int(v as i64))
            }
        }
    )*};
}
from_signed!(i8, i16, i32, i64, isize);

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                match i64::try_from(v) {
                    Ok(i) => Value::Number(Number::Int(i)),
                    Err(_) => Value::Number(Number::UInt(v as u64)),
                }
            }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>, const N: usize> From<[T; N]> for Value {
    fn from(v: [T; N]) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

impl From<BTreeMap<String, Value>> for Value {
    fn from(map: BTreeMap<String, Value>) -> Self {
        Value::Object(map.into_iter().collect())
    }
}

impl<T: Into<Value>> FromIterator<T> for Value {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Value::Array(iter.into_iter().map(Into::into).collect())
    }
}

/// Error type for serialization (infallible here, kept for signature
/// compatibility).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("json error")
    }
}

impl std::error::Error for Error {}

/// `Result` alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    const STEP: usize = 2;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(item, out, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(item, out, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Serializes a [`Value`] to a compact string.
pub fn to_string<T: Borrowable>(value: T) -> Result<String> {
    let mut out = String::new();
    write_compact(value.as_value(), &mut out);
    Ok(out)
}

/// Serializes a [`Value`] with two-space indentation.
pub fn to_string_pretty<T: Borrowable>(value: T) -> Result<String> {
    let mut out = String::new();
    write_pretty(value.as_value(), &mut out, 0);
    Ok(out)
}

/// Accepts `Value` or `&Value` in the serialization entry points, mirroring
/// serde_json's `T: Serialize` flexibility for the one type this stub
/// supports.
pub trait Borrowable {
    /// Borrows the underlying value.
    fn as_value(&self) -> &Value;
}

impl Borrowable for Value {
    fn as_value(&self) -> &Value {
        self
    }
}

impl Borrowable for &Value {
    fn as_value(&self) -> &Value {
        self
    }
}

impl Borrowable for &mut Value {
    fn as_value(&self) -> &Value {
        self
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_compact(self, &mut out);
        f.write_str(&out)
    }
}

// The json! literal macro: a tt-muncher in the style of serde_json's,
// reduced to the forms used in this workspace (nested objects, arrays,
// null/bool literals, and arbitrary expressions convertible to Value).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => { $crate::json_array!([] $($tt)*) };
    ({ $($tt:tt)* }) => { $crate::json_object!([] () $($tt)*) };
    ($other:expr) => { $crate::Value::from($other) };
}

/// Internal: accumulates array elements. `[done,*] rest...`
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    // End of input.
    ([ $($done:expr),* ]) => { $crate::Value::Array(vec![ $($done),* ]) };
    // Next element is a nested array or object or literal: capture one tt
    // then either a comma or end.
    ([ $($done:expr),* ] $next:tt , $($rest:tt)*) => {
        $crate::json_array!([ $($done,)* $crate::json!($next) ] $($rest)*)
    };
    ([ $($done:expr),* ] $next:tt) => {
        $crate::json_array!([ $($done,)* $crate::json!($next) ])
    };
    // Multi-token expression up to the next top-level comma.
    ([ $($done:expr),* ] $next:expr , $($rest:tt)*) => {
        $crate::json_array!([ $($done,)* $crate::Value::from($next) ] $($rest)*)
    };
    ([ $($done:expr),* ] $next:expr) => {
        $crate::json_array!([ $($done,)* $crate::Value::from($next) ])
    };
}

/// Internal: accumulates object entries. `[done,*] (key tokens) rest...`
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    // End of input.
    ([ $($done:expr),* ] ()) => { $crate::Value::Object(vec![ $($done),* ]) };
    ([ $($done:expr),* ] () , ) => { $crate::Value::Object(vec![ $($done),* ]) };
    // Key: value where value is a single tt (covers nested {...} / [...] /
    // literals / single-token expressions).
    ([ $($done:expr),* ] () $key:tt : $value:tt , $($rest:tt)*) => {
        $crate::json_object!([ $($done,)* ($crate::json_key!($key), $crate::json!($value)) ] () $($rest)*)
    };
    ([ $($done:expr),* ] () $key:tt : $value:tt) => {
        $crate::json_object!([ $($done,)* ($crate::json_key!($key), $crate::json!($value)) ] ())
    };
    // Key: multi-token expression value up to the next top-level comma.
    ([ $($done:expr),* ] () $key:tt : $value:expr , $($rest:tt)*) => {
        $crate::json_object!([ $($done,)* ($crate::json_key!($key), $crate::Value::from($value)) ] () $($rest)*)
    };
    ([ $($done:expr),* ] () $key:tt : $value:expr) => {
        $crate::json_object!([ $($done,)* ($crate::json_key!($key), $crate::Value::from($value)) ] ())
    };
}

/// Internal: converts a json! object key token to a `String`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_key {
    ($key:literal) => {
        ($key).to_string()
    };
    ($key:ident) => {
        stringify!($key).to_string()
    };
    ($key:expr) => {
        ($key).to_string()
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(true), Value::Bool(true));
        assert_eq!(json!(3), Value::Number(Number::Int(3)));
        assert_eq!(json!(1.5), Value::Number(Number::Float(1.5)));
        assert_eq!(json!("hi"), Value::String("hi".into()));
    }

    #[test]
    fn nested_object_and_array() {
        let records = vec![json!({ "a": 1 }), json!({ "a": 2 })];
        let v = json!({
            "experiment": "fig10",
            "nested": { "x": [1, 2, 3], "y": null },
            "points": records,
        });
        assert_eq!(v["experiment"].as_str(), Some("fig10"));
        assert_eq!(v["nested"]["x"].as_array().unwrap().len(), 3);
        assert_eq!(v["points"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn expression_values() {
        let cv = 2.0f64;
        let name = format!("run-{}", 7);
        let v = json!({ "cv": cv, "name": name, "sum": 1 + 2 });
        assert_eq!(v["cv"].as_f64(), Some(2.0));
        assert_eq!(v["name"].as_str(), Some("run-7"));
        assert_eq!(v["sum"].as_i64(), Some(3));
    }

    #[test]
    fn pretty_output_is_stable() {
        let v = json!({ "b": 1, "a": [true, null] });
        let s = to_string_pretty(&v).unwrap();
        // Insertion order preserved (b before a).
        assert!(s.find("\"b\"").unwrap() < s.find("\"a\"").unwrap());
        assert_eq!(to_string(&v).unwrap(), "{\"b\":1,\"a\":[true,null]}");
    }

    #[test]
    fn escapes_strings() {
        let v = json!({ "k": "line\n\"q\"" });
        assert_eq!(to_string(&v).unwrap(), "{\"k\":\"line\\n\\\"q\\\"\"}");
    }

    #[test]
    fn float_formatting_keeps_decimal_point() {
        assert_eq!(to_string(json!(2.0f64)).unwrap(), "2.0");
        assert_eq!(to_string(json!(0.25f64)).unwrap(), "0.25");
    }
}
