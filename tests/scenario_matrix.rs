//! Regression gates over the scenario-matrix evaluator:
//!
//! * a **golden** small matrix report (`tests/golden/matrix_small.json`,
//!   byte-identical; regenerate with `BLESS=1 cargo test --test
//!   scenario_matrix`),
//! * the **zero-rate fault identity**: a faulted cell whose fault plan
//!   has every rate at zero must reproduce its clean diurnal counterpart
//!   bit-for-bit (same arrival stream by construction),
//! * the **sanity ordering** on every scenario: the clairvoyant oracle
//!   never violates QoS more than AQUATOPE, which never violates more
//!   than the fixed keep-alive, each up to the replicate CI widths, and
//! * the statistical layer's verdicts on the same matrix.

use aquatope::faas::FaultRates;
use aquatope::scenarios::{
    matrix::{evaluate, evaluate_with_rates},
    run_matrix, MatrixConfig, PolicyKind, ScenarioKind, ScenarioSpec,
};

/// The golden configuration: 2 scenarios × 3 cheap policies × 2 seeds at
/// 30 minutes. No neural nets involved, so it runs in milliseconds and
/// blesses identically everywhere.
fn golden_config() -> MatrixConfig {
    MatrixConfig {
        scenarios: vec![
            ScenarioSpec::new(ScenarioKind::Diurnal, 30, 3.0),
            ScenarioSpec::new(ScenarioKind::Faulted, 30, 3.0),
        ],
        policies: vec![PolicyKind::Fixed, PolicyKind::SlackAware, PolicyKind::Rl],
        seeds: vec![11, 12],
        shards: 1,
    }
}

#[test]
fn golden_small_matrix_report() {
    let report = run_matrix(&golden_config());
    let body = report.to_json_string();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join("matrix_small.json");
    if std::env::var("BLESS").ok().as_deref() == Some("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, body).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden matrix report {}: {e}\nregenerate with: \
             BLESS=1 cargo test --test scenario_matrix",
            path.display()
        )
    });
    assert_eq!(
        golden,
        body,
        "matrix report diverged from {}; if intentional, re-bless with \
         BLESS=1 cargo test --test scenario_matrix",
        path.display()
    );
}

#[test]
fn zero_rate_faulted_cells_match_clean_counterparts() {
    // The faulted row reuses the diurnal arrival stream, so with every
    // fault rate at zero the whole cell must be bit-identical — the
    // fault machinery must be a strict no-op, not merely statistically
    // invisible.
    let clean = ScenarioSpec::new(ScenarioKind::Diurnal, 20, 3.0);
    let faulted = ScenarioSpec::new(ScenarioKind::Faulted, 20, 3.0);
    for policy in [PolicyKind::Fixed, PolicyKind::SlackAware, PolicyKind::Rl] {
        for seed in [1u64, 9] {
            let a = evaluate(&clean, policy, seed);
            let b = evaluate_with_rates(&faulted, policy, seed, FaultRates::default());
            assert_eq!(a, b, "{} seed {seed}", policy.name());
        }
    }
}

#[test]
fn nonzero_fault_rates_actually_change_the_cells() {
    // Guard the guard: the identity above would pass vacuously if the
    // faulted row ignored its rates entirely.
    let faulted = ScenarioSpec::new(ScenarioKind::Faulted, 20, 3.0);
    let clean = evaluate_with_rates(&faulted, PolicyKind::Fixed, 1, FaultRates::default());
    let hot = evaluate(&faulted, PolicyKind::Fixed, 1);
    assert_ne!(clean, hot, "default fault rates must perturb the run");
}

#[test]
fn sanity_ordering_holds_on_every_scenario() {
    // oracle ≤ aquatope ≤ fixed on QoS violations, per scenario, up to
    // replicate CIs. Deterministic: once green, always green.
    let config = MatrixConfig {
        scenarios: ScenarioSpec::all_kinds(30, 3.0),
        policies: vec![PolicyKind::Fixed, PolicyKind::Aquatope, PolicyKind::Oracle],
        seeds: vec![1, 2, 3],
        shards: 1,
    };
    let report = run_matrix(&config);
    let violations = report.sanity_violations();
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn statistical_layer_verdicts_on_the_sanity_matrix() {
    let config = MatrixConfig {
        scenarios: vec![ScenarioSpec::new(ScenarioKind::Faulted, 30, 3.0)],
        policies: vec![PolicyKind::Fixed, PolicyKind::Oracle],
        seeds: vec![1, 2, 3, 4, 5, 6],
        shards: 1,
    };
    let report = run_matrix(&config);
    let c = report.compare("faulted", "oracle", "fixed").unwrap();
    // Under injected faults the clairvoyant oracle wins every seed: the
    // paired sign test must be able to reach significance at 6 seeds
    // (p = 2/64), and the reversed comparison must not claim a win.
    assert!(c.wins + c.ties + c.losses == 6);
    assert!(
        c.a_beats_b(0.05),
        "oracle should significantly beat fixed under faults: {c:?}"
    );
    let rev = report.compare("faulted", "fixed", "oracle").unwrap();
    assert!(!rev.a_beats_b(0.05));
}
