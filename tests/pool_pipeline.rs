//! Integration tests of the cold-start stack: trace generation → simulator
//! → pool policies.

use aquatope::faas::prelude::*;
use aquatope::faas::types::ResourceConfig;
use aquatope::pool::{AquatopePool, AquatopePoolConfig, IceBreakerPolicy, KeepAlivePolicy};
use aquatope::prelude::*;
use aquatope::workflows::{apps, make_job, RateTraceConfig};

/// Replays one periodic trace under a policy and reports
/// `(cold-start rate, provisioned GB·s)`.
fn replay(controller: &mut dyn PrewarmController, seed: u64) -> (f64, f64) {
    let mut registry = FunctionRegistry::new();
    let app = apps::chain(&mut registry, 2);
    let minutes = 90;
    let mut rng = SimRng::seed(seed);
    // Strongly periodic load: 2 busy minutes, 6 quiet ones.
    let rates: Vec<f64> = (0..minutes)
        .map(|m| if m % 8 < 2 { 12.0 } else { 0.5 })
        .collect();
    let arrivals = aquatope::sim::PoissonProcess::from_per_minute_rates(&rates).generate(&mut rng);
    let configs = StageConfigs::uniform(&app.dag, ResourceConfig::default());
    let job = make_job(&app, configs, arrivals);
    let mut sim = FaasSim::builder()
        .workers(4, 40.0, 131_072)
        .registry(registry)
        .noise(NoiseModel::quiet())
        .seed(seed)
        .build();
    let report = sim.run(&[job], controller, SimTime::from_secs(60 * minutes as u64));
    (report.cold_start_rate(), report.memory_gb_seconds)
}

#[test]
fn predictive_pools_reduce_cold_starts_vs_keep_alive() {
    let (keep_cold, _) = replay(&mut KeepAlivePolicy::new(SimDuration::from_secs(120)), 11);
    let (ice_cold, _) = replay(&mut IceBreakerPolicy::new(), 11);
    assert!(
        ice_cold <= keep_cold,
        "IceBreaker {ice_cold:.3} should beat short keep-alive {keep_cold:.3}"
    );
}

#[test]
fn aquatope_pool_handles_periodic_load() {
    let mut registry = FunctionRegistry::new();
    let app = apps::chain(&mut registry, 2);
    drop(registry);
    let dag = app.dag.clone();
    let mut cfg = AquatopePoolConfig {
        warmup_windows: 30,
        ..AquatopePoolConfig::default()
    };
    cfg.hybrid.window = 12;
    cfg.hybrid.enc_hidden = vec![8];
    cfg.hybrid.dec_hidden = vec![6];
    cfg.hybrid.pretrain_epochs = 2;
    cfg.hybrid.train_epochs = 4;
    cfg.hybrid.mc_passes = 8;
    let mut pool = AquatopePool::new(cfg, &[&dag]);
    let (cold, _mem) = replay(&mut pool, 13);
    // The provider-default 10-minute keep-alive on this trace:
    let (keep_cold, _) = replay(&mut KeepAlivePolicy::provider_default(), 13);
    assert!(
        cold <= keep_cold + 0.05,
        "Aquatope pool {cold:.3} vs provider keep-alive {keep_cold:.3}"
    );
}

#[test]
fn trace_statistics_flow_into_simulation() {
    // The generated trace's arrival count matches what the simulator sees.
    let mut registry = FunctionRegistry::new();
    let app = apps::chain(&mut registry, 1);
    let mut rng = SimRng::seed(3);
    let bundle = RateTraceConfig::steady(10, 12.0).generate(&mut rng);
    let n = bundle.arrivals.len();
    let configs = StageConfigs::uniform(&app.dag, ResourceConfig::default());
    let job = make_job(&app, configs, bundle.arrivals);
    let mut sim = FaasSim::builder()
        .workers(2, 16.0, 32_768)
        .registry(registry)
        .noise(NoiseModel::quiet())
        .build();
    let mut keep = KeepAlivePolicy::provider_default();
    let report = sim.run(&[job], &mut keep, SimTime::from_secs(1200));
    assert_eq!(report.workflows.len() + report.unfinished, n);
}
