//! Golden tenant-tagged JSONL trace of a two-tenant live-service run.
//!
//! The run is shaped so every tenant-facing event kind appears in the
//! trace: a congested tenant with a tight SLO draws `tenant_admit`,
//! `tenant_shed`, *and* `predictive_reject` events once the latency model
//! fits, while a steady tenant completes everything (`tenant_complete`,
//! `warm_hit`, `cold_start_begin`). The trace is compared byte-for-byte
//! against `tests/golden/service_two_tenant.jsonl` and must be identical
//! under `AQUA_THREADS` ∈ {1, 2, 8}.
//!
//! After an *intentional* scheduling change, regenerate the golden with
//! `BLESS=1 cargo test --test service_trace`.

use std::sync::{Arc, Mutex};

use aquatope::faas::{
    FaultPlan, FunctionRegistry, FunctionSpec, QosClass, ResourceConfig, StageConfigs, TenantId,
    TenantPlan, WorkflowDag, WorkflowJob,
};
use aquatope::pool::ReactiveAutoscale;
use aquatope::service::{ControlPlane, PredictiveConfig, ServiceConfig, WarmPoolConfig};
use aquatope::sim::{SimDuration, SimTime};
use aquatope::telemetry::{diff_jsonl, Fanout, Recorder, SharedSink};

/// Runs the two-tenant service and returns its JSONL telemetry trace.
///
/// Tenant 0 is overloaded by construction: a 400 ms body fed every
/// 100 ms against a one-container pool share, under a 1 s SLO — queues
/// stay deep, so depth shedding fires early and the predictive veto
/// takes over once the model has seen enough completions. Tenant 1
/// trickles a 40 ms body through its own guaranteed container.
fn two_tenant_trace() -> String {
    let mut reg = FunctionRegistry::new();
    let hot = reg.register(FunctionSpec::new("hot").with_work_ms(400.0));
    let calm = reg.register(FunctionSpec::new("calm").with_work_ms(40.0));
    let job = |name: &str, f, arrivals| {
        let dag = WorkflowDag::chain(name, vec![f]);
        let configs = StageConfigs::uniform(&dag, ResourceConfig::default());
        WorkflowJob {
            dag,
            configs,
            arrivals,
        }
    };
    let jobs = vec![
        job(
            "hot-app",
            hot,
            (0..60)
                .map(|i| SimTime::from_millis(100 * (i as u64 + 1)))
                .collect(),
        ),
        job(
            "calm-app",
            calm,
            (0..12)
                .map(|i| SimTime::from_millis(500 * i + 250))
                .collect(),
        ),
    ];
    let mem = ResourceConfig::default().memory_mb;
    let plan = TenantPlan {
        classes: vec![
            QosClass::new(SimDuration::from_secs(1), 8, 8, mem),
            QosClass::new(SimDuration::from_secs(30), 64, 64, mem),
        ],
        job_tenants: vec![TenantId(0), TenantId(1)],
    };
    let cfg = ServiceConfig {
        pool: WarmPoolConfig {
            memory_budget_mb: 2.0 * mem,
            ..WarmPoolConfig::default()
        },
        model_sample_every: 1,
        refit_interval: SimDuration::from_secs(2),
        predictive: PredictiveConfig::enabled(u32::MAX, 1.0),
        run_for: SimDuration::from_secs(60),
        ..ServiceConfig::default()
    };
    let rec = Arc::new(Mutex::new(Recorder::unbounded()));
    let mut plane = ControlPlane::new(
        reg,
        jobs,
        Box::new(ReactiveAutoscale::default()),
        &FaultPlan::disabled(),
        cfg,
    )
    .with_tenants(plan);
    plane.attach_telemetry(Box::new(Fanout::new(vec![rec.clone() as SharedSink])), 64);
    let report = plane.run();
    assert_eq!(report.live_containers_at_exit, 0);
    assert_eq!(report.stranded_instances, 0);
    let jsonl = rec.lock().unwrap().to_jsonl();
    jsonl
}

/// Compares `jsonl` against the checked-in golden trace, or regenerates
/// it when `BLESS=1` is set.
fn check_golden(name: &str, jsonl: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var("BLESS").ok().as_deref() == Some("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, jsonl).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden trace {}: {e}\nregenerate with: BLESS=1 cargo test --test service_trace",
            path.display()
        )
    });
    if let Some(d) = diff_jsonl(&golden, jsonl) {
        panic!(
            "trace diverged from {}: {d}\nif the scheduling change is intentional, re-bless with: \
             BLESS=1 cargo test --test service_trace",
            path.display()
        );
    }
}

/// One test (not several) because `AQUA_THREADS` is process-global: the
/// thread-count sweep must run sequentially, and the golden comparison
/// rides on the first (single-threaded) trace.
#[test]
fn golden_two_tenant_service_trace_is_thread_count_invariant() {
    let mut traces = Vec::new();
    for threads in ["1", "2", "8"] {
        // SAFETY: single-threaded at this point in the test; the env var
        // is read per par_map call, so setting it between runs is safe.
        unsafe { std::env::set_var("AQUA_THREADS", threads) };
        traces.push((threads, two_tenant_trace()));
    }
    unsafe { std::env::remove_var("AQUA_THREADS") };
    let (_, base) = &traces[0];
    for kind in [
        "tenant_admit",
        "tenant_shed",
        "tenant_complete",
        "predictive_reject",
        "warm_hit",
        "cold_start_begin",
    ] {
        assert!(
            base.contains(&format!("\"type\":\"{kind}\"")),
            "trace must exercise {kind} events"
        );
    }
    // Tenant tags ride on the events: both tenants admit, only the hot
    // tenant is ever shed or predictively rejected.
    let tagged = |kind: &str, tenant: usize| {
        let (kind, tenant) = (
            format!("\"type\":\"{kind}\""),
            format!("\"tenant\":{tenant},"),
        );
        base.lines()
            .any(|l| l.contains(&kind) && l.contains(&tenant))
    };
    assert!(tagged("tenant_admit", 0));
    assert!(tagged("tenant_admit", 1));
    assert!(!tagged("tenant_shed", 1), "steady tenant was shed");
    assert!(!tagged("predictive_reject", 1), "steady tenant was vetoed");
    for (threads, trace) in &traces[1..] {
        assert_eq!(
            base, trace,
            "AQUA_THREADS={threads} diverged from the single-threaded trace"
        );
        assert!(diff_jsonl(base, trace).is_none());
    }
    check_golden("service_two_tenant.jsonl", base);
}
