//! Trait-level contract tests over *every* pre-warm pool policy — the
//! paper's line-up plus the slack-aware, RL, and oracle competitors from
//! the policy zoo. Each policy must, for any window statistics:
//!
//! * return exactly one decision per observed function with sane values,
//! * honor the `failed_boots` replacement lift (every policy routes its
//!   target through `aqua_faas::replacement_target`),
//! * keep its response bounded by the observed demand (no runaway
//!   targets from bounded inputs), and
//! * release capacity after sustained silence.
//!
//! The property block fuzzes observation streams with proptest; the named
//! tests below pin the sharper per-policy behaviors.

use std::collections::HashMap;

use aquatope::faas::cluster::ClusterSnapshot;
use aquatope::faas::sim::FnWindowStats;
use aquatope::faas::{
    FunctionId, FunctionRegistry, FunctionSpec, PoolObservation, PrewarmController, WorkflowDag,
};
use aquatope::pool::{
    AquatopePool, AquatopePoolConfig, FaasCachePolicy, HistogramPolicy, IceBreakerPolicy,
    KeepAlivePolicy, ReactiveAutoscale, RlConfig, RlPoolPolicy, SlackAwarePolicy, SlackConfig,
};
use aquatope::prelude::*;
use aquatope::scenarios::OraclePrewarm;
use proptest::prelude::*;

fn obs(peaks: &[u32], minute: u64) -> PoolObservation {
    obs_failed(peaks, minute, 0)
}

fn obs_failed(peaks: &[u32], minute: u64, failed_boots: u32) -> PoolObservation {
    PoolObservation {
        now: SimTime::from_secs(60 * minute),
        window: SimDuration::from_secs(60),
        stats: peaks
            .iter()
            .enumerate()
            .map(|(i, &p)| FnWindowStats {
                function: FunctionId(i),
                invocations: p,
                peak_concurrency: p,
                booting: 0,
                idle: (p / 2),
                busy: p,
                failed_boots,
            })
            .collect(),
        cluster: ClusterSnapshot {
            reserved_memory_mb: 1024.0,
            total_memory_mb: 1.0e6,
            containers: 3,
        },
    }
}

/// A three-function chain workflow for the policies that need one
/// (slack-aware reads deadlines, the oracle reads a schedule).
fn chain_fixture() -> (FunctionRegistry, WorkflowDag) {
    let mut registry = FunctionRegistry::new();
    let fns: Vec<FunctionId> = (0..3)
        .map(|i| {
            registry.register(
                FunctionSpec::new(format!("f{i}"))
                    .with_work_ms(150.0)
                    .with_cold_start(700.0, 200.0),
            )
        })
        .collect();
    (registry, WorkflowDag::chain("contract", fns))
}

fn all_policies() -> Vec<(&'static str, Box<dyn PrewarmController>)> {
    let cfg = AquatopePoolConfig {
        warmup_windows: 10_000, // stay in the reactive regime for speed
        ..AquatopePoolConfig::default()
    };
    let (registry, dag) = chain_fixture();
    let slack = SlackAwarePolicy::new(
        SlackConfig::default(),
        &[(&dag, SimDuration::from_millis(1500))],
        &registry,
    );
    // A periodic oracle schedule over the three fixture functions.
    let schedule: HashMap<FunctionId, Vec<u32>> = (0..3)
        .map(|f| {
            (
                FunctionId(f),
                (0..240u32)
                    .map(|m| if m % 7 == 0 { 4 } else { 0 })
                    .collect(),
            )
        })
        .collect();
    vec![
        ("keep", Box::new(KeepAlivePolicy::provider_default())),
        ("autoscale", Box::new(ReactiveAutoscale::new())),
        ("hist", Box::new(HistogramPolicy::new())),
        ("faascache", Box::new(FaasCachePolicy::new())),
        ("icebreaker", Box::new(IceBreakerPolicy::new())),
        ("aquatope", Box::new(AquatopePool::new(cfg, &[]))),
        ("slack", Box::new(slack)),
        ("rl", Box::new(RlPoolPolicy::new(RlConfig::default()))),
        (
            "oracle",
            Box::new(OraclePrewarm::from_schedule(
                schedule,
                SimDuration::from_secs(120),
            )),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any short observation stream, every policy keeps its targets
    /// inside a generous envelope of the demand it has seen, and replaces
    /// fault-killed boots: with `failed > 0` the decision must carry a
    /// target at least that large.
    #[test]
    fn targets_bounded_and_failed_boots_honored(
        stream in proptest::collection::vec(
            proptest::collection::vec(0u32..8, 3), 1..12),
        failed in 1u32..4,
    ) {
        for (name, mut policy) in all_policies() {
            let mut max_peak = 0u32;
            for (minute, peaks) in stream.iter().enumerate() {
                max_peak = max_peak.max(*peaks.iter().max().unwrap());
                let d = policy.tick(&obs(peaks, minute as u64));
                prop_assert_eq!(d.len(), peaks.len(), "{}: decision count", name);
                for dec in &d {
                    if let Some(t) = dec.prewarm_target {
                        // Generous bound: the worst extrapolator in the
                        // zoo (IceBreaker's Fourier fit) still stays well
                        // inside a few multiples of the observed peak.
                        prop_assert!(
                            t <= 8 * max_peak as usize + 16,
                            "{}: target {} from peaks ≤ {}", name, t, max_peak
                        );
                    }
                }
            }
            // One more window with fault-killed boots: the replacement
            // lift is mandatory for every policy.
            let last = stream.len() as u64;
            let d = policy.tick(&obs_failed(&[2, 0, 5], last, failed));
            for dec in &d {
                let t = dec.prewarm_target;
                prop_assert!(
                    t.is_some() && t.unwrap() >= failed as usize,
                    "{}: failed_boots={} must lift the target, got {:?}",
                    name, failed, t
                );
            }
        }
    }

    /// Decisions cover exactly the observed functions, once each, with
    /// positive keep-alives — for any peak vector.
    #[test]
    fn one_decision_per_function(peaks in proptest::collection::vec(0u32..8, 1..5)) {
        for (name, mut policy) in all_policies() {
            let d = policy.tick(&obs(&peaks, 0));
            let mut fns: Vec<usize> = d.iter().map(|dec| dec.function.0).collect();
            fns.sort_unstable();
            prop_assert_eq!(fns, (0..peaks.len()).collect::<Vec<_>>(), "{}", name);
            for dec in &d {
                prop_assert!(dec.keep_alive > SimDuration::ZERO, "{}", name);
            }
        }
    }
}

#[test]
fn one_decision_per_function_with_sane_values() {
    for (name, mut policy) in all_policies() {
        for minute in 0..30u64 {
            let peaks = [minute as u32 % 5, 3, 0];
            let decisions = policy.tick(&obs(&peaks, minute));
            assert_eq!(decisions.len(), peaks.len(), "{name}: decision count");
            for d in &decisions {
                assert!(
                    d.keep_alive > SimDuration::ZERO,
                    "{name}: keep-alive must be positive"
                );
                if let Some(t) = d.prewarm_target {
                    assert!(t < 10_000, "{name}: absurd target {t}");
                }
            }
            // Exactly one decision per observed function id.
            let mut fns: Vec<usize> = decisions.iter().map(|d| d.function.0).collect();
            fns.sort_unstable();
            assert_eq!(fns, vec![0, 1, 2], "{name}: function coverage");
        }
    }
}

#[test]
fn zero_load_eventually_releases_predictive_pools() {
    // After sustained zero demand, predictive policies must not keep
    // requesting capacity. (The oracle's fixture schedule is periodic, so
    // it is exempt by construction — its "demand" is the schedule.)
    for (name, mut policy) in all_policies() {
        if name == "oracle" {
            continue;
        }
        let mut last = Vec::new();
        for minute in 0..60u64 {
            last = policy.tick(&obs(&[0, 0, 0], minute));
        }
        for d in &last {
            if let Some(t) = d.prewarm_target {
                assert!(
                    t <= 1,
                    "{name}: still holding {t} containers after an hour of silence"
                );
            }
        }
    }
}

#[test]
fn oracle_releases_when_its_schedule_is_empty() {
    // The oracle's counterpart to the zero-load contract: beyond its
    // schedule (or on an all-zero one) it requests nothing.
    let mut oracle = OraclePrewarm::from_schedule(
        HashMap::from([(FunctionId(0), vec![3, 0])]),
        SimDuration::from_secs(120),
    );
    for minute in [1u64, 2, 50] {
        let d = oracle.tick(&obs(&[0], minute));
        assert_eq!(d[0].prewarm_target, Some(0), "minute {minute}");
    }
}

#[test]
fn preloaded_history_feeds_the_predictive_policies() {
    // A strongly periodic preloaded history should let IceBreaker predict
    // the busy phase with no live warm-up.
    let mut ice = IceBreakerPolicy::new();
    let hist: Vec<f64> = (0..256)
        .map(|m| if m % 8 == 0 { 6.0 } else { 0.0 })
        .collect();
    ice.preload_history(FunctionId(0), &hist);
    // History ends at index 255 (phase 7); the first live window is phase 0
    // (busy). After observing it, the next prediction targets phase 1
    // (quiet); at phase 7 the prediction targets phase 0 (busy).
    let mut targets = Vec::new();
    for minute in 0..16u64 {
        let phase = (256 + minute) % 8;
        let peak = if phase == 0 { 6 } else { 0 };
        let d = ice.tick(&obs(&[peak], minute));
        targets.push(d[0].prewarm_target.unwrap());
    }
    // Predictions made at phase 7 (minute indices 7 and 15, targeting the
    // busy next-phase 0) should be high.
    let before_busy: usize = targets[7].max(targets[15]);
    let mid_quiet = targets[2].min(targets[10]);
    assert!(
        before_busy > mid_quiet,
        "periodic history should shape predictions: {targets:?}"
    );
}

#[test]
fn aquatope_pool_trains_from_preloaded_history_alone() {
    let mut cfg = AquatopePoolConfig {
        warmup_windows: 64,
        training_window: 256,
        ..AquatopePoolConfig::default()
    };
    cfg.hybrid.window = 12;
    cfg.hybrid.enc_hidden = vec![8];
    cfg.hybrid.dec_hidden = vec![6];
    cfg.hybrid.mlp_hidden = vec![12, 8];
    cfg.hybrid.pretrain_epochs = 1;
    cfg.hybrid.train_epochs = 2;
    cfg.hybrid.mc_passes = 6;
    let mut pool = AquatopePool::new(cfg, &[]);
    let hist: Vec<f64> = (0..256)
        .map(|m| if m % 8 < 2 { 4.0 } else { 0.0 })
        .collect();
    pool.preload_history(FunctionId(0), &hist);
    // First live tick: with ≥ warmup history preloaded, the model trains
    // immediately and the decision is model-driven (not the 1.25× reactive
    // fallback, which would return exactly ceil(0 × 1.25) = 0 at peak 0
    // and ceil(4×1.25) = 5 at peak 4 forever).
    let d = pool.tick(&obs(&[0], 0));
    assert!(d[0].prewarm_target.is_some());
}
