//! Contract tests over every pre-warm pool policy: each must return one
//! decision per observed function with sane keep-alives and targets, for
//! any window statistics.

use aquatope::faas::cluster::ClusterSnapshot;
use aquatope::faas::sim::FnWindowStats;
use aquatope::faas::{FunctionId, PoolObservation, PrewarmController};
use aquatope::pool::{
    AquatopePool, AquatopePoolConfig, FaasCachePolicy, HistogramPolicy, IceBreakerPolicy,
    KeepAlivePolicy, ReactiveAutoscale,
};
use aquatope::prelude::*;

fn obs(peaks: &[u32], minute: u64) -> PoolObservation {
    PoolObservation {
        now: SimTime::from_secs(60 * minute),
        window: SimDuration::from_secs(60),
        stats: peaks
            .iter()
            .enumerate()
            .map(|(i, &p)| FnWindowStats {
                function: FunctionId(i),
                invocations: p,
                peak_concurrency: p,
                booting: 0,
                idle: (p / 2),
                busy: p,
                failed_boots: 0,
            })
            .collect(),
        cluster: ClusterSnapshot {
            reserved_memory_mb: 1024.0,
            total_memory_mb: 1.0e6,
            containers: 3,
        },
    }
}

fn all_policies() -> Vec<(&'static str, Box<dyn PrewarmController>)> {
    let cfg = AquatopePoolConfig {
        warmup_windows: 10_000, // stay in the reactive regime for speed
        ..AquatopePoolConfig::default()
    };
    vec![
        ("keep", Box::new(KeepAlivePolicy::provider_default())),
        ("autoscale", Box::new(ReactiveAutoscale::new())),
        ("hist", Box::new(HistogramPolicy::new())),
        ("faascache", Box::new(FaasCachePolicy::new())),
        ("icebreaker", Box::new(IceBreakerPolicy::new())),
        ("aquatope", Box::new(AquatopePool::new(cfg, &[]))),
    ]
}

#[test]
fn one_decision_per_function_with_sane_values() {
    for (name, mut policy) in all_policies() {
        for minute in 0..30u64 {
            let peaks = [minute as u32 % 5, 3, 0];
            let decisions = policy.tick(&obs(&peaks, minute));
            assert_eq!(decisions.len(), peaks.len(), "{name}: decision count");
            for d in &decisions {
                assert!(
                    d.keep_alive > SimDuration::ZERO,
                    "{name}: keep-alive must be positive"
                );
                if let Some(t) = d.prewarm_target {
                    assert!(t < 10_000, "{name}: absurd target {t}");
                }
            }
            // Exactly one decision per observed function id.
            let mut fns: Vec<usize> = decisions.iter().map(|d| d.function.0).collect();
            fns.sort_unstable();
            assert_eq!(fns, vec![0, 1, 2], "{name}: function coverage");
        }
    }
}

#[test]
fn zero_load_eventually_releases_predictive_pools() {
    // After sustained zero demand, predictive policies must not keep
    // requesting capacity.
    for (name, mut policy) in all_policies() {
        let mut last = Vec::new();
        for minute in 0..60u64 {
            last = policy.tick(&obs(&[0, 0, 0], minute));
        }
        for d in &last {
            if let Some(t) = d.prewarm_target {
                assert!(
                    t <= 1,
                    "{name}: still holding {t} containers after an hour of silence"
                );
            }
        }
    }
}

#[test]
fn preloaded_history_feeds_the_predictive_policies() {
    // A strongly periodic preloaded history should let IceBreaker predict
    // the busy phase with no live warm-up.
    let mut ice = IceBreakerPolicy::new();
    let hist: Vec<f64> = (0..256)
        .map(|m| if m % 8 == 0 { 6.0 } else { 0.0 })
        .collect();
    ice.preload_history(FunctionId(0), &hist);
    // History ends at index 255 (phase 7); the first live window is phase 0
    // (busy). After observing it, the next prediction targets phase 1
    // (quiet); at phase 7 the prediction targets phase 0 (busy).
    let mut targets = Vec::new();
    for minute in 0..16u64 {
        let phase = (256 + minute) % 8;
        let peak = if phase == 0 { 6 } else { 0 };
        let d = ice.tick(&obs(&[peak], minute));
        targets.push(d[0].prewarm_target.unwrap());
    }
    // Predictions made at phase 7 (minute indices 7 and 15, targeting the
    // busy next-phase 0) should be high.
    let before_busy: usize = targets[7].max(targets[15]);
    let mid_quiet = targets[2].min(targets[10]);
    assert!(
        before_busy > mid_quiet,
        "periodic history should shape predictions: {targets:?}"
    );
}

#[test]
fn aquatope_pool_trains_from_preloaded_history_alone() {
    let mut cfg = AquatopePoolConfig {
        warmup_windows: 64,
        training_window: 256,
        ..AquatopePoolConfig::default()
    };
    cfg.hybrid.window = 12;
    cfg.hybrid.enc_hidden = vec![8];
    cfg.hybrid.dec_hidden = vec![6];
    cfg.hybrid.mlp_hidden = vec![12, 8];
    cfg.hybrid.pretrain_epochs = 1;
    cfg.hybrid.train_epochs = 2;
    cfg.hybrid.mc_passes = 6;
    let mut pool = AquatopePool::new(cfg, &[]);
    let hist: Vec<f64> = (0..256)
        .map(|m| if m % 8 < 2 { 4.0 } else { 0.0 })
        .collect();
    pool.preload_history(FunctionId(0), &hist);
    // First live tick: with ≥ warmup history preloaded, the model trains
    // immediately and the decision is model-driven (not the 1.25× reactive
    // fallback, which would return exactly ceil(0 × 1.25) = 0 at peak 0
    // and ceil(4×1.25) = 5 at peak 4 forever).
    let d = pool.tick(&obs(&[0], 0));
    assert!(d[0].prewarm_target.is_some());
}
