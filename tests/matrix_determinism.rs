//! Thread- and shard-count independence of the scenario matrix: for every
//! shard count, the full report — cells, CIs, comparisons, sign-test
//! p-values, serialized JSON — must be byte-identical whether the cell
//! fan-out (and, for `shards >= 2`, the per-cell event loops) runs on 1,
//! 2, or 8 threads.
//!
//! Shard counts are **not** compared to each other: each count partitions
//! the cluster differently and is its own deterministic model. The
//! contract is determinism *within* a shard count, independent of
//! `AQUA_THREADS` (see `DESIGN.md`, "Sharded execution").
//!
//! One test (not a matrix of tests) because `AQUA_THREADS` is
//! process-global state: the settings must be applied sequentially, never
//! concurrently with another test's parallel region.

use aquatope::scenarios::{run_matrix, MatrixConfig, PolicyKind, ScenarioKind, ScenarioSpec};

fn small_matrix_json(shards: usize) -> String {
    let config = MatrixConfig {
        scenarios: vec![
            ScenarioSpec::new(ScenarioKind::Bursty, 15, 3.0),
            ScenarioSpec::new(ScenarioKind::Faulted, 15, 3.0),
        ],
        policies: vec![PolicyKind::Fixed, PolicyKind::Rl, PolicyKind::Oracle],
        seeds: vec![3, 4],
        shards,
    };
    run_matrix(&config).to_json_string()
}

#[test]
fn matrix_report_is_identical_across_thread_counts_per_shard_count() {
    // The matrix cluster has 6 workers, so 4 shards still leaves at least
    // one worker per shard.
    for shards in [1usize, 2, 4] {
        let mut reports = Vec::new();
        for threads in ["1", "2", "8"] {
            // SAFETY: single-threaded at this point in the test; the env
            // var is read per par_map call, so setting it between runs is
            // safe.
            unsafe { std::env::set_var("AQUA_THREADS", threads) };
            reports.push((threads, small_matrix_json(shards)));
        }
        unsafe { std::env::remove_var("AQUA_THREADS") };
        let (_, base) = &reports[0];
        assert!(base.contains("\"cells\""), "report must contain cells");
        for (threads, report) in &reports[1..] {
            assert_eq!(
                base, report,
                "shards={shards} AQUA_THREADS={threads} diverged from the \
                 single-threaded report"
            );
        }
    }
}
