//! Cross-crate integration tests: the full AQUATOPE pipeline on real
//! application workloads.

use aquatope::core::{run_framework, Aquatope, AquatopeConfig, ClusterSpec, Framework, Workload};
use aquatope::faas::FunctionRegistry;
use aquatope::prelude::*;
use aquatope::workflows::{apps, RateTraceConfig};

fn trace_arrivals(minutes: usize, rpm: f64, seed: u64) -> Vec<SimTime> {
    let mut rng = SimRng::seed(seed);
    RateTraceConfig::steady(minutes, rpm)
        .generate(&mut rng)
        .arrivals
}

#[test]
fn full_pipeline_meets_qos_on_ml_pipeline() {
    let mut registry = FunctionRegistry::new();
    let app = apps::ml_pipeline(&mut registry);
    let workload = Workload {
        app,
        arrivals: trace_arrivals(20, 6.0, 1),
    };
    let mut controller = Aquatope::new(AquatopeConfig::fast());
    let report = controller.run(
        &registry,
        std::slice::from_ref(&workload),
        ClusterSpec::default(),
        SimTime::from_secs(22 * 60),
    );
    assert!(report.completed > 100, "completed {}", report.completed);
    assert!(
        report.qos_violation_rate < 0.10,
        "violations {:.1}%",
        report.qos_violation_rate * 100.0
    );
}

#[test]
fn mixed_workload_all_apps_complete() {
    let mut registry = FunctionRegistry::new();
    let chain = apps::chain(&mut registry, 3);
    let fan = apps::fan_out_in(&mut registry, 4);
    let workloads = vec![
        Workload {
            app: chain,
            arrivals: trace_arrivals(15, 4.0, 2),
        },
        Workload {
            app: fan,
            arrivals: trace_arrivals(15, 3.0, 3),
        },
    ];
    let mut controller = Aquatope::new(AquatopeConfig::fast());
    let report = controller.run(
        &registry,
        &workloads,
        ClusterSpec::default(),
        SimTime::from_secs(17 * 60),
    );
    let arrived: usize = workloads.iter().map(|w| w.arrivals.len()).sum();
    assert!(
        report.completed + report.unfinished >= arrived * 95 / 100,
        "completed {} + unfinished {} of {arrived}",
        report.completed,
        report.unfinished
    );
    assert!(report.qos_violation_rate < 0.15);
}

#[test]
fn aquatope_framework_dominates_autoscale_on_violations() {
    let mut registry = FunctionRegistry::new();
    let app = apps::video_processing(&mut registry);
    let workloads = vec![Workload {
        app,
        arrivals: trace_arrivals(18, 4.0, 5),
    }];
    let cfg = AquatopeConfig::fast();
    let horizon = SimTime::from_secs(20 * 60);
    let aq = run_framework(
        Framework::Aquatope,
        &registry,
        &workloads,
        ClusterSpec::default(),
        horizon,
        &cfg,
    );
    let auto = run_framework(
        Framework::Autoscale,
        &registry,
        &workloads,
        ClusterSpec::default(),
        horizon,
        &cfg,
    );
    // Dense steady traffic is the autoscaler-friendly regime (everything
    // stays warm), so parity within a small tolerance is the expectation
    // here; the decisive intermittent-traffic comparisons live in the
    // fig09/fig18 experiment harness.
    assert!(
        aq.qos_violation_rate <= (auto.qos_violation_rate + 0.10).max(0.12),
        "aquatope {:.2} vs autoscale {:.2}",
        aq.qos_violation_rate,
        auto.qos_violation_rate
    );
}

#[test]
fn reports_are_deterministic_given_seeds() {
    let build = || {
        let mut registry = FunctionRegistry::new();
        let app = apps::chain(&mut registry, 2);
        (
            registry,
            Workload {
                app,
                arrivals: trace_arrivals(10, 5.0, 9),
            },
        )
    };
    let (r1, w1) = build();
    let (r2, w2) = build();
    let mut c1 = Aquatope::new(AquatopeConfig::fast());
    let mut c2 = Aquatope::new(AquatopeConfig::fast());
    let horizon = SimTime::from_secs(12 * 60);
    let a = c1.run(
        &r1,
        std::slice::from_ref(&w1),
        ClusterSpec::default(),
        horizon,
    );
    let b = c2.run(
        &r2,
        std::slice::from_ref(&w2),
        ClusterSpec::default(),
        horizon,
    );
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.cold_start_rate, b.cold_start_rate);
    assert_eq!(a.cpu_core_seconds, b.cpu_core_seconds);
}
