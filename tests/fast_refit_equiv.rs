//! Golden-trace equivalence for the fast-refit BO engine.
//!
//! The incremental-Cholesky / shared-precompute / parallel-acquisition
//! paths in `aqua-linalg` and `aqua-gp` replace exact computations and
//! must be *bit-compatible*: a full `run_framework_traced` replay — BO
//! iterations, pool resizes, per-stage scheduling — has to produce the
//! same JSONL trace byte for byte as the pre-fast-path code. The golden
//! files below were blessed from the slow path; any divergence means the
//! "optimization" changed a decision.
//!
//! Regenerate after an *intentional* behaviour change with
//! `BLESS=1 cargo test --test fast_refit_equiv`.

use aquatope::core::{run_framework_traced, AquatopeConfig, ClusterSpec, Framework, Workload};
use aquatope::faas::prelude::*;
use aquatope::telemetry::{diff_jsonl, Telemetry};
use aquatope::workflows::{apps, App};

/// Plans and replays `app` under the full Aquatope framework with a
/// recording sink attached, returning the JSONL trace.
fn framework_trace(make_app: fn(&mut FunctionRegistry) -> App) -> String {
    let mut registry = FunctionRegistry::new();
    let app = make_app(&mut registry);
    let workloads = vec![Workload {
        app,
        arrivals: (1..30u64).map(|i| SimTime::from_secs(i * 15)).collect(),
    }];
    let (tel, rec) = Telemetry::recording();
    run_framework_traced(
        Framework::Aquatope,
        &registry,
        &workloads,
        ClusterSpec::default(),
        SimTime::from_secs(500),
        &AquatopeConfig::fast(),
        &[],
        tel,
    );
    let jsonl = rec.lock().unwrap().to_jsonl();
    jsonl
}

fn chain3(registry: &mut FunctionRegistry) -> App {
    apps::chain(registry, 3)
}

/// Compares `jsonl` against the checked-in golden trace, or regenerates it
/// when `BLESS=1` is set.
fn check_golden(name: &str, jsonl: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var("BLESS").ok().as_deref() == Some("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, jsonl).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden trace {}: {e}\nregenerate with: BLESS=1 cargo test --test fast_refit_equiv",
            path.display()
        )
    });
    if let Some(d) = diff_jsonl(&golden, jsonl) {
        panic!(
            "fast path diverged from the exact path at {}: {d}\nif the change is intentional, \
             re-bless with: BLESS=1 cargo test --test fast_refit_equiv",
            path.display()
        );
    }
    assert_eq!(
        golden, jsonl,
        "traces structurally equal but not byte-identical"
    );
}

#[test]
fn framework_trace_ml_pipeline_byte_identical() {
    check_golden(
        "framework_ml_pipeline.jsonl",
        &framework_trace(apps::ml_pipeline),
    );
}

#[test]
fn framework_trace_chain_byte_identical() {
    check_golden("framework_chain.jsonl", &framework_trace(chain3));
}
