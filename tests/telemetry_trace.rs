//! Telemetry regression tests: trace determinism, golden JSONL traces, and
//! the online invariant checker riding along full end-to-end runs.
//!
//! Golden files live in `tests/golden/`. After an *intentional* scheduling
//! change, regenerate them with `BLESS=1 cargo test --test telemetry_trace`.

use std::sync::{Arc, Mutex};

use aquatope::core::{run_framework_traced, AquatopeConfig, ClusterSpec, Framework, Workload};
use aquatope::faas::prelude::*;
use aquatope::faas::types::ResourceConfig;
use aquatope::telemetry::{diff_jsonl, Fanout, InvariantChecker, Recorder, SimEvent, Telemetry};
use aquatope::workflows::{apps, App};

/// Replays `app` on a fixed arrival trace with a recording sink attached
/// and returns the JSONL trace.
fn trace_app(make_app: fn(&mut FunctionRegistry) -> App, seed: u64) -> String {
    let mut registry = FunctionRegistry::new();
    let app = make_app(&mut registry);
    let (tel, rec) = Telemetry::recording();
    let mut sim = FaasSim::builder()
        .workers(4, 40.0, 65_536)
        .registry(registry)
        .noise(NoiseModel::production())
        .seed(seed)
        .telemetry(tel)
        .build();
    let configs = StageConfigs::uniform(&app.dag, ResourceConfig::default());
    let arrivals: Vec<SimTime> = (1..=30u64).map(|i| SimTime::from_secs(i * 7)).collect();
    sim.run_workflow_trace(&app.dag, &configs, &arrivals, SimTime::from_secs(400));
    let jsonl = rec.lock().unwrap().to_jsonl();
    jsonl
}

fn chain3(registry: &mut FunctionRegistry) -> App {
    apps::chain(registry, 3)
}

/// Compares `jsonl` against the checked-in golden trace, or regenerates it
/// when `BLESS=1` is set.
fn check_golden(name: &str, jsonl: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var("BLESS").ok().as_deref() == Some("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, jsonl).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden trace {}: {e}\nregenerate with: BLESS=1 cargo test --test telemetry_trace",
            path.display()
        )
    });
    if let Some(d) = diff_jsonl(&golden, jsonl) {
        panic!(
            "trace diverged from {}: {d}\nif the scheduling change is intentional, re-bless with: \
             BLESS=1 cargo test --test telemetry_trace",
            path.display()
        );
    }
}

#[test]
fn same_seed_produces_byte_identical_traces() {
    let a = trace_app(apps::ml_pipeline, 11);
    let b = trace_app(apps::ml_pipeline, 11);
    assert!(!a.is_empty(), "trace must not be empty");
    assert_eq!(a, b, "same seed must replay to a byte-identical trace");
    assert!(diff_jsonl(&a, &b).is_none());
}

#[test]
fn different_seeds_diverge() {
    let a = trace_app(apps::ml_pipeline, 11);
    let b = trace_app(apps::ml_pipeline, 12);
    let d = diff_jsonl(&a, &b).expect("different noise seeds must alter the trace");
    // The divergence report points at a concrete first event.
    assert!(d.left.is_some() || d.right.is_some());
}

#[test]
fn golden_trace_ml_pipeline() {
    check_golden("ml_pipeline.jsonl", &trace_app(apps::ml_pipeline, 7));
}

#[test]
fn golden_trace_chain() {
    check_golden("chain.jsonl", &trace_app(chain3, 7));
}

#[test]
fn invariants_hold_on_plain_replay() {
    let mut registry = FunctionRegistry::new();
    let app = apps::ml_pipeline(&mut registry);
    let (tel, checker) = Telemetry::attach(InvariantChecker::new(4, 65_536.0));
    let mut sim = FaasSim::builder()
        .workers(4, 40.0, 65_536)
        .registry(registry)
        .noise(NoiseModel::production())
        .seed(3)
        .telemetry(tel)
        .build();
    let configs = StageConfigs::uniform(&app.dag, ResourceConfig::default());
    let arrivals: Vec<SimTime> = (1..=40u64).map(|i| SimTime::from_secs(i * 5)).collect();
    sim.run_workflow_trace(&app.dag, &configs, &arrivals, SimTime::from_secs(300));
    let checker = checker.lock().unwrap();
    assert!(
        checker.events_seen() > 100,
        "checker saw {} events",
        checker.events_seen()
    );
    checker.assert_ok();
}

#[test]
fn framework_run_emits_all_layers_and_upholds_invariants() {
    let mut registry = FunctionRegistry::new();
    let app = apps::chain(&mut registry, 2);
    let workloads = vec![Workload {
        app,
        arrivals: (1..40u64).map(|i| SimTime::from_secs(i * 15)).collect(),
    }];
    let cluster = ClusterSpec::default();

    let rec = Arc::new(Mutex::new(Recorder::unbounded()));
    let checker = Arc::new(Mutex::new(InvariantChecker::new(
        cluster.workers,
        cluster.memory_mb_per_worker as f64,
    )));
    let tel = Telemetry::new(Arc::new(Mutex::new(Fanout::new(vec![
        rec.clone() as aquatope::telemetry::SharedSink,
        checker.clone() as aquatope::telemetry::SharedSink,
    ]))));

    let report = run_framework_traced(
        Framework::Aquatope,
        &registry,
        &workloads,
        cluster,
        SimTime::from_secs(700),
        &AquatopeConfig::fast(),
        &[],
        tel,
    );
    assert!(report.completed > 20);

    let events = rec.lock().unwrap().events();
    let count = |pred: fn(&SimEvent) -> bool| events.iter().filter(|e| pred(e)).count();
    assert!(
        count(|e| matches!(e, SimEvent::BoIteration { .. })) > 0,
        "resource manager must report BO iterations"
    );
    assert!(
        count(|e| matches!(e, SimEvent::PoolResize { .. })) > 0,
        "pool must report resize decisions"
    );
    assert!(
        count(|e| matches!(e, SimEvent::StageComplete { .. })) >= report.completed,
        "every completed workflow finishes at least one stage"
    );
    let violations = count(|e| matches!(e, SimEvent::QosViolation { .. }));
    let arrived = workloads[0].arrivals.len();
    assert!(
        violations <= arrived,
        "{violations} violation events for {arrived} arrivals"
    );

    let checker = checker.lock().unwrap();
    assert!(checker.events_seen() > 0);
    checker.assert_ok();
}
