//! Seed stability across worker-thread counts and shard counts: for each
//! simulator shard count, the same workload and fault plan must replay to
//! a byte-identical JSONL trace whether the parallel kernels run on 1, 2,
//! or 8 threads.
//!
//! The pool's per-function model work — and, for `shards >= 2`, the
//! per-shard event loops — fans out through `aqua_sim::par_map_owned`,
//! which reads `AQUA_THREADS` per call: the only thing a thread-count
//! change may affect is wall clock, never a decision. Shard counts are
//! **not** compared to each other — each count is its own deterministic
//! model (per-shard RNG and fault streams; see `DESIGN.md`, "Sharded
//! execution"). Faults are active so the fault streams, retries, and
//! kills are covered by the guarantee too.
//!
//! The live control plane's thread-count sweep lives in
//! `tests/service_trace.rs`: the same `AQUA_THREADS` ∈ {1, 2, 8}
//! guarantee over a two-tenant service run, pinned to a golden trace.

use aquatope::faas::prelude::*;
use aquatope::faas::sim::WorkflowJob;
use aquatope::faas::types::ResourceConfig;
use aquatope::faas::FaultPlan;
use aquatope::pool::{AquatopePool, AquatopePoolConfig};
use aquatope::telemetry::{diff_jsonl, Telemetry};
use aquatope::workflows::apps;

/// Runs the faulted `ml_pipeline` workload under the AQUATOPE pool (the
/// code path that actually fans work out across threads) at the given
/// simulator shard count and returns the JSONL trace.
fn faulted_pool_trace(shards: usize) -> String {
    let mut registry = FunctionRegistry::new();
    let app = apps::ml_pipeline(&mut registry);
    let (tel, rec) = Telemetry::recording();
    let plan = FaultPlan::from_seed(
        77,
        FaultRates {
            boot_fail: 0.10,
            crash: 0.06,
            straggler: 0.12,
            handoff_delay: 0.08,
            ..FaultRates::default()
        },
    );
    let retry = RetryPolicy {
        task_timeout: Some(SimDuration::from_secs(30)),
        ..RetryPolicy::default()
    };
    let mut sim = FaasSim::builder()
        .workers(4, 40.0, 65_536)
        .registry(registry)
        .noise(NoiseModel::production())
        .seed(13)
        .faults(plan)
        .retry_policy(retry)
        .telemetry(tel.clone())
        .shards(shards)
        .build();
    let configs = StageConfigs::uniform(&app.dag, ResourceConfig::default());
    let arrivals: Vec<SimTime> = (1..=25u64).map(|i| SimTime::from_secs(i * 9)).collect();
    let job = WorkflowJob::new(app.dag.clone(), configs, arrivals);
    let cfg = AquatopePoolConfig {
        warmup_windows: 2, // exercise the model-driven (parallel) path
        ..AquatopePoolConfig::default()
    };
    let mut pool = AquatopePool::new(cfg, &[&app.dag]).with_telemetry(tel);
    sim.run(&[job], &mut pool, SimTime::from_secs(400));
    let jsonl = rec.lock().unwrap().to_jsonl();
    jsonl
}

/// One test (not a matrix of tests) because `AQUA_THREADS` is
/// process-global state: the settings must be applied sequentially, never
/// concurrently with another test's parallel region.
#[test]
fn faulted_trace_is_identical_across_thread_counts_per_shard_count() {
    // 4 workers in the cluster, so 4 shards still leaves one worker per
    // shard.
    for shards in [1usize, 2, 4] {
        let mut traces = Vec::new();
        for threads in ["1", "2", "8"] {
            // SAFETY: single-threaded at this point in the test; the env
            // var is read per par_map call, so setting it between runs is
            // safe.
            unsafe { std::env::set_var("AQUA_THREADS", threads) };
            traces.push((threads, faulted_pool_trace(shards)));
        }
        unsafe { std::env::remove_var("AQUA_THREADS") };
        let (_, base) = &traces[0];
        assert!(!base.is_empty(), "runs must emit events");
        assert!(
            base.contains("\"type\":\"fault_injected\""),
            "fault plan must actually fire for the guarantee to mean \
             anything (shards={shards})"
        );
        for (threads, trace) in &traces[1..] {
            assert_eq!(
                base, trace,
                "shards={shards} AQUA_THREADS={threads} diverged from the \
                 single-threaded trace"
            );
            assert!(diff_jsonl(base, trace).is_none());
        }
    }
}
