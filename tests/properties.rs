//! Cross-crate property-based tests: invariants that must hold for any
//! workload the generators can produce.

use aquatope::faas::prelude::*;
use aquatope::faas::types::ResourceConfig;
use aquatope::prelude::*;
use proptest::prelude::*;

fn run_chain(
    n_functions: usize,
    arrivals_secs: Vec<u64>,
    cpu: f64,
    mem: f64,
    seed: u64,
) -> (RunReport, usize) {
    let mut registry = FunctionRegistry::new();
    let fns: Vec<_> = (0..n_functions)
        .map(|i| {
            registry.register(
                FunctionSpec::new(format!("f{i}"))
                    .with_work_ms(50.0 + 40.0 * i as f64)
                    .with_cold_start(300.0, 200.0),
            )
        })
        .collect();
    let dag = WorkflowDag::chain("prop", fns);
    let configs = StageConfigs::uniform(&dag, ResourceConfig::new(cpu, mem, 1));
    let arrivals: Vec<SimTime> = arrivals_secs
        .iter()
        .map(|s| SimTime::from_secs(*s))
        .collect();
    let n = arrivals.len();
    let mut sim = FaasSim::builder()
        .workers(3, 40.0, 65_536)
        .registry(registry)
        .noise(NoiseModel::production())
        .seed(seed)
        .build();
    let horizon = SimTime::from_secs(arrivals_secs.iter().max().copied().unwrap_or(0) + 600);
    (
        sim.run_workflow_trace(&dag, &configs, &arrivals, horizon),
        n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every arrival is accounted for: completed + unfinished = arrived,
    /// and each completed instance ran exactly `stages` invocations.
    #[test]
    fn prop_invocation_conservation(
        n_functions in 1usize..4,
        arrivals in prop::collection::vec(0u64..600, 1..25),
        seed in 0u64..100,
    ) {
        let (report, n) = run_chain(n_functions, arrivals, 1.0, 1024.0, seed);
        prop_assert_eq!(report.workflows.len() + report.unfinished, n);
        for wf in &report.workflows {
            prop_assert_eq!(wf.invocations as usize, n_functions);
        }
        let done_invocations: usize = report.workflows.iter().map(|w| w.invocations as usize).sum();
        prop_assert!(report.invocations.len() >= done_invocations);
    }

    /// Resource-time integrals and billed costs are non-negative, and the
    /// provisioned-memory integral dominates the busy-memory integral.
    #[test]
    fn prop_resource_accounting_sane(
        arrivals in prop::collection::vec(0u64..400, 1..20),
        cpu in 0.25f64..4.0,
        seed in 0u64..100,
    ) {
        let cpu = (cpu * 4.0).round() / 4.0;
        let (report, _) = run_chain(2, arrivals, cpu, 1024.0, seed);
        prop_assert!(report.cpu_core_seconds >= 0.0);
        prop_assert!(report.memory_gb_seconds >= 0.0);
        prop_assert!(
            report.memory_gb_seconds + 1e-9 >= report.busy_memory_gb_seconds,
            "reserved {} < busy {}",
            report.memory_gb_seconds,
            report.busy_memory_gb_seconds
        );
        prop_assert!(report.execution_cost(1.0, 1.0) >= 0.0);
        for r in &report.invocations {
            prop_assert!(r.finished >= r.started);
            prop_assert!(r.started >= r.requested);
            prop_assert!(r.cpu_seconds >= 0.0 && r.memory_gb_seconds >= 0.0);
        }
    }

    /// Workflow latency is bounded below by any of its invocations' spans
    /// and every completed workflow finishes after it arrives.
    #[test]
    fn prop_latency_ordering(
        arrivals in prop::collection::vec(0u64..300, 1..15),
        seed in 0u64..100,
    ) {
        let (report, _) = run_chain(3, arrivals, 2.0, 1024.0, seed);
        for wf in &report.workflows {
            prop_assert!(wf.finished >= wf.arrived);
            let members: Vec<_> = report
                .invocations
                .iter()
                .filter(|r| r.workflow_instance == wf.instance)
                .collect();
            for m in &members {
                prop_assert!(m.requested >= wf.arrived);
                prop_assert!(m.finished <= wf.finished);
            }
        }
    }

    /// More CPU never makes the deterministic warm path slower.
    #[test]
    fn prop_cpu_monotone_latency(seed in 0u64..50) {
        let profile = |cpu: f64| {
            let mut registry = FunctionRegistry::new();
            let f = registry.register(
                FunctionSpec::new("m")
                    .with_work_ms(400.0)
                    .with_parallelism(4.0)
                    .with_exec_cv(0.0),
            );
            let dag = WorkflowDag::chain("m", vec![f]);
            let configs = StageConfigs::uniform(&dag, ResourceConfig::new(cpu, 1024.0, 1));
            let mut sim = FaasSim::builder()
                .workers(2, 40.0, 65_536)
                .registry(registry)
                .noise(NoiseModel::quiet())
                .seed(seed)
                .build();
            let raw = sim.profile_config(&dag, &configs, 2, true, 1.0, 1.0);
            raw.iter().map(|s| s.0).sum::<f64>() / raw.len() as f64
        };
        let slow = profile(0.5);
        let fast = profile(2.0);
        prop_assert!(fast <= slow + 1e-9, "2 CPU ({fast}) slower than 0.5 CPU ({slow})");
    }

    /// Trace generation: arrivals are sorted and land within the horizon.
    #[test]
    fn prop_trace_sorted_in_horizon(minutes in 5usize..120, rpm in 0.5f64..30.0, seed in 0u64..500) {
        use aquatope::workflows::RateTraceConfig;
        let mut rng = SimRng::seed(seed);
        let bundle = RateTraceConfig { minutes, mean_rpm: rpm, ..RateTraceConfig::default() }
            .generate(&mut rng);
        prop_assert!(bundle.arrivals.windows(2).all(|w| w[0] <= w[1]));
        let horizon = SimTime::from_secs(60 * minutes as u64);
        prop_assert!(bundle.arrivals.iter().all(|t| *t < horizon));
        prop_assert_eq!(bundle.rates.len(), minutes);
    }

    /// GP posterior variance is non-negative everywhere and the posterior
    /// mean interpolates near-noiseless observations.
    #[test]
    fn prop_gp_posterior_sane(
        ys in prop::collection::vec(-5.0f64..5.0, 4..12),
        q in 0.0f64..1.0,
    ) {
        use aquatope::gp::{Gp, GpConfig};
        let xs: Vec<Vec<f64>> = (0..ys.len())
            .map(|i| vec![i as f64 / (ys.len() - 1) as f64])
            .collect();
        let gp = Gp::fit(xs.clone(), ys.clone(), GpConfig::with_noise(1e-6)).unwrap();
        let (_, var) = gp.predict(&[q]);
        prop_assert!(var >= 0.0);
        // Interpolation at a training point (unless targets are degenerate).
        let spread = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - ys.iter().cloned().fold(f64::INFINITY, f64::min);
        if spread > 0.5 {
            let (mean, _) = gp.predict(&xs[0]);
            prop_assert!((mean - ys[0]).abs() < 0.35 * spread.max(1.0), "mean {mean} y0 {}", ys[0]);
        }
    }
}
