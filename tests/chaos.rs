//! Chaos / property test harness for the deterministic fault-injection
//! layer: randomized DAGs × arrival traces × fault plans × seeds, with the
//! online invariant checker riding along every run.
//!
//! Also holds the faulted golden trace (`tests/golden/ml_pipeline_faulted
//! .jsonl` — regenerate with `BLESS=1 cargo test --test chaos`), the
//! strict no-op check (an all-zero fault plan must not move a single
//! byte of the fault-free trace), differential same-seed replays, and the
//! `incremental_refit` on/off equivalence under faults.

use std::sync::{Arc, Mutex};

use aquatope::alloc::{AquatopeRm, AquatopeRmConfig, ResourceManager, SimEvaluator};
use aquatope::faas::prelude::*;
use aquatope::faas::types::{ConfigSpace, ResourceConfig};
use aquatope::telemetry::{diff_jsonl, Fanout, InvariantChecker, Recorder, Telemetry};
use aquatope::workflows::apps;
use proptest::prelude::*;

const WORKERS: usize = 3;
const MEM_MB: u64 = 32_768;

/// Registers three moderately sized functions shared by all random DAGs.
fn registry3() -> (FunctionRegistry, Vec<FunctionId>) {
    let mut registry = FunctionRegistry::new();
    let fns = (0..3)
        .map(|i| {
            registry.register(
                FunctionSpec::new(format!("f{i}"))
                    .with_work_ms(120.0 + 60.0 * i as f64)
                    .with_io_ms(20.0)
                    .with_mem_demand(512.0)
                    .with_cold_start(400.0, 200.0),
            )
        })
        .collect();
    (registry, fns)
}

/// Decodes one of three DAG shapes from the fuzzed selector.
fn random_dag(shape: u8, width: u32, fns: &[FunctionId]) -> WorkflowDag {
    match shape % 3 {
        0 => WorkflowDag::chain("chaos-chain", fns.to_vec()),
        1 => WorkflowDag::fan_out_in("chaos-fan", fns[0], fns[1], width, fns[2]),
        _ => WorkflowDag::new(
            "chaos-diamond",
            vec![
                Stage::new(fns[0], 1, vec![]),
                Stage::new(fns[1], 2, vec![0]),
                Stage::new(fns[2], 1, vec![0]),
                Stage::new(fns[0], 1, vec![1, 2]),
            ],
        ),
    }
}

struct ChaosCase {
    shape: u8,
    width: u32,
    arrivals: usize,
    gap_secs: u64,
    sim_seed: u64,
    plan: FaultPlan,
    retry: RetryPolicy,
}

/// Runs one randomized case with recorder + invariant checker attached and
/// returns `(trace, report, checker, arrivals_in_horizon, horizon)`.
fn run_case(case: &ChaosCase) -> (String, RunReport, Arc<Mutex<InvariantChecker>>, usize) {
    let (registry, fns) = registry3();
    let dag = random_dag(case.shape, case.width, &fns);
    let rec = Arc::new(Mutex::new(Recorder::unbounded()));
    let checker = Arc::new(Mutex::new(InvariantChecker::new(WORKERS, MEM_MB as f64)));
    let tel = Telemetry::new(Arc::new(Mutex::new(Fanout::new(vec![
        rec.clone() as aquatope::telemetry::SharedSink,
        checker.clone() as aquatope::telemetry::SharedSink,
    ]))));
    let mut sim = FaasSim::builder()
        .workers(WORKERS, 24.0, MEM_MB)
        .registry(registry)
        .noise(NoiseModel::production())
        .seed(case.sim_seed)
        .faults(case.plan.clone())
        .retry_policy(case.retry.clone())
        .telemetry(tel)
        .build();
    let configs = StageConfigs::uniform(&dag, ResourceConfig::default());
    let arrivals: Vec<SimTime> = (1..=case.arrivals as u64)
        .map(|i| SimTime::from_secs(i * case.gap_secs))
        .collect();
    let horizon = *arrivals.last().unwrap() + SimDuration::from_secs(180);
    let in_horizon = arrivals.iter().filter(|t| **t <= horizon).count();
    let report = sim.run_workflow_trace(&dag, &configs, &arrivals, horizon);
    let trace = rec.lock().unwrap().to_jsonl();
    (trace, report, checker, in_horizon)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The conservation law under arbitrary fault plans: every arrival
    /// within the horizon either completes or is counted unfinished
    /// (rejections are a subset of the latter); no latency is NaN, no
    /// resource integral goes negative, and the full event-stream
    /// invariant suite holds.
    #[test]
    fn prop_chaos_conservation(
        shape in 0u8..3,
        width in 2u32..5,
        arrivals in 1usize..12,
        gap_secs in 3u64..25,
        sim_seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
        boot_fail in 0.0f64..0.35,
        crash in 0.0f64..0.30,
        straggler in 0.0f64..0.40,
        handoff in 0.0f64..0.30,
        timeout_sel in 0u8..2,
    ) {
        let with_timeout = timeout_sel == 1;
        let plan = FaultPlan::from_seed(fault_seed, FaultRates {
            boot_fail,
            crash,
            straggler,
            handoff_delay: handoff,
            ..FaultRates::default()
        });
        let retry = RetryPolicy {
            task_timeout: if with_timeout {
                Some(SimDuration::from_secs(20))
            } else {
                None
            },
            ..RetryPolicy::default()
        };
        let case = ChaosCase { shape, width, arrivals, gap_secs, sim_seed, plan, retry };
        let (trace, report, checker, in_horizon) = run_case(&case);

        prop_assert!(!trace.is_empty(), "a run must emit events");
        prop_assert_eq!(
            report.workflows.len() + report.unfinished,
            in_horizon,
            "arrivals lost: {} completed + {} unfinished for {} arrivals",
            report.workflows.len(), report.unfinished, in_horizon
        );
        prop_assert!(
            report.rejected <= report.unfinished,
            "rejected {} exceeds unfinished {}",
            report.rejected, report.unfinished
        );
        for wf in &report.workflows {
            let lat = wf.latency().as_secs_f64();
            prop_assert!(lat.is_finite() && lat >= 0.0, "workflow latency {lat}");
        }
        for inv in &report.invocations {
            let lat = inv.latency().as_secs_f64();
            prop_assert!(lat.is_finite() && lat >= 0.0, "invocation latency {lat}");
            prop_assert!(inv.cpu_seconds >= 0.0, "negative cpu {}", inv.cpu_seconds);
            prop_assert!(
                inv.memory_gb_seconds >= 0.0,
                "negative memory {}", inv.memory_gb_seconds
            );
        }
        prop_assert!(report.cpu_core_seconds >= 0.0);
        prop_assert!(report.memory_gb_seconds >= 0.0);
        prop_assert!(report.busy_memory_gb_seconds >= 0.0);

        let checker = checker.lock().unwrap();
        prop_assert!(checker.events_seen() > 0);
        prop_assert!(
            checker.is_ok(),
            "invariant violations: {:?}",
            checker.violations()
        );
    }

    /// Same workload + same fault plan + same seeds ⇒ byte-identical
    /// traces, for any fault mix.
    #[test]
    fn prop_same_seed_faulted_runs_are_byte_identical(
        shape in 0u8..3,
        sim_seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
        crash in 0.0f64..0.3,
        straggler in 0.0f64..0.4,
    ) {
        let plan = FaultPlan::from_seed(fault_seed, FaultRates {
            boot_fail: 0.1,
            crash,
            straggler,
            ..FaultRates::default()
        });
        let case = ChaosCase {
            shape,
            width: 3,
            arrivals: 6,
            gap_secs: 11,
            sim_seed,
            plan,
            retry: RetryPolicy::default(),
        };
        let (a, ra, _, _) = run_case(&case);
        let (b, rb, _, _) = run_case(&case);
        prop_assert_eq!(&a, &b, "same-seed faulted replay diverged");
        prop_assert!(diff_jsonl(&a, &b).is_none());
        prop_assert_eq!(ra.workflows.len(), rb.workflows.len());
        prop_assert_eq!(ra.rejected, rb.rejected);
    }
}

/// Replays the `ml_pipeline` golden-trace workload (same cluster, seed,
/// and arrivals as `telemetry_trace::trace_app`) with `plan` attached.
fn trace_ml_pipeline(plan: FaultPlan, retry: RetryPolicy) -> String {
    let mut registry = FunctionRegistry::new();
    let app = apps::ml_pipeline(&mut registry);
    let (tel, rec) = Telemetry::recording();
    let mut sim = FaasSim::builder()
        .workers(4, 40.0, 65_536)
        .registry(registry)
        .noise(NoiseModel::production())
        .seed(7)
        .faults(plan)
        .retry_policy(retry)
        .telemetry(tel)
        .build();
    let configs = StageConfigs::uniform(&app.dag, ResourceConfig::default());
    let arrivals: Vec<SimTime> = (1..=30u64).map(|i| SimTime::from_secs(i * 7)).collect();
    sim.run_workflow_trace(&app.dag, &configs, &arrivals, SimTime::from_secs(400));
    let jsonl = rec.lock().unwrap().to_jsonl();
    jsonl
}

/// A fault plan with every probability at zero is a strict no-op: the
/// trace must be byte-identical to the checked-in fault-free golden.
#[test]
fn zero_rate_plan_reproduces_fault_free_golden() {
    // A non-zero plan seed proves the seed alone changes nothing.
    let jsonl = trace_ml_pipeline(
        FaultPlan::from_seed(987_654_321, FaultRates::default()),
        RetryPolicy::default(),
    );
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/ml_pipeline.jsonl");
    let golden = std::fs::read_to_string(&path).expect("fault-free golden trace must exist");
    assert_eq!(
        golden, jsonl,
        "an all-zero fault plan must not perturb the fault-free trace"
    );
}

fn check_golden(name: &str, jsonl: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var("BLESS").ok().as_deref() == Some("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, jsonl).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden trace {}: {e}\nregenerate with: BLESS=1 cargo test --test chaos",
            path.display()
        )
    });
    if let Some(d) = diff_jsonl(&golden, jsonl) {
        panic!(
            "faulted trace diverged from {}: {d}\nif the change is intentional, re-bless with: \
             BLESS=1 cargo test --test chaos",
            path.display()
        );
    }
    assert_eq!(golden, jsonl, "structurally equal but not byte-identical");
}

/// Golden JSONL trace for a faulted `ml_pipeline` run: boot failures,
/// crashes, stragglers, and handoff delays all active, with retries and a
/// per-stage timeout.
#[test]
fn golden_trace_ml_pipeline_faulted() {
    let plan = FaultPlan::from_seed(
        42,
        FaultRates {
            boot_fail: 0.12,
            crash: 0.08,
            straggler: 0.15,
            handoff_delay: 0.10,
            ..FaultRates::default()
        },
    );
    let retry = RetryPolicy {
        task_timeout: Some(SimDuration::from_secs(25)),
        ..RetryPolicy::default()
    };
    let jsonl = trace_ml_pipeline(plan, retry);
    assert!(
        jsonl.contains("\"type\":\"fault_injected\""),
        "faulted run must actually inject faults"
    );
    check_golden("ml_pipeline_faulted.jsonl", &jsonl);
}

/// The testkit's two-stage chain (same spec as
/// `aqua_alloc::testkit::tiny_problem`) with a fault plan attached:
/// returns `(simulator, dag, qos_secs)`.
fn tiny_faulted_problem(seed: u64, plan: FaultPlan) -> (FaasSim, WorkflowDag, f64) {
    let mut registry = FunctionRegistry::new();
    let a = registry.register(
        FunctionSpec::new("stage-a")
            .with_work_ms(300.0)
            .with_io_ms(20.0)
            .with_mem_demand(768.0)
            .with_parallelism(2.0)
            .with_cold_start(500.0, 300.0)
            .with_exec_cv(0.03),
    );
    let b = registry.register(
        FunctionSpec::new("stage-b")
            .with_work_ms(200.0)
            .with_io_ms(20.0)
            .with_mem_demand(512.0)
            .with_parallelism(2.0)
            .with_cold_start(500.0, 300.0)
            .with_exec_cv(0.03),
    );
    let dag = WorkflowDag::chain("tiny", vec![a, b]);
    let sim = FaasSim::builder()
        .workers(4, 40.0, 131_072)
        .registry(registry)
        .noise(NoiseModel::quiet())
        .seed(seed)
        .faults(plan)
        .build();
    (sim, dag, 0.8)
}

/// A straggler-corrupted profiling evaluator over the tiny problem.
fn faulted_tiny_evaluator(seed: u64, plan: FaultPlan) -> (SimEvaluator, f64) {
    let (sim, dag, qos) = tiny_faulted_problem(seed, plan);
    (
        SimEvaluator::new(sim, dag, ConfigSpace::default(), 3, true),
        qos,
    )
}

/// `incremental_refit` on/off must walk the exact same search under
/// faults: identical evaluation histories and identical final picks.
/// `refit_every: 1` makes the rank-1 extend path re-select
/// hyperparameters on every append, which is bitwise-equal to the
/// from-scratch fit (see `gp::extend_with_refit_matches_fit_bitwise`).
#[test]
fn incremental_refit_equivalent_under_faults() {
    let plan = FaultPlan::from_seed(
        5,
        FaultRates {
            straggler: 0.2,
            straggler_factor: 5.0,
            ..FaultRates::default()
        },
    );
    let run = |incremental: bool| {
        let (mut eval, qos) = faulted_tiny_evaluator(3, plan.clone());
        let mut rm = AquatopeRm::with_config(
            17,
            AquatopeRmConfig {
                incremental_refit: incremental,
                refit_every: 1,
                ..AquatopeRmConfig::default()
            },
        );
        rm.optimize(&mut eval, qos, 24)
    };
    let slow = run(false);
    let fast = run(true);
    assert_eq!(
        slow.history.len(),
        fast.history.len(),
        "same budget must spend the same evaluations"
    );
    for (i, (s, f)) in slow.history.iter().zip(&fast.history).enumerate() {
        assert_eq!(s.u, f.u, "evaluation {i} diverged in candidate");
        assert_eq!(s.latency, f.latency, "evaluation {i} diverged in latency");
        assert_eq!(s.cost, f.cost, "evaluation {i} diverged in cost");
    }
    let pick = |o: &aquatope::alloc::SearchOutcome| o.best.clone().map(|(c, _, _)| c);
    assert_eq!(
        pick(&slow),
        pick(&fast),
        "incremental refit changed the final configuration under faults"
    );
}

/// End-to-end anomaly-pruning benefit: profile through a simulator whose
/// fault layer injects stragglers, so a fraction of the BO's observations
/// are corrupted with heavy-tailed latency outliers. The noise-aware
/// search (diagnostic-GP anomaly pruning + margin-gated final pick) must
/// choose a configuration whose *true* (fault-free) tail latency is no
/// worse than the AquaLite ablation that trusts every sample, on the same
/// seeds.
#[test]
fn straggler_pruning_beats_ablation_on_clean_p99() {
    let plan = FaultPlan::from_seed(
        31,
        FaultRates {
            straggler: 0.15,
            straggler_factor: 3.0,
            ..FaultRates::default()
        },
    );
    let budget = 30;
    let (mut eval_pruned, qos) = faulted_tiny_evaluator(3, plan.clone());
    let (mut eval_plain, _) = faulted_tiny_evaluator(3, plan);
    let mut pruned = AquatopeRm::with_config(17, AquatopeRmConfig::default());
    let mut plain = AquatopeRm::aqualite(17);
    let best_pruned = pruned
        .optimize(&mut eval_pruned, qos, budget)
        .best
        .expect("noise-aware search must find a feasible config");
    let best_plain = plain
        .optimize(&mut eval_plain, qos, budget)
        .best
        .expect("ablation must find a feasible config");

    // Replay both picks on a fault-free simulator and compare true tails.
    let clean_p99 = |configs: &StageConfigs| {
        let (mut sim, dag, _) = tiny_faulted_problem(1, FaultPlan::disabled());
        let raw = sim.profile_config(&dag, configs, 16, true, 1.0, 1.0);
        let lats: Vec<f64> = raw.iter().map(|s| s.0).collect();
        aquatope::linalg::quantile(&lats, 0.99)
    };
    let p99_pruned = clean_p99(&best_pruned.0);
    let p99_plain = clean_p99(&best_plain.0);
    assert!(
        p99_pruned < p99_plain,
        "pruning must win on true tail latency: pruned P99 {p99_pruned:.3}s vs \
         ablation P99 {p99_plain:.3}s (QoS {qos}s)"
    );
    assert!(
        p99_pruned <= qos,
        "the pruned pick must actually meet QoS on the clean cluster: {p99_pruned:.3}s"
    );
}
