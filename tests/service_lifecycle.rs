//! Lifecycle tests for the control-plane service: graceful shutdown
//! drains in-flight work (with and without predictive rejection in the
//! admission path), the filler task replenishes under injected boot
//! failures while respecting the boot semaphore, a zero-rate fault plan
//! is a strict no-op on service behavior, and a zero-budget predictive
//! config is bit-identical to a plane without the feature.

use aquatope::faas::{
    FaultPlan, FaultRates, FunctionRegistry, FunctionSpec, QosClass, ResourceConfig, StageConfigs,
    TenantId, TenantPlan, WorkflowDag, WorkflowJob,
};
use aquatope::pool::{HistogramPolicy, ReactiveAutoscale};
use aquatope::service::{
    ControlPlane, PredictiveConfig, ServiceConfig, ServiceReport, WarmPoolConfig,
};
use aquatope::sim::{SimDuration, SimTime};

/// `apps` single-stage jobs, each with `n` arrivals spread over ~n/2 s.
fn workload(apps: usize, n: usize) -> (FunctionRegistry, Vec<WorkflowJob>) {
    let mut reg = FunctionRegistry::new();
    let mut jobs = Vec::new();
    for a in 0..apps {
        let f = reg.register(FunctionSpec::new(format!("fn{a}")).with_work_ms(60.0));
        let dag = WorkflowDag::chain(format!("app{a}"), vec![f]);
        let configs = StageConfigs::uniform(&dag, ResourceConfig::default());
        let arrivals = (0..n)
            .map(|i| SimTime::from_millis(500 * i as u64 + 100 + 53 * a as u64))
            .collect();
        jobs.push(WorkflowJob {
            dag,
            configs,
            arrivals,
        });
    }
    (reg, jobs)
}

fn run_with(faults: &FaultPlan, cfg: ServiceConfig) -> ServiceReport {
    let (reg, jobs) = workload(4, 30);
    ControlPlane::new(reg, jobs, Box::new(HistogramPolicy::default()), faults, cfg).run()
}

fn short_cfg() -> ServiceConfig {
    ServiceConfig {
        run_for: SimDuration::from_secs(30),
        ..ServiceConfig::default()
    }
}

#[test]
fn shutdown_drains_all_inflight_work() {
    // Shutdown fires at 30 s; arrivals continue to ~15 s, so plenty of
    // work is in flight when the horizon is reached on slower settings.
    // Every admitted instance must resolve (complete or abort) and the
    // container ledger must read zero.
    let report = run_with(&FaultPlan::disabled(), short_cfg());
    assert_eq!(report.completed, 120, "all admitted workflows finished");
    assert_eq!(report.stranded_instances, 0, "drain left no open instances");
    assert_eq!(
        report.live_containers_at_exit, 0,
        "graceful shutdown leaves zero orphaned containers"
    );
    assert_eq!(
        report.admission.admitted, report.admission.finished,
        "every admission was balanced by a finish"
    );
    assert_eq!(report.runtime.boots, report.runtime.kills);
}

#[test]
fn shutdown_mid_burst_still_drains() {
    // Cut the horizon into the middle of the arrival trace: later
    // arrivals are skipped, but everything admitted before the cut
    // drains to completion.
    let cfg = ServiceConfig {
        run_for: SimDuration::from_secs(5),
        ..ServiceConfig::default()
    };
    let report = run_with(&FaultPlan::disabled(), cfg);
    assert!(report.arrivals_skipped_in_drain > 0, "cut lands mid-trace");
    assert!(report.completed > 0);
    assert_eq!(report.stranded_instances, 0);
    assert_eq!(report.live_containers_at_exit, 0);
    assert_eq!(report.admission.admitted, report.admission.finished);
}

#[test]
fn filler_replenishes_under_injected_boot_failures() {
    // A third of boots fail. The pool's replacement path (failure →
    // freed memory → replacement demand boot for uncovered waiters) and
    // the filler's target-chasing must still finish every workflow.
    let plan = FaultPlan::from_seed(
        11,
        FaultRates {
            boot_fail: 0.33,
            ..FaultRates::default()
        },
    );
    let report = run_with(&plan, short_cfg());
    assert!(
        report.pool.boot_failures > 0,
        "the fault plan must actually fire"
    );
    assert_eq!(
        report.completed, 120,
        "boot failures delay but never strand workflows"
    );
    assert_eq!(report.stranded_instances, 0);
    assert_eq!(report.live_containers_at_exit, 0);
    assert_eq!(
        report.runtime.boots, report.runtime.kills,
        "every booted container (failed ones included) was reaped"
    );
}

#[test]
fn filler_respects_the_boot_semaphore_under_failures() {
    // A 2-wide boot semaphore against an eager autoscale policy: the
    // filler must defer pre-warm boots rather than exceed the width, and
    // the deferral counter must show it happened.
    let plan = FaultPlan::from_seed(
        7,
        FaultRates {
            boot_fail: 0.25,
            ..FaultRates::default()
        },
    );
    let (reg, jobs) = workload(6, 20);
    let cfg = ServiceConfig {
        pool: WarmPoolConfig {
            max_concurrent_boots: 2,
            min_idle: 2,
            ..WarmPoolConfig::default()
        },
        run_for: SimDuration::from_secs(30),
        ..ServiceConfig::default()
    };
    let report = ControlPlane::new(
        reg,
        jobs,
        Box::new(ReactiveAutoscale::default()),
        &plan,
        cfg,
    )
    .run();
    assert!(
        report.pool.semaphore_deferrals > 0,
        "a 2-wide semaphore against 6 eager functions must defer"
    );
    assert!(report.pool.prewarm_boots > 0, "the filler did boot");
    assert_eq!(report.completed, 120);
    assert_eq!(report.live_containers_at_exit, 0);
}

/// A deliberately overloaded plane: a 400 ms body fed every 100 ms
/// against a one-container memory budget, with the latency model
/// sampling every completion so a nonzero-budget predictive veto engages
/// mid-run. `plan` optionally installs tenancy (a finite SLO is what
/// arms the veto); `None` runs the untenanted plane.
fn congested_run(predictive: PredictiveConfig, plan: Option<TenantPlan>) -> ServiceReport {
    let mut reg = FunctionRegistry::new();
    let f = reg.register(FunctionSpec::new("hot").with_work_ms(400.0));
    let dag = WorkflowDag::chain("hot-app", vec![f]);
    let configs = StageConfigs::uniform(&dag, ResourceConfig::default());
    let jobs = vec![WorkflowJob {
        dag,
        configs,
        arrivals: (0..60)
            .map(|i| SimTime::from_millis(100 * (i as u64 + 1)))
            .collect(),
    }];
    let cfg = ServiceConfig {
        pool: WarmPoolConfig {
            memory_budget_mb: ResourceConfig::default().memory_mb,
            ..WarmPoolConfig::default()
        },
        model_sample_every: 1,
        refit_interval: SimDuration::from_secs(2),
        predictive,
        run_for: SimDuration::from_secs(60),
        ..ServiceConfig::default()
    };
    let plane = ControlPlane::new(
        reg,
        jobs,
        Box::new(ReactiveAutoscale::default()),
        &FaultPlan::disabled(),
        cfg,
    );
    match plan {
        Some(p) => plane.with_tenants(p),
        None => plane,
    }
    .run()
}

/// One tenant under a 1 s SLO with caps roomy enough that depth shedding
/// never depends on them (the global queue cap binds first, exactly as
/// on the untenanted plane) and no memory share — so the *only* behavior
/// the plan can introduce is the predictive veto.
fn slo_plan() -> TenantPlan {
    TenantPlan {
        classes: vec![QosClass::new(SimDuration::from_secs(1), 100_000, 2048, 0.0)],
        job_tenants: vec![TenantId(0)],
    }
}

#[test]
fn shutdown_drains_completely_with_predictive_rejection_active() {
    // Predictive rejection removes arrivals *before* admission; the drain
    // guarantee must be unchanged: every admitted instance resolves, the
    // ledger balances arrival-for-arrival, and no container survives.
    let report = congested_run(PredictiveConfig::enabled(u32::MAX, 1.0), Some(slo_plan()));
    assert!(
        report.admission.predictive_rejects > 0,
        "the veto must actually fire for this test to mean anything"
    );
    assert_eq!(
        report.admission.arrivals(),
        60,
        "rejects stay on the ledger"
    );
    assert_eq!(
        report.admission.admitted, report.admission.finished,
        "every admission was balanced by a finish despite mid-run vetoes"
    );
    assert_eq!(report.stranded_instances, 0);
    assert_eq!(report.live_containers_at_exit, 0);
    assert_eq!(report.runtime.boots, report.runtime.kills);
}

#[test]
fn zero_prediction_budget_is_bit_identical_to_a_plane_without_it() {
    // checks_per_window = 0 must make the feature indistinguishable from
    // not existing — even with a finite SLO, an aggressive k·σ, and real
    // congestion that triggers vetoes under any nonzero budget — and the
    // same congested workload must diverge once the budget is nonzero,
    // proving the budget was the only gate.
    let off = congested_run(PredictiveConfig::enabled(0, 5.0), Some(slo_plan()));
    let plain = congested_run(PredictiveConfig::default(), None);
    assert_eq!(off.admission.predictive_rejects, 0);
    assert_eq!(off.completed, plain.completed);
    assert_eq!(off.events_processed, plain.events_processed);
    assert_eq!(off.latency, plain.latency);
    assert_eq!(off.pool, plain.pool);
    assert_eq!(off.runtime, plain.runtime);
    assert_eq!(off.admission, plain.admission);
    let on = congested_run(PredictiveConfig::enabled(u32::MAX, 1.0), Some(slo_plan()));
    assert!(
        on.admission.predictive_rejects > 0,
        "budget was the only gate"
    );
    assert_ne!(on.admission, plain.admission);
}

#[test]
fn zero_rate_fault_plan_is_a_noop() {
    // A zero-rate plan must be indistinguishable from FaultPlan::disabled()
    // in every deterministic counter (wall-clock fields are excluded by
    // comparing the service report, which has none).
    let zero = FaultPlan::from_seed(99, FaultRates::default());
    let a = run_with(&FaultPlan::disabled(), short_cfg());
    let b = run_with(&zero, short_cfg());
    assert_eq!(a.pool.boot_failures, 0);
    assert_eq!(b.pool.boot_failures, 0);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.pool, b.pool);
    assert_eq!(a.runtime, b.runtime);
    assert_eq!(a.admission, b.admission);
}
