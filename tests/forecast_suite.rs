//! Trait-level contract tests over every invocation predictor: uniform
//! checks that each model upholds the `Predictor` interface on the same
//! Azure-like series.

use aquatope::forecast::{
    smape_eval, Arima, FourierPredictor, HoltWinters, HybridBayesian, HybridConfig, NaiveLast,
    Predictor, SeriesPoint, Theta, TriggerKind, VanillaLstm,
};
use aquatope::prelude::*;
use aquatope::workflows::RateTraceConfig;

fn azure_series(minutes: usize, seed: u64) -> Vec<SeriesPoint> {
    let mut rng = SimRng::seed(seed);
    let counts = RateTraceConfig {
        minutes,
        mean_rpm: 30.0,
        ..RateTraceConfig::default()
    }
    .generate(&mut rng)
    .counts_per_minute();
    counts
        .iter()
        .enumerate()
        .map(|(i, &c)| SeriesPoint::new(c, i as u64, TriggerKind::Http))
        .collect()
}

fn all_models() -> Vec<Box<dyn Predictor>> {
    vec![
        Box::new(NaiveLast::new()),
        Box::new(Arima::new(8, 1)),
        Box::new(HoltWinters::new(0.5, 0.2)),
        Box::new(Theta::new(0.4)),
        Box::new(FourierPredictor::new(6, 128)),
        Box::new(VanillaLstm::with_seed(16, 1, 3)),
        Box::new(HybridBayesian::new(HybridConfig {
            window: 16,
            horizon: 2,
            enc_hidden: vec![8],
            dec_hidden: vec![6],
            mlp_hidden: vec![12, 8],
            dropout: 0.1,
            pretrain_epochs: 1,
            train_epochs: 2,
            mc_passes: 8,
            seed: 5,
        })),
    ]
}

#[test]
fn every_model_produces_finite_nonnegative_forecasts() {
    let series = azure_series(300, 1);
    for mut model in all_models() {
        model.fit(&series[..240]);
        for t in [240usize, 260, 299] {
            let f = model.forecast(&series[..t]);
            assert!(
                f.mean.is_finite() && f.mean >= 0.0,
                "{}: mean {} at t={t}",
                model.name(),
                f.mean
            );
            assert!(
                f.std.is_finite() && f.std >= 0.0,
                "{}: std {} at t={t}",
                model.name(),
                f.std
            );
        }
    }
}

#[test]
fn every_model_beats_trivial_zero_forecast() {
    // SMAPE of a zero forecast on a nonzero series is 2.0 (the metric's
    // maximum); any sane model must do better.
    let series = azure_series(300, 2);
    for mut model in all_models() {
        let report = smape_eval(model.as_mut(), &series, 240);
        assert!(
            report.smape < 1.0,
            "{}: SMAPE {:.2} worse than sanity bound",
            report.model,
            report.smape
        );
    }
}

#[test]
fn min_history_is_honored_by_eval() {
    // smape_eval must never call forecast with fewer points than declared.
    let series = azure_series(200, 3);
    let mut arima = Arima::new(12, 1);
    assert!(arima.min_history() > 1);
    let report = smape_eval(&mut arima, &series, 150);
    assert_eq!(report.steps, 50);
}

#[test]
fn bayesian_model_reports_uncertainty_others_report_spread() {
    let series = azure_series(240, 4);
    let mut hybrid = HybridBayesian::new(HybridConfig {
        window: 16,
        horizon: 2,
        enc_hidden: vec![8],
        dec_hidden: vec![6],
        mlp_hidden: vec![12, 8],
        dropout: 0.2,
        pretrain_epochs: 1,
        train_epochs: 2,
        mc_passes: 10,
        seed: 6,
    });
    hybrid.fit(&series[..200]);
    let f = hybrid.forecast(&series[..200]);
    assert!(f.std > 0.0, "MC dropout must yield predictive spread");

    // Residual-based deterministic models also report a fitted spread.
    let mut arima = Arima::new(8, 1);
    arima.fit(&series[..200]);
    assert!(arima.forecast(&series[..200]).std > 0.0);
}

#[test]
fn naive_model_is_exactly_last_value() {
    let series = azure_series(100, 7);
    let mut naive = NaiveLast::new();
    naive.fit(&series[..50]);
    for t in [50usize, 80, 99] {
        assert_eq!(naive.forecast(&series[..t]).mean, series[t - 1].count);
    }
}
