//! Property-based tests for the numerical kernels (Cholesky) and the
//! histogram keep-alive policy's edge cases.

use aquatope::faas::cluster::ClusterSnapshot;
use aquatope::faas::sim::FnWindowStats;
use aquatope::faas::{FunctionId, PoolObservation, PrewarmController};
use aquatope::linalg::{Cholesky, Matrix};
use aquatope::pool::HistogramPolicy;
use aquatope::prelude::*;
use proptest::prelude::*;

/// Builds a symmetric positive-definite matrix A = B·Bᵀ + εI from free
/// entries, so any generated `data` yields a valid Cholesky input.
fn spd_from(data: &[f64], n: usize, ridge: f64) -> Matrix {
    let b = Matrix::from_fn(n, n, |i, j| data[i * n + j]);
    let mut a = b.matmul(&b.transpose());
    a.add_diagonal(ridge);
    a
}

fn max_abs_diff(a: &Matrix, b: &Matrix) -> f64 {
    let mut worst = 0.0_f64;
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            worst = worst.max((a[(i, j)] - b[(i, j)]).abs());
        }
    }
    worst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The factor reproduces its input: L·Lᵀ ≈ A for any SPD matrix.
    #[test]
    fn prop_cholesky_factor_roundtrip(
        n in 1usize..6,
        data in prop::collection::vec(-2.0f64..2.0, 36),
        ridge in 0.1f64..2.0,
    ) {
        let a = spd_from(&data, n, ridge);
        let chol = Cholesky::new(&a).expect("SPD by construction");
        let l = chol.factor();
        let rebuilt = l.matmul(&l.transpose());
        let scale = a.max_abs().max(1.0);
        let err = max_abs_diff(&a, &rebuilt);
        prop_assert!(err <= 1e-9 * scale, "‖L·Lᵀ − A‖∞ = {err} (scale {scale})");
    }

    /// Solving A·x = b through the factor leaves a tiny residual.
    #[test]
    fn prop_cholesky_solve_residual(
        n in 1usize..6,
        data in prop::collection::vec(-2.0f64..2.0, 36),
        rhs in prop::collection::vec(-5.0f64..5.0, 6),
        ridge in 0.1f64..2.0,
    ) {
        let a = spd_from(&data, n, ridge);
        let chol = Cholesky::new(&a).expect("SPD by construction");
        let b = &rhs[..n];
        let x = chol.solve_vec(b);
        let ax = a.matvec(&x);
        let residual = ax
            .iter()
            .zip(b)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0_f64, f64::max);
        let scale = b.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
        prop_assert!(residual <= 1e-8 * scale, "residual {residual} (scale {scale})");
    }
}

fn observation(stats: Vec<FnWindowStats>, minute: u64) -> PoolObservation {
    PoolObservation {
        now: SimTime::from_secs(60 * minute),
        window: SimDuration::from_secs(60),
        stats,
        cluster: ClusterSnapshot {
            reserved_memory_mb: 0.0,
            total_memory_mb: 1.0e6,
            containers: 0,
        },
    }
}

fn stats(function: usize, invocations: u32, peak: u32) -> FnWindowStats {
    FnWindowStats {
        function: FunctionId(function),
        invocations,
        peak_concurrency: peak,
        booting: 0,
        idle: 0,
        busy: 0,
        failed_boots: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// An empty window (no per-function stats at all) never panics and
    /// yields no decisions.
    #[test]
    fn prop_histogram_empty_window(minutes in 1u64..50) {
        let mut p = HistogramPolicy::new();
        for m in 0..minutes {
            let d = p.tick(&observation(Vec::new(), m));
            prop_assert!(d.is_empty());
        }
    }

    /// All-zero counts (function present, never invoked): the keep-alive
    /// stays within the policy's clamp and nothing is pre-warmed.
    #[test]
    fn prop_histogram_all_zero_counts(minutes in 1u64..120, funcs in 1usize..4) {
        let mut p = HistogramPolicy::new();
        for m in 0..minutes {
            let window: Vec<_> = (0..funcs).map(|f| stats(f, 0, 0)).collect();
            let d = p.tick(&observation(window, m));
            prop_assert_eq!(d.len(), funcs);
            for dec in &d {
                let ka_min = dec.keep_alive.as_secs_f64() / 60.0;
                prop_assert!((2.0..=60.0).contains(&ka_min), "keep-alive {ka_min} min");
                prop_assert_eq!(dec.prewarm_target, Some(0));
            }
        }
    }

    /// A perfectly periodic workload collapses the gap histogram into a
    /// single bucket; the keep-alive must track that one gap (plus the
    /// clamp), never the 60-minute cap.
    #[test]
    fn prop_histogram_single_bucket_tracks_period(
        period in 2u64..12,
        peak in 1u32..8,
    ) {
        let mut p = HistogramPolicy::new();
        let mut last = Vec::new();
        for m in 0..20 * period {
            let active = m % period == 0;
            let window = vec![stats(0, u32::from(active) * 2, if active { peak } else { 0 })];
            last = p.tick(&observation(window, m));
        }
        let ka_min = last[0].keep_alive.as_secs_f64() / 60.0;
        let expected = period as f64;
        prop_assert!(
            ka_min >= expected.min(2.0) - 1e-9 && ka_min <= expected + 1.0,
            "period {period} min but keep-alive {ka_min} min"
        );
        // Any pre-warm target stays bounded by the observed concurrency.
        prop_assert!(last[0].prewarm_target.unwrap() <= peak as usize);
    }
}
