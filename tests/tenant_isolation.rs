//! Property tests for multi-tenant isolation on the live control plane:
//! a noisy neighbor burning through its own QoS budget must never make a
//! steady tenant shed, miss its SLO, or lose its guaranteed warmth, and
//! every tenant's admission ledger must balance exactly — across pool
//! policies, burst shapes, and seeds.

use aquatope::faas::{
    FaultPlan, FunctionRegistry, FunctionSpec, PrewarmController, QosClass, ResourceConfig,
    StageConfigs, TenantId, TenantPlan, WorkflowDag, WorkflowJob,
};
use aquatope::pool::{FaasCachePolicy, HistogramPolicy, IceBreakerPolicy, ReactiveAutoscale};
use aquatope::service::{ControlPlane, ServiceConfig, ServiceReport, WarmPoolConfig};
use aquatope::sim::{SimDuration, SimTime};
use proptest::prelude::*;

/// The steady tenant's end-to-end SLO — generous against a 60 ms body
/// plus one cold start, so a miss means real interference, not noise.
const STEADY_SLO_SECS: u64 = 10;

fn policy(kind: usize) -> Box<dyn PrewarmController> {
    match kind {
        0 => Box::new(HistogramPolicy::default()),
        1 => Box::new(ReactiveAutoscale::default()),
        2 => Box::new(FaasCachePolicy::default()),
        _ => Box::new(IceBreakerPolicy::default()),
    }
}

/// Two single-stage tenants on a pool sized for exactly one container
/// each, guarantees covering the whole budget (no borrowable slack).
///
/// * Tenant 0 (noisy): `burst` arrivals 10 ms apart from t=1 s into a
///   tight class (4 in flight, 4 queued) — it must shed.
/// * Tenant 1 (steady): `steady` arrivals 500 ms apart into a roomy
///   class with a real SLO — it must never shed or miss.
fn run(burst: usize, steady: usize, policy_kind: usize, seed: u64) -> ServiceReport {
    let mut reg = FunctionRegistry::new();
    let noisy_fn = reg.register(FunctionSpec::new("noisy").with_work_ms(80.0));
    let steady_fn = reg.register(FunctionSpec::new("steady").with_work_ms(60.0));
    let job = |name: &str, f, arrivals| {
        let dag = WorkflowDag::chain(name, vec![f]);
        let configs = StageConfigs::uniform(&dag, ResourceConfig::default());
        WorkflowJob {
            dag,
            configs,
            arrivals,
        }
    };
    let noisy_arrivals: Vec<SimTime> = (0..burst)
        .map(|i| SimTime::from_millis(1_000 + 10 * i as u64))
        .collect();
    let steady_arrivals: Vec<SimTime> = (0..steady)
        .map(|i| SimTime::from_millis(100 + 500 * i as u64))
        .collect();
    let last_ms = noisy_arrivals
        .iter()
        .chain(&steady_arrivals)
        .map(|t| t.as_millis())
        .max()
        .unwrap_or(0);
    let jobs = vec![
        job("noisy-app", noisy_fn, noisy_arrivals),
        job("steady-app", steady_fn, steady_arrivals),
    ];
    let mem = ResourceConfig::default().memory_mb;
    let plan = TenantPlan {
        classes: vec![
            QosClass::new(SimDuration::from_secs(60), 4, 4, mem),
            QosClass::new(SimDuration::from_secs(STEADY_SLO_SECS), 1024, 1024, mem),
        ],
        job_tenants: vec![TenantId(0), TenantId(1)],
    };
    let cfg = ServiceConfig {
        pool: WarmPoolConfig {
            memory_budget_mb: 2.0 * mem,
            ..WarmPoolConfig::default()
        },
        run_for: SimDuration::from_millis(last_ms + 30_000),
        seed,
        ..ServiceConfig::default()
    };
    ControlPlane::new(reg, jobs, policy(policy_kind), &FaultPlan::disabled(), cfg)
        .with_tenants(plan)
        .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The steady tenant is untouchable: zero shedding of any kind, every
    /// arrival admitted and finished, zero SLO misses — no matter how
    /// hard the neighbor bursts, which policy runs the pool, or the seed.
    #[test]
    fn prop_noisy_neighbor_cannot_touch_a_steady_tenant(
        burst in 8usize..96,
        steady in 4usize..40,
        policy_kind in 0usize..4,
        seed in 0u64..50,
    ) {
        let report = run(burst, steady, policy_kind, seed);
        let s = report.tenants[1].clone();
        prop_assert_eq!(s.admission.shed_arrivals, 0, "steady tenant shed at the front door");
        prop_assert_eq!(s.admission.shed_tasks, 0, "steady tenant shed in a queue");
        prop_assert_eq!(s.admission.predictive_rejects, 0, "predictive is off by default");
        prop_assert_eq!(s.admission.admitted, steady as u64);
        prop_assert_eq!(s.admission.finished, steady as u64);
        prop_assert_eq!(s.qos_misses, 0, "steady tenant missed its SLO: p99={}s", s.latency.p99);
        prop_assert!(s.latency.p99 <= STEADY_SLO_SECS as f64);
    }

    /// Every tenant's ledger balances: arrivals() recovers the trace
    /// exactly, every admission is balanced by a finish after the drain,
    /// the per-tenant ledgers sum to the global one, and a large enough
    /// burst demonstrably sheds — only on the noisy tenant's books.
    #[test]
    fn prop_tenant_ledgers_balance_across_policies(
        burst in 8usize..96,
        steady in 4usize..40,
        policy_kind in 0usize..4,
        seed in 0u64..50,
    ) {
        let report = run(burst, steady, policy_kind, seed);
        prop_assert_eq!(report.arrivals_skipped_in_drain, 0, "horizon covers the trace");
        let traces = [burst as u64, steady as u64];
        let mut sum_admitted = 0;
        let mut sum_finished = 0;
        for (t, trace) in traces.iter().enumerate() {
            let a = report.tenants[t].admission;
            prop_assert_eq!(a.arrivals(), *trace, "tenant {} ledger drifted from its trace", t);
            prop_assert_eq!(a.admitted, a.finished, "tenant {} admission unbalanced", t);
            sum_admitted += a.admitted;
            sum_finished += a.finished;
        }
        prop_assert_eq!(sum_admitted, report.admission.admitted);
        prop_assert_eq!(sum_finished, report.admission.finished);
        prop_assert_eq!(
            report.admission.shed_arrivals + report.admission.shed_tasks,
            report.tenants[0].admission.shed_arrivals + report.tenants[0].admission.shed_tasks,
            "all shedding happened on the noisy tenant's books"
        );
        if burst >= 32 {
            prop_assert!(
                report.tenants[0].admission.shed_arrivals
                    + report.tenants[0].admission.shed_tasks
                    > 0,
                "a 10ms-spaced burst of {} against a 4/4 class must shed",
                burst
            );
        }
        prop_assert_eq!(report.stranded_instances, 0);
        prop_assert_eq!(report.live_containers_at_exit, 0);
    }
}
