//! Integration tests of the Bayesian-optimization stack: GP + acquisition
//! + anomaly pruning against the simulated evaluator.

use aquatope::alloc::{
    AquatopeRm, AquatopeRmConfig, Clite, OracleSearch, RandomSearch, ResourceManager, SimEvaluator,
};
use aquatope::faas::types::ConfigSpace;
use aquatope::faas::{FaasSim, FunctionRegistry, NoiseModel};
use aquatope::workflows::apps;

fn ml_eval(noise: NoiseModel, samples: usize, seed: u64) -> (SimEvaluator, f64) {
    let mut registry = FunctionRegistry::new();
    let app = apps::ml_pipeline(&mut registry);
    let sim = FaasSim::builder()
        .workers(6, 40.0, 131_072)
        .registry(registry)
        .noise(noise)
        .seed(seed)
        .build();
    let qos = app.qos.as_secs_f64();
    (
        SimEvaluator::new(sim, app.dag, ConfigSpace::default(), samples, true),
        qos,
    )
}

#[test]
fn aquatope_converges_near_oracle_on_ml_pipeline() {
    let (mut eval, qos) = ml_eval(NoiseModel::quiet(), 2, 1);
    let oracle = OracleSearch::default().optimize(&mut eval, qos, 400);
    let oracle_cost = oracle.best.expect("oracle feasible").1;

    let (mut eval, qos) = ml_eval(NoiseModel::quiet(), 2, 1);
    let out = AquatopeRm::new(3).optimize(&mut eval, qos, 36);
    let (_, cost, lat) = out.best.expect("aquatope feasible");
    assert!(lat <= qos);
    assert!(
        cost <= oracle_cost * 1.25,
        "Aquatope {cost} should be within 25% of oracle {oracle_cost}"
    );
}

#[test]
fn aquatope_beats_clite_under_noise() {
    // Noisy environment with outliers (Fig. 15's point): aggregate over
    // seeds so the comparison is about robustness, not luck.
    let noise = NoiseModel::background_jobs(2.0);
    let mut aq_total = 0.0;
    let mut clite_total = 0.0;
    for seed in 0..3 {
        let (mut eval, qos) = ml_eval(noise, 3, 100 + seed);
        aq_total += AquatopeRm::new(seed)
            .optimize(&mut eval, qos, 30)
            .best
            .map(|b| b.1)
            .unwrap_or(1e6);
        let (mut eval, qos) = ml_eval(noise, 3, 100 + seed);
        clite_total += Clite::new(seed)
            .optimize(&mut eval, qos, 30)
            .best
            .map(|b| b.1)
            .unwrap_or(1e6);
    }
    assert!(
        aq_total < clite_total * 1.1,
        "Aquatope {aq_total:.1} should not lose to CLITE {clite_total:.1} under noise"
    );
}

#[test]
fn batch_sampling_respects_budget_exactly() {
    let (mut eval, qos) = ml_eval(NoiseModel::production(), 2, 7);
    let cfg = AquatopeRmConfig {
        batch: 3,
        bootstrap: 5,
        ..AquatopeRmConfig::default()
    };
    let out = AquatopeRm::with_config(7, cfg).optimize(&mut eval, qos, 20);
    assert_eq!(out.evaluations(), 20);
    assert_eq!(eval.evaluations(), 20);
}

#[test]
fn convergence_curves_are_monotone() {
    let (mut eval, qos) = ml_eval(NoiseModel::production(), 2, 8);
    // A relaxed QoS so plain random sampling finds feasible points.
    let qos = qos * 2.0;
    let out = RandomSearch::new(8).optimize(&mut eval, qos, 30);
    let mut last = f64::INFINITY;
    for k in 1..=30 {
        if let Some(c) = out.best_cost_after(k, qos) {
            assert!(c <= last + 1e-12, "best-so-far must not increase");
            last = c;
        }
    }
    assert!(last.is_finite(), "random should find something feasible");
}
