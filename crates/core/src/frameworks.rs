//! End-to-end comparison frameworks (paper §8.3).
//!
//! Each framework pairs a cold-start policy with a resource manager:
//!
//! | Framework | Pool | Allocation |
//! |---|---|---|
//! | [`Framework::Autoscale`] | reactive stem-cell autoscaling | usage-based autoscaling |
//! | [`Framework::IceBreakerClite`] | IceBreaker Fourier pre-warming | CLITE BO |
//! | [`Framework::Aquatope`] | hybrid-Bayesian dynamic pool | customized BO |
//! | [`Framework::AquatopeRmOnly`] | provider keep-alive (no pool) | customized BO — the Fig. 17 ablation |

use aqua_alloc::{AutoscaleRm, Clite, ConfigEvaluator, ResourceManager, SimEvaluator};
use aqua_faas::sim::WorkflowJob;
use aqua_faas::{
    FixedPrewarm, FunctionId, FunctionRegistry, NoiseModel, PrewarmController, StageConfigs,
};
use aqua_pool::{AquatopePool, IceBreakerPolicy, ReactiveAutoscale};
use aqua_sim::SimTime;
use aqua_telemetry::{SimEvent, Telemetry};

use crate::config::{AquatopeConfig, ClusterSpec};
use crate::controller::{violation_rate, Aquatope, Workload};
use crate::report::EndToEndReport;

/// Which end-to-end framework to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Framework {
    /// Reactive autoscaling for both pool and resources.
    Autoscale,
    /// IceBreaker pre-warming + CLITE allocation (best prior combination).
    IceBreakerClite,
    /// Full AQUATOPE (pool + customized BO).
    Aquatope,
    /// AQUATOPE's resource manager without the pre-warmed pool (Fig. 17).
    AquatopeRmOnly,
}

impl Framework {
    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Framework::Autoscale => "Autoscale",
            Framework::IceBreakerClite => "IceBreaker+CLITE",
            Framework::Aquatope => "Aquatope",
            Framework::AquatopeRmOnly => "Aquatope (RM only)",
        }
    }
}

/// Plans per-app configurations with the framework's resource manager and
/// replays the workload mix under its pool policy, returning the Fig. 18
/// metrics.
pub fn run_framework(
    framework: Framework,
    registry: &FunctionRegistry,
    workloads: &[Workload],
    cluster: ClusterSpec,
    horizon: SimTime,
    config: &AquatopeConfig,
) -> EndToEndReport {
    run_framework_with_history(
        framework,
        registry,
        workloads,
        cluster,
        horizon,
        config,
        &[],
    )
}

/// Like [`run_framework`], additionally pre-loading the predictive pool
/// policies with recorded per-function concurrency history (the paper's
/// scheduler trains on the invocation log stored in CouchDB before it
/// starts managing an application).
#[allow(clippy::too_many_arguments)]
pub fn run_framework_with_history(
    framework: Framework,
    registry: &FunctionRegistry,
    workloads: &[Workload],
    cluster: ClusterSpec,
    horizon: SimTime,
    config: &AquatopeConfig,
    history: &[(FunctionId, Vec<f64>)],
) -> EndToEndReport {
    run_framework_traced(
        framework,
        registry,
        workloads,
        cluster,
        horizon,
        config,
        history,
        Telemetry::disabled(),
    )
}

/// Like [`run_framework_with_history`], additionally streaming every
/// simulator, pool, and resource-manager decision to `telemetry`. After the
/// online replay, one [`SimEvent::QosViolation`] is emitted per completed
/// workflow instance that missed its application's QoS target.
#[allow(clippy::too_many_arguments)]
pub fn run_framework_traced(
    framework: Framework,
    registry: &FunctionRegistry,
    workloads: &[Workload],
    cluster: ClusterSpec,
    horizon: SimTime,
    config: &AquatopeConfig,
    history: &[(FunctionId, Vec<f64>)],
    telemetry: Telemetry,
) -> EndToEndReport {
    // --- Planning phase: pick per-stage configs for every app. ---
    let controller = Aquatope::new(config.clone());
    let plans: Vec<StageConfigs> = workloads
        .iter()
        .map(|w| {
            let sim = controller.make_sim(registry, cluster, NoiseModel::production());
            let mut eval = SimEvaluator::new(
                sim,
                w.app.dag.clone(),
                config.space,
                config.profile_samples,
                // The RM-only ablation profiles without guaranteed warm
                // starts: its samples mix cold and warm behaviour (§8.3).
                !matches!(framework, Framework::AquatopeRmOnly),
            )
            .with_prices(config.price_cpu, config.price_mem);
            let qos = w.app.qos.as_secs_f64();
            let outcome = match framework {
                Framework::Autoscale => {
                    AutoscaleRm::new().optimize(&mut eval, qos, config.search_budget)
                }
                Framework::IceBreakerClite => {
                    Clite::new(config.seed).optimize(&mut eval, qos, config.search_budget)
                }
                Framework::Aquatope | Framework::AquatopeRmOnly => {
                    aqua_alloc::AquatopeRm::with_config(config.seed, config.rm.clone())
                        .with_telemetry(telemetry.clone())
                        .optimize(&mut eval, qos, config.search_budget)
                }
            };
            match outcome.best {
                Some((configs, _, _)) => configs,
                None => {
                    let dim = eval.dim();
                    let mut u = vec![1.0; dim];
                    for s in 0..dim / 3 {
                        u[3 * s + 2] = 0.0;
                    }
                    StageConfigs::decode(&config.space, &u)
                }
            }
        })
        .collect();

    // --- Online phase: replay under the framework's pool policy. ---
    let mut sim = controller.make_sim(registry, cluster, NoiseModel::production());
    sim.set_telemetry(telemetry.clone());
    let jobs: Vec<WorkflowJob> = workloads
        .iter()
        .zip(&plans)
        .map(|(w, c)| WorkflowJob::new(w.app.dag.clone(), c.clone(), w.arrivals.clone()))
        .collect();
    let dags: Vec<&aqua_faas::WorkflowDag> = workloads.iter().map(|w| &w.app.dag).collect();
    let mut pool: Box<dyn PrewarmController> = match framework {
        Framework::Autoscale => Box::new(ReactiveAutoscale::new()),
        Framework::IceBreakerClite => {
            let mut p = IceBreakerPolicy::new();
            for (f, h) in history {
                p.preload_history(*f, h);
            }
            Box::new(p)
        }
        Framework::Aquatope => {
            let mut p =
                AquatopePool::new(config.pool.clone(), &dags).with_telemetry(telemetry.clone());
            for (f, h) in history {
                p.preload_history(*f, h);
            }
            Box::new(p)
        }
        Framework::AquatopeRmOnly => Box::new(FixedPrewarm::provider_default()),
    };
    let raw = sim.run(&jobs, pool.as_mut(), horizon);
    let violation = violation_rate(&raw, workloads, horizon);

    // QoS verdicts are only known once per-app targets are joined with the
    // run report, so they are synthesized here rather than inside the
    // simulator. Global instance numbering is job-major (mirroring
    // `violation_rate`), which lets us recover (workflow, local instance).
    if telemetry.is_enabled() {
        let mut job_of = Vec::new();
        for (job, w) in workloads.iter().enumerate() {
            for local in 0..w.arrivals.len() {
                job_of.push((job, local, w.app.qos));
            }
        }
        for wf in &raw.workflows {
            if let Some(&(job, local, qos)) = job_of.get(wf.instance) {
                if wf.latency() > qos {
                    telemetry.emit_with(|| SimEvent::QosViolation {
                        at: wf.finished,
                        workflow: job,
                        instance: local,
                        latency_secs: wf.latency().as_secs_f64(),
                        qos_secs: qos.as_secs_f64(),
                    });
                }
            }
        }
        telemetry.flush();
    }
    EndToEndReport::from_run(raw, violation, config.price_cpu, config.price_mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_workflows::apps;

    fn workload() -> (FunctionRegistry, Vec<Workload>) {
        let mut registry = FunctionRegistry::new();
        let app = apps::chain(&mut registry, 2);
        let arrivals = (1..40u64).map(|i| SimTime::from_secs(i * 15)).collect();
        (registry, vec![Workload { app, arrivals }])
    }

    #[test]
    fn all_frameworks_run() {
        let (registry, workloads) = workload();
        let cfg = AquatopeConfig::fast();
        for fw in [
            Framework::Autoscale,
            Framework::IceBreakerClite,
            Framework::Aquatope,
            Framework::AquatopeRmOnly,
        ] {
            let report = run_framework(
                fw,
                &registry,
                &workloads,
                ClusterSpec::default(),
                SimTime::from_secs(700),
                &cfg,
            );
            assert!(
                report.completed > 20,
                "{}: completed {}",
                fw.name(),
                report.completed
            );
        }
    }

    #[test]
    fn aquatope_beats_autoscale_on_violations() {
        let (registry, workloads) = workload();
        let cfg = AquatopeConfig::fast();
        let aq = run_framework(
            Framework::Aquatope,
            &registry,
            &workloads,
            ClusterSpec::default(),
            SimTime::from_secs(700),
            &cfg,
        );
        let auto = run_framework(
            Framework::Autoscale,
            &registry,
            &workloads,
            ClusterSpec::default(),
            SimTime::from_secs(700),
            &cfg,
        );
        assert!(
            aq.qos_violation_rate <= auto.qos_violation_rate + 0.05,
            "Aquatope {} vs Autoscale {}",
            aq.qos_violation_rate,
            auto.qos_violation_rate
        );
    }
}
