//! The AQUATOPE controller: QoS-and-uncertainty-aware resource management
//! for multi-stage serverless workflows.
//!
//! This crate assembles the paper's two components into the end-to-end
//! system of Fig. 1:
//!
//! * the **dynamic pre-warmed container pool** (`aqua-pool`'s
//!   [`AquatopePool`]), sized every minute by the hybrid Bayesian NN, and
//! * the **container resource manager** (`aqua-alloc`'s [`AquatopeRm`]),
//!   which searches per-stage CPU/memory/concurrency with customized BO,
//!
//! plus the baseline *frameworks* the paper compares against end to end
//! (§8.3): pure autoscaling, and IceBreaker pre-warming combined with
//! CLITE allocation.
//!
//! # Examples
//!
//! ```no_run
//! use aquatope_core::{Aquatope, AquatopeConfig, ClusterSpec, Workload};
//! use aqua_faas::FunctionRegistry;
//! use aqua_workflows::apps;
//! use aqua_sim::SimTime;
//!
//! let mut registry = FunctionRegistry::new();
//! let app = apps::ml_pipeline(&mut registry);
//! let workload = Workload {
//!     app,
//!     arrivals: (1..200).map(|i| SimTime::from_secs(6 * i)).collect(),
//! };
//! let mut aquatope = Aquatope::new(AquatopeConfig::fast());
//! let report = aquatope.run(&registry, &[workload], ClusterSpec::default(), SimTime::from_secs(1800));
//! println!("QoS violations: {:.1}%", 100.0 * report.qos_violation_rate);
//! ```

pub mod config;
pub mod controller;
pub mod decision;
pub mod frameworks;
pub mod report;

pub use config::{AquatopeConfig, ClusterSpec};
pub use controller::{AppPlan, Aquatope, Workload};
pub use decision::DecisionEngine;
pub use frameworks::{run_framework, run_framework_traced, run_framework_with_history, Framework};
pub use report::EndToEndReport;

pub use aqua_alloc::{AquatopeRm, AquatopeRmConfig};
pub use aqua_faas::{FaultPlan, FaultRates, RetryPolicy};
pub use aqua_pool::{AquatopePool, AquatopePoolConfig};
