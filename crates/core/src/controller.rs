//! The AQUATOPE controller's batch-run driver: plan per-app resources,
//! then run the workload mix under the dynamic pre-warmed pool.
//!
//! All *decisions* (resource-manager search, fallback plans, pool-policy
//! construction) live in [`crate::decision::DecisionEngine`]; this module
//! only hosts them for batch simulation runs. The control-plane service
//! (`aqua-service`) hosts the same engine for live traffic.

use aqua_faas::fault::{FaultPlan, RetryPolicy};
use aqua_faas::sim::WorkflowJob;
use aqua_faas::{FaasSim, FunctionRegistry, NoiseModel};
use aqua_sim::SimTime;
use aqua_workflows::App;

use crate::config::{AquatopeConfig, ClusterSpec};
use crate::decision::DecisionEngine;
use crate::report::EndToEndReport;

pub use crate::decision::AppPlan;

/// One application plus its invocation trace.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The application (DAG + QoS).
    pub app: App,
    /// Arrival times of workflow instances.
    pub arrivals: Vec<SimTime>,
}

/// The AQUATOPE controller (Fig. 1).
#[derive(Debug, Clone)]
pub struct Aquatope {
    engine: DecisionEngine,
    faults: FaultPlan,
    retry: RetryPolicy,
}

impl Aquatope {
    /// Creates a controller.
    pub fn new(config: AquatopeConfig) -> Self {
        Aquatope {
            engine: DecisionEngine::new(config),
            faults: FaultPlan::disabled(),
            retry: RetryPolicy::default(),
        }
    }

    /// Injects deterministic faults into every simulation this controller
    /// builds (profiling and online execution alike), with the given
    /// retry/timeout policy. With [`FaultPlan::disabled`] this is a strict
    /// no-op.
    pub fn with_faults(mut self, faults: FaultPlan, retry: RetryPolicy) -> Self {
        self.faults = faults;
        self.retry = retry;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &AquatopeConfig {
        self.engine.config()
    }

    /// The decision engine this controller hosts.
    pub fn engine(&self) -> &DecisionEngine {
        &self.engine
    }

    /// Builds the simulator for a cluster spec (shared by plan/execute so
    /// profiling sees the same environment as the online run).
    pub fn make_sim(
        &self,
        registry: &FunctionRegistry,
        cluster: ClusterSpec,
        noise: NoiseModel,
    ) -> FaasSim {
        FaasSim::builder()
            .workers(
                cluster.workers,
                cluster.cpu_per_worker,
                cluster.memory_mb_per_worker,
            )
            .registry(registry.clone())
            .noise(noise)
            .seed(cluster.seed)
            .faults(self.faults.clone())
            .retry_policy(self.retry.clone())
            .build()
    }

    /// Runs the container resource manager for one application, returning
    /// the selected per-stage configuration. Falls back to a generous
    /// configuration if the search finds nothing feasible.
    pub fn plan_app(
        &self,
        registry: &FunctionRegistry,
        app: &App,
        cluster: ClusterSpec,
    ) -> AppPlan {
        let sim = self.make_sim(registry, cluster, NoiseModel::production());
        self.engine.plan_app(sim, app)
    }

    /// Plans every application.
    pub fn plan(
        &self,
        registry: &FunctionRegistry,
        workloads: &[Workload],
        cluster: ClusterSpec,
    ) -> Vec<AppPlan> {
        workloads
            .iter()
            .map(|w| self.plan_app(registry, &w.app, cluster))
            .collect()
    }

    /// Executes the workload mix with the given plans under the dynamic
    /// pre-warmed container pool.
    pub fn execute(
        &self,
        registry: &FunctionRegistry,
        workloads: &[Workload],
        plans: &[AppPlan],
        cluster: ClusterSpec,
        horizon: SimTime,
    ) -> EndToEndReport {
        assert_eq!(workloads.len(), plans.len(), "one plan per workload");
        let mut sim = self.make_sim(registry, cluster, NoiseModel::production());
        let jobs: Vec<WorkflowJob> = workloads
            .iter()
            .zip(plans)
            .map(|(w, p)| {
                WorkflowJob::new(w.app.dag.clone(), p.configs.clone(), w.arrivals.clone())
            })
            .collect();
        let dags: Vec<&aqua_faas::WorkflowDag> = workloads.iter().map(|w| &w.app.dag).collect();
        let mut pool = self.engine.make_pool(&dags);
        let raw = sim.run(&jobs, &mut pool, horizon);
        let violation = violation_rate(&raw, workloads, horizon);
        let cfg = self.engine.config();
        EndToEndReport::from_run(raw, violation, cfg.price_cpu, cfg.price_mem)
    }

    /// Full pipeline: plan, then execute.
    pub fn run(
        &mut self,
        registry: &FunctionRegistry,
        workloads: &[Workload],
        cluster: ClusterSpec,
        horizon: SimTime,
    ) -> EndToEndReport {
        let plans = self.plan(registry, workloads, cluster);
        self.execute(registry, workloads, &plans, cluster, horizon)
    }
}

/// Computes the per-instance QoS violation rate for a mixed-workload run:
/// each workflow instance is checked against its own app's QoS; unfinished
/// instances count as violations.
pub fn violation_rate(raw: &aqua_faas::RunReport, workloads: &[Workload], horizon: SimTime) -> f64 {
    // Map global instance index → app QoS, mirroring the simulator's
    // job-major instance numbering.
    let mut qos_of = Vec::new();
    for w in workloads {
        for _ in &w.arrivals {
            qos_of.push(w.app.qos);
        }
    }
    let arrived: usize = workloads
        .iter()
        .flat_map(|w| w.arrivals.iter())
        .filter(|t| **t <= horizon)
        .count();
    if arrived == 0 {
        return 0.0;
    }
    let violated_completed = raw
        .workflows
        .iter()
        .filter(|wf| {
            qos_of
                .get(wf.instance)
                .is_some_and(|qos| wf.latency() > *qos)
        })
        .count();
    (violated_completed + raw.unfinished) as f64 / arrived as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_workflows::apps;

    fn small_workload(n: usize, gap_secs: u64) -> (FunctionRegistry, Workload) {
        let mut registry = FunctionRegistry::new();
        let app = apps::chain(&mut registry, 2);
        let arrivals = (1..=n as u64)
            .map(|i| SimTime::from_secs(i * gap_secs))
            .collect();
        (registry, Workload { app, arrivals })
    }

    #[test]
    fn plan_produces_feasible_configs() {
        let (registry, w) = small_workload(5, 30);
        let controller = Aquatope::new(AquatopeConfig::fast());
        let plan = controller.plan_app(&registry, &w.app, ClusterSpec::default());
        assert_eq!(plan.configs.len(), w.app.dag.num_stages());
        assert!(
            plan.expected_latency.is_nan() || plan.expected_latency <= w.app.qos.as_secs_f64(),
            "planned latency {} vs QoS {}",
            plan.expected_latency,
            w.app.qos.as_secs_f64()
        );
    }

    #[test]
    fn end_to_end_run_completes_instances() {
        let (registry, w) = small_workload(30, 20);
        let mut controller = Aquatope::new(AquatopeConfig::fast());
        let report = controller.run(
            &registry,
            std::slice::from_ref(&w),
            ClusterSpec::default(),
            SimTime::from_secs(900),
        );
        assert!(
            report.completed >= 25,
            "most instances complete: {}",
            report.completed
        );
        assert!(
            report.qos_violation_rate <= 0.4,
            "violations {}",
            report.qos_violation_rate
        );
    }

    #[test]
    fn violation_rate_counts_per_app_qos() {
        use aqua_faas::{RunReport, WorkflowRecord};
        let (_, w) = small_workload(2, 10);
        let raw = RunReport {
            workflows: vec![
                WorkflowRecord {
                    instance: 0,
                    arrived: SimTime::ZERO,
                    finished: SimTime::from_millis(100),
                    cold_starts: 0,
                    invocations: 2,
                },
                WorkflowRecord {
                    instance: 1,
                    arrived: SimTime::ZERO,
                    finished: SimTime::from_secs(100),
                    cold_starts: 0,
                    invocations: 2,
                },
            ],
            ..Default::default()
        };
        let rate = violation_rate(&raw, &[w], SimTime::from_secs(1000));
        assert!((rate - 0.5).abs() < 1e-9);
    }
}
