//! Controller and cluster configuration.

use aqua_alloc::AquatopeRmConfig;
use aqua_faas::types::ConfigSpace;
use aqua_pool::AquatopePoolConfig;

/// Shape of the simulated cluster (stand-in for the paper's §7.3 testbed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Number of invoker servers.
    pub workers: usize,
    /// Cores per worker.
    pub cpu_per_worker: f64,
    /// Memory per worker, MiB.
    pub memory_mb_per_worker: u64,
    /// RNG seed for the cluster's stochastic components.
    pub seed: u64,
}

impl Default for ClusterSpec {
    /// Six 40-core / 128-GiB workers — the paper's invoker fleet.
    fn default() -> Self {
        ClusterSpec {
            workers: 6,
            cpu_per_worker: 40.0,
            memory_mb_per_worker: 128 * 1024,
            seed: 42,
        }
    }
}

/// Top-level AQUATOPE configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AquatopeConfig {
    /// Dynamic pre-warmed container-pool settings.
    pub pool: AquatopePoolConfig,
    /// Customized-BO resource-manager settings.
    pub rm: AquatopeRmConfig,
    /// Evaluation budget of the per-app configuration search.
    pub search_budget: usize,
    /// Profiling samples per candidate configuration.
    pub profile_samples: usize,
    /// Resource-configuration search space.
    pub space: ConfigSpace,
    /// Price per CPU core-second (linear §5.1 cost model).
    pub price_cpu: f64,
    /// Price per GB-second.
    pub price_mem: f64,
    /// RNG seed for the search.
    pub seed: u64,
}

impl Default for AquatopeConfig {
    fn default() -> Self {
        AquatopeConfig {
            pool: AquatopePoolConfig::default(),
            rm: AquatopeRmConfig::default(),
            search_budget: 36,
            profile_samples: 3,
            space: ConfigSpace::default(),
            price_cpu: 1.0,
            price_mem: 1.0,
            seed: 0xACA7,
        }
    }
}

impl AquatopeConfig {
    /// A configuration with smaller budgets and a lighter pool model, for
    /// tests and examples that need to run in seconds.
    pub fn fast() -> Self {
        let mut cfg = AquatopeConfig {
            search_budget: 18,
            profile_samples: 2,
            ..AquatopeConfig::default()
        };
        cfg.pool.warmup_windows = 30;
        cfg.pool.retrain_every = 60;
        cfg.pool.hybrid.window = 12;
        cfg.pool.hybrid.horizon = 2;
        cfg.pool.hybrid.enc_hidden = vec![8];
        cfg.pool.hybrid.dec_hidden = vec![6];
        cfg.pool.hybrid.mlp_hidden = vec![12, 8];
        cfg.pool.hybrid.pretrain_epochs = 2;
        cfg.pool.hybrid.train_epochs = 3;
        cfg.pool.hybrid.mc_passes = 10;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cluster_matches_paper_fleet() {
        let c = ClusterSpec::default();
        assert_eq!(c.workers, 6);
        assert_eq!(c.memory_mb_per_worker, 131_072);
    }

    #[test]
    fn fast_config_shrinks_budgets() {
        let fast = AquatopeConfig::fast();
        let full = AquatopeConfig::default();
        assert!(fast.search_budget < full.search_budget);
        assert!(fast.pool.hybrid.train_epochs < full.pool.hybrid.train_epochs);
    }
}
