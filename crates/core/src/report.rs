//! End-to-end run reports.

use aqua_faas::RunReport;
use serde::{Deserialize, Serialize};

/// Aggregate outcome of an end-to-end run (the Fig. 18 metrics).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndToEndReport {
    /// Fraction of workflow instances that violated their QoS.
    pub qos_violation_rate: f64,
    /// Fraction of invocations that were cold starts.
    pub cold_start_rate: f64,
    /// Busy CPU time over the run, core·s.
    pub cpu_core_seconds: f64,
    /// Provisioned memory time over the run, GB·s.
    pub memory_gb_seconds: f64,
    /// Total billed execution cost (linear price model).
    pub execution_cost: f64,
    /// Completed workflow instances.
    pub completed: usize,
    /// Instances that never finished within the horizon.
    pub unfinished: usize,
    /// The raw per-invocation / per-workflow records.
    pub raw: RunReport,
}

impl EndToEndReport {
    /// Builds the aggregate view from a raw run report and per-instance
    /// QoS outcomes already folded into `qos_violation_rate`.
    pub fn from_run(
        raw: RunReport,
        qos_violation_rate: f64,
        price_cpu: f64,
        price_mem: f64,
    ) -> Self {
        EndToEndReport {
            qos_violation_rate,
            cold_start_rate: raw.cold_start_rate(),
            cpu_core_seconds: raw.cpu_core_seconds,
            memory_gb_seconds: raw.memory_gb_seconds,
            execution_cost: raw.execution_cost(price_cpu, price_mem),
            completed: raw.workflows.len(),
            unfinished: raw.unfinished,
            raw,
        }
    }
}

impl std::fmt::Display for EndToEndReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "QoS violations {:5.1}% | cold starts {:5.1}% | CPU {:9.1} core·s | mem {:9.1} GB·s | {} done / {} unfinished",
            self.qos_violation_rate * 100.0,
            self.cold_start_rate * 100.0,
            self.cpu_core_seconds,
            self.memory_gb_seconds,
            self.completed,
            self.unfinished,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_run_copies_metrics() {
        let raw = RunReport {
            cpu_core_seconds: 12.0,
            memory_gb_seconds: 7.0,
            ..Default::default()
        };
        let r = EndToEndReport::from_run(raw, 0.25, 1.0, 1.0);
        assert_eq!(r.qos_violation_rate, 0.25);
        assert_eq!(r.cpu_core_seconds, 12.0);
        assert_eq!(r.memory_gb_seconds, 7.0);
        assert_eq!(r.completed, 0);
    }

    #[test]
    fn display_is_humane() {
        let r = EndToEndReport::from_run(RunReport::default(), 0.031, 1.0, 1.0);
        let s = r.to_string();
        assert!(s.contains("3.1%"), "{s}");
    }
}
