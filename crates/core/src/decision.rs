//! The controller's decision logic, split from its batch-run driver.
//!
//! [`DecisionEngine`] owns everything that *decides*: running the
//! container resource manager for one application, the max-resources
//! fallback when the search finds nothing feasible, and constructing the
//! dynamic pool policy. It deliberately does not build simulators or
//! drive runs — the batch path ([`crate::Aquatope`]) and the control-plane
//! service both delegate to this one implementation, so a policy change
//! lands in both hosts at once and the two can never drift apart.

use aqua_alloc::{AquatopeRm, ResourceManager, SimEvaluator};
use aqua_faas::{FaasSim, StageConfigs, WorkflowDag};
use aqua_pool::AquatopePool;
use aqua_workflows::App;

use crate::config::AquatopeConfig;

/// The resource plan the controller selected for one application.
#[derive(Debug, Clone)]
pub struct AppPlan {
    /// Application name.
    pub app: String,
    /// Chosen per-stage configuration.
    pub configs: StageConfigs,
    /// Cost observed for the chosen configuration during search.
    pub expected_cost: f64,
    /// Latency observed for the chosen configuration during search.
    pub expected_latency: f64,
    /// Evaluations the search spent.
    pub search_evaluations: usize,
}

/// Host-independent AQUATOPE decision logic.
#[derive(Debug, Clone)]
pub struct DecisionEngine {
    config: AquatopeConfig,
}

impl DecisionEngine {
    /// An engine for `config`.
    pub fn new(config: AquatopeConfig) -> Self {
        DecisionEngine { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &AquatopeConfig {
        &self.config
    }

    /// Runs the container resource manager for one application, using
    /// `sim` as the profiling evaluator, and returns the selected
    /// per-stage configuration. Falls back to a generous configuration if
    /// the search finds nothing feasible.
    pub fn plan_app(&self, sim: FaasSim, app: &App) -> AppPlan {
        let mut eval = SimEvaluator::new(
            sim,
            app.dag.clone(),
            self.config.space,
            self.config.profile_samples,
            true,
        )
        .with_prices(self.config.price_cpu, self.config.price_mem);
        let mut rm = AquatopeRm::with_config(self.config.seed, self.config.rm.clone());
        let outcome = rm.optimize(&mut eval, app.qos.as_secs_f64(), self.config.search_budget);
        let evaluations = outcome.evaluations();
        match outcome.best {
            Some((configs, cost, lat)) => AppPlan {
                app: app.dag.name().to_string(),
                configs,
                expected_cost: cost,
                expected_latency: lat,
                search_evaluations: evaluations,
            },
            None => self.fallback_plan(app, evaluations),
        }
    }

    /// The max-resources fallback plan: every stage at the top of the
    /// space with concurrency 1. Used when search finds nothing feasible,
    /// and by the service to admit applications before their first
    /// profiling pass completes.
    pub fn fallback_plan(&self, app: &App, evaluations: usize) -> AppPlan {
        let dim = 3 * app.dag.num_stages();
        let mut u = vec![1.0; dim];
        for s in 0..dim / 3 {
            u[3 * s + 2] = 0.0;
        }
        AppPlan {
            app: app.dag.name().to_string(),
            configs: StageConfigs::decode(&self.config.space, &u),
            expected_cost: f64::NAN,
            expected_latency: f64::NAN,
            search_evaluations: evaluations,
        }
    }

    /// Constructs the dynamic pre-warmed pool policy for a workload mix.
    pub fn make_pool(&self, dags: &[&WorkflowDag]) -> AquatopePool {
        AquatopePool::new(self.config.pool.clone(), dags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_workflows::apps;

    #[test]
    fn fallback_plan_is_generous_and_sequential() {
        let mut registry = aqua_faas::FunctionRegistry::new();
        let app = apps::chain(&mut registry, 3);
        let engine = DecisionEngine::new(AquatopeConfig::fast());
        let plan = engine.fallback_plan(&app, 0);
        assert_eq!(plan.configs.len(), 3);
        let space = engine.config().space;
        for cfg in plan.configs.iter() {
            assert_eq!(cfg.cpu, space.cpu.1);
            assert_eq!(cfg.memory_mb, space.memory_mb.1);
            assert_eq!(cfg.concurrency, 1);
        }
        assert!(plan.expected_cost.is_nan());
    }

    #[test]
    fn make_pool_covers_all_functions() {
        use aqua_faas::PrewarmController;
        let mut registry = aqua_faas::FunctionRegistry::new();
        let a = apps::chain(&mut registry, 2);
        let b = apps::chain(&mut registry, 2);
        let engine = DecisionEngine::new(AquatopeConfig::fast());
        let pool = engine.make_pool(&[&a.dag, &b.dag]);
        // A constructed pool is a valid controller (smoke: name is stable).
        let _: &dyn PrewarmController = &pool;
    }
}
