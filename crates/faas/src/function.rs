//! Function specifications and the resource-dependent latency model.

use aqua_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

use crate::interference::NoiseModel;
use crate::types::{FunctionId, ResourceConfig};

/// A serverless function's performance profile.
///
/// The latency model captures the behaviours the paper's evaluation
/// depends on:
///
/// * compute work speeds up with allocated CPU up to the function's
///   inherent `parallelism`;
/// * an I/O floor does not scale with resources;
/// * under-provisioned memory inflates runtime (paging / GC pressure);
/// * a **cold start** pays a container boot plus initialization work
///   (dependency download, model loading) that itself consumes resources —
///   the cold/warm asymmetry that motivates jointly solving pre-warming and
///   allocation (§2.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionSpec {
    /// Human-readable name.
    pub name: String,
    /// Compute work at 1 CPU, in milliseconds.
    pub work_ms: f64,
    /// Non-scalable I/O floor, in milliseconds.
    pub io_ms: f64,
    /// Memory the function wants, in MiB; less slows it down.
    pub mem_demand_mb: f64,
    /// Penalty slope when under-provisioned: factor `1 + p·(demand/got − 1)`.
    pub mem_penalty: f64,
    /// Maximum useful CPU parallelism (cores).
    pub parallelism: f64,
    /// Container boot time (cold start), milliseconds.
    pub boot_ms: f64,
    /// Initialization work run on cold start at 1 CPU, milliseconds.
    pub init_work_ms: f64,
    /// Intrinsic execution-time coefficient of variation (log-normal).
    pub exec_cv: f64,
}

impl FunctionSpec {
    /// A CPU-light default profile; customize with the `with_*` builders.
    pub fn new(name: impl Into<String>) -> Self {
        FunctionSpec {
            name: name.into(),
            work_ms: 100.0,
            io_ms: 10.0,
            mem_demand_mb: 512.0,
            mem_penalty: 1.5,
            parallelism: 2.0,
            boot_ms: 600.0,
            init_work_ms: 400.0,
            exec_cv: 0.05,
        }
    }

    /// Sets the compute work at 1 CPU (ms).
    pub fn with_work_ms(mut self, v: f64) -> Self {
        assert!(v >= 0.0, "work must be non-negative");
        self.work_ms = v;
        self
    }

    /// Sets the I/O floor (ms).
    pub fn with_io_ms(mut self, v: f64) -> Self {
        assert!(v >= 0.0, "io must be non-negative");
        self.io_ms = v;
        self
    }

    /// Sets the memory demand (MiB).
    pub fn with_mem_demand(mut self, v: f64) -> Self {
        assert!(v > 0.0, "memory demand must be positive");
        self.mem_demand_mb = v;
        self
    }

    /// Sets the maximum useful parallelism (cores).
    pub fn with_parallelism(mut self, v: f64) -> Self {
        assert!(v > 0.0, "parallelism must be positive");
        self.parallelism = v;
        self
    }

    /// Sets cold-start boot time and init work (ms).
    pub fn with_cold_start(mut self, boot_ms: f64, init_work_ms: f64) -> Self {
        assert!(
            boot_ms >= 0.0 && init_work_ms >= 0.0,
            "cold-start times must be non-negative"
        );
        self.boot_ms = boot_ms;
        self.init_work_ms = init_work_ms;
        self
    }

    /// Sets the intrinsic execution-time CV.
    pub fn with_exec_cv(mut self, cv: f64) -> Self {
        assert!(cv >= 0.0, "cv must be non-negative");
        self.exec_cv = cv;
        self
    }

    /// Effective CPU an invocation gets under `config`, considering the
    /// concurrency split and the function's parallelism cap.
    pub fn effective_cpu(&self, config: &ResourceConfig) -> f64 {
        config.cpu_per_slot().min(self.parallelism).max(1e-3)
    }

    /// Memory-pressure slowdown factor under `config` (≥ 1).
    pub fn memory_factor(&self, config: &ResourceConfig) -> f64 {
        let got = config.memory_per_slot();
        if got >= self.mem_demand_mb {
            1.0
        } else {
            1.0 + self.mem_penalty * (self.mem_demand_mb / got - 1.0)
        }
    }

    /// Deterministic warm-start execution time under `config` (no noise).
    pub fn base_exec_ms(&self, config: &ResourceConfig) -> f64 {
        self.io_ms + self.work_ms / self.effective_cpu(config) * self.memory_factor(config)
    }

    /// Samples a warm-start execution time with intrinsic and environment
    /// noise applied.
    pub fn sample_exec(
        &self,
        config: &ResourceConfig,
        noise: &NoiseModel,
        rng: &mut SimRng,
    ) -> SimDuration {
        let base = self.base_exec_ms(config);
        let jittered = noise.apply(base, self.exec_cv, rng);
        SimDuration::from_secs_f64((jittered / 1e3).max(1e-6))
    }

    /// Samples the extra latency a cold start adds before execution: boot
    /// plus initialization work at the allocated CPU.
    pub fn sample_cold_start(
        &self,
        config: &ResourceConfig,
        noise: &NoiseModel,
        rng: &mut SimRng,
    ) -> SimDuration {
        let init = self.init_work_ms / self.effective_cpu(config) * self.memory_factor(config);
        let total = noise.apply(self.boot_ms + init, self.exec_cv, rng);
        SimDuration::from_secs_f64((total / 1e3).max(1e-6))
    }
}

/// Registry mapping [`FunctionId`]s to specs for one simulation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FunctionRegistry {
    specs: Vec<FunctionSpec>,
}

impl FunctionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        FunctionRegistry { specs: Vec::new() }
    }

    /// Registers a function, returning its id.
    pub fn register(&mut self, spec: FunctionSpec) -> FunctionId {
        self.specs.push(spec);
        FunctionId(self.specs.len() - 1)
    }

    /// Looks up a function.
    ///
    /// # Panics
    ///
    /// Panics if the id is not from this registry.
    pub fn spec(&self, id: FunctionId) -> &FunctionSpec {
        &self.specs[id.0]
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True if no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Iterates `(id, spec)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FunctionId, &FunctionSpec)> {
        self.specs
            .iter()
            .enumerate()
            .map(|(i, s)| (FunctionId(i), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> NoiseModel {
        NoiseModel::quiet()
    }

    #[test]
    fn more_cpu_is_faster_until_parallelism_cap() {
        let f = FunctionSpec::new("f")
            .with_work_ms(1000.0)
            .with_parallelism(2.0);
        let t1 = f.base_exec_ms(&ResourceConfig::new(1.0, 1024.0, 1));
        let t2 = f.base_exec_ms(&ResourceConfig::new(2.0, 1024.0, 1));
        let t4 = f.base_exec_ms(&ResourceConfig::new(4.0, 1024.0, 1));
        assert!(t2 < t1);
        assert!((t4 - t2).abs() < 1e-9, "beyond the cap CPU does not help");
    }

    #[test]
    fn memory_underprovisioning_slows_down() {
        let f = FunctionSpec::new("f").with_mem_demand(1024.0);
        let ok = f.base_exec_ms(&ResourceConfig::new(1.0, 2048.0, 1));
        let tight = f.base_exec_ms(&ResourceConfig::new(1.0, 512.0, 1));
        assert!(tight > ok);
        assert_eq!(f.memory_factor(&ResourceConfig::new(1.0, 2048.0, 1)), 1.0);
    }

    #[test]
    fn concurrency_divides_resources() {
        let f = FunctionSpec::new("f")
            .with_work_ms(400.0)
            .with_parallelism(4.0);
        let solo = f.base_exec_ms(&ResourceConfig::new(2.0, 2048.0, 1));
        let shared = f.base_exec_ms(&ResourceConfig::new(2.0, 2048.0, 2));
        assert!(shared > solo);
    }

    #[test]
    fn cold_start_slower_with_less_cpu() {
        let f = FunctionSpec::new("f").with_cold_start(500.0, 1000.0);
        let mut rng = SimRng::seed(1);
        let n = quiet();
        let small = f.sample_cold_start(&ResourceConfig::new(0.25, 1024.0, 1), &n, &mut rng);
        let big = f.sample_cold_start(&ResourceConfig::new(4.0, 1024.0, 1), &n, &mut rng);
        assert!(small > big);
    }

    #[test]
    fn io_floor_does_not_scale() {
        let f = FunctionSpec::new("f").with_work_ms(0.0).with_io_ms(80.0);
        let t = f.base_exec_ms(&ResourceConfig::new(4.0, 2048.0, 1));
        assert!((t - 80.0).abs() < 1e-9);
    }

    #[test]
    fn registry_assigns_sequential_ids() {
        let mut reg = FunctionRegistry::new();
        let a = reg.register(FunctionSpec::new("a"));
        let b = reg.register(FunctionSpec::new("b"));
        assert_eq!(a, FunctionId(0));
        assert_eq!(b, FunctionId(1));
        assert_eq!(reg.spec(b).name, "b");
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn sampled_exec_is_positive_and_near_base() {
        let f = FunctionSpec::new("f").with_work_ms(200.0).with_exec_cv(0.0);
        let mut rng = SimRng::seed(2);
        let cfg = ResourceConfig::default();
        let t = f.sample_exec(&cfg, &quiet(), &mut rng);
        assert!((t.as_secs_f64() * 1e3 - f.base_exec_ms(&cfg)).abs() < 1e-6);
    }
}
