//! Identifier newtypes and the per-function resource configuration.

use serde::{Deserialize, Serialize};

use crate::workflow::WorkflowDag;

/// Index of a registered function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FunctionId(pub usize);

/// Index of a worker server (invoker).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WorkerId(pub usize);

/// Unique id of a container instance over a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ContainerId(pub u64);

/// Per-function resource allocation: the knobs AQUATOPE's resource manager
/// optimizes, matching the interface of major FaaS providers (§5.1):
/// CPU, memory, and container concurrency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceConfig {
    /// CPU cores allocated to the container (fractional allowed).
    pub cpu: f64,
    /// Memory limit in MiB.
    pub memory_mb: f64,
    /// Maximum concurrent invocations per container.
    pub concurrency: u32,
}

impl Default for ResourceConfig {
    /// 1 core, 1 GiB, single-invocation containers.
    fn default() -> Self {
        ResourceConfig {
            cpu: 1.0,
            memory_mb: 1024.0,
            concurrency: 1,
        }
    }
}

impl ResourceConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `cpu > 0`, `memory_mb > 0`, and `concurrency >= 1`.
    pub fn new(cpu: f64, memory_mb: f64, concurrency: u32) -> Self {
        assert!(cpu.is_finite() && cpu > 0.0, "cpu must be positive");
        assert!(
            memory_mb.is_finite() && memory_mb > 0.0,
            "memory must be positive"
        );
        assert!(concurrency >= 1, "concurrency must be at least 1");
        ResourceConfig {
            cpu,
            memory_mb,
            concurrency,
        }
    }

    /// CPU share each invocation receives when the container runs at its
    /// configured concurrency.
    pub fn cpu_per_slot(&self) -> f64 {
        self.cpu / self.concurrency as f64
    }

    /// Memory share attributed to each invocation slot.
    pub fn memory_per_slot(&self) -> f64 {
        self.memory_mb / self.concurrency as f64
    }
}

/// The bounds of the resource configuration space used by the resource
/// managers (search space of the BO engine).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfigSpace {
    /// Minimum / maximum CPU cores.
    pub cpu: (f64, f64),
    /// Minimum / maximum memory in MiB.
    pub memory_mb: (f64, f64),
    /// Allowed concurrency settings.
    pub concurrency_max: u32,
}

impl Default for ConfigSpace {
    fn default() -> Self {
        ConfigSpace {
            cpu: (0.25, 4.0),
            memory_mb: (128.0, 3072.0),
            concurrency_max: 4,
        }
    }
}

impl ConfigSpace {
    /// Maps a point in `[0,1]^3` to a configuration, quantizing CPU to
    /// quarter cores, memory to 128-MiB steps and concurrency to whole
    /// slots — the discrete knobs real platforms expose.
    pub fn decode(&self, u: &[f64]) -> ResourceConfig {
        assert!(u.len() >= 3, "need 3 coordinates per stage");
        let q = |v: f64, lo: f64, hi: f64, step: f64| -> f64 {
            let raw = lo + v.clamp(0.0, 1.0) * (hi - lo);
            (raw / step).round() * step
        };
        let cpu = q(u[0], self.cpu.0, self.cpu.1, 0.25).clamp(self.cpu.0, self.cpu.1);
        let mem = q(u[1], self.memory_mb.0, self.memory_mb.1, 128.0)
            .clamp(self.memory_mb.0, self.memory_mb.1);
        let conc = (1.0 + u[2].clamp(0.0, 1.0) * (self.concurrency_max - 1) as f64).round() as u32;
        ResourceConfig::new(cpu, mem, conc.clamp(1, self.concurrency_max))
    }

    /// Enumerates a coarse grid over the space (for oracle search), with
    /// `cpu_steps × mem_steps × concurrency` points.
    pub fn grid(&self, cpu_steps: usize, mem_steps: usize) -> Vec<ResourceConfig> {
        let mut out = Vec::new();
        for ci in 0..cpu_steps {
            for mi in 0..mem_steps {
                for conc in 1..=self.concurrency_max {
                    let u = [
                        ci as f64 / (cpu_steps - 1).max(1) as f64,
                        mi as f64 / (mem_steps - 1).max(1) as f64,
                        (conc - 1) as f64 / (self.concurrency_max - 1).max(1) as f64,
                    ];
                    let cfg = self.decode(&u);
                    if !out.contains(&cfg) {
                        out.push(cfg);
                    }
                }
            }
        }
        out
    }
}

/// Resource configuration for every stage of a workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageConfigs {
    configs: Vec<ResourceConfig>,
}

impl StageConfigs {
    /// One config per stage, in stage order.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    pub fn new(configs: Vec<ResourceConfig>) -> Self {
        assert!(!configs.is_empty(), "need at least one stage config");
        StageConfigs { configs }
    }

    /// The same configuration for every stage of `dag`.
    pub fn uniform(dag: &WorkflowDag, config: ResourceConfig) -> Self {
        StageConfigs {
            configs: vec![config; dag.num_stages()],
        }
    }

    /// Configuration of stage `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn stage(&self, i: usize) -> ResourceConfig {
        self.configs[i]
    }

    /// Number of stages covered.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether there are no configs (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Iterates over per-stage configs.
    pub fn iter(&self) -> impl Iterator<Item = &ResourceConfig> {
        self.configs.iter()
    }

    /// Decodes a flat `[0,1]^{3·stages}` vector into per-stage configs.
    ///
    /// # Panics
    ///
    /// Panics if `u.len() != 3 * stages`.
    pub fn decode(space: &ConfigSpace, u: &[f64]) -> Self {
        assert!(
            u.len().is_multiple_of(3) && !u.is_empty(),
            "need 3 coords per stage"
        );
        let configs = u.chunks(3).map(|c| space.decode(c)).collect();
        StageConfigs { configs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_config_slots() {
        let c = ResourceConfig::new(2.0, 2048.0, 4);
        assert_eq!(c.cpu_per_slot(), 0.5);
        assert_eq!(c.memory_per_slot(), 512.0);
    }

    #[test]
    #[should_panic(expected = "cpu must be positive")]
    fn rejects_zero_cpu() {
        let _ = ResourceConfig::new(0.0, 128.0, 1);
    }

    #[test]
    fn decode_bounds_and_quantization() {
        let space = ConfigSpace::default();
        let lo = space.decode(&[0.0, 0.0, 0.0]);
        assert_eq!(lo.cpu, 0.25);
        assert_eq!(lo.memory_mb, 128.0);
        assert_eq!(lo.concurrency, 1);
        let hi = space.decode(&[1.0, 1.0, 1.0]);
        assert_eq!(hi.cpu, 4.0);
        assert_eq!(hi.memory_mb, 3072.0);
        assert_eq!(hi.concurrency, 4);
        // Quarter-core / 128-MiB quantization.
        let mid = space.decode(&[0.5, 0.5, 0.5]);
        assert!((mid.cpu * 4.0).fract().abs() < 1e-9);
        assert!((mid.memory_mb / 128.0).fract().abs() < 1e-9);
    }

    #[test]
    fn decode_clamps_out_of_range() {
        let space = ConfigSpace::default();
        let c = space.decode(&[-3.0, 7.0, 2.0]);
        assert_eq!(c.cpu, 0.25);
        assert_eq!(c.memory_mb, 3072.0);
        assert_eq!(c.concurrency, 4);
    }

    #[test]
    fn grid_is_deduplicated_and_covers_corners() {
        let space = ConfigSpace::default();
        let grid = space.grid(4, 4);
        assert!(!grid.is_empty());
        let mut unique = grid.clone();
        unique.dedup_by(|a, b| a == b);
        assert_eq!(unique.len(), grid.len());
        assert!(grid.iter().any(|c| c.cpu == 0.25));
        assert!(grid.iter().any(|c| c.cpu == 4.0));
    }

    #[test]
    fn stage_configs_decode_roundtrip() {
        let space = ConfigSpace::default();
        let u = vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let sc = StageConfigs::decode(&space, &u);
        assert_eq!(sc.len(), 2);
        assert_eq!(sc.stage(0).cpu, 0.25);
        assert_eq!(sc.stage(1).cpu, 4.0);
    }
}
