//! Workflow DAGs: multi-stage serverless applications.
//!
//! A workflow is a DAG of stages; each stage invokes one function with a
//! fan-out width (parallel tasks). A stage becomes ready when all its
//! predecessors complete; the workflow completes when every stage does.
//! This models the composition mechanisms of §2.1 (chaining, fan-out /
//! fan-in, and arbitrary combinations).

use serde::{Deserialize, Serialize};

use crate::types::FunctionId;

/// One execution stage of a workflow.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stage {
    /// The function this stage invokes.
    pub function: FunctionId,
    /// Number of parallel tasks (fan-out width within the stage).
    pub tasks: u32,
    /// Indices of stages that must complete before this one starts.
    pub deps: Vec<usize>,
}

impl Stage {
    /// Creates a stage.
    ///
    /// # Panics
    ///
    /// Panics if `tasks == 0`.
    pub fn new(function: FunctionId, tasks: u32, deps: Vec<usize>) -> Self {
        assert!(tasks >= 1, "a stage needs at least one task");
        Stage {
            function,
            tasks,
            deps,
        }
    }
}

/// A validated workflow DAG.
///
/// # Examples
///
/// ```
/// use aqua_faas::{FunctionId, WorkflowDag};
///
/// let dag = WorkflowDag::fan_out_in(
///     "resize",
///     FunctionId(0), // splitter
///     FunctionId(1), // parallel workers
///     4,
///     FunctionId(2), // aggregator
/// );
/// assert_eq!(dag.num_stages(), 3);
/// assert_eq!(dag.stage(1).tasks, 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkflowDag {
    name: String,
    stages: Vec<Stage>,
}

impl WorkflowDag {
    /// Creates a DAG from stages.
    ///
    /// # Panics
    ///
    /// Panics if the stage list is empty, a dependency points forward or to
    /// itself (stages must be topologically ordered), or any dependency
    /// index is out of bounds.
    pub fn new(name: impl Into<String>, stages: Vec<Stage>) -> Self {
        assert!(!stages.is_empty(), "workflow needs at least one stage");
        for (i, s) in stages.iter().enumerate() {
            for &d in &s.deps {
                assert!(d < i, "stage {i} depends on non-earlier stage {d}");
            }
        }
        WorkflowDag {
            name: name.into(),
            stages,
        }
    }

    /// A linear chain: each function depends on the previous one.
    ///
    /// # Panics
    ///
    /// Panics if `functions` is empty.
    pub fn chain(name: impl Into<String>, functions: Vec<FunctionId>) -> Self {
        assert!(!functions.is_empty(), "chain needs at least one function");
        let stages = functions
            .into_iter()
            .enumerate()
            .map(|(i, f)| Stage::new(f, 1, if i == 0 { vec![] } else { vec![i - 1] }))
            .collect();
        WorkflowDag::new(name, stages)
    }

    /// Fan-out/fan-in: `splitter → width × worker → aggregator`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn fan_out_in(
        name: impl Into<String>,
        splitter: FunctionId,
        worker: FunctionId,
        width: u32,
        aggregator: FunctionId,
    ) -> Self {
        WorkflowDag::new(
            name,
            vec![
                Stage::new(splitter, 1, vec![]),
                Stage::new(worker, width, vec![0]),
                Stage::new(aggregator, 1, vec![1]),
            ],
        )
    }

    /// The workflow's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Stage by index.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn stage(&self, i: usize) -> &Stage {
        &self.stages[i]
    }

    /// Iterates over stages in topological order.
    pub fn stages(&self) -> impl Iterator<Item = &Stage> {
        self.stages.iter()
    }

    /// Stages with no dependencies (entry points).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.stages.len())
            .filter(|&i| self.stages[i].deps.is_empty())
            .collect()
    }

    /// For each stage, the stages that depend on it.
    pub fn dependents(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.stages.len()];
        for (i, s) in self.stages.iter().enumerate() {
            for &d in &s.deps {
                out[d].push(i);
            }
        }
        out
    }

    /// Total task count across all stages (invocations per workflow run).
    pub fn total_tasks(&self) -> u32 {
        self.stages.iter().map(|s| s.tasks).sum()
    }

    /// The distinct functions used by this workflow.
    pub fn functions(&self) -> Vec<FunctionId> {
        let mut fns: Vec<FunctionId> = self.stages.iter().map(|s| s.function).collect();
        fns.sort_unstable();
        fns.dedup();
        fns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_links_consecutively() {
        let dag = WorkflowDag::chain("c", vec![FunctionId(0), FunctionId(1), FunctionId(2)]);
        assert_eq!(dag.num_stages(), 3);
        assert_eq!(dag.stage(0).deps, Vec::<usize>::new());
        assert_eq!(dag.stage(2).deps, vec![1]);
        assert_eq!(dag.roots(), vec![0]);
        assert_eq!(dag.total_tasks(), 3);
    }

    #[test]
    fn fan_out_in_shape() {
        let dag = WorkflowDag::fan_out_in("f", FunctionId(0), FunctionId(1), 8, FunctionId(2));
        assert_eq!(dag.stage(1).tasks, 8);
        assert_eq!(dag.dependents()[0], vec![1]);
        assert_eq!(dag.dependents()[1], vec![2]);
        assert_eq!(dag.total_tasks(), 10);
    }

    #[test]
    fn functions_deduplicated() {
        let dag = WorkflowDag::chain("c", vec![FunctionId(1), FunctionId(1), FunctionId(0)]);
        assert_eq!(dag.functions(), vec![FunctionId(0), FunctionId(1)]);
    }

    #[test]
    fn diamond_dag_valid() {
        let dag = WorkflowDag::new(
            "diamond",
            vec![
                Stage::new(FunctionId(0), 1, vec![]),
                Stage::new(FunctionId(1), 2, vec![0]),
                Stage::new(FunctionId(2), 3, vec![0]),
                Stage::new(FunctionId(3), 1, vec![1, 2]),
            ],
        );
        assert_eq!(dag.roots(), vec![0]);
        assert_eq!(dag.dependents()[0], vec![1, 2]);
        assert_eq!(dag.stage(3).deps, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "non-earlier")]
    fn forward_dependency_rejected() {
        let _ = WorkflowDag::new(
            "bad",
            vec![
                Stage::new(FunctionId(0), 1, vec![1]),
                Stage::new(FunctionId(1), 1, vec![]),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_workflow_rejected() {
        let _ = WorkflowDag::new("empty", vec![]);
    }
}
