//! Container instances and their lifecycle states.

use aqua_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::types::{ContainerId, FunctionId, ResourceConfig, WorkerId};

/// Lifecycle state of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContainerState {
    /// Cold boot in progress (runtime setup + init code).
    Booting,
    /// Warm and idle: ready to serve instantly.
    Idle,
    /// At least one invocation slot busy.
    Busy,
}

/// One container instance hosted on a worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Container {
    /// Unique id within the run.
    pub id: ContainerId,
    /// Function whose code this container holds.
    pub function: FunctionId,
    /// Hosting worker.
    pub worker: WorkerId,
    /// Resources reserved for this container.
    pub config: ResourceConfig,
    /// Current lifecycle state.
    pub state: ContainerState,
    /// Creation (boot start) time.
    pub created: SimTime,
    /// When the boot completes / completed.
    pub ready_at: SimTime,
    /// Last time the container finished serving an invocation.
    pub last_used: SimTime,
    /// Invocation slots currently executing.
    pub busy_slots: u32,
    /// Whether the pool created this container ahead of demand.
    pub prewarmed: bool,
}

impl Container {
    /// Free invocation slots (0 while booting).
    pub fn free_slots(&self) -> u32 {
        match self.state {
            ContainerState::Booting => 0,
            _ => self.config.concurrency.saturating_sub(self.busy_slots),
        }
    }

    /// True if the container can accept an invocation right now.
    pub fn can_serve(&self) -> bool {
        self.free_slots() > 0
    }

    /// How long the container has been idle at `now` (zero unless idle).
    pub fn idle_for(&self, now: SimTime) -> aqua_sim::SimDuration {
        if self.state == ContainerState::Idle {
            now.saturating_since(self.last_used)
        } else {
            aqua_sim::SimDuration::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_sim::SimDuration;

    fn container(state: ContainerState, busy: u32, conc: u32) -> Container {
        Container {
            id: ContainerId(1),
            function: FunctionId(0),
            worker: WorkerId(0),
            config: ResourceConfig::new(1.0, 512.0, conc),
            state,
            created: SimTime::ZERO,
            ready_at: SimTime::from_secs(1),
            last_used: SimTime::from_secs(2),
            busy_slots: busy,
            prewarmed: false,
        }
    }

    #[test]
    fn booting_cannot_serve() {
        assert!(!container(ContainerState::Booting, 0, 2).can_serve());
    }

    #[test]
    fn idle_serves() {
        assert!(container(ContainerState::Idle, 0, 1).can_serve());
    }

    #[test]
    fn busy_with_spare_slot_serves() {
        assert!(container(ContainerState::Busy, 1, 2).can_serve());
        assert!(!container(ContainerState::Busy, 2, 2).can_serve());
    }

    #[test]
    fn idle_duration_only_when_idle() {
        let c = container(ContainerState::Idle, 0, 1);
        assert_eq!(
            c.idle_for(SimTime::from_secs(10)),
            SimDuration::from_secs(8)
        );
        let b = container(ContainerState::Busy, 1, 1);
        assert_eq!(b.idle_for(SimTime::from_secs(10)), SimDuration::ZERO);
    }
}
