//! Discrete-event FaaS cluster simulator.
//!
//! This crate is the substitute for the paper's OpenWhisk testbed (see
//! DESIGN.md): an event-driven model of a cluster of invoker servers that
//! host function containers. It reproduces the mechanisms every experiment
//! in the paper exercises:
//!
//! * **container lifecycle** — cold boots, warm reuse, keep-alive reaping,
//!   pre-warm targets ([`Cluster`], [`container`]);
//! * **resource-dependent latency** — per-function execution-time model
//!   with CPU speedup, memory-pressure penalty, cold-start init work
//!   ([`FunctionSpec`]);
//! * **cloud noise** — Gaussian (log-normal) execution jitter plus
//!   heavy-tailed non-Gaussian outliers from colocated background jobs
//!   ([`NoiseModel`]);
//! * **multi-stage workflows** — DAG composition with fan-out/fan-in
//!   ([`WorkflowDag`]);
//! * **cost accounting** — CPU-seconds and GB-seconds, as billed by
//!   production FaaS platforms ([`metrics`]).
//!
//! The event loop lives in [`sim::FaasSim`]; pre-warm policies plug in via
//! [`sim::PrewarmController`].
//!
//! # Examples
//!
//! ```
//! use aqua_faas::prelude::*;
//!
//! // One-function workflow on a 2-worker cluster.
//! let mut registry = FunctionRegistry::new();
//! let f = registry.register(FunctionSpec::new("hello").with_work_ms(50.0));
//! let dag = WorkflowDag::chain("hello-wf", vec![f]);
//! let mut sim = FaasSim::builder()
//!     .workers(2, 8.0, 16_384)
//!     .registry(registry)
//!     .seed(7)
//!     .build();
//! let config = StageConfigs::uniform(&dag, ResourceConfig::default());
//! let arrivals = vec![SimTime::from_secs(1)];
//! let report = sim.run_workflow_trace(&dag, &config, &arrivals, SimTime::from_secs(60));
//! assert_eq!(report.workflows.len(), 1);
//! ```

pub mod cluster;
pub mod container;
pub mod fault;
pub mod function;
pub mod interference;
pub mod metrics;
pub mod runtime;
pub(crate) mod shard;
pub mod sim;
pub mod tenant;
pub mod types;
pub mod workflow;

pub use cluster::{Cluster, ClusterSnapshot};
pub use container::{Container, ContainerState};
pub use fault::{FaultPlan, FaultRates, FaultState, RetryPolicy};
pub use function::{FunctionRegistry, FunctionSpec};
pub use interference::NoiseModel;
pub use metrics::{InvocationRecord, RunReport, WorkflowRecord};
pub use runtime::{BootTicket, ContainerRuntime, RuntimeStats, SimContainerRuntime};
pub use shard::last_parallel_slack;
pub use sim::{
    replacement_target, FaasSim, FaasSimBuilder, FixedPrewarm, FnWindowStats, PoolDecision,
    PoolObservation, PrewarmController, WorkflowJob,
};
pub use tenant::{QosClass, TenantId, TenantPlan};
pub use types::{ContainerId, FunctionId, ResourceConfig, StageConfigs, WorkerId};
pub use workflow::{Stage, WorkflowDag};

/// Re-export of the telemetry layer the simulator emits through.
pub use aqua_telemetry as telemetry;
pub use aqua_telemetry::{EventSink, EvictionReason, FaultKind, SimEvent, Telemetry};

/// Convenient re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::cluster::Cluster;
    pub use crate::fault::{FaultPlan, FaultRates, RetryPolicy};
    pub use crate::function::{FunctionRegistry, FunctionSpec};
    pub use crate::interference::NoiseModel;
    pub use crate::metrics::{InvocationRecord, RunReport, WorkflowRecord};
    pub use crate::sim::{FaasSim, FixedPrewarm, PoolDecision, PoolObservation, PrewarmController};
    pub use crate::types::{FunctionId, ResourceConfig, StageConfigs};
    pub use crate::workflow::{Stage, WorkflowDag};
    pub use aqua_sim::{SimDuration, SimTime};
}
