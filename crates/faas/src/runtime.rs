//! Container boot/kill as service callbacks.
//!
//! The batch simulator drives container lifecycles from inside its own
//! event loop; a long-running control plane needs the same mechanisms as
//! an *imperative* interface it can call from its reactor: "boot a
//! container for function `f` under config `c` and tell me how long that
//! takes and whether it fails", "sample one execution", "kill container
//! `id`". [`ContainerRuntime`] is that interface and
//! [`SimContainerRuntime`] its simulated implementation — the same
//! [`FunctionSpec`] latency model, [`NoiseModel`] jitter, and
//! [`FaultState`] boot-failure stream the simulator uses, behind
//! callbacks.
//!
//! The runtime keeps a **live-container ledger**: every ticket issued by
//! [`ContainerRuntime::boot`] stays on the ledger until explicitly
//! [`ContainerRuntime::kill`]ed (failed boots included — the caller
//! observes the failure when the ticket says so and must reap it). A
//! graceful service shutdown is correct exactly when the ledger drains to
//! zero, which is what the service's shutdown path asserts.

use std::collections::HashMap;

use aqua_sim::{SimDuration, SimRng};

use crate::fault::{FaultPlan, FaultState};
use crate::function::FunctionRegistry;
use crate::interference::NoiseModel;
use crate::types::{ContainerId, FunctionId, ResourceConfig};

/// The outcome of asking the runtime to boot one container.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootTicket {
    /// Ledger id of the new container (live from this moment).
    pub container: ContainerId,
    /// Function the container is specialized for.
    pub function: FunctionId,
    /// Boot latency: cold-start boot plus initialization work under the
    /// requested config.
    pub boot: SimDuration,
    /// True when the boot fails (drawn from the fault plan's dedicated
    /// `boot_fail` stream): the container dies at the moment it would have
    /// turned warm. The caller still owns the ledger entry and must
    /// [`ContainerRuntime::kill`] it when the failure lands.
    pub fails: bool,
}

/// Imperative container lifecycle callbacks for a service control plane.
pub trait ContainerRuntime {
    /// Starts booting a container for `function` under `config`.
    fn boot(&mut self, function: FunctionId, config: &ResourceConfig) -> BootTicket;

    /// Samples one warm execution of `function` under `config`.
    fn exec(&mut self, function: FunctionId, config: &ResourceConfig) -> SimDuration;

    /// Removes `container` from the live ledger. Returns `false` when the
    /// id was not live (double kill or unknown id) — callers treat that as
    /// an accounting bug.
    fn kill(&mut self, container: ContainerId) -> bool;

    /// Containers currently on the ledger (booting, warm, or failed and
    /// not yet reaped).
    fn live(&self) -> usize;

    /// Lifetime counters. The default returns zeros for runtimes that do
    /// not track them.
    fn stats(&self) -> RuntimeStats {
        RuntimeStats::default()
    }
}

/// Lifetime counters of a [`SimContainerRuntime`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Boot tickets issued.
    pub boots: u64,
    /// Tickets issued with `fails = true`.
    pub failed_boots: u64,
    /// Executions sampled.
    pub execs: u64,
    /// Containers killed.
    pub kills: u64,
}

/// Simulated [`ContainerRuntime`]: deterministic given a seed and a fault
/// plan, using the registry's latency model and the noise model's jitter.
#[derive(Debug, Clone)]
pub struct SimContainerRuntime {
    registry: FunctionRegistry,
    noise: NoiseModel,
    boot_rng: SimRng,
    exec_rng: SimRng,
    faults: FaultState,
    next_id: u64,
    live: HashMap<ContainerId, FunctionId>,
    stats: RuntimeStats,
}

impl SimContainerRuntime {
    /// A runtime over `registry` with `noise` jitter, fault draws from
    /// `faults`, and all sampling streams forked from `seed`.
    ///
    /// Boot and exec latencies draw from **separate** forked streams, so
    /// the mix of boots vs execs a workload happens to issue never
    /// perturbs either sequence — the same position-stability contract the
    /// fault layer keeps.
    pub fn new(
        registry: FunctionRegistry,
        noise: NoiseModel,
        seed: u64,
        faults: &FaultPlan,
    ) -> Self {
        let root = SimRng::seed(seed);
        SimContainerRuntime {
            registry,
            noise,
            boot_rng: root.fork("svc-boot"),
            exec_rng: root.fork("svc-exec"),
            faults: FaultState::new(faults),
            next_id: 0,
            live: HashMap::new(),
            stats: RuntimeStats::default(),
        }
    }

    /// The function registry this runtime serves.
    pub fn registry(&self) -> &FunctionRegistry {
        &self.registry
    }

    /// The function a live container serves, if the id is on the ledger.
    pub fn function_of(&self, container: ContainerId) -> Option<FunctionId> {
        self.live.get(&container).copied()
    }

    /// Live container ids in ledger order (sorted; for deterministic
    /// shutdown sweeps).
    pub fn live_ids(&self) -> Vec<ContainerId> {
        let mut ids: Vec<ContainerId> = self.live.keys().copied().collect();
        ids.sort();
        ids
    }
}

impl ContainerRuntime for SimContainerRuntime {
    fn boot(&mut self, function: FunctionId, config: &ResourceConfig) -> BootTicket {
        let spec = self.registry.spec(function);
        let boot = spec.sample_cold_start(config, &self.noise, &mut self.boot_rng);
        let fails = self.faults.next_boot_fail();
        let container = ContainerId(self.next_id);
        self.next_id += 1;
        self.live.insert(container, function);
        self.stats.boots += 1;
        if fails {
            self.stats.failed_boots += 1;
        }
        BootTicket {
            container,
            function,
            boot,
            fails,
        }
    }

    fn exec(&mut self, function: FunctionId, config: &ResourceConfig) -> SimDuration {
        self.stats.execs += 1;
        self.registry
            .spec(function)
            .sample_exec(config, &self.noise, &mut self.exec_rng)
    }

    fn kill(&mut self, container: ContainerId) -> bool {
        let removed = self.live.remove(&container).is_some();
        if removed {
            self.stats.kills += 1;
        }
        removed
    }

    fn live(&self) -> usize {
        self.live.len()
    }

    fn stats(&self) -> RuntimeStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultRates;
    use crate::function::FunctionSpec;

    fn runtime(seed: u64, faults: &FaultPlan) -> SimContainerRuntime {
        let mut reg = FunctionRegistry::new();
        reg.register(FunctionSpec::new("f").with_cold_start(500.0, 200.0));
        SimContainerRuntime::new(reg, NoiseModel::quiet(), seed, faults)
    }

    #[test]
    fn ledger_conserves_boot_minus_kill() {
        let mut rt = runtime(1, &FaultPlan::disabled());
        let cfg = ResourceConfig::default();
        let tickets: Vec<BootTicket> = (0..5).map(|_| rt.boot(FunctionId(0), &cfg)).collect();
        assert_eq!(rt.live(), 5);
        for t in &tickets {
            assert!(rt.kill(t.container));
        }
        assert_eq!(rt.live(), 0);
        assert_eq!(rt.stats().boots, 5);
        assert_eq!(rt.stats().kills, 5);
    }

    #[test]
    fn double_kill_is_reported() {
        let mut rt = runtime(1, &FaultPlan::disabled());
        let t = rt.boot(FunctionId(0), &ResourceConfig::default());
        assert!(rt.kill(t.container));
        assert!(!rt.kill(t.container), "second kill of the same id");
        assert_eq!(rt.stats().kills, 1);
    }

    #[test]
    fn deterministic_given_seed_and_plan() {
        let plan = FaultPlan::from_seed(
            7,
            FaultRates {
                boot_fail: 0.3,
                ..FaultRates::default()
            },
        );
        let mut a = runtime(42, &plan);
        let mut b = runtime(42, &plan);
        let cfg = ResourceConfig::default();
        for _ in 0..50 {
            let ta = a.boot(FunctionId(0), &cfg);
            let tb = b.boot(FunctionId(0), &cfg);
            assert_eq!(ta, tb);
            assert_eq!(a.exec(FunctionId(0), &cfg), b.exec(FunctionId(0), &cfg));
        }
    }

    #[test]
    fn boot_and_exec_streams_are_independent() {
        // Interleaving execs must not change the boot latency sequence.
        let mut pure = runtime(9, &FaultPlan::disabled());
        let mut mixed = runtime(9, &FaultPlan::disabled());
        let cfg = ResourceConfig::default();
        for _ in 0..20 {
            let _ = mixed.exec(FunctionId(0), &cfg);
            assert_eq!(
                pure.boot(FunctionId(0), &cfg).boot,
                mixed.boot(FunctionId(0), &cfg).boot
            );
        }
    }

    #[test]
    fn zero_rate_plan_never_fails_a_boot() {
        let mut rt = runtime(3, &FaultPlan::disabled());
        let cfg = ResourceConfig::default();
        for _ in 0..500 {
            assert!(!rt.boot(FunctionId(0), &cfg).fails);
        }
    }

    #[test]
    fn fault_plan_drives_failed_boot_counter() {
        let plan = FaultPlan::from_seed(
            5,
            FaultRates {
                boot_fail: 0.5,
                ..FaultRates::default()
            },
        );
        let mut rt = runtime(3, &plan);
        let cfg = ResourceConfig::default();
        let fails = (0..200)
            .filter(|_| rt.boot(FunctionId(0), &cfg).fails)
            .count() as u64;
        assert!(fails > 50, "rate 0.5 over 200 draws fired only {fails}×");
        assert_eq!(rt.stats().failed_boots, fails);
    }
}
