//! Parallel per-invoker-group event loops with conservative time windows.
//!
//! A sharded run splits the cluster into `n` independent event loops
//! ("shards"): shard `s` owns a contiguous slice of the workers plus every
//! function with `id % n == s`, and runs its own future-event list, RNG
//! stream, and fault streams (forked from the run seed by shard id). The
//! driver below advances all shards in parallel inside conservative time
//! windows and exchanges cross-shard stage handoffs at window boundaries,
//! so the result is a deterministic function of `(workload, seed, n)` —
//! independent of `AQUA_THREADS` and of scheduling order on the host.
//!
//! # Determinism contract
//!
//! * Within a window `[t, bound)` no shard can influence another: tasks of
//!   a function only ever run on its owner shard, and inter-stage handoffs
//!   travel through per-shard outboxes that are drained — in (shard,
//!   emission-order) order — only when every shard has reached `bound`.
//! * `bound` is the earlier of the next pool tick and the next
//!   synchronization-quantum boundary after the earliest pending event, so
//!   windows self-pace: dense regions synchronize every quantum
//!   ([`SYNC_QUANTUM_SECS`] simulated seconds), idle regions fast-forward
//!   tick to tick.
//! * Messages are enqueued on the receiver exactly at `bound`. Every
//!   receiver clock is strictly below `bound`, so delivery never clamps
//!   and cross-shard handoffs quantize to at most one synchronization
//!   window (≤ [`SYNC_QUANTUM_SECS`] s of simulated time).
//! * Pool ticks run on the driver thread between windows: per-function
//!   window stats are summed across shards in registry id order, the
//!   controller sees one global [`PoolObservation`], and its decisions are
//!   applied on each function's owner shard in decision order.
//!
//! `shards(1)` bypasses this module entirely and is bit-identical to the
//! sequential simulator. Each `n >= 2` is its own deterministic model —
//! statistically equivalent but not event-for-event identical to `n = 1`,
//! because fault/noise streams fork per shard and handoffs quantize.

use std::sync::atomic::{AtomicU64, Ordering};

use aqua_sim::{par_map_owned, SimDuration, SimTime};
use aqua_telemetry::{SimEvent, Telemetry};

use crate::cluster::ClusterSnapshot;
use crate::metrics::RunReport;
use crate::sim::{
    FaasSimBuilder, FnWindowStats, PoolObservation, PrewarmController, RunState, WorkflowJob,
};

/// Synchronization quantum: cross-shard handoffs quantize to at most one
/// quantum of simulated time. Wider quanta amortize the per-window barrier
/// (and the max-vs-mean shard load noise it serializes) over more events;
/// narrower quanta tighten cross-shard latency fidelity. Two seconds keeps
/// chain-handoff error well under typical cold-start magnitudes while
/// roughly halving the barrier count of a 1 s quantum.
const SYNC_QUANTUM_SECS: u64 = 2;

/// Floors a time to the synchronization quantum containing it.
fn floor_to_quantum(t: SimTime) -> SimTime {
    let q = 1_000_000 * SYNC_QUANTUM_SECS;
    SimTime::from_micros(t.as_micros() / q * q)
}

/// Parallelizable slack of the most recent sharded run in this process,
/// in microseconds: the per-window sum over shards of advance time minus
/// the per-window maximum, accumulated across all windows.
static LAST_PARALLEL_SLACK_MICROS: AtomicU64 = AtomicU64::new(0);

/// Wall-clock time the most recent sharded run spent advancing shards
/// that could have overlapped with the slowest shard of the same window,
/// had each shard run on its own core. `wall - slack` is the run's
/// critical path: the wall-clock a host with at least `shards` idle cores
/// approaches. Purely observational — it never influences simulation
/// results — and only meaningful right after a `shards >= 2` run.
pub fn last_parallel_slack() -> std::time::Duration {
    std::time::Duration::from_micros(LAST_PARALLEL_SLACK_MICROS.load(Ordering::Relaxed))
}

/// Runs `jobs` under `controller` across `params.shards` parallel event
/// loops. See the module docs for the synchronization protocol.
pub(crate) fn run_sharded(
    params: &FaasSimBuilder,
    jobs: &[WorkflowJob],
    controller: &mut dyn PrewarmController,
    horizon: SimTime,
) -> RunReport {
    let n = params.shards;
    assert!(n >= 2, "sharded driver needs at least two shards");
    assert!(
        params.workers >= n,
        "need at least one worker per shard ({} workers, {n} shards)",
        params.workers
    );

    // Each shard records telemetry locally; the driver merges the streams
    // time-sorted into the run's sink at the end.
    let mut recorders = Vec::with_capacity(n);
    let mut shards: Vec<RunState<'_>> = Vec::with_capacity(n);
    for s in 0..n {
        let (telemetry, recorder) = if params.telemetry.is_enabled() {
            let (t, r) = Telemetry::recording();
            (t, Some(r))
        } else {
            (Telemetry::disabled(), None)
        };
        recorders.push(recorder);
        shards.push(RunState::new_shard(params, jobs, s, n, telemetry));
    }

    let quantum = SimDuration::from_secs(SYNC_QUANTUM_SECS);
    let mut next_tick = SimTime::ZERO + params.tick;
    let mut pool_snapshots: Vec<(SimTime, f64)> = Vec::new();
    let mut slack_secs = 0.0f64;

    loop {
        let min_peek = shards.iter().filter_map(|s| s.queue.peek_time()).min();
        let event_bound = min_peek
            .filter(|t| *t <= horizon)
            .map(|t| floor_to_quantum(t) + quantum);
        let tick_due = next_tick <= horizon;
        let bound = match (event_bound, tick_due) {
            (Some(eb), true) => eb.min(next_tick),
            (Some(eb), false) => eb,
            (None, true) => next_tick,
            (None, false) => break,
        };

        // Advance every shard to the bound in parallel. Each shard is a
        // deterministic sequential loop over its own state, so the result
        // is identical for any thread count.
        let timed = par_map_owned(std::mem::take(&mut shards), |_, mut st| {
            let t0 = std::time::Instant::now();
            st.advance_until(bound, horizon);
            (st, t0.elapsed().as_secs_f64())
        });
        let (mut sum, mut max) = (0.0f64, 0.0f64);
        shards = timed
            .into_iter()
            .map(|(st, dt)| {
                sum += dt;
                max = max.max(dt);
                st
            })
            .collect();
        slack_secs += sum - max;

        // Exchange cross-shard handoffs at the boundary, in (sender shard,
        // emission order) — a total order, independent of host scheduling.
        let mut msgs = Vec::new();
        for st in shards.iter_mut() {
            msgs.append(&mut st.outbox);
        }
        for msg in msgs {
            shards[msg.to()].deliver(msg, bound);
        }

        // Pool ticks run globally on the driver thread.
        if tick_due && bound == next_tick {
            let now = next_tick;
            let stats: Vec<FnWindowStats> = params
                .registry
                .iter()
                .map(|(fid, _)| {
                    // A function's tasks and containers live only on its
                    // owner shard, so summing recovers the global stats.
                    let mut acc = FnWindowStats {
                        function: fid,
                        invocations: 0,
                        peak_concurrency: 0,
                        booting: 0,
                        idle: 0,
                        busy: 0,
                        failed_boots: 0,
                    };
                    for st in &shards {
                        let s = st.stats_for(fid);
                        acc.invocations += s.invocations;
                        acc.peak_concurrency += s.peak_concurrency;
                        acc.booting += s.booting;
                        acc.idle += s.idle;
                        acc.busy += s.busy;
                        acc.failed_boots += s.failed_boots;
                    }
                    acc
                })
                .collect();
            let cluster = shards.iter().fold(
                ClusterSnapshot {
                    reserved_memory_mb: 0.0,
                    total_memory_mb: 0.0,
                    containers: 0,
                },
                |acc, st| {
                    let snap = st.cluster.snapshot();
                    ClusterSnapshot {
                        reserved_memory_mb: acc.reserved_memory_mb + snap.reserved_memory_mb,
                        total_memory_mb: acc.total_memory_mb + snap.total_memory_mb,
                        containers: acc.containers + snap.containers,
                    }
                },
            );
            pool_snapshots.push((now, cluster.reserved_memory_mb));
            let obs = PoolObservation {
                now,
                window: params.tick,
                stats,
                cluster,
            };
            let decisions = controller.tick(&obs);
            for d in decisions {
                shards[d.function.0 % n].apply_decision(&d, now);
            }
            for st in shards.iter_mut() {
                st.clear_window();
                st.drain_pending(now);
            }
            next_tick += params.tick;
        }
    }

    // Per-shard epilogue — resource-integral finalization and dense
    // per-instance counter folds — is shard-local, so it runs in the same
    // parallel regime as the windows (and earns the same overlap credit).
    let total_insts: usize = jobs.iter().map(|j| j.arrivals.len()).sum();
    let timed = par_map_owned(std::mem::take(&mut shards), |_, mut st| {
        let t0 = std::time::Instant::now();
        st.cluster.finalize(horizon);
        let fold = st.instance_fold(total_insts);
        ((st, fold), t0.elapsed().as_secs_f64())
    });
    let (mut sum, mut max) = (0.0f64, 0.0f64);
    let mut folds = Vec::with_capacity(n);
    shards = timed
        .into_iter()
        .map(|((st, fold), dt)| {
            sum += dt;
            max = max.max(dt);
            folds.push(fold);
            st
        })
        .collect();
    slack_secs += sum - max;

    let report = merge_reports(
        params,
        jobs,
        shards,
        folds,
        recorders,
        pool_snapshots,
        horizon,
        &mut slack_secs,
    );
    LAST_PARALLEL_SLACK_MICROS.store((slack_secs * 1e6) as u64, Ordering::Relaxed);
    report
}

/// Folds the per-shard run states into one [`RunReport`] and replays the
/// per-shard telemetry streams time-sorted into the run's sink.
#[allow(clippy::too_many_arguments)]
fn merge_reports(
    params: &FaasSimBuilder,
    jobs: &[WorkflowJob],
    mut shards: Vec<RunState<'_>>,
    folds: Vec<(Vec<u32>, Vec<u32>, Vec<bool>)>,
    recorders: Vec<Option<std::sync::Arc<std::sync::Mutex<aqua_telemetry::Recorder>>>>,
    pool_snapshots: Vec<(SimTime, f64)>,
    horizon: SimTime,
    slack_secs: &mut f64,
) -> RunReport {
    let n = shards.len();
    let mut report = RunReport {
        pool_snapshots,
        ..RunReport::default()
    };
    let mut inv_lists = Vec::with_capacity(n);
    let mut wf_lists = Vec::with_capacity(n);
    for st in shards.iter_mut() {
        report.cpu_core_seconds += st.cluster.cpu_core_seconds();
        report.memory_gb_seconds += st.cluster.memory_gb_seconds();
        report.busy_memory_gb_seconds += st.cluster.busy_memory_gb_seconds();
        report.events_processed += st.report.events_processed;
        inv_lists.push(std::mem::take(&mut st.report.invocations));
        wf_lists.push(std::mem::take(&mut st.report.workflows));
    }
    // Global record order: time-major, ties broken by shard index. Each
    // shard emits invocation records in its own (monotone) clock order, so
    // a stable pairwise merge tree of the already-sorted lists replaces a
    // full sort — and its inner rounds overlap given enough cores.
    // Workflow records carry true completion times that can trail a
    // shard's clock by up to one handoff window, so they get a stable
    // sort (cheap: the concatenation is nearly sorted).
    report.invocations = merge_sorted(inv_lists, |r| r.started, slack_secs);
    for mut wf in wf_lists {
        report.workflows.append(&mut wf);
    }
    report.workflows.sort_by_key(|w| w.finished);

    // Cold-start / invocation counters accrue on the shards that executed
    // the stages, while workflow records are written on the instance's
    // home shard — recombine them per global instance.
    let mut folds = folds.into_iter();
    let (mut cold, mut invs, mut rejected) = folds.next().expect("at least two shards");
    for (c, i, r) in folds {
        for (acc, v) in cold.iter_mut().zip(c) {
            *acc += v;
        }
        for (acc, v) in invs.iter_mut().zip(i) {
            *acc += v;
        }
        for (acc, v) in rejected.iter_mut().zip(r) {
            *acc |= v;
        }
    }
    for w in &mut report.workflows {
        w.cold_starts = cold[w.instance];
        w.invocations = invs[w.instance];
    }

    // Completion lives on the home shard; rejection on whichever owner
    // shard exhausted a task's retries.
    let mut base = 0usize;
    for (ji, job) in jobs.iter().enumerate() {
        let home = job.dag.stage(job.dag.roots()[0]).function.0 % n;
        let done = &shards[home].instances[ji];
        for (ii, &arrived) in job.arrivals.iter().enumerate() {
            if arrived > horizon {
                continue;
            }
            if !done[ii].done {
                report.unfinished += 1;
            }
            if rejected[base + ii] {
                report.rejected += 1;
            }
        }
        base += job.arrivals.len();
    }

    if params.telemetry.is_enabled() {
        let mut events: Vec<SimEvent> = recorders
            .iter()
            .flatten()
            .flat_map(|r| r.lock().unwrap().events())
            .collect();
        // Stable by-time sort: equal-time events keep shard order, which
        // preserves each shard's causal order (per-container and
        // per-worker sequences never span shards).
        events.sort_by_key(|e| e.at());
        for e in &events {
            params.telemetry.emit(e);
        }
        params.telemetry.flush();
    }
    report
}

/// Merges `n` lists, each already sorted by `key`, into one list sorted by
/// `(key, list index)` — time-major, ties resolved in shard order, exactly
/// the order a stable sort of the concatenation would produce. Uses a
/// bottom-up pairwise merge tree; each round's merges are independent, so
/// they run through [`par_map_owned`] and the overlapped time is credited
/// to `slack_secs` like any other shard-parallel work.
fn merge_sorted<T: Send, K: Ord>(
    mut lists: Vec<Vec<T>>,
    key: impl Fn(&T) -> K + Sync,
    slack_secs: &mut f64,
) -> Vec<T> {
    while lists.len() > 1 {
        let mut pairs = Vec::with_capacity(lists.len().div_ceil(2));
        let mut it = lists.into_iter();
        while let Some(a) = it.next() {
            pairs.push((a, it.next()));
        }
        let timed = par_map_owned(pairs, |_, (a, b)| {
            let t0 = std::time::Instant::now();
            let merged = match b {
                Some(b) => merge_pair(a, b, &key),
                None => a,
            };
            (merged, t0.elapsed().as_secs_f64())
        });
        let (mut sum, mut max) = (0.0f64, 0.0f64);
        lists = timed
            .into_iter()
            .map(|(m, dt)| {
                sum += dt;
                max = max.max(dt);
                m
            })
            .collect();
        *slack_secs += sum - max;
    }
    lists.pop().unwrap_or_default()
}

/// Stable two-way merge: ties take from `a` (the lower shard indices).
fn merge_pair<T, K: Ord>(a: Vec<T>, b: Vec<T>, key: &(impl Fn(&T) -> K + Sync)) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ia = a.into_iter().peekable();
    let mut ib = b.into_iter().peekable();
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(x), Some(y)) => {
                if key(y) < key(x) {
                    out.push(ib.next().expect("peeked"));
                } else {
                    out.push(ia.next().expect("peeked"));
                }
            }
            (Some(_), None) => {
                out.extend(ia);
                break;
            }
            (None, _) => {
                out.extend(ib);
                break;
            }
        }
    }
    out
}
