//! The worker cluster: container placement, warm-pool bookkeeping, and
//! resource-time accounting.

use std::collections::HashMap;

use aqua_sim::{SimDuration, SimTime};
use aqua_telemetry::{EvictionReason, SimEvent, Telemetry};
use serde::{Deserialize, Serialize};

use crate::container::{Container, ContainerState};
use crate::types::{ContainerId, FunctionId, ResourceConfig, WorkerId};

/// One invoker server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Worker {
    id: WorkerId,
    cpu_capacity: f64,
    memory_capacity_mb: f64,
    memory_used_mb: f64,
}

impl Worker {
    fn free_memory(&self) -> f64 {
        self.memory_capacity_mb - self.memory_used_mb
    }
}

/// Aggregate cluster state handed to pool policies each tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSnapshot {
    /// Total memory reserved by containers, MiB.
    pub reserved_memory_mb: f64,
    /// Total cluster memory, MiB.
    pub total_memory_mb: f64,
    /// Number of live containers.
    pub containers: usize,
}

/// The simulated cluster of invoker servers.
///
/// All memory-time and CPU-time integrals are maintained here so every
/// experiment reports resource usage the same way.
#[derive(Debug, Clone)]
pub struct Cluster {
    workers: Vec<Worker>,
    /// Global id of `workers[0]` — non-zero when this cluster is one shard
    /// of a partitioned run.
    worker_base: usize,
    containers: HashMap<ContainerId, Container>,
    /// Live container ids per function (`by_function[fid.0]`), so the hot
    /// lookups (`find_warm`, `find_booting`, `counts`, reaping) touch only
    /// the function's own containers instead of scanning the whole map.
    by_function: Vec<Vec<ContainerId>>,
    next_id: u64,
    /// Container-id step — the shard count in a partitioned run, so every
    /// shard mints globally unique ids.
    id_stride: u64,
    // Resource-time integrals (updated lazily at every state change).
    last_account: SimTime,
    reserved_mb_now: f64,
    busy_cpu_now: f64,
    busy_mem_mb_now: f64,
    memory_mb_seconds: f64,
    cpu_core_seconds: f64,
    busy_memory_mb_seconds: f64,
    telemetry: Telemetry,
}

impl Cluster {
    /// Creates a cluster of `n` identical workers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or capacities are non-positive.
    pub fn new(n: usize, cpu_per_worker: f64, memory_mb_per_worker: f64) -> Self {
        Cluster::new_partition(n, cpu_per_worker, memory_mb_per_worker, 0, 0, 1)
    }

    /// Creates one shard of a partitioned cluster: `n` workers whose global
    /// ids start at `worker_base`, minting container ids
    /// `container_base, container_base + stride, …` so ids never collide
    /// across shards.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, capacities are non-positive, or `stride == 0`.
    pub fn new_partition(
        n: usize,
        cpu_per_worker: f64,
        memory_mb_per_worker: f64,
        worker_base: usize,
        container_base: u64,
        stride: u64,
    ) -> Self {
        assert!(n > 0, "need at least one worker");
        assert!(
            cpu_per_worker > 0.0 && memory_mb_per_worker > 0.0,
            "capacities must be positive"
        );
        assert!(stride > 0, "container-id stride must be positive");
        Cluster {
            workers: (0..n)
                .map(|i| Worker {
                    id: WorkerId(worker_base + i),
                    cpu_capacity: cpu_per_worker,
                    memory_capacity_mb: memory_mb_per_worker,
                    memory_used_mb: 0.0,
                })
                .collect(),
            worker_base,
            containers: HashMap::new(),
            by_function: Vec::new(),
            next_id: container_base,
            id_stride: stride,
            last_account: SimTime::ZERO,
            reserved_mb_now: 0.0,
            busy_cpu_now: 0.0,
            busy_mem_mb_now: 0.0,
            memory_mb_seconds: 0.0,
            cpu_core_seconds: 0.0,
            busy_memory_mb_seconds: 0.0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Routes this cluster's container-lifecycle events to `telemetry`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    fn account(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_account).as_secs_f64();
        if dt > 0.0 {
            self.memory_mb_seconds += self.reserved_mb_now * dt;
            self.cpu_core_seconds += self.busy_cpu_now * dt;
            self.busy_memory_mb_seconds += self.busy_mem_mb_now * dt;
            self.last_account = now;
        } else if now > self.last_account {
            self.last_account = now;
        }
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Live container count.
    pub fn num_containers(&self) -> usize {
        self.containers.len()
    }

    /// Looks up a container.
    pub fn container(&self, id: ContainerId) -> Option<&Container> {
        self.containers.get(&id)
    }

    /// The live-container index slice for `function` (possibly empty).
    fn fn_index(&self, function: FunctionId) -> &[ContainerId] {
        self.by_function
            .get(function.0)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Starts booting a container for `function` with `config`; the boot
    /// completes `boot_time` later (caller schedules the event). Returns
    /// `None` if no worker has enough free memory.
    pub fn boot_container(
        &mut self,
        function: FunctionId,
        config: ResourceConfig,
        now: SimTime,
        boot_time: SimDuration,
        prewarmed: bool,
    ) -> Option<ContainerId> {
        self.account(now);
        // Place on the worker with the most free memory (balance).
        let worker = self
            .workers
            .iter_mut()
            .filter(|w| w.free_memory() >= config.memory_mb)
            .max_by(|a, b| {
                a.free_memory()
                    .partial_cmp(&b.free_memory())
                    .expect("finite")
            })?;
        worker.memory_used_mb += config.memory_mb;
        let wid = worker.id;
        self.reserved_mb_now += config.memory_mb;
        let id = ContainerId(self.next_id);
        self.next_id += self.id_stride;
        if self.by_function.len() <= function.0 {
            self.by_function.resize(function.0 + 1, Vec::new());
        }
        self.by_function[function.0].push(id);
        self.telemetry.emit_with(|| SimEvent::ColdStartBegin {
            at: now,
            function: function.0,
            container: id.0,
            worker: wid.0,
            memory_mb: config.memory_mb,
            slots: config.concurrency,
            prewarmed,
        });
        self.containers.insert(
            id,
            Container {
                id,
                function,
                worker: wid,
                config,
                state: ContainerState::Booting,
                created: now,
                ready_at: now + boot_time,
                last_used: now + boot_time,
                busy_slots: 0,
                prewarmed,
            },
        );
        Some(id)
    }

    /// Marks a booted container warm and idle.
    ///
    /// # Panics
    ///
    /// Panics if the container is unknown or not booting.
    pub fn boot_complete(&mut self, id: ContainerId, now: SimTime) {
        self.account(now);
        let c = self.containers.get_mut(&id).expect("unknown container");
        assert_eq!(c.state, ContainerState::Booting, "container not booting");
        c.state = ContainerState::Idle;
        c.ready_at = now;
        c.last_used = now;
    }

    /// Finds a warm container for `function` with a free slot and matching
    /// resource configuration, preferring the most recently used (better
    /// cache locality, standard practice).
    pub fn find_warm(&self, function: FunctionId, config: &ResourceConfig) -> Option<ContainerId> {
        self.fn_index(function)
            .iter()
            .map(|id| &self.containers[id])
            .filter(|c| c.config == *config && c.can_serve())
            .max_by_key(|c| (c.last_used, c.id.0))
            .map(|c| c.id)
    }

    /// Finds a booting container for `function` (matching `config`) that
    /// still has unclaimed future capacity (used to piggyback an arriving
    /// invocation on an in-flight pre-warm instead of booting again).
    pub fn find_booting(
        &self,
        function: FunctionId,
        config: &ResourceConfig,
        claimed: &HashMap<ContainerId, u32>,
    ) -> Option<ContainerId> {
        self.fn_index(function)
            .iter()
            .map(|id| &self.containers[id])
            .filter(|c| {
                c.config == *config
                    && c.state == ContainerState::Booting
                    && claimed.get(&c.id).copied().unwrap_or(0) < c.config.concurrency
            })
            .min_by_key(|c| (c.ready_at, c.id.0))
            .map(|c| c.id)
    }

    /// Occupies one invocation slot.
    ///
    /// # Panics
    ///
    /// Panics if the container cannot serve (booting or full).
    pub fn assign(&mut self, id: ContainerId, now: SimTime) {
        self.account(now);
        let c = self.containers.get_mut(&id).expect("unknown container");
        assert!(c.can_serve(), "container cannot serve");
        c.busy_slots += 1;
        c.state = ContainerState::Busy;
        self.busy_cpu_now += c.config.cpu_per_slot();
        self.busy_mem_mb_now += c.config.memory_per_slot();
    }

    /// Releases one invocation slot.
    ///
    /// # Panics
    ///
    /// Panics if the container is unknown or has no busy slots.
    pub fn release(&mut self, id: ContainerId, now: SimTime) {
        self.account(now);
        let c = self.containers.get_mut(&id).expect("unknown container");
        assert!(c.busy_slots > 0, "release on an idle container");
        c.busy_slots -= 1;
        self.busy_cpu_now -= c.config.cpu_per_slot();
        self.busy_mem_mb_now -= c.config.memory_per_slot();
        if c.busy_slots == 0 {
            c.state = ContainerState::Idle;
            c.last_used = now;
        }
    }

    /// Destroys a container, freeing its memory. `reason` is recorded in
    /// the telemetry trace.
    ///
    /// # Panics
    ///
    /// Panics if the container is unknown or currently busy.
    pub fn kill(&mut self, id: ContainerId, now: SimTime, reason: EvictionReason) {
        self.account(now);
        let c = self.containers.remove(&id).expect("unknown container");
        assert_eq!(c.busy_slots, 0, "cannot kill a busy container");
        self.by_function[c.function.0].retain(|cid| *cid != id);
        let w = &mut self.workers[c.worker.0 - self.worker_base];
        w.memory_used_mb -= c.config.memory_mb;
        self.reserved_mb_now -= c.config.memory_mb;
        self.telemetry.emit_with(|| SimEvent::Eviction {
            at: now,
            function: c.function.0,
            container: c.id.0,
            worker: c.worker.0,
            memory_mb: c.config.memory_mb,
            reason,
        });
    }

    /// Destroys a container killed by an injected fault (OOM / crash),
    /// force-releasing any in-flight invocation slots — their work dies
    /// with the container. Unlike [`Cluster::kill`] this accepts busy
    /// containers; the caller is responsible for rescheduling the lost
    /// invocations.
    ///
    /// # Panics
    ///
    /// Panics if the container is unknown.
    pub fn kill_faulted(&mut self, id: ContainerId, now: SimTime) {
        self.account(now);
        {
            let c = self.containers.get_mut(&id).expect("unknown container");
            self.busy_cpu_now -= c.config.cpu_per_slot() * c.busy_slots as f64;
            self.busy_mem_mb_now -= c.config.memory_per_slot() * c.busy_slots as f64;
            c.busy_slots = 0;
        }
        self.kill(id, now, EvictionReason::Fault);
    }

    /// Kills idle containers of `function` idle for longer than
    /// `keep_alive`. Returns the number killed.
    pub fn reap_idle(
        &mut self,
        function: FunctionId,
        keep_alive: SimDuration,
        now: SimTime,
    ) -> usize {
        let mut victims: Vec<ContainerId> = self
            .fn_index(function)
            .iter()
            .map(|id| &self.containers[id])
            .filter(|c| c.state == ContainerState::Idle && c.idle_for(now) > keep_alive)
            .map(|c| c.id)
            .collect();
        // Index order is insertion order, not id order; kill in id order so
        // accounting and the event trace are bit-for-bit reproducible.
        victims.sort_unstable_by_key(|id| id.0);
        for id in &victims {
            self.kill(*id, now, EvictionReason::KeepAlive);
        }
        victims.len()
    }

    /// Kills up to `count` idle containers of `function`, newest-idle first
    /// (used to shrink an over-provisioned pre-warm pool).
    pub fn shrink_idle(&mut self, function: FunctionId, count: usize, now: SimTime) -> usize {
        let mut idle: Vec<(SimTime, ContainerId)> = self
            .fn_index(function)
            .iter()
            .map(|id| &self.containers[id])
            .filter(|c| c.state == ContainerState::Idle)
            .map(|c| (c.last_used, c.id))
            .collect();
        // Newest first: keep the containers most likely to be cache-warm.
        idle.sort_by_key(|(t, id)| (std::cmp::Reverse(*t), id.0));
        let n = count.min(idle.len());
        for (_, id) in idle.iter().take(n) {
            self.kill(*id, now, EvictionReason::Shrink);
        }
        n
    }

    /// Evicts least-recently-used idle containers (of any function) until a
    /// worker can host `memory_mb` more, or no idle containers remain.
    /// Returns true on success.
    pub fn evict_for(&mut self, memory_mb: f64, now: SimTime) -> bool {
        loop {
            if self.workers.iter().any(|w| w.free_memory() >= memory_mb) {
                return true;
            }
            let victim = self
                .containers
                .values()
                .filter(|c| c.state == ContainerState::Idle)
                .min_by_key(|c| (c.last_used, c.id.0))
                .map(|c| c.id);
            match victim {
                Some(id) => self.kill(id, now, EvictionReason::Pressure),
                None => return false,
            }
        }
    }

    /// Counts per-state containers of `function`: `(booting, idle, busy)`.
    pub fn counts(&self, function: FunctionId) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for c in self
            .fn_index(function)
            .iter()
            .map(|id| &self.containers[id])
        {
            match c.state {
                ContainerState::Booting => counts.0 += 1,
                ContainerState::Idle => counts.1 += 1,
                ContainerState::Busy => counts.2 += 1,
            }
        }
        counts
    }

    /// Snapshot for pool policies.
    pub fn snapshot(&self) -> ClusterSnapshot {
        ClusterSnapshot {
            reserved_memory_mb: self.reserved_mb_now,
            total_memory_mb: self.workers.iter().map(|w| w.memory_capacity_mb).sum(),
            containers: self.containers.len(),
        }
    }

    /// Brings the resource-time integrals up to `now`.
    pub fn finalize(&mut self, now: SimTime) {
        self.account(now);
    }

    /// Provisioned (reserved) memory integral, GB·s.
    pub fn memory_gb_seconds(&self) -> f64 {
        self.memory_mb_seconds / 1024.0
    }

    /// Busy CPU integral, core·s.
    pub fn cpu_core_seconds(&self) -> f64 {
        self.cpu_core_seconds
    }

    /// Memory-time attributed to executing slots, GB·s (the billed part).
    pub fn busy_memory_gb_seconds(&self) -> f64 {
        self.busy_memory_mb_seconds / 1024.0
    }

    /// Currently reserved memory, MiB.
    pub fn reserved_memory_mb(&self) -> f64 {
        self.reserved_mb_now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::new(2, 8.0, 4096.0)
    }

    fn cfg() -> ResourceConfig {
        ResourceConfig::new(1.0, 1024.0, 1)
    }

    #[test]
    fn boot_and_complete_lifecycle() {
        let mut cl = cluster();
        let id = cl
            .boot_container(
                FunctionId(0),
                cfg(),
                SimTime::ZERO,
                SimDuration::from_millis(500),
                false,
            )
            .unwrap();
        assert_eq!(cl.counts(FunctionId(0)), (1, 0, 0));
        assert!(cl.find_warm(FunctionId(0), &cfg()).is_none());
        cl.boot_complete(id, SimTime::from_millis(500));
        assert_eq!(cl.counts(FunctionId(0)), (0, 1, 0));
        assert_eq!(cl.find_warm(FunctionId(0), &cfg()), Some(id));
    }

    #[test]
    fn capacity_limit_respected() {
        let mut cl = Cluster::new(1, 4.0, 2048.0);
        let c = ResourceConfig::new(1.0, 1024.0, 1);
        assert!(cl
            .boot_container(FunctionId(0), c, SimTime::ZERO, SimDuration::ZERO, false)
            .is_some());
        assert!(cl
            .boot_container(FunctionId(0), c, SimTime::ZERO, SimDuration::ZERO, false)
            .is_some());
        // Third does not fit.
        assert!(cl
            .boot_container(FunctionId(0), c, SimTime::ZERO, SimDuration::ZERO, false)
            .is_none());
    }

    #[test]
    fn eviction_frees_idle_lru() {
        let mut cl = Cluster::new(1, 4.0, 2048.0);
        let c = ResourceConfig::new(1.0, 1024.0, 1);
        let a = cl
            .boot_container(FunctionId(0), c, SimTime::ZERO, SimDuration::ZERO, false)
            .unwrap();
        let b = cl
            .boot_container(FunctionId(1), c, SimTime::ZERO, SimDuration::ZERO, false)
            .unwrap();
        cl.boot_complete(a, SimTime::from_secs(1));
        cl.boot_complete(b, SimTime::from_secs(2));
        assert!(cl.evict_for(1024.0, SimTime::from_secs(3)));
        // LRU = a (older last_used) was evicted.
        assert!(cl.container(a).is_none());
        assert!(cl.container(b).is_some());
    }

    #[test]
    fn eviction_fails_without_idle_victims() {
        let mut cl = Cluster::new(1, 4.0, 1024.0);
        let c = ResourceConfig::new(1.0, 1024.0, 1);
        let a = cl
            .boot_container(FunctionId(0), c, SimTime::ZERO, SimDuration::ZERO, false)
            .unwrap();
        cl.boot_complete(a, SimTime::ZERO);
        cl.assign(a, SimTime::ZERO);
        assert!(!cl.evict_for(512.0, SimTime::from_secs(1)));
    }

    #[test]
    fn assign_release_cycle_counts_slots() {
        let mut cl = cluster();
        let c = ResourceConfig::new(2.0, 1024.0, 2);
        let id = cl
            .boot_container(FunctionId(0), c, SimTime::ZERO, SimDuration::ZERO, false)
            .unwrap();
        cl.boot_complete(id, SimTime::ZERO);
        cl.assign(id, SimTime::ZERO);
        cl.assign(id, SimTime::ZERO);
        assert_eq!(cl.counts(FunctionId(0)), (0, 0, 1));
        assert!(cl.find_warm(FunctionId(0), &c).is_none(), "both slots busy");
        cl.release(id, SimTime::from_secs(1));
        assert!(
            cl.find_warm(FunctionId(0), &c).is_some(),
            "one slot free again"
        );
        cl.release(id, SimTime::from_secs(2));
        assert_eq!(cl.counts(FunctionId(0)), (0, 1, 0));
    }

    #[test]
    fn reap_respects_keep_alive() {
        let mut cl = cluster();
        let id = cl
            .boot_container(
                FunctionId(0),
                cfg(),
                SimTime::ZERO,
                SimDuration::ZERO,
                false,
            )
            .unwrap();
        cl.boot_complete(id, SimTime::ZERO);
        assert_eq!(
            cl.reap_idle(
                FunctionId(0),
                SimDuration::from_secs(60),
                SimTime::from_secs(30)
            ),
            0
        );
        assert_eq!(
            cl.reap_idle(
                FunctionId(0),
                SimDuration::from_secs(60),
                SimTime::from_secs(61)
            ),
            1
        );
        assert_eq!(cl.num_containers(), 0);
    }

    #[test]
    fn memory_time_integral_accumulates() {
        let mut cl = cluster();
        let id = cl
            .boot_container(
                FunctionId(0),
                ResourceConfig::new(1.0, 2048.0, 1),
                SimTime::ZERO,
                SimDuration::ZERO,
                false,
            )
            .unwrap();
        cl.boot_complete(id, SimTime::ZERO);
        cl.kill(id, SimTime::from_secs(10), EvictionReason::Shrink);
        cl.finalize(SimTime::from_secs(20));
        // 2048 MiB for 10 s = 20 GB·s; nothing after the kill.
        assert!((cl.memory_gb_seconds() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_time_integral_counts_busy_only() {
        let mut cl = cluster();
        let id = cl
            .boot_container(
                FunctionId(0),
                ResourceConfig::new(2.0, 1024.0, 1),
                SimTime::ZERO,
                SimDuration::ZERO,
                false,
            )
            .unwrap();
        cl.boot_complete(id, SimTime::ZERO);
        cl.assign(id, SimTime::from_secs(5));
        cl.release(id, SimTime::from_secs(8));
        cl.finalize(SimTime::from_secs(100));
        // 2 cores busy for 3 s.
        assert!((cl.cpu_core_seconds() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn shrink_idle_kills_newest_first() {
        let mut cl = cluster();
        let a = cl
            .boot_container(
                FunctionId(0),
                cfg(),
                SimTime::ZERO,
                SimDuration::ZERO,
                false,
            )
            .unwrap();
        let b = cl
            .boot_container(
                FunctionId(0),
                cfg(),
                SimTime::ZERO,
                SimDuration::ZERO,
                false,
            )
            .unwrap();
        cl.boot_complete(a, SimTime::from_secs(1));
        cl.boot_complete(b, SimTime::from_secs(2));
        assert_eq!(cl.shrink_idle(FunctionId(0), 1, SimTime::from_secs(3)), 1);
        assert!(
            cl.container(b).is_none(),
            "newest-idle container killed first"
        );
        assert!(cl.container(a).is_some());
    }

    #[test]
    fn evict_for_fails_with_all_containers_busy() {
        // Two workers, every container busy: LRU eviction has no victim on
        // either worker and must report failure without killing anything.
        let mut cl = Cluster::new(2, 4.0, 1024.0);
        let c = ResourceConfig::new(1.0, 1024.0, 1);
        let mut ids = Vec::new();
        for _ in 0..2 {
            let id = cl
                .boot_container(FunctionId(0), c, SimTime::ZERO, SimDuration::ZERO, false)
                .unwrap();
            cl.boot_complete(id, SimTime::ZERO);
            cl.assign(id, SimTime::ZERO);
            ids.push(id);
        }
        assert!(!cl.evict_for(512.0, SimTime::from_secs(1)));
        assert_eq!(cl.num_containers(), 2, "busy containers must survive");
        for id in ids {
            assert!(cl.container(id).is_some());
        }
    }

    #[test]
    fn shrink_idle_with_count_above_idle_kills_only_idle() {
        let mut cl = cluster();
        let idle = cl
            .boot_container(
                FunctionId(0),
                cfg(),
                SimTime::ZERO,
                SimDuration::ZERO,
                false,
            )
            .unwrap();
        let busy = cl
            .boot_container(
                FunctionId(0),
                cfg(),
                SimTime::ZERO,
                SimDuration::ZERO,
                false,
            )
            .unwrap();
        let booting = cl
            .boot_container(
                FunctionId(0),
                cfg(),
                SimTime::ZERO,
                SimDuration::from_secs(5),
                false,
            )
            .unwrap();
        cl.boot_complete(idle, SimTime::from_secs(1));
        cl.boot_complete(busy, SimTime::from_secs(1));
        cl.assign(busy, SimTime::from_secs(1));
        // Ask for far more than the single idle container.
        assert_eq!(cl.shrink_idle(FunctionId(0), 10, SimTime::from_secs(2)), 1);
        assert!(cl.container(idle).is_none());
        assert!(cl.container(busy).is_some(), "busy survives shrink");
        assert!(cl.container(booting).is_some(), "booting survives shrink");
        // And shrinking an empty idle pool is a no-op.
        assert_eq!(cl.shrink_idle(FunctionId(0), 3, SimTime::from_secs(3)), 0);
    }

    #[test]
    fn find_booting_ignores_killed_containers() {
        let mut cl = cluster();
        let claimed = HashMap::new();
        let a = cl
            .boot_container(
                FunctionId(0),
                cfg(),
                SimTime::ZERO,
                SimDuration::from_secs(1),
                false,
            )
            .unwrap();
        let b = cl
            .boot_container(
                FunctionId(0),
                cfg(),
                SimTime::from_millis(1),
                SimDuration::from_secs(1),
                false,
            )
            .unwrap();
        // `a` boots earliest so it is preferred...
        assert_eq!(cl.find_booting(FunctionId(0), &cfg(), &claimed), Some(a));
        // ...but once a fault kills it mid-boot the later boot is found.
        cl.kill(a, SimTime::from_millis(500), EvictionReason::Fault);
        assert_eq!(cl.find_booting(FunctionId(0), &cfg(), &claimed), Some(b));
        cl.kill(b, SimTime::from_millis(600), EvictionReason::Fault);
        assert_eq!(cl.find_booting(FunctionId(0), &cfg(), &claimed), None);
    }

    #[test]
    fn kill_faulted_force_releases_busy_slots() {
        let mut cl = cluster();
        let c = ResourceConfig::new(2.0, 1024.0, 2);
        let id = cl
            .boot_container(FunctionId(0), c, SimTime::ZERO, SimDuration::ZERO, false)
            .unwrap();
        cl.boot_complete(id, SimTime::ZERO);
        cl.assign(id, SimTime::ZERO);
        cl.assign(id, SimTime::ZERO);
        cl.kill_faulted(id, SimTime::from_secs(3));
        assert!(cl.container(id).is_none());
        assert_eq!(cl.counts(FunctionId(0)), (0, 0, 0));
        // Busy-CPU integral stops at the crash: 2 slots × 1 core × 3 s.
        cl.finalize(SimTime::from_secs(10));
        assert!((cl.cpu_core_seconds() - 6.0).abs() < 1e-9);
        // Memory reservation is fully returned.
        assert_eq!(cl.reserved_memory_mb(), 0.0);
        assert!(cl
            .boot_container(
                FunctionId(1),
                c,
                SimTime::from_secs(10),
                SimDuration::ZERO,
                false
            )
            .is_some());
    }

    #[test]
    fn partitioned_shards_mint_disjoint_ids_and_global_worker_ids() {
        // Shard 1 of 3: workers start at global id 4, container ids walk
        // 1, 4, 7, … so no two shards can ever mint the same id.
        let mut cl = Cluster::new_partition(2, 8.0, 4096.0, 4, 1, 3);
        let a = cl
            .boot_container(
                FunctionId(0),
                cfg(),
                SimTime::ZERO,
                SimDuration::ZERO,
                false,
            )
            .unwrap();
        let b = cl
            .boot_container(
                FunctionId(0),
                cfg(),
                SimTime::ZERO,
                SimDuration::ZERO,
                false,
            )
            .unwrap();
        assert_eq!(a.0, 1);
        assert_eq!(b.0, 4);
        assert!(cl.container(a).unwrap().worker.0 >= 4);
        // Kill must map the global worker id back to the local slot.
        cl.boot_complete(a, SimTime::ZERO);
        cl.kill(a, SimTime::from_secs(1), EvictionReason::Shrink);
        assert!(cl.container(a).is_none());
        assert_eq!(cl.counts(FunctionId(0)), (1, 0, 0));
    }

    #[test]
    fn snapshot_reports_reservation() {
        let mut cl = cluster();
        cl.boot_container(
            FunctionId(0),
            cfg(),
            SimTime::ZERO,
            SimDuration::ZERO,
            false,
        )
        .unwrap();
        let snap = cl.snapshot();
        assert_eq!(snap.reserved_memory_mb, 1024.0);
        assert_eq!(snap.total_memory_mb, 8192.0);
        assert_eq!(snap.containers, 1);
    }
}
