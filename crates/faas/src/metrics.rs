//! Per-invocation and per-workflow records plus run-level summaries.

use aqua_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::types::FunctionId;

/// Outcome of one function invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvocationRecord {
    /// Function invoked.
    pub function: FunctionId,
    /// Workflow instance this task belonged to.
    pub workflow_instance: usize,
    /// Stage index within the workflow.
    pub stage: usize,
    /// When the task became runnable (dependencies satisfied).
    pub requested: SimTime,
    /// When execution actually began (after any cold start / queueing).
    pub started: SimTime,
    /// When execution finished.
    pub finished: SimTime,
    /// Whether the invocation paid a cold start.
    pub cold: bool,
    /// CPU·seconds billed to this invocation.
    pub cpu_seconds: f64,
    /// GB·seconds billed to this invocation.
    pub memory_gb_seconds: f64,
}

impl InvocationRecord {
    /// Total latency the workflow observed for this task.
    pub fn latency(&self) -> SimDuration {
        self.finished.saturating_since(self.requested)
    }

    /// Startup delay (cold start + queueing) before execution.
    pub fn startup_delay(&self) -> SimDuration {
        self.started.saturating_since(self.requested)
    }
}

/// Outcome of one workflow instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowRecord {
    /// Index of the instance in arrival order.
    pub instance: usize,
    /// Arrival time.
    pub arrived: SimTime,
    /// Completion time of the final stage.
    pub finished: SimTime,
    /// Number of cold-started invocations inside this instance.
    pub cold_starts: u32,
    /// Total invocations inside this instance.
    pub invocations: u32,
}

impl WorkflowRecord {
    /// End-to-end latency.
    pub fn latency(&self) -> SimDuration {
        self.finished.saturating_since(self.arrived)
    }
}

/// Everything a simulation run produced.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Every invocation, in completion order.
    pub invocations: Vec<InvocationRecord>,
    /// Every completed workflow instance.
    pub workflows: Vec<WorkflowRecord>,
    /// Busy CPU integral over the cluster, core·s.
    pub cpu_core_seconds: f64,
    /// Provisioned (reserved) memory integral, GB·s — the paper's
    /// "provisioned memory time" (Fig. 9b).
    pub memory_gb_seconds: f64,
    /// Memory-time attributed to executing slots only, GB·s.
    pub busy_memory_gb_seconds: f64,
    /// Workflow instances that never finished within the horizon.
    pub unfinished: usize,
    /// Workflow instances abandoned because a task exhausted its retries
    /// under injected faults. Always a subset of `unfinished`.
    pub rejected: usize,
    /// Reserved (provisioned) memory in MiB sampled at every pool tick —
    /// the Fig. 11 time series.
    pub pool_snapshots: Vec<(SimTime, f64)>,
    /// Discrete events processed by the run's event loop(s) — the
    /// numerator of the BENCH_SIM events/sec throughput metric.
    #[serde(default)]
    pub events_processed: u64,
}

impl RunReport {
    /// Fraction of invocations that were cold starts.
    pub fn cold_start_rate(&self) -> f64 {
        if self.invocations.is_empty() {
            return 0.0;
        }
        self.invocations.iter().filter(|r| r.cold).count() as f64 / self.invocations.len() as f64
    }

    /// Mean end-to-end workflow latency in seconds.
    pub fn mean_latency_secs(&self) -> f64 {
        if self.workflows.is_empty() {
            return 0.0;
        }
        self.workflows
            .iter()
            .map(|w| w.latency().as_secs_f64())
            .sum::<f64>()
            / self.workflows.len() as f64
    }

    /// Latency quantile (`q ∈ [0,1]`) over completed workflows, seconds.
    ///
    /// # Panics
    ///
    /// Panics if there are no completed workflows.
    pub fn latency_quantile_secs(&self, q: f64) -> f64 {
        let lats: Vec<f64> = self
            .workflows
            .iter()
            .map(|w| w.latency().as_secs_f64())
            .collect();
        aqua_linalg::quantile(&lats, q)
    }

    /// Fraction of workflows whose end-to-end latency exceeded `qos`
    /// (unfinished instances count as violations).
    pub fn qos_violation_rate(&self, qos: SimDuration) -> f64 {
        let total = self.workflows.len() + self.unfinished;
        if total == 0 {
            return 0.0;
        }
        let violated =
            self.workflows.iter().filter(|w| w.latency() > qos).count() + self.unfinished;
        violated as f64 / total as f64
    }

    /// Sum of per-invocation billed cost under a linear price model
    /// (`price_cpu` per core·s + `price_mem` per GB·s), the paper's §5.1
    /// cost function.
    pub fn execution_cost(&self, price_cpu: f64, price_mem: f64) -> f64 {
        self.invocations
            .iter()
            .map(|r| r.cpu_seconds * price_cpu + r.memory_gb_seconds * price_mem)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cold: bool, req: u64, start: u64, fin: u64) -> InvocationRecord {
        InvocationRecord {
            function: FunctionId(0),
            workflow_instance: 0,
            stage: 0,
            requested: SimTime::from_millis(req),
            started: SimTime::from_millis(start),
            finished: SimTime::from_millis(fin),
            cold,
            cpu_seconds: 1.0,
            memory_gb_seconds: 0.5,
        }
    }

    #[test]
    fn latency_and_startup_delay() {
        let r = record(true, 100, 700, 900);
        assert_eq!(r.startup_delay(), SimDuration::from_millis(600));
        assert_eq!(r.latency(), SimDuration::from_millis(800));
    }

    #[test]
    fn cold_start_rate() {
        let report = RunReport {
            invocations: vec![
                record(true, 0, 0, 1),
                record(false, 0, 0, 1),
                record(false, 0, 0, 1),
                record(true, 0, 0, 1),
            ],
            ..Default::default()
        };
        assert_eq!(report.cold_start_rate(), 0.5);
    }

    #[test]
    fn qos_violations_count_unfinished() {
        let wf = |lat_ms: u64| WorkflowRecord {
            instance: 0,
            arrived: SimTime::ZERO,
            finished: SimTime::from_millis(lat_ms),
            cold_starts: 0,
            invocations: 1,
        };
        let report = RunReport {
            workflows: vec![wf(100), wf(300), wf(500)],
            unfinished: 1,
            ..Default::default()
        };
        let rate = report.qos_violation_rate(SimDuration::from_millis(400));
        assert!((rate - 0.5).abs() < 1e-12); // 500ms + unfinished out of 4
    }

    #[test]
    fn execution_cost_is_linear() {
        let report = RunReport {
            invocations: vec![record(false, 0, 0, 1), record(false, 0, 0, 1)],
            ..Default::default()
        };
        let cost = report.execution_cost(2.0, 4.0);
        assert!((cost - (2.0 * 2.0 + 2.0 * 0.5 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_report_rates_are_zero() {
        let report = RunReport::default();
        assert_eq!(report.cold_start_rate(), 0.0);
        assert_eq!(report.mean_latency_secs(), 0.0);
        assert_eq!(report.qos_violation_rate(SimDuration::from_secs(1)), 0.0);
    }
}
