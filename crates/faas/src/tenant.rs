//! Multi-tenant vocabulary: tenant identities and per-tenant QoS classes.
//!
//! A *tenant* is an isolation domain sharing one control plane: it owns a
//! subset of the workload's jobs (and, transitively, the functions those
//! jobs pin), an admission budget, and a guaranteed slice of the warm
//! pool's memory. The scenario generators and the live service share this
//! vocabulary so a "noisy neighbor" means the same thing whether a cell
//! runs in the batch simulator or against the live reactor.

use serde::{Deserialize, Serialize};

use aqua_sim::SimDuration;

/// Index of a tenant sharing the control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TenantId(pub usize);

/// A tenant's QoS class: the latency promise the plane makes to it and
/// the resource budget that promise is backed by.
#[derive(Debug, Clone, PartialEq)]
pub struct QosClass {
    /// End-to-end workflow latency SLO (`None` = best-effort tier: the
    /// plane never counts a QoS miss and never predictively rejects).
    pub latency_slo: Option<SimDuration>,
    /// Maximum workflow instances this tenant may have in flight; beyond
    /// it the tenant's own arrivals are shed without touching the others.
    pub max_inflight: usize,
    /// Maximum waiting tasks in any function queue owned by this tenant.
    pub queue_cap: usize,
    /// Warm-pool memory guaranteed to this tenant, MiB. The pool will
    /// always let the tenant reserve up to this much; anything beyond is
    /// borrowed work-conservingly from global slack (and only for demand
    /// boots, never pre-warm).
    pub memory_share_mb: f64,
}

impl QosClass {
    /// The unconstrained class: no SLO, no caps, no guaranteed share.
    /// A plane whose every tenant is unlimited behaves bit-identically to
    /// a single-tenant plane bounded only by the global admission config.
    pub fn unlimited() -> Self {
        QosClass {
            latency_slo: None,
            max_inflight: usize::MAX,
            queue_cap: usize::MAX,
            memory_share_mb: 0.0,
        }
    }

    /// A class with an SLO and explicit budgets.
    pub fn new(
        latency_slo: SimDuration,
        max_inflight: usize,
        queue_cap: usize,
        memory_share_mb: f64,
    ) -> Self {
        QosClass {
            latency_slo: Some(latency_slo),
            max_inflight,
            queue_cap,
            memory_share_mb,
        }
    }

    /// The SLO in seconds, `+inf` for best-effort tenants.
    pub fn slo_secs(&self) -> f64 {
        self.latency_slo
            .map(|d| d.as_secs_f64())
            .unwrap_or(f64::INFINITY)
    }
}

/// A full tenancy description for one control-plane run: the QoS classes
/// and which tenant each job belongs to.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantPlan {
    /// One class per tenant; `TenantId(i)` indexes this list.
    pub classes: Vec<QosClass>,
    /// Tenant of each job, parallel to the plane's job list.
    pub job_tenants: Vec<TenantId>,
}

impl TenantPlan {
    /// The default single-tenant plan: every job belongs to one
    /// unlimited tenant, which reproduces the untenanted plane exactly.
    pub fn single(jobs: usize) -> Self {
        TenantPlan {
            classes: vec![QosClass::unlimited()],
            job_tenants: vec![TenantId(0); jobs],
        }
    }

    /// Number of tenants.
    pub fn tenants(&self) -> usize {
        self.classes.len()
    }

    /// Validates internal consistency (every job's tenant exists).
    ///
    /// # Panics
    ///
    /// Panics when a job references a tenant with no class.
    pub fn validate(&self) {
        for t in &self.job_tenants {
            assert!(
                t.0 < self.classes.len(),
                "job assigned to unknown tenant {}",
                t.0
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_class_never_binds() {
        let c = QosClass::unlimited();
        assert_eq!(c.max_inflight, usize::MAX);
        assert_eq!(c.queue_cap, usize::MAX);
        assert_eq!(c.memory_share_mb, 0.0);
        assert!(c.latency_slo.is_none());
        assert!(c.slo_secs().is_infinite());
    }

    #[test]
    fn single_plan_covers_every_job() {
        let p = TenantPlan::single(5);
        assert_eq!(p.tenants(), 1);
        assert_eq!(p.job_tenants, vec![TenantId(0); 5]);
        p.validate();
    }

    #[test]
    #[should_panic(expected = "unknown tenant")]
    fn validate_rejects_dangling_tenant() {
        let p = TenantPlan {
            classes: vec![QosClass::unlimited()],
            job_tenants: vec![TenantId(1)],
        };
        p.validate();
    }

    #[test]
    fn explicit_class_carries_its_slo() {
        let c = QosClass::new(SimDuration::from_millis(1500), 64, 32, 4096.0);
        assert_eq!(c.slo_secs(), 1.5);
        assert_eq!(c.max_inflight, 64);
    }
}
