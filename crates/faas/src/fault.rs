//! Deterministic, seed-driven fault injection.
//!
//! A [`FaultPlan`] describes *which* faults a run should experience —
//! either stochastically (per-fault-class rates drawn from dedicated RNG
//! streams) or as an explicit scripted schedule ("the 3rd boot fails").
//! The plan is a pure specification: [`FaasSimBuilder`] holds one and each
//! run builds a fresh [`FaultState`] from it, so repeated runs of the same
//! simulator replay identical fault sequences.
//!
//! # Determinism contract
//!
//! Every fault class draws from its **own** RNG stream, forked from the
//! plan seed by class label (`boot_fail`, `crash`, `straggler`,
//! `handoff`). Fault draws never touch the simulator's main noise stream,
//! so:
//!
//! * a plan with all rates at `0.0` is a strict no-op — the run's event
//!   trace is byte-identical to one without a fault layer at all;
//! * enabling one fault class never perturbs the draw sequence of
//!   another;
//! * the `n`-th draw of a class depends only on the plan seed and `n`,
//!   which is what makes scripted schedules ("fire on draw `n`") stable.
//!
//! [`FaasSimBuilder`]: crate::sim::FaasSimBuilder

use std::collections::HashMap;

use aqua_sim::{SimDuration, SimRng};
use aqua_telemetry::FaultKind;

/// Per-class fault probabilities and magnitudes.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRates {
    /// Probability that a container boot fails (the container dies at the
    /// moment it would have turned warm).
    pub boot_fail: f64,
    /// Probability that an invocation's container crashes mid-execution
    /// (OOM / segfault), killing every invocation running on it.
    pub crash: f64,
    /// Probability that an individual invocation is a straggler.
    pub straggler: f64,
    /// Multiplicative slowdown applied to a straggler invocation's
    /// execution time (the straggler runs `straggler_factor`× longer).
    pub straggler_factor: f64,
    /// Probability that a stage handoff (parent stage complete → dependent
    /// stage dispatch) is delayed.
    pub handoff_delay: f64,
    /// Delay applied to a delayed handoff, milliseconds.
    pub handoff_delay_ms: f64,
}

impl Default for FaultRates {
    /// All rates zero; magnitudes at representative defaults (4× straggler
    /// slowdown, 2 s handoff delay) so enabling a rate alone is meaningful.
    fn default() -> Self {
        FaultRates {
            boot_fail: 0.0,
            crash: 0.0,
            straggler: 0.0,
            straggler_factor: 4.0,
            handoff_delay: 0.0,
            handoff_delay_ms: 2000.0,
        }
    }
}

impl FaultRates {
    /// True when every probability is zero.
    pub fn all_zero(&self) -> bool {
        self.boot_fail == 0.0
            && self.crash == 0.0
            && self.straggler == 0.0
            && self.handoff_delay == 0.0
    }
}

/// Specification of the faults a run should experience.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the per-class fault streams (independent of the
    /// simulator's noise seed).
    pub seed: u64,
    /// Stochastic fault rates.
    pub rates: FaultRates,
    /// Scripted faults: `(class, n)` forces the `n`-th draw (0-based) of
    /// `class` to fire regardless of its rate. Magnitudes still come from
    /// [`FaultRates`].
    pub scripted: Vec<(FaultKind, u64)>,
}

impl FaultPlan {
    /// A plan that injects nothing (the default).
    pub fn disabled() -> Self {
        FaultPlan::default()
    }

    /// A stochastic plan from a seed and per-class rates.
    pub fn from_seed(seed: u64, rates: FaultRates) -> Self {
        FaultPlan {
            seed,
            rates,
            scripted: Vec::new(),
        }
    }

    /// A purely scripted plan: only the listed `(class, draw-index)` pairs
    /// fire.
    pub fn scripted(seed: u64, schedule: Vec<(FaultKind, u64)>) -> Self {
        FaultPlan {
            seed,
            rates: FaultRates::default(),
            scripted: schedule,
        }
    }

    /// True when the plan can never inject a fault.
    pub fn is_disabled(&self) -> bool {
        self.rates.all_zero() && self.scripted.is_empty()
    }
}

/// One fault class's live draw state: a dedicated RNG stream, a draw
/// counter, and the scripted draw indices for the class.
#[derive(Debug, Clone)]
struct ClassState {
    rng: SimRng,
    draws: u64,
    scripted: Vec<u64>,
}

impl ClassState {
    fn new(root: &SimRng, label: &str, kind: FaultKind, plan: &FaultPlan) -> Self {
        ClassState {
            rng: root.fork(label),
            draws: 0,
            scripted: plan
                .scripted
                .iter()
                .filter(|(k, _)| *k == kind)
                .map(|(_, n)| *n)
                .collect(),
        }
    }

    /// One Bernoulli draw: fires with `rate`, or when scripted. Always
    /// consumes exactly one uniform so draw `n` is position-stable.
    fn fire(&mut self, rate: f64) -> bool {
        let n = self.draws;
        self.draws += 1;
        let stochastic = self.rng.uniform() < rate.clamp(0.0, 1.0);
        stochastic || self.scripted.contains(&n)
    }
}

/// Live fault-draw state for one simulation run, built fresh from a
/// [`FaultPlan`] at run start.
#[derive(Debug, Clone)]
pub struct FaultState {
    rates: FaultRates,
    boot_fail: ClassState,
    crash: ClassState,
    straggler: ClassState,
    handoff: ClassState,
}

impl FaultState {
    /// Instantiates the plan's per-class streams.
    pub fn new(plan: &FaultPlan) -> Self {
        let root = SimRng::seed(plan.seed);
        FaultState::from_root(&root, plan)
    }

    /// Instantiates per-class streams for one shard of a partitioned run:
    /// the plan root is forked by shard id first (the same label-forking
    /// pattern the classes themselves use), so each shard draws from an
    /// independent, position-stable stream. Scripted draw indices apply
    /// per shard.
    pub fn for_shard(plan: &FaultPlan, shard: usize) -> Self {
        let root = SimRng::seed(plan.seed).fork(&format!("shard-{shard}"));
        FaultState::from_root(&root, plan)
    }

    fn from_root(root: &SimRng, plan: &FaultPlan) -> Self {
        FaultState {
            rates: plan.rates.clone(),
            boot_fail: ClassState::new(root, "boot_fail", FaultKind::BootFail, plan),
            crash: ClassState::new(root, "crash", FaultKind::Crash, plan),
            straggler: ClassState::new(root, "straggler", FaultKind::Straggler, plan),
            handoff: ClassState::new(root, "handoff", FaultKind::HandoffDelay, plan),
        }
    }

    /// Draws the fate of one container boot: `true` = the boot fails.
    pub fn next_boot_fail(&mut self) -> bool {
        self.boot_fail.fire(self.rates.boot_fail)
    }

    /// Draws the fate of one invocation's container: `Some(frac)` = the
    /// container crashes after fraction `frac ∈ [0.1, 0.9]` of the
    /// invocation's execution time.
    pub fn next_crash(&mut self) -> Option<f64> {
        if self.crash.fire(self.rates.crash) {
            Some(0.1 + 0.8 * self.crash.rng.uniform())
        } else {
            None
        }
    }

    /// Draws one invocation's straggler fate: `Some(factor)` = multiply
    /// its execution time by `factor > 1`.
    pub fn next_straggler(&mut self) -> Option<f64> {
        if self.straggler.fire(self.rates.straggler) {
            // Jitter around the configured factor so stragglers are not
            // all identical (±25%), keeping the factor ≥ 1.5.
            let jitter = 0.75 + 0.5 * self.straggler.rng.uniform();
            Some((self.rates.straggler_factor * jitter).max(1.5))
        } else {
            None
        }
    }

    /// Draws one stage handoff's fate: `Some(delay)` = delay the dependent
    /// stage's dispatch.
    pub fn next_handoff(&mut self) -> Option<SimDuration> {
        if self.handoff.fire(self.rates.handoff_delay) {
            let jitter = 0.5 + self.handoff.rng.uniform();
            Some(SimDuration::from_secs_f64(
                self.rates.handoff_delay_ms * jitter / 1000.0,
            ))
        } else {
            None
        }
    }
}

/// Retry-with-backoff and per-stage timeout policy absorbing injected
/// faults.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Retries allowed per task after the initial attempt; a task that
    /// exhausts them is **rejected** and its workflow instance never
    /// completes.
    pub max_retries: u32,
    /// Base backoff before a retry; attempt `k` waits `backoff · 2^k`.
    pub backoff: SimDuration,
    /// Per-invocation timeout: an attempt running longer is cancelled
    /// (its slot freed) and retried. `None` disables timeouts.
    pub task_timeout: Option<SimDuration>,
}

impl Default for RetryPolicy {
    /// Two retries with 500 ms base backoff, no timeout. Dormant unless a
    /// fault or timeout actually fires.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff: SimDuration::from_millis(500),
            task_timeout: None,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry attempt `attempt` (1-based), exponential with
    /// a capped exponent.
    pub fn backoff_for(&self, attempt: u32) -> SimDuration {
        self.backoff * (1u64 << attempt.saturating_sub(1).min(10))
    }
}

/// Per-function failed-boot counts for one pool window, keyed by raw
/// function id (kept untyped so pool crates can consume it without a
/// dependency cycle).
pub type BootFailures = HashMap<usize, u32>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let mut st = FaultState::new(&FaultPlan::disabled());
        for _ in 0..1000 {
            assert!(!st.next_boot_fail());
            assert!(st.next_crash().is_none());
            assert!(st.next_straggler().is_none());
            assert!(st.next_handoff().is_none());
        }
    }

    #[test]
    fn draws_are_reproducible_per_seed() {
        let plan = FaultPlan::from_seed(
            9,
            FaultRates {
                boot_fail: 0.3,
                crash: 0.3,
                straggler: 0.3,
                handoff_delay: 0.3,
                ..FaultRates::default()
            },
        );
        let mut a = FaultState::new(&plan);
        let mut b = FaultState::new(&plan);
        for _ in 0..200 {
            assert_eq!(a.next_boot_fail(), b.next_boot_fail());
            assert_eq!(a.next_crash(), b.next_crash());
            assert_eq!(a.next_straggler(), b.next_straggler());
            assert_eq!(a.next_handoff(), b.next_handoff());
        }
    }

    #[test]
    fn classes_are_independent_streams() {
        // Enabling the crash class must not change boot-fail draws.
        let quiet = FaultPlan::from_seed(
            5,
            FaultRates {
                boot_fail: 0.5,
                ..FaultRates::default()
            },
        );
        let noisy = FaultPlan::from_seed(
            5,
            FaultRates {
                boot_fail: 0.5,
                crash: 0.9,
                ..FaultRates::default()
            },
        );
        let mut a = FaultState::new(&quiet);
        let mut b = FaultState::new(&noisy);
        for _ in 0..100 {
            // b draws crashes interleaved; boot-fail stream unaffected.
            let _ = b.next_crash();
            assert_eq!(a.next_boot_fail(), b.next_boot_fail());
        }
    }

    #[test]
    fn scripted_draw_fires_exactly_once() {
        let plan = FaultPlan::scripted(1, vec![(FaultKind::BootFail, 2)]);
        let mut st = FaultState::new(&plan);
        let fired: Vec<bool> = (0..5).map(|_| st.next_boot_fail()).collect();
        assert_eq!(fired, vec![false, false, true, false, false]);
    }

    #[test]
    fn straggler_factor_is_meaningful() {
        let plan = FaultPlan::from_seed(
            3,
            FaultRates {
                straggler: 1.0,
                straggler_factor: 4.0,
                ..FaultRates::default()
            },
        );
        let mut st = FaultState::new(&plan);
        for _ in 0..100 {
            let f = st.next_straggler().expect("rate 1.0 always fires");
            assert!((1.5..=6.0).contains(&f), "factor {f}");
        }
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let rp = RetryPolicy::default();
        assert_eq!(rp.backoff_for(1), SimDuration::from_millis(500));
        assert_eq!(rp.backoff_for(2), SimDuration::from_millis(1000));
        assert_eq!(rp.backoff_for(3), SimDuration::from_millis(2000));
        // Exponent caps instead of overflowing.
        assert_eq!(rp.backoff_for(60), SimDuration::from_millis(500 * 1024));
    }

    #[test]
    fn disabled_detection() {
        assert!(FaultPlan::disabled().is_disabled());
        assert!(!FaultPlan::scripted(0, vec![(FaultKind::Crash, 0)]).is_disabled());
        let mut p = FaultPlan::disabled();
        p.rates.straggler = 0.1;
        assert!(!p.is_disabled());
    }
}
