//! Cloud-noise injection: Gaussian jitter plus non-Gaussian outliers.
//!
//! The paper divides FaaS noise into two categories (§5.3): *inherent*
//! noise well-approximated by a normal distribution, and *irregular* noise
//! (resource contention, networking instability) that is not. We model the
//! first as multiplicative log-normal jitter and the second as rare
//! heavy-tailed (Pareto) slowdown bursts from colocated background jobs —
//! the same injection methodology as the paper's Fig. 15, whose x-axis
//! "noise level" scales the frequency and intensity of those bursts.

use aqua_sim::{LogNormal, Pareto, SimRng};
use serde::{Deserialize, Serialize};

/// Execution-time noise model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Extra Gaussian-ish CV added on top of each function's intrinsic CV.
    pub gaussian_cv: f64,
    /// Probability that an invocation hits an interference burst.
    pub outlier_prob: f64,
    /// Pareto tail index of burst slowdowns (smaller = heavier tail).
    pub outlier_shape: f64,
    /// Minimum burst slowdown factor (Pareto scale), e.g. 1.5 = +50%.
    pub outlier_scale: f64,
}

impl NoiseModel {
    /// No environment noise at all (intrinsic CV still applies).
    pub fn quiet() -> Self {
        NoiseModel {
            gaussian_cv: 0.0,
            outlier_prob: 0.0,
            outlier_shape: 2.5,
            outlier_scale: 1.5,
        }
    }

    /// Typical production-cluster noise: mild jitter, rare outliers.
    pub fn production() -> Self {
        NoiseModel {
            gaussian_cv: 0.08,
            outlier_prob: 0.01,
            outlier_shape: 2.0,
            outlier_scale: 1.5,
        }
    }

    /// The Fig. 15 "noise level" dial: level 0 = production-quiet,
    /// levels 1–4 increase both outlier frequency and intensity, emulating
    /// progressively more aggressive colocated background jobs.
    ///
    /// # Panics
    ///
    /// Panics if `level` is negative or not finite.
    pub fn background_jobs(level: f64) -> Self {
        assert!(
            level.is_finite() && level >= 0.0,
            "noise level must be non-negative"
        );
        NoiseModel {
            gaussian_cv: 0.05 + 0.03 * level,
            outlier_prob: 0.02 * level,
            outlier_shape: (2.5 - 0.3 * level).max(1.2),
            outlier_scale: 1.5 + 0.25 * level,
        }
    }

    /// Applies noise to a base latency (milliseconds): log-normal jitter
    /// with combined CV, plus a Pareto burst with `outlier_prob`.
    pub fn apply(&self, base_ms: f64, intrinsic_cv: f64, rng: &mut SimRng) -> f64 {
        if base_ms <= 0.0 {
            return 0.0;
        }
        let cv = (intrinsic_cv * intrinsic_cv + self.gaussian_cv * self.gaussian_cv).sqrt();
        let mut value = if cv > 0.0 {
            LogNormal::with_mean_cv(base_ms, cv).sample(rng)
        } else {
            base_ms
        };
        if self.outlier_prob > 0.0 && rng.chance(self.outlier_prob) {
            value *= Pareto::new(self.outlier_scale, self.outlier_shape).sample(rng);
        }
        value
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::production()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_noise_is_identity() {
        let n = NoiseModel::quiet();
        let mut rng = SimRng::seed(1);
        assert_eq!(n.apply(100.0, 0.0, &mut rng), 100.0);
    }

    #[test]
    fn gaussian_jitter_preserves_mean() {
        let n = NoiseModel {
            gaussian_cv: 0.2,
            outlier_prob: 0.0,
            ..NoiseModel::quiet()
        };
        let mut rng = SimRng::seed(2);
        let m = 50_000;
        let mean: f64 = (0..m).map(|_| n.apply(100.0, 0.0, &mut rng)).sum::<f64>() / m as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn outliers_are_rare_but_large() {
        let n = NoiseModel {
            gaussian_cv: 0.0,
            outlier_prob: 0.05,
            outlier_shape: 2.0,
            outlier_scale: 2.0,
        };
        let mut rng = SimRng::seed(3);
        let samples: Vec<f64> = (0..20_000).map(|_| n.apply(100.0, 0.0, &mut rng)).collect();
        let outliers = samples.iter().filter(|s| **s > 150.0).count() as f64 / samples.len() as f64;
        assert!((outliers - 0.05).abs() < 0.01, "outlier rate {outliers}");
        assert!(samples.iter().cloned().fold(0.0, f64::max) > 250.0);
    }

    #[test]
    fn noise_level_dial_is_monotone() {
        let l1 = NoiseModel::background_jobs(1.0);
        let l4 = NoiseModel::background_jobs(4.0);
        assert!(l4.outlier_prob > l1.outlier_prob);
        assert!(l4.gaussian_cv > l1.gaussian_cv);
        assert!(l4.outlier_scale > l1.outlier_scale);
    }

    #[test]
    fn zero_base_stays_zero() {
        let n = NoiseModel::production();
        let mut rng = SimRng::seed(4);
        assert_eq!(n.apply(0.0, 0.5, &mut rng), 0.0);
    }
}
