//! The discrete-event FaaS simulation driver.
//!
//! [`FaasSim`] replays workflow arrival traces over a [`Cluster`], invoking
//! a pluggable [`PrewarmController`] every pool-adjustment interval (1 min
//! by default, the paper's container keep-alive timescale).

use std::collections::{HashMap, VecDeque};

use aqua_sim::{EventQueue, SimDuration, SimRng, SimTime};
use aqua_telemetry::{EvictionReason, FaultKind, SimEvent, Telemetry};

use crate::cluster::{Cluster, ClusterSnapshot};
use crate::fault::{FaultPlan, FaultState, RetryPolicy};
use crate::function::FunctionRegistry;
use crate::interference::NoiseModel;
use crate::metrics::{InvocationRecord, RunReport, WorkflowRecord};
use crate::types::{ContainerId, FunctionId, ResourceConfig, StageConfigs};
use crate::workflow::WorkflowDag;

/// Per-function statistics for one pool window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnWindowStats {
    /// The function observed.
    pub function: FunctionId,
    /// Invocations that became runnable during the window.
    pub invocations: u32,
    /// Peak number of simultaneously busy containers during the window.
    pub peak_concurrency: u32,
    /// Containers currently booting.
    pub booting: u32,
    /// Containers currently warm and idle.
    pub idle: u32,
    /// Containers currently busy.
    pub busy: u32,
    /// Container boots that failed during the window (injected faults).
    /// Capacity the policy ordered but never received — without this a
    /// policy counts dead containers as provisioned.
    pub failed_boots: u32,
}

/// Everything a pool policy sees at a tick.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolObservation {
    /// Current simulated time.
    pub now: SimTime,
    /// Window length since the previous tick.
    pub window: SimDuration,
    /// Per-function stats, indexed by function id order.
    pub stats: Vec<FnWindowStats>,
    /// Cluster-level state.
    pub cluster: ClusterSnapshot,
}

/// A pool policy's instruction for one function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolDecision {
    /// Which function this applies to.
    pub function: FunctionId,
    /// Desired number of warm-idle (plus in-flight pre-warm) containers.
    /// `None` leaves the pool size to demand (keep-alive only).
    pub prewarm_target: Option<usize>,
    /// Idle containers older than this are reaped.
    pub keep_alive: SimDuration,
    /// Whether exceeding the target may kill idle containers immediately
    /// (`false` = the target is only a floor for pre-warm creation;
    /// reclamation is left to the keep-alive, as reactive autoscalers do).
    pub shrink: bool,
}

/// Lifts a policy's base pre-warm target by the boots that failed in the
/// observed window, so every policy replaces fault-killed capacity instead
/// of counting dead containers as provisioned. A `None` base stays `None`
/// when nothing failed, keeping pure keep-alive policies strict no-ops on
/// fault-free runs.
///
/// Every [`PrewarmController`] implementation in the workspace routes its
/// target through this one helper — the lift semantics are part of the
/// pool-policy contract (see `tests/pool_contract.rs`).
pub fn replacement_target(base: Option<usize>, failed_boots: u32) -> Option<usize> {
    match (base, failed_boots) {
        (None, 0) => None,
        (base, failed) => Some(base.unwrap_or(0) + failed as usize),
    }
}

/// A dynamic pre-warmed-container-pool policy.
///
/// Called once per adjustment interval with the window's observation;
/// returns one decision per function it manages. Functions without a
/// decision keep a conservative default (10-minute keep-alive, no
/// pre-warming) — the behaviour of stock FaaS platforms.
pub trait PrewarmController {
    /// Computes pool decisions for the elapsed window.
    fn tick(&mut self, obs: &PoolObservation) -> Vec<PoolDecision>;
}

/// The provider-default policy: no pre-warming, fixed keep-alive, plus
/// optional static pre-warm targets (used for profiling with guaranteed
/// warm starts, and as the paper's "fixed Keep-Alive" baseline).
#[derive(Debug, Clone, PartialEq)]
pub struct FixedPrewarm {
    /// Keep-alive applied to every function.
    pub keep_alive: SimDuration,
    /// Static pre-warm targets (empty = none).
    pub targets: HashMap<FunctionId, usize>,
}

impl FixedPrewarm {
    /// The 10-minute fixed keep-alive of most providers.
    pub fn provider_default() -> Self {
        FixedPrewarm {
            keep_alive: SimDuration::from_secs(600),
            targets: HashMap::new(),
        }
    }

    /// A profiling policy that holds `targets` warm containers forever.
    pub fn pinned(targets: HashMap<FunctionId, usize>) -> Self {
        FixedPrewarm {
            keep_alive: SimDuration::from_secs(1_000_000),
            targets,
        }
    }
}

impl PrewarmController for FixedPrewarm {
    fn tick(&mut self, obs: &PoolObservation) -> Vec<PoolDecision> {
        obs.stats
            .iter()
            .map(|s| {
                // Boots that failed during the window are capacity this
                // policy believed it had; eagerly re-provision them (any
                // overshoot is shrunk at the next tick) instead of
                // counting dead containers toward the target.
                let base = self.targets.get(&s.function).copied();
                let prewarm_target = replacement_target(base, s.failed_boots);
                PoolDecision {
                    function: s.function,
                    prewarm_target,
                    keep_alive: self.keep_alive,
                    shrink: true,
                }
            })
            .collect()
    }
}

/// One workload: a workflow, its per-stage resources, and its arrivals.
#[derive(Debug, Clone)]
pub struct WorkflowJob {
    /// The DAG to run.
    pub dag: WorkflowDag,
    /// Per-stage resource configurations.
    pub configs: StageConfigs,
    /// Arrival times of workflow instances.
    pub arrivals: Vec<SimTime>,
}

impl WorkflowJob {
    /// Creates a job.
    ///
    /// # Panics
    ///
    /// Panics if `configs` does not cover every stage.
    pub fn new(dag: WorkflowDag, configs: StageConfigs, arrivals: Vec<SimTime>) -> Self {
        assert_eq!(
            configs.len(),
            dag.num_stages(),
            "one config per stage required"
        );
        WorkflowJob {
            dag,
            configs,
            arrivals,
        }
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    Arrival {
        job: usize,
        inst: usize,
    },
    BootDone {
        container: ContainerId,
    },
    /// An injected boot fault fires: the container dies instead of
    /// turning warm.
    BootFailed {
        container: ContainerId,
    },
    /// Execution attempt `seq` finishes. Keyed by a unique sequence
    /// number so crashes and timeouts can cancel the attempt by removing
    /// its metadata — the stale event is then ignored.
    ExecDone {
        seq: u64,
    },
    /// An injected crash fires on `container` unless attempt `seq`
    /// already finished.
    ContainerCrash {
        container: ContainerId,
        seq: u64,
    },
    /// Attempt `seq` hits the per-stage timeout unless already finished.
    TaskTimeout {
        seq: u64,
    },
    /// A failed attempt re-enters scheduling after its backoff.
    Retry {
        task: Task,
    },
    /// A stage dispatch delayed by an injected handoff fault, or a
    /// cross-shard dispatch delivered at a synchronization boundary.
    StageReady {
        job: usize,
        inst: usize,
        stage: usize,
    },
    /// Cross-shard notification that a stage of (job, inst) finished on
    /// its owner shard; the home shard advances the DAG bookkeeping.
    /// `finished` is the true completion time on the owner — the event
    /// itself fires at the synchronization boundary, so workflow records
    /// use `finished` to stay free of handoff quantization.
    StageDoneRemote {
        job: usize,
        inst: usize,
        stage: usize,
        finished: SimTime,
    },
    PoolTick,
}

/// A cross-shard handoff produced mid-window and exchanged at the next
/// conservative synchronization boundary. Delivery order is fully
/// deterministic: messages are collected in shard order and kept in each
/// shard's emission order.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ShardMsg {
    /// A stage of (job, inst) became ready; its owner shard dispatches it.
    StageStart {
        to: usize,
        job: usize,
        inst: usize,
        stage: usize,
    },
    /// A stage of (job, inst) finished on its owner at `finished`; the
    /// home shard advances the instance's DAG bookkeeping.
    StageDone {
        to: usize,
        job: usize,
        inst: usize,
        stage: usize,
        finished: SimTime,
    },
}

impl ShardMsg {
    /// The shard this message is addressed to.
    pub(crate) fn to(&self) -> usize {
        match *self {
            ShardMsg::StageStart { to, .. } | ShardMsg::StageDone { to, .. } => to,
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct InstanceState {
    pub(crate) arrived: SimTime,
    /// Unsatisfied dependency count per stage.
    deps_left: Vec<usize>,
    /// Tasks still running per stage.
    tasks_left: Vec<u32>,
    stages_left: usize,
    pub(crate) cold_starts: u32,
    pub(crate) invocations: u32,
    pub(crate) done: bool,
    /// A task exhausted its retries; the instance can never finish.
    pub(crate) rejected: bool,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Task {
    job: usize,
    inst: usize,
    stage: usize,
    requested: SimTime,
    /// Execution attempt, 0 for the first try.
    attempt: u32,
}

/// Metadata of one in-flight execution attempt, keyed by its `seq`.
#[derive(Debug, Clone, Copy)]
struct ExecInfo {
    container: ContainerId,
    task: Task,
    /// Index of the attempt's [`InvocationRecord`] in the report, so a
    /// cancellation can truncate the billed window.
    record: usize,
}

/// Builder for [`FaasSim`].
#[derive(Debug, Clone)]
pub struct FaasSimBuilder {
    pub(crate) workers: usize,
    pub(crate) cpu_per_worker: f64,
    pub(crate) memory_mb_per_worker: f64,
    pub(crate) registry: FunctionRegistry,
    pub(crate) noise: NoiseModel,
    pub(crate) seed: u64,
    pub(crate) tick: SimDuration,
    pub(crate) telemetry: Telemetry,
    pub(crate) faults: FaultPlan,
    pub(crate) retry: RetryPolicy,
    pub(crate) shards: usize,
}

impl Default for FaasSimBuilder {
    fn default() -> Self {
        FaasSimBuilder {
            workers: 6,
            cpu_per_worker: 40.0,
            memory_mb_per_worker: 128.0 * 1024.0,
            registry: FunctionRegistry::new(),
            noise: NoiseModel::production(),
            seed: 42,
            tick: SimDuration::from_secs(60),
            telemetry: Telemetry::disabled(),
            faults: FaultPlan::disabled(),
            retry: RetryPolicy::default(),
            shards: 1,
        }
    }
}

impl FaasSimBuilder {
    /// Sets cluster shape: `n` workers with `cpu` cores and `memory_mb` each.
    pub fn workers(mut self, n: usize, cpu: f64, memory_mb: u64) -> Self {
        self.workers = n;
        self.cpu_per_worker = cpu;
        self.memory_mb_per_worker = memory_mb as f64;
        self
    }

    /// Installs the function registry.
    pub fn registry(mut self, registry: FunctionRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Sets the environment noise model.
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Seeds all stochastic components.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the pool-adjustment interval (default 60 s).
    pub fn tick_interval(mut self, tick: SimDuration) -> Self {
        assert!(!tick.is_zero(), "tick interval must be positive");
        self.tick = tick;
        self
    }

    /// Routes scheduling events to `telemetry` (default: the null sink).
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Installs a fault-injection plan (default: disabled). Each run
    /// builds fresh fault streams from the plan, so repeated runs replay
    /// identical fault sequences.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Overrides the retry/timeout policy that absorbs injected faults.
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Splits the run into `n` parallel per-invoker-group event loops
    /// (default 1 = the sequential reference loop). Each shard owns a
    /// contiguous slice of workers plus the functions with `id % n ==
    /// shard`; cross-shard stage handoffs are exchanged at conservative
    /// synchronization windows. `n = 1` is bit-identical to the sequential
    /// simulator; each `n >= 2` is its own deterministic model whose output
    /// is independent of `AQUA_THREADS`. See `docs/DESIGN.md`.
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one shard");
        self.shards = n;
        self
    }

    /// Builds the simulator.
    pub fn build(self) -> FaasSim {
        FaasSim { params: self }
    }
}

/// The simulator. Each [`FaasSim::run`] starts from a fresh cluster, so one
/// instance can profile many configurations back to back.
#[derive(Debug, Clone)]
pub struct FaasSim {
    params: FaasSimBuilder,
}

impl FaasSim {
    /// Starts a builder.
    pub fn builder() -> FaasSimBuilder {
        FaasSimBuilder::default()
    }

    /// Replaces the telemetry sink for subsequent runs.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.params.telemetry = telemetry;
    }

    /// Replaces the fault plan for subsequent runs.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.params.faults = plan;
    }

    /// Replaces the retry/timeout policy for subsequent runs.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.params.retry = retry;
    }

    /// The registry this simulator was built with.
    pub fn registry(&self) -> &FunctionRegistry {
        &self.params.registry
    }

    /// Runs a single-workflow trace under the provider-default pool policy.
    pub fn run_workflow_trace(
        &mut self,
        dag: &WorkflowDag,
        configs: &StageConfigs,
        arrivals: &[SimTime],
        horizon: SimTime,
    ) -> RunReport {
        let job = WorkflowJob::new(dag.clone(), configs.clone(), arrivals.to_vec());
        let mut controller = FixedPrewarm::provider_default();
        self.run(&[job], &mut controller, horizon)
    }

    /// Profiles one resource configuration: runs `samples` sequential
    /// workflow invocations with all containers pre-warmed (the paper's
    /// batch-evaluation path sends requests via the pre-warmed pool so
    /// samples observe warm-start behaviour), returning per-sample
    /// `(end-to-end latency seconds, execution cost)`.
    ///
    /// `price_cpu`/`price_mem` follow the linear §5.1 cost model.
    pub fn profile_config(
        &mut self,
        dag: &WorkflowDag,
        configs: &StageConfigs,
        samples: usize,
        warm: bool,
        price_cpu: f64,
        price_mem: f64,
    ) -> Vec<(f64, f64)> {
        assert!(samples > 0, "need at least one sample");
        // First arrival lands well after the first pool tick (60 s) so the
        // pinned pre-warm targets are already booted and warm. Each sample
        // window launches a PAIR of instances 8 s apart: production traffic
        // arrives in bursts, and a configuration must hold its latency under
        // mild concurrency, not just in isolation.
        let spacing = SimDuration::from_secs(120);
        let burst = 2u64;
        let mut arrivals: Vec<SimTime> = Vec::with_capacity(samples * burst as usize);
        for i in 0..samples {
            let base = SimTime::from_secs(150) + spacing * i as u64;
            for b in 0..burst {
                arrivals.push(base + SimDuration::from_secs(8 * b));
            }
        }
        let horizon = *arrivals.last().expect("non-empty") + spacing * 4;
        let job = WorkflowJob::new(dag.clone(), configs.clone(), arrivals);

        let mut targets = HashMap::new();
        if warm {
            for (si, stage) in dag.stages().enumerate() {
                let entry = targets.entry(stage.function).or_insert(0usize);
                // Enough warm capacity for the stage's fan-out at the
                // profiled burst width.
                let slots = configs.stage(si).concurrency.max(1);
                *entry += (stage.tasks as usize * burst as usize).div_ceil(slots as usize);
            }
        }
        let mut controller = FixedPrewarm {
            keep_alive: SimDuration::from_secs(1_000_000),
            targets,
        };
        let report = self.run(std::slice::from_ref(&job), &mut controller, horizon);

        let mut out = Vec::with_capacity(samples * burst as usize);
        for wf in &report.workflows {
            let cost: f64 = report
                .invocations
                .iter()
                .filter(|r| r.workflow_instance == wf.instance)
                .map(|r| r.cpu_seconds * price_cpu + r.memory_gb_seconds * price_mem)
                .sum();
            out.push((wf.latency().as_secs_f64(), cost));
        }
        // Instances that never finished within the horizon are censored:
        // report the elapsed time as a (large) lower bound on latency plus
        // the cost accrued so far, so searchers see the region is terrible
        // instead of silently dropping the sample.
        let finished: std::collections::HashSet<usize> =
            report.workflows.iter().map(|w| w.instance).collect();
        for (i, &arrival) in job.arrivals.iter().enumerate() {
            if finished.contains(&i) {
                continue;
            }
            let censored = horizon.saturating_since(arrival).as_secs_f64();
            // Bill each attempt only up to the horizon: an execution still
            // in flight when the run was cut off contributes the cost it
            // accrued so far, not its full planned window — otherwise a
            // censored sample double-penalizes long configurations with
            // resource time that was never simulated.
            let cost: f64 = report
                .invocations
                .iter()
                .filter(|r| r.workflow_instance == i)
                .map(|r| {
                    let planned = r.finished.saturating_since(r.started).as_secs_f64();
                    let billed = r
                        .finished
                        .min(horizon)
                        .saturating_since(r.started)
                        .as_secs_f64();
                    let frac = if planned > 0.0 { billed / planned } else { 1.0 };
                    (r.cpu_seconds * price_cpu + r.memory_gb_seconds * price_mem) * frac
                })
                .sum();
            out.push((censored, cost.max(censored)));
        }
        out
    }

    /// Like [`FaasSim::profile_config`] but returns, per completed sample,
    /// `(latency s, CPU core·s, memory GB·s)` — the split Fig. 13 reports.
    pub fn profile_detail(
        &mut self,
        dag: &WorkflowDag,
        configs: &StageConfigs,
        samples: usize,
        warm: bool,
    ) -> Vec<(f64, f64, f64)> {
        assert!(samples > 0, "need at least one sample");
        let spacing = SimDuration::from_secs(120);
        let arrivals: Vec<SimTime> = (0..samples)
            .map(|i| SimTime::from_secs(150) + spacing * i as u64)
            .collect();
        let horizon = *arrivals.last().expect("non-empty") + spacing * 4;
        let job = WorkflowJob::new(dag.clone(), configs.clone(), arrivals);
        let mut targets = HashMap::new();
        if warm {
            for (si, stage) in dag.stages().enumerate() {
                let entry = targets.entry(stage.function).or_insert(0usize);
                let slots = configs.stage(si).concurrency.max(1);
                *entry += (stage.tasks as usize).div_ceil(slots as usize);
            }
        }
        let mut controller = FixedPrewarm {
            keep_alive: SimDuration::from_secs(1_000_000),
            targets,
        };
        let report = self.run(std::slice::from_ref(&job), &mut controller, horizon);
        report
            .workflows
            .iter()
            .map(|wf| {
                let (cpu, mem) = report
                    .invocations
                    .iter()
                    .filter(|r| r.workflow_instance == wf.instance)
                    .fold((0.0, 0.0), |acc, r| {
                        (acc.0 + r.cpu_seconds, acc.1 + r.memory_gb_seconds)
                    });
                (wf.latency().as_secs_f64(), cpu, mem)
            })
            .collect()
    }

    /// Runs a full workload mix under `controller` until `horizon`.
    pub fn run(
        &mut self,
        jobs: &[WorkflowJob],
        controller: &mut dyn PrewarmController,
        horizon: SimTime,
    ) -> RunReport {
        if self.params.shards > 1 {
            return crate::shard::run_sharded(&self.params, jobs, controller, horizon);
        }
        let state = RunState::new(&self.params, jobs);
        state.execute(controller, horizon)
    }
}

/// All mutable state of one simulation run — or, in sharded runs, of one
/// shard's slice of the run.
pub(crate) struct RunState<'a> {
    params: &'a FaasSimBuilder,
    jobs: &'a [WorkflowJob],
    pub(crate) cluster: Cluster,
    rng: SimRng,
    pub(crate) queue: EventQueue<Event>,
    pub(crate) instances: Vec<Vec<InstanceState>>,
    /// Tasks waiting for cluster capacity.
    pending: VecDeque<Task>,
    /// Tasks attached to a booting container.
    attached: HashMap<ContainerId, Vec<Task>>,
    /// Claimed slots per booting container.
    claimed: HashMap<ContainerId, u32>,
    /// Current resource config per function id, dense over function ids
    /// (`None` = no workload uses the id).
    config_of: Vec<Option<ResourceConfig>>,
    /// Per-function invocation count in the current window (dense).
    window_invocations: Vec<u32>,
    /// Per-function peak *demand* concurrency in the current window:
    /// tasks outstanding (runnable or executing), independent of how many
    /// containers actually served them — the signal pool policies must
    /// see, otherwise under-provisioning suppresses its own evidence.
    /// Dense over function ids.
    window_peak: Vec<u32>,
    /// Currently outstanding tasks per function (dense over function ids).
    demand_now: Vec<i64>,
    /// Live fault-draw streams for this run.
    faults: FaultState,
    /// In-flight execution attempts by sequence number.
    exec_meta: HashMap<u64, ExecInfo>,
    /// Attempts currently running per container (for crash cancellation).
    running_on: HashMap<ContainerId, Vec<u64>>,
    /// Next execution-attempt sequence number.
    next_seq: u64,
    /// Per-function failed-boot count in the current window (dense).
    window_boot_failures: Vec<u32>,
    /// This state's event sink: the run's own telemetry for the sequential
    /// loop, or a per-shard recorder merged by the sharded driver.
    telemetry: Telemetry,
    /// This state's shard index (0 for the sequential loop).
    pub(crate) shard: usize,
    /// Total shard count (1 for the sequential loop).
    pub(crate) num_shards: usize,
    /// Home shard per job: the shard owning the first root stage's
    /// function, where the job's DAG bookkeeping lives.
    home: Vec<usize>,
    /// Prefix sums of per-job arrival counts: `inst_base[job] + inst` is
    /// the global workflow-instance index (O(1) on the per-invocation
    /// hot path instead of an O(jobs) rescan).
    inst_base: Vec<usize>,
    /// Cross-shard messages produced since the last synchronization window.
    pub(crate) outbox: Vec<ShardMsg>,
    pub(crate) report: RunReport,
}

impl<'a> RunState<'a> {
    fn new(params: &'a FaasSimBuilder, jobs: &'a [WorkflowJob]) -> Self {
        RunState::new_shard(params, jobs, 0, 1, params.telemetry.clone())
    }

    /// Builds the state for `shard` of `num_shards`. With `num_shards == 1`
    /// this is exactly the sequential simulator: full cluster, the legacy
    /// RNG and fault streams, and a self-scheduled pool tick. With more
    /// shards, the shard gets a contiguous worker slice, container ids
    /// minted at `shard + k * num_shards`, RNG/fault streams forked by
    /// shard id, and only the arrivals of jobs homed on it; pool ticks are
    /// driven externally by [`crate::shard::run_sharded`].
    pub(crate) fn new_shard(
        params: &'a FaasSimBuilder,
        jobs: &'a [WorkflowJob],
        shard: usize,
        num_shards: usize,
        telemetry: Telemetry,
    ) -> Self {
        let sharded = num_shards > 1;
        let (worker_count, worker_base) = if sharded {
            let w = params.workers;
            let base = (w / num_shards) * shard + shard.min(w % num_shards);
            let count = w / num_shards + usize::from(shard < w % num_shards);
            (count, base)
        } else {
            (params.workers, 0)
        };
        let mut cluster = if sharded {
            Cluster::new_partition(
                worker_count,
                params.cpu_per_worker,
                params.memory_mb_per_worker,
                worker_base,
                shard as u64,
                num_shards as u64,
            )
        } else {
            Cluster::new(
                params.workers,
                params.cpu_per_worker,
                params.memory_mb_per_worker,
            )
        };
        cluster.set_telemetry(telemetry.clone());

        // Dense per-function tables sized to cover every id in play.
        let mut nfn = params.registry.len();
        for job in jobs {
            for stage in job.dag.stages() {
                nfn = nfn.max(stage.function.0 + 1);
            }
        }
        let mut config_of: Vec<Option<ResourceConfig>> = vec![None; nfn];
        for job in jobs {
            for (si, stage) in job.dag.stages().enumerate() {
                config_of[stage.function.0] = Some(job.configs.stage(si));
            }
        }

        let home: Vec<usize> = jobs
            .iter()
            .map(|j| j.dag.stage(j.dag.roots()[0]).function.0 % num_shards)
            .collect();

        let inst_base: Vec<usize> = jobs
            .iter()
            .scan(0usize, |base, j| {
                let b = *base;
                *base += j.arrivals.len();
                Some(b)
            })
            .collect();

        // Pre-size the future-event list from the arrival count this state
        // will inject: each arrival spawns at least a dispatch plus an
        // exec-done per task, so a small multiple avoids mid-run
        // reallocation for typical DAG widths.
        let homed_arrivals: usize = jobs
            .iter()
            .enumerate()
            .filter(|(ji, _)| !sharded || home[*ji] == shard)
            .map(|(_, j)| j.arrivals.len())
            .sum();
        let mut queue = EventQueue::with_capacity(homed_arrivals * 4 + 64);
        let mut instances = Vec::with_capacity(jobs.len());
        for (ji, job) in jobs.iter().enumerate() {
            let participates = !sharded
                || home[ji] == shard
                || job.dag.stages().any(|s| s.function.0 % num_shards == shard);
            if !participates {
                // A shard that neither homes this job nor owns any of its
                // stage functions never touches its instances.
                instances.push(Vec::new());
                continue;
            }
            let mut insts = Vec::with_capacity(job.arrivals.len());
            for (ii, &at) in job.arrivals.iter().enumerate() {
                if !sharded || home[ji] == shard {
                    queue.push(at, Event::Arrival { job: ji, inst: ii });
                }
                insts.push(InstanceState {
                    arrived: at,
                    deps_left: job.dag.stages().map(|s| s.deps.len()).collect(),
                    tasks_left: job.dag.stages().map(|s| s.tasks).collect(),
                    stages_left: job.dag.num_stages(),
                    cold_starts: 0,
                    invocations: 0,
                    done: false,
                    rejected: false,
                });
            }
            instances.push(insts);
        }
        if !sharded {
            queue.push(SimTime::ZERO + params.tick, Event::PoolTick);
        }
        let (rng, faults) = if sharded {
            (
                SimRng::seed(params.seed).fork(&format!("shard-{shard}")),
                FaultState::for_shard(&params.faults, shard),
            )
        } else {
            (SimRng::seed(params.seed), FaultState::new(&params.faults))
        };
        RunState {
            params,
            jobs,
            cluster,
            rng,
            queue,
            instances,
            pending: VecDeque::new(),
            attached: HashMap::new(),
            claimed: HashMap::new(),
            config_of,
            window_invocations: vec![0; nfn],
            window_peak: vec![0; nfn],
            demand_now: vec![0; nfn],
            faults,
            exec_meta: HashMap::new(),
            running_on: HashMap::new(),
            next_seq: 0,
            window_boot_failures: vec![0; nfn],
            telemetry,
            shard,
            num_shards,
            home,
            inst_base,
            outbox: Vec::new(),
            report: RunReport::default(),
        }
    }

    fn execute(mut self, controller: &mut dyn PrewarmController, horizon: SimTime) -> RunReport {
        while let Some(time) = self.queue.peek_time() {
            if time > horizon {
                break;
            }
            let (now, event) = self.queue.pop().expect("peeked");
            self.report.events_processed += 1;
            match event {
                Event::Arrival { job, inst } => self.on_arrival(job, inst, now),
                Event::BootDone { container } => self.on_boot_done(container, now),
                Event::BootFailed { container } => self.on_boot_failed(container, now),
                Event::ExecDone { seq } => self.on_exec_done(seq, now),
                Event::ContainerCrash { container, seq } => {
                    self.on_container_crash(container, seq, now)
                }
                Event::TaskTimeout { seq } => self.on_task_timeout(seq, now),
                Event::Retry { task } => self.start_task(task, now),
                Event::StageReady { job, inst, stage } => {
                    self.dispatch_stage(job, inst, stage, now)
                }
                Event::StageDoneRemote {
                    job,
                    inst,
                    stage,
                    finished,
                } => self.home_stage_complete(job, inst, stage, finished, now),
                Event::PoolTick => self.on_pool_tick(controller, now, horizon),
            }
            self.drain_pending(now);
        }
        self.cluster.finalize(horizon);
        self.report.cpu_core_seconds = self.cluster.cpu_core_seconds();
        self.report.memory_gb_seconds = self.cluster.memory_gb_seconds();
        self.report.busy_memory_gb_seconds = self.cluster.busy_memory_gb_seconds();
        self.report.unfinished = self
            .instances
            .iter()
            .flatten()
            .filter(|i| !i.done && i.arrived <= horizon)
            .count();
        self.report.rejected = self
            .instances
            .iter()
            .flatten()
            .filter(|i| i.rejected && i.arrived <= horizon)
            .count();
        self.telemetry.flush();
        self.report
    }

    /// Pops and handles every event strictly before `bound` (and within
    /// the horizon). Used by the sharded driver; pool ticks never appear
    /// here because sharded runs drive them between windows.
    pub(crate) fn advance_until(&mut self, bound: SimTime, horizon: SimTime) {
        while let Some(time) = self.queue.peek_time() {
            if time >= bound || time > horizon {
                break;
            }
            let (now, event) = self.queue.pop().expect("peeked");
            self.report.events_processed += 1;
            match event {
                Event::Arrival { job, inst } => self.on_arrival(job, inst, now),
                Event::BootDone { container } => self.on_boot_done(container, now),
                Event::BootFailed { container } => self.on_boot_failed(container, now),
                Event::ExecDone { seq } => self.on_exec_done(seq, now),
                Event::ContainerCrash { container, seq } => {
                    self.on_container_crash(container, seq, now)
                }
                Event::TaskTimeout { seq } => self.on_task_timeout(seq, now),
                Event::Retry { task } => self.start_task(task, now),
                Event::StageReady { job, inst, stage } => {
                    self.dispatch_stage(job, inst, stage, now)
                }
                Event::StageDoneRemote {
                    job,
                    inst,
                    stage,
                    finished,
                } => self.home_stage_complete(job, inst, stage, finished, now),
                Event::PoolTick => unreachable!("pool ticks are driver-run in sharded mode"),
            }
            self.drain_pending(now);
        }
    }

    /// Enqueues a cross-shard message on this (receiving) shard at the
    /// synchronization boundary `bound`. The receiver's clock is strictly
    /// below `bound`, so the push is never clamped.
    pub(crate) fn deliver(&mut self, msg: ShardMsg, bound: SimTime) {
        match msg {
            ShardMsg::StageStart {
                job, inst, stage, ..
            } => {
                self.queue
                    .push(bound, Event::StageReady { job, inst, stage });
            }
            ShardMsg::StageDone {
                job,
                inst,
                stage,
                finished,
                ..
            } => {
                self.queue.push(
                    bound,
                    Event::StageDoneRemote {
                        job,
                        inst,
                        stage,
                        finished,
                    },
                );
            }
        }
    }

    fn on_arrival(&mut self, job: usize, inst: usize, now: SimTime) {
        let roots = self.jobs[job].dag.roots();
        for stage in roots {
            self.dispatch_stage(job, inst, stage, now);
        }
    }

    /// Routes a ready stage to the shard owning its function: dispatched
    /// locally, or sent through the outbox for delivery at the next
    /// synchronization boundary.
    fn dispatch_stage(&mut self, job: usize, inst: usize, stage: usize, now: SimTime) {
        let to = self.jobs[job].dag.stage(stage).function.0 % self.num_shards;
        if to == self.shard {
            self.start_stage(job, inst, stage, now);
        } else {
            self.outbox.push(ShardMsg::StageStart {
                to,
                job,
                inst,
                stage,
            });
        }
    }

    fn start_stage(&mut self, job: usize, inst: usize, stage: usize, now: SimTime) {
        let tasks = self.jobs[job].dag.stage(stage).tasks;
        self.telemetry.emit_with(|| SimEvent::StageDispatch {
            at: now,
            workflow: job,
            instance: inst,
            stage,
            function: self.jobs[job].dag.stage(stage).function.0,
            tasks,
        });
        for _ in 0..tasks {
            self.start_task(
                Task {
                    job,
                    inst,
                    stage,
                    requested: now,
                    attempt: 0,
                },
                now,
            );
        }
    }

    fn start_task(&mut self, task: Task, now: SimTime) {
        let dag = &self.jobs[task.job].dag;
        let function = dag.stage(task.stage).function;
        let config = self.jobs[task.job].configs.stage(task.stage);
        self.window_invocations[function.0] += 1;
        self.instances[task.job][task.inst].invocations += 1;
        self.demand_now[function.0] += 1;
        let demand = self.demand_now[function.0];
        self.window_peak[function.0] = self.window_peak[function.0].max(demand.max(0) as u32);

        // 1. Warm container with a free slot → immediate warm start.
        if let Some(cid) = self.cluster.find_warm(function, &config) {
            self.begin_exec(cid, task, now, false);
            return;
        }
        // 2. In-flight booting container with unclaimed capacity → wait for it.
        if let Some(cid) = self.cluster.find_booting(function, &config, &self.claimed) {
            *self.claimed.entry(cid).or_insert(0) += 1;
            self.attached.entry(cid).or_default().push(task);
            self.instances[task.job][task.inst].cold_starts += 1;
            return;
        }
        // 3. Boot a dedicated container.
        let spec = self.params.registry.spec(function);
        let boot = spec.sample_cold_start(&config, &self.params.noise, &mut self.rng);
        let cid = match self
            .cluster
            .boot_container(function, config, now, boot, false)
        {
            Some(cid) => Some(cid),
            None => {
                // Try LRU eviction, then retry once.
                if self.cluster.evict_for(config.memory_mb, now) {
                    self.cluster
                        .boot_container(function, config, now, boot, false)
                } else {
                    None
                }
            }
        };
        match cid {
            Some(cid) => {
                self.schedule_boot_outcome(cid, now + boot);
                *self.claimed.entry(cid).or_insert(0) += 1;
                self.attached.entry(cid).or_default().push(task);
                self.instances[task.job][task.inst].cold_starts += 1;
            }
            None => {
                // No capacity anywhere: queue until something frees up.
                self.telemetry.emit_with(|| SimEvent::StageQueued {
                    at: now,
                    workflow: task.job,
                    instance: task.inst,
                    stage: task.stage,
                    function: function.0,
                });
                self.pending.push_back(task);
            }
        }
    }

    fn begin_exec(&mut self, cid: ContainerId, task: Task, now: SimTime, cold: bool) {
        let function = self.jobs[task.job].dag.stage(task.stage).function;
        let config = self.jobs[task.job].configs.stage(task.stage);
        let spec = self.params.registry.spec(function);
        if !cold {
            // Cold tasks were charged at boot completion; only warm reuse
            // is a warm hit.
            self.telemetry.emit_with(|| SimEvent::WarmHit {
                at: now,
                function: function.0,
                container: cid.0,
            });
        }
        self.cluster.assign(cid, now);

        let mut exec = spec.sample_exec(&config, &self.params.noise, &mut self.rng);
        // Straggler fault: stretch this attempt's execution time. The
        // draw comes from the dedicated straggler stream, so the main
        // noise stream — and with it every fault-free run — is untouched.
        if let Some(factor) = self.faults.next_straggler() {
            exec = SimDuration::from_secs_f64(exec.as_secs_f64() * factor);
            self.telemetry.emit_with(|| SimEvent::FaultInjected {
                at: now,
                kind_of: FaultKind::Straggler,
                function: function.0,
                container: Some(cid.0),
                magnitude: factor,
            });
        }
        let finish = now + exec;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(finish, Event::ExecDone { seq });
        // Crash fault: the container dies partway through this attempt,
        // taking every invocation running on it down with it.
        if let Some(frac) = self.faults.next_crash() {
            let crash_at = now + SimDuration::from_secs_f64(exec.as_secs_f64() * frac);
            self.queue.push(
                crash_at,
                Event::ContainerCrash {
                    container: cid,
                    seq,
                },
            );
        }
        if let Some(timeout) = self.params.retry.task_timeout {
            if timeout < exec {
                self.queue.push(now + timeout, Event::TaskTimeout { seq });
            }
        }
        let secs = exec.as_secs_f64();
        let record = self.report.invocations.len();
        self.report.invocations.push(InvocationRecord {
            function,
            workflow_instance: self.global_instance(task.job, task.inst),
            stage: task.stage,
            requested: task.requested,
            started: now,
            finished: finish,
            cold,
            cpu_seconds: config.cpu_per_slot() * secs,
            memory_gb_seconds: config.memory_per_slot() / 1024.0 * secs,
        });
        self.exec_meta.insert(
            seq,
            ExecInfo {
                container: cid,
                task,
                record,
            },
        );
        self.running_on.entry(cid).or_default().push(seq);
    }

    /// Truncates a cancelled attempt's billed window at `now`: the crash
    /// or timeout ends both the latency and the resource consumption.
    fn truncate_record(&mut self, record: usize, now: SimTime) {
        let r = &mut self.report.invocations[record];
        let planned = r.finished.saturating_since(r.started).as_secs_f64();
        let actual = now.saturating_since(r.started).as_secs_f64();
        if planned > 0.0 {
            let scale = actual / planned;
            r.cpu_seconds *= scale;
            r.memory_gb_seconds *= scale;
        }
        r.finished = now;
    }

    /// Reschedules a failed attempt with exponential backoff, or marks
    /// the instance rejected once retries are exhausted.
    fn retry_or_reject(&mut self, task: Task, now: SimTime) {
        let attempt = task.attempt + 1;
        if attempt <= self.params.retry.max_retries {
            let function = self.jobs[task.job].dag.stage(task.stage).function;
            self.params
                .telemetry
                .emit_with(|| SimEvent::InvocationRetried {
                    at: now,
                    workflow: task.job,
                    instance: task.inst,
                    stage: task.stage,
                    function: function.0,
                    attempt,
                });
            let task = Task { attempt, ..task };
            self.queue.push(
                now + self.params.retry.backoff_for(attempt),
                Event::Retry { task },
            );
        } else {
            self.instances[task.job][task.inst].rejected = true;
        }
    }

    fn global_instance(&self, job: usize, inst: usize) -> usize {
        self.inst_base[job] + inst
    }

    /// Folds this shard's per-instance counters into dense global-instance
    /// vectors `(cold_starts, invocations, rejected)` of length `total`.
    /// Shard-local by construction — the sharded driver sums the per-shard
    /// folds after the final barrier.
    pub(crate) fn instance_fold(&self, total: usize) -> (Vec<u32>, Vec<u32>, Vec<bool>) {
        let mut cold = vec![0u32; total];
        let mut invs = vec![0u32; total];
        let mut rejected = vec![false; total];
        for (ji, insts) in self.instances.iter().enumerate() {
            let base = self.inst_base[ji];
            for (ii, is) in insts.iter().enumerate() {
                cold[base + ii] += is.cold_starts;
                invs[base + ii] += is.invocations;
                rejected[base + ii] |= is.rejected;
            }
        }
        (cold, invs, rejected)
    }

    /// An injected boot fault fires: the container dies at the moment it
    /// would have turned warm, and every task waiting on it is retried.
    fn on_boot_failed(&mut self, cid: ContainerId, now: SimTime) {
        let function = match self.cluster.container(cid) {
            Some(c) => c.function,
            None => return,
        };
        self.telemetry.emit_with(|| SimEvent::FaultInjected {
            at: now,
            kind_of: FaultKind::BootFail,
            function: function.0,
            container: Some(cid.0),
            magnitude: 0.0,
        });
        self.cluster.kill(cid, now, EvictionReason::Fault);
        self.window_boot_failures[function.0] += 1;
        self.claimed.remove(&cid);
        for task in self.attached.remove(&cid).unwrap_or_default() {
            // The waiting task is no longer outstanding until its retry
            // re-enters scheduling.
            self.demand_now[function.0] -= 1;
            self.retry_or_reject(task, now);
        }
    }

    /// An injected crash fires: unless the triggering attempt already
    /// finished, the container dies and all attempts running on it are
    /// cancelled and retried.
    fn on_container_crash(&mut self, cid: ContainerId, seq: u64, now: SimTime) {
        if !self.exec_meta.contains_key(&seq) {
            return; // attempt finished (or was cancelled) before the crash
        }
        let function = match self.cluster.container(cid) {
            Some(c) => c.function,
            None => return,
        };
        self.telemetry.emit_with(|| SimEvent::FaultInjected {
            at: now,
            kind_of: FaultKind::Crash,
            function: function.0,
            container: Some(cid.0),
            magnitude: 0.0,
        });
        let seqs = self.running_on.remove(&cid).unwrap_or_default();
        self.cluster.kill_faulted(cid, now);
        for s in seqs {
            let Some(info) = self.exec_meta.remove(&s) else {
                continue;
            };
            let f = self.jobs[info.task.job].dag.stage(info.task.stage).function;
            self.demand_now[f.0] -= 1;
            self.truncate_record(info.record, now);
            self.retry_or_reject(info.task, now);
        }
    }

    /// The per-stage timeout fires: unless the attempt already finished,
    /// cancel it, free its slot, and retry.
    fn on_task_timeout(&mut self, seq: u64, now: SimTime) {
        let Some(info) = self.exec_meta.remove(&seq) else {
            return; // attempt finished before the timeout
        };
        let cid = info.container;
        if let Some(v) = self.running_on.get_mut(&cid) {
            v.retain(|s| *s != seq);
            if v.is_empty() {
                self.running_on.remove(&cid);
            }
        }
        self.cluster.release(cid, now);
        let task = info.task;
        let function = self.jobs[task.job].dag.stage(task.stage).function;
        self.demand_now[function.0] -= 1;
        self.truncate_record(info.record, now);
        self.telemetry.emit_with(|| SimEvent::InvocationTimedOut {
            at: now,
            workflow: task.job,
            instance: task.inst,
            stage: task.stage,
            function: function.0,
            container: cid.0,
        });
        self.retry_or_reject(task, now);
    }

    /// Schedules a boot's outcome: normally `BootDone` at `ready`, but a
    /// boot-fail fault turns it into `BootFailed` at the same instant —
    /// the boot hangs until its deadline and then dies.
    fn schedule_boot_outcome(&mut self, cid: ContainerId, ready: SimTime) {
        if self.faults.next_boot_fail() {
            self.queue.push(ready, Event::BootFailed { container: cid });
        } else {
            self.queue.push(ready, Event::BootDone { container: cid });
        }
    }

    fn on_boot_done(&mut self, cid: ContainerId, now: SimTime) {
        let (function, worker) = match self.cluster.container(cid) {
            Some(c) => (c.function, c.worker),
            None => return, // reaped while booting cannot happen, but stay safe
        };
        self.cluster.boot_complete(cid, now);
        self.claimed.remove(&cid);
        let tasks = self.attached.remove(&cid).unwrap_or_default();
        self.telemetry.emit_with(|| SimEvent::ColdStartEnd {
            at: now,
            function: function.0,
            container: cid.0,
            worker: worker.0,
            tasks_attached: tasks.len() as u32,
        });
        for task in tasks {
            // Attached tasks experienced the boot as their cold start.
            self.begin_exec(cid, task, now, true);
        }
    }

    fn on_exec_done(&mut self, seq: u64, now: SimTime) {
        let Some(info) = self.exec_meta.remove(&seq) else {
            return; // attempt was cancelled by a crash or timeout
        };
        let cid = info.container;
        if let Some(v) = self.running_on.get_mut(&cid) {
            v.retain(|s| *s != seq);
            if v.is_empty() {
                self.running_on.remove(&cid);
            }
        }
        let Task {
            job, inst, stage, ..
        } = info.task;
        self.cluster.release(cid, now);
        let function = self.jobs[job].dag.stage(stage).function;
        self.demand_now[function.0] -= 1;
        self.telemetry.emit_with(|| SimEvent::TaskComplete {
            at: now,
            workflow: job,
            instance: inst,
            stage,
            container: cid.0,
        });
        let instance = &mut self.instances[job][inst];
        instance.tasks_left[stage] -= 1;
        if instance.tasks_left[stage] > 0 {
            return;
        }
        // Stage complete.
        self.telemetry.emit_with(|| SimEvent::StageComplete {
            at: now,
            workflow: job,
            instance: inst,
            stage,
        });
        if self.home[job] == self.shard {
            self.home_stage_complete(job, inst, stage, now, now);
        } else {
            // The instance's DAG bookkeeping lives on its home shard.
            self.outbox.push(ShardMsg::StageDone {
                to: self.home[job],
                job,
                inst,
                stage,
                finished: now,
            });
        }
    }

    /// Home-shard half of stage completion: DAG bookkeeping, workflow
    /// records, and dispatch of newly-ready dependent stages. In the
    /// sequential loop every stage completes here directly.
    /// `finished` is the stage's true completion time on its owner shard
    /// (== `now` except for cross-shard completions, which are processed
    /// at the synchronization boundary after they happened); it stamps
    /// workflow records so reported latency carries no handoff
    /// quantization. Dependent stages still dispatch at `now` — work
    /// cannot start before the notification arrives.
    fn home_stage_complete(
        &mut self,
        job: usize,
        inst: usize,
        stage: usize,
        finished: SimTime,
        now: SimTime,
    ) {
        let global_instance = self.global_instance(job, inst);
        let dag = &self.jobs[job].dag;
        let instance = &mut self.instances[job][inst];
        instance.stages_left -= 1;
        if instance.stages_left == 0 {
            instance.done = true;
            let record = WorkflowRecord {
                instance: global_instance,
                arrived: instance.arrived,
                finished,
                cold_starts: instance.cold_starts,
                invocations: instance.invocations,
            };
            self.report.workflows.push(record);
            return;
        }
        let dependents = dag.dependents();
        let ready: Vec<usize> = dependents[stage]
            .iter()
            .copied()
            .filter(|&d| {
                let inst_state = &mut self.instances[job][inst];
                inst_state.deps_left[d] -= 1;
                inst_state.deps_left[d] == 0
            })
            .collect();
        for d in ready {
            // Handoff fault: the dependent stage's dispatch is delayed.
            if let Some(delay) = self.faults.next_handoff() {
                let function = dag.stage(d).function;
                self.telemetry.emit_with(|| SimEvent::FaultInjected {
                    at: now,
                    kind_of: FaultKind::HandoffDelay,
                    function: function.0,
                    container: None,
                    magnitude: delay.as_secs_f64(),
                });
                self.queue.push(
                    now + delay,
                    Event::StageReady {
                        job,
                        inst,
                        stage: d,
                    },
                );
            } else {
                self.dispatch_stage(job, inst, d, now);
            }
        }
    }

    fn on_pool_tick(
        &mut self,
        controller: &mut dyn PrewarmController,
        now: SimTime,
        horizon: SimTime,
    ) {
        let stats: Vec<FnWindowStats> = self
            .params
            .registry
            .iter()
            .map(|(fid, _)| self.stats_for(fid))
            .collect();
        let obs = PoolObservation {
            now,
            window: self.params.tick,
            stats,
            cluster: self.cluster.snapshot(),
        };
        self.report
            .pool_snapshots
            .push((now, self.cluster.reserved_memory_mb()));
        let decisions = controller.tick(&obs);
        for d in decisions {
            self.apply_decision(&d, now);
        }
        self.clear_window();
        let next = now + self.params.tick;
        if next <= horizon {
            self.queue.push(next, Event::PoolTick);
        }
    }

    /// Window stats for one function, from this state's counters and
    /// cluster slice. The sharded driver sums these across shards.
    pub(crate) fn stats_for(&self, fid: FunctionId) -> FnWindowStats {
        let (booting, idle, busy) = self.cluster.counts(fid);
        FnWindowStats {
            function: fid,
            invocations: self.window_invocations.get(fid.0).copied().unwrap_or(0),
            peak_concurrency: self.window_peak.get(fid.0).copied().unwrap_or(0),
            booting: booting as u32,
            idle: idle as u32,
            busy: busy as u32,
            failed_boots: self.window_boot_failures.get(fid.0).copied().unwrap_or(0),
        }
    }

    /// Applies one pool decision — reap stale idle containers first, then
    /// grow or shrink toward the pre-warm target — to this state's cluster.
    pub(crate) fn apply_decision(&mut self, d: &PoolDecision, now: SimTime) {
        self.cluster.reap_idle(d.function, d.keep_alive, now);
        if let Some(target) = d.prewarm_target {
            self.apply_prewarm_target(d.function, target, d.shrink, now);
        }
    }

    /// Resets the per-window counters at a pool tick.
    pub(crate) fn clear_window(&mut self) {
        self.window_invocations.fill(0);
        self.window_peak.fill(0);
        self.window_boot_failures.fill(0);
    }

    fn apply_prewarm_target(
        &mut self,
        function: FunctionId,
        target: usize,
        shrink: bool,
        now: SimTime,
    ) {
        let (booting, idle, _) = self.cluster.counts(function);
        let available = booting + idle;
        if available < target {
            let Some(config) = self.config_of.get(function.0).copied().flatten() else {
                return;
            };
            let spec = self.params.registry.spec(function);
            for _ in 0..(target - available) {
                let boot = spec.sample_cold_start(&config, &self.params.noise, &mut self.rng);
                match self
                    .cluster
                    .boot_container(function, config, now, boot, true)
                {
                    Some(cid) => self.schedule_boot_outcome(cid, now + boot),
                    None => break, // cluster full; stop pre-warming
                }
            }
        } else if shrink && idle > 0 && available > target {
            self.cluster.shrink_idle(function, available - target, now);
        }
    }

    pub(crate) fn drain_pending(&mut self, now: SimTime) {
        // Retry queued tasks (FIFO); stop at the first that still can't run
        // to preserve ordering fairness.
        while let Some(task) = self.pending.front().copied() {
            let function = self.jobs[task.job].dag.stage(task.stage).function;
            let config = self.jobs[task.job].configs.stage(task.stage);
            let can_warm = self.cluster.find_warm(function, &config).is_some();
            let can_attach = self
                .cluster
                .find_booting(function, &config, &self.claimed)
                .is_some();
            if !can_warm && !can_attach && !self.cluster.evict_for(config.memory_mb, now) {
                break;
            }
            self.pending.pop_front();
            // Undo the double count in start_task (the task was already
            // counted as an invocation and as outstanding demand). The
            // window counter saturates because a pool tick may have cleared
            // the window while the task sat queued.
            self.window_invocations[function.0] =
                self.window_invocations[function.0].saturating_sub(1);
            self.instances[task.job][task.inst].invocations -= 1;
            self.demand_now[function.0] -= 1;
            self.start_task(task, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionSpec;
    use crate::types::ResourceConfig;

    fn setup(work_ms: f64) -> (FaasSim, WorkflowDag, StageConfigs) {
        let mut registry = FunctionRegistry::new();
        let f = registry.register(
            FunctionSpec::new("f")
                .with_work_ms(work_ms)
                .with_cold_start(500.0, 500.0)
                .with_exec_cv(0.0),
        );
        let dag = WorkflowDag::chain("wf", vec![f]);
        let configs = StageConfigs::uniform(&dag, ResourceConfig::default());
        let sim = FaasSim::builder()
            .workers(2, 8.0, 16_384)
            .registry(registry)
            .noise(NoiseModel::quiet())
            .seed(1)
            .build();
        (sim, dag, configs)
    }

    #[test]
    fn replacement_target_lifts_by_failed_boots() {
        // No base, no failures: stays None (strict no-op for keep-alive
        // policies on fault-free runs).
        assert_eq!(replacement_target(None, 0), None);
        // Failures force a target even without a base.
        assert_eq!(replacement_target(None, 3), Some(3));
        // A base target is lifted by exactly the failed count.
        assert_eq!(replacement_target(Some(4), 0), Some(4));
        assert_eq!(replacement_target(Some(4), 2), Some(6));
        // Zero base with failures still replaces the lost boots.
        assert_eq!(replacement_target(Some(0), 1), Some(1));
    }

    #[test]
    fn single_invocation_pays_cold_start() {
        let (mut sim, dag, configs) = setup(100.0);
        let report = sim.run_workflow_trace(
            &dag,
            &configs,
            &[SimTime::from_secs(1)],
            SimTime::from_secs(120),
        );
        assert_eq!(report.workflows.len(), 1);
        assert_eq!(report.invocations.len(), 1);
        assert!(report.invocations[0].cold);
        // Latency ≈ boot (0.5s) + init (0.5s) + exec (0.11s).
        let lat = report.workflows[0].latency().as_secs_f64();
        assert!((lat - 1.11).abs() < 0.02, "latency {lat}");
    }

    #[test]
    fn back_to_back_invocations_reuse_warm_container() {
        let (mut sim, dag, configs) = setup(100.0);
        let arrivals = vec![SimTime::from_secs(1), SimTime::from_secs(10)];
        let report = sim.run_workflow_trace(&dag, &configs, &arrivals, SimTime::from_secs(120));
        assert_eq!(report.invocations.len(), 2);
        assert!(report.invocations[0].cold);
        assert!(!report.invocations[1].cold, "second call should be warm");
        assert!((report.cold_start_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn keep_alive_expiry_causes_second_cold_start() {
        let (mut sim, dag, configs) = setup(100.0);
        // Default keep-alive is 600 s; arrive again after 700 s idle.
        let arrivals = vec![SimTime::from_secs(1), SimTime::from_secs(750)];
        let report = sim.run_workflow_trace(&dag, &configs, &arrivals, SimTime::from_secs(1000));
        assert_eq!(report.invocations.iter().filter(|r| r.cold).count(), 2);
    }

    #[test]
    fn prewarm_target_eliminates_cold_start() {
        let (mut sim, dag, configs) = setup(100.0);
        let f = dag.stage(0).function;
        let mut targets = HashMap::new();
        targets.insert(f, 1usize);
        let mut controller = FixedPrewarm {
            keep_alive: SimDuration::from_secs(10_000),
            targets,
        };
        // Pool tick at 60 s pre-warms; arrival at 120 s is warm.
        let job = WorkflowJob::new(dag.clone(), configs.clone(), vec![SimTime::from_secs(120)]);
        let report = sim.run(&[job], &mut controller, SimTime::from_secs(300));
        assert_eq!(report.invocations.len(), 1);
        assert!(
            !report.invocations[0].cold,
            "pre-warmed container should serve warm"
        );
    }

    #[test]
    fn chain_runs_stages_sequentially() {
        let mut registry = FunctionRegistry::new();
        let a = registry.register(
            FunctionSpec::new("a")
                .with_work_ms(100.0)
                .with_exec_cv(0.0)
                .with_cold_start(100.0, 0.0),
        );
        let b = registry.register(
            FunctionSpec::new("b")
                .with_work_ms(100.0)
                .with_exec_cv(0.0)
                .with_cold_start(100.0, 0.0),
        );
        let dag = WorkflowDag::chain("c", vec![a, b]);
        let configs = StageConfigs::uniform(&dag, ResourceConfig::default());
        let mut sim = FaasSim::builder()
            .workers(1, 8.0, 8192)
            .registry(registry)
            .noise(NoiseModel::quiet())
            .build();
        let report = sim.run_workflow_trace(
            &dag,
            &configs,
            &[SimTime::from_secs(1)],
            SimTime::from_secs(60),
        );
        assert_eq!(report.invocations.len(), 2);
        let first = &report.invocations[0];
        let second = &report.invocations[1];
        assert!(
            second.requested >= first.finished,
            "stage 2 starts after stage 1"
        );
    }

    #[test]
    fn fan_out_runs_in_parallel() {
        let mut registry = FunctionRegistry::new();
        let s = registry.register(
            FunctionSpec::new("s")
                .with_work_ms(10.0)
                .with_exec_cv(0.0)
                .with_cold_start(10.0, 0.0),
        );
        let w = registry.register(
            FunctionSpec::new("w")
                .with_work_ms(1000.0)
                .with_exec_cv(0.0)
                .with_cold_start(10.0, 0.0),
        );
        let a = registry.register(
            FunctionSpec::new("a")
                .with_work_ms(10.0)
                .with_exec_cv(0.0)
                .with_cold_start(10.0, 0.0),
        );
        let dag = WorkflowDag::fan_out_in("f", s, w, 8, a);
        let configs = StageConfigs::uniform(&dag, ResourceConfig::new(1.0, 512.0, 1));
        let mut sim = FaasSim::builder()
            .workers(4, 16.0, 32_768)
            .registry(registry)
            .noise(NoiseModel::quiet())
            .build();
        let report = sim.run_workflow_trace(
            &dag,
            &configs,
            &[SimTime::from_secs(1)],
            SimTime::from_secs(120),
        );
        assert_eq!(report.invocations.len(), 10);
        // Parallel workers: total latency far below 8 sequential seconds.
        let lat = report.workflows[0].latency().as_secs_f64();
        assert!(lat < 3.0, "fan-out should parallelize: {lat}");
    }

    #[test]
    fn capacity_pressure_queues_tasks() {
        let mut registry = FunctionRegistry::new();
        let f = registry.register(
            FunctionSpec::new("big")
                .with_work_ms(500.0)
                .with_exec_cv(0.0)
                .with_cold_start(10.0, 0.0)
                .with_mem_demand(512.0),
        );
        let dag = WorkflowDag::chain("w", vec![f]);
        // Containers of 4 GiB on a single 8 GiB worker: only 2 fit.
        let configs = StageConfigs::uniform(&dag, ResourceConfig::new(1.0, 4096.0, 1));
        let mut sim = FaasSim::builder()
            .workers(1, 8.0, 8192)
            .registry(registry)
            .noise(NoiseModel::quiet())
            .build();
        let arrivals: Vec<SimTime> = (0..4).map(|_| SimTime::from_secs(1)).collect();
        let report = sim.run_workflow_trace(&dag, &configs, &arrivals, SimTime::from_secs(300));
        // All four eventually complete despite capacity for two at a time.
        assert_eq!(report.workflows.len(), 4);
    }

    #[test]
    fn profile_config_warm_measures_warm_latency() {
        let (mut sim, dag, configs) = setup(200.0);
        let samples = sim.profile_config(&dag, &configs, 5, true, 1.0, 1.0);
        // Each profiling window launches a burst of two instances.
        assert_eq!(samples.len(), 10);
        for (lat, cost) in &samples {
            // Warm exec ≈ 0.21 s, no cold-start second.
            assert!(*lat < 0.5, "warm latency {lat}");
            assert!(*cost > 0.0);
        }
    }

    #[test]
    fn profile_config_cold_is_slower() {
        let (mut sim, dag, configs) = setup(200.0);
        let warm = sim.profile_config(&dag, &configs, 3, true, 1.0, 1.0);
        let mut sim2 = {
            let (s, _, _) = setup(200.0);
            s
        };
        let cold = sim2.profile_config(&dag, &configs, 3, false, 1.0, 1.0);
        let warm_mean: f64 = warm.iter().map(|s| s.0).sum::<f64>() / warm.len() as f64;
        // Without pinning, the first call is cold; later ones reuse, so
        // compare the max (the cold one).
        let cold_max = cold.iter().map(|s| s.0).fold(0.0, f64::max);
        assert!(
            cold_max > warm_mean * 2.0,
            "cold {cold_max} vs warm {warm_mean}"
        );
    }

    #[test]
    fn profile_config_censors_unfinished_samples_once() {
        // 600 s of work per invocation: with one profiling window the
        // horizon lands at `last arrival + 480 s`, so neither instance in
        // the burst can finish and both must be censored.
        let (mut sim, dag, configs) = setup(600_000.0);
        let samples = sim.profile_config(&dag, &configs, 1, true, 1.0, 1.0);
        // Exactly one entry per launched instance — censored samples are
        // reported once, never dropped and never double-counted.
        assert_eq!(samples.len(), 2);
        // The censored latency is the elapsed-time lower bound
        // `horizon - arrival`: arrivals at 150 s and 158 s, horizon at
        // 158 + 480 = 638 s.
        let mut lats: Vec<f64> = samples.iter().map(|s| s.0).collect();
        lats.sort_by(f64::total_cmp);
        assert_eq!(lats, vec![480.0, 488.0]);
        for (lat, cost) in &samples {
            // Cost is horizon-capped: the full 600 s execution would bill
            // 600 cpu·s + 600 GB·s = 1200 at unit prices, but only the
            // simulated prefix (< 488 s of 600 s) may be charged...
            assert!(*cost < 1150.0, "cost {cost} must be horizon-capped");
            // ...while staying at least the censored elapsed time, so a
            // searcher still sees the region as expensive.
            assert!(*cost >= *lat, "cost {cost} below censored floor {lat}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut sim, dag, configs) = setup(100.0);
        let arrivals = vec![SimTime::from_secs(1), SimTime::from_secs(5)];
        let a = sim.run_workflow_trace(&dag, &configs, &arrivals, SimTime::from_secs(60));
        let b = sim.run_workflow_trace(&dag, &configs, &arrivals, SimTime::from_secs(60));
        assert_eq!(a, b);
    }

    /// A workload wide enough to exercise several shards: six functions,
    /// three two-stage chains, interleaved arrivals.
    fn sharded_setup() -> (FunctionRegistry, Vec<WorkflowJob>) {
        let mut registry = FunctionRegistry::new();
        let fns: Vec<_> = (0..6)
            .map(|i| {
                registry.register(
                    FunctionSpec::new(format!("f{i}"))
                        .with_work_ms(80.0 + 20.0 * i as f64)
                        .with_cold_start(300.0, 200.0)
                        .with_exec_cv(0.1),
                )
            })
            .collect();
        let jobs: Vec<WorkflowJob> = (0..3)
            .map(|c| {
                let dag = WorkflowDag::chain(format!("chain{c}"), vec![fns[2 * c], fns[2 * c + 1]]);
                let configs = StageConfigs::uniform(&dag, ResourceConfig::default());
                let arrivals = (0..40)
                    .map(|i| SimTime::from_millis(1_000 + 700 * i + 137 * c as u64))
                    .collect();
                WorkflowJob::new(dag, configs, arrivals)
            })
            .collect();
        (registry, jobs)
    }

    fn run_sharded_setup(shards: usize) -> RunReport {
        let (registry, jobs) = sharded_setup();
        let mut sim = FaasSim::builder()
            .workers(4, 16.0, 32_768)
            .registry(registry)
            .noise(NoiseModel::quiet())
            .seed(9)
            .shards(shards)
            .build();
        let mut controller = FixedPrewarm::provider_default();
        sim.run(&jobs, &mut controller, SimTime::from_secs(300))
    }

    #[test]
    fn sharded_run_completes_every_workflow() {
        for shards in [1, 2, 4] {
            let report = run_sharded_setup(shards);
            assert_eq!(
                report.workflows.len(),
                120,
                "all instances complete at {shards} shards"
            );
            assert_eq!(report.unfinished, 0);
            // Two invocations per chain instance.
            let total: u32 = report.workflows.iter().map(|w| w.invocations).sum();
            assert_eq!(total, 240);
            assert!(report.events_processed > 0);
        }
    }

    #[test]
    fn sharded_run_is_deterministic_given_seed() {
        for shards in [2, 4] {
            let a = run_sharded_setup(shards);
            let b = run_sharded_setup(shards);
            assert_eq!(a, b, "sharded run must replay identically at {shards}");
        }
    }

    #[test]
    fn sharded_latencies_track_sequential() {
        // Different shard counts are different deterministic models, but
        // on a lightly loaded cluster they must agree statistically:
        // handoff quantization adds at most one 1 s window per stage edge.
        let seq = run_sharded_setup(1);
        let par = run_sharded_setup(4);
        let mean_seq = seq.mean_latency_secs();
        let mean_par = par.mean_latency_secs();
        assert!(
            (mean_par - mean_seq).abs() < 1.5,
            "mean latency diverged: sequential {mean_seq} vs 4 shards {mean_par}"
        );
    }

    #[test]
    fn unfinished_workflows_counted() {
        let (mut sim, dag, configs) = setup(100_000.0); // 100 s of work
        let report = sim.run_workflow_trace(
            &dag,
            &configs,
            &[SimTime::from_secs(1)],
            SimTime::from_secs(10),
        );
        assert_eq!(report.workflows.len(), 0);
        assert_eq!(report.unfinished, 1);
    }
}
