//! Pre-warmed-container-pool policies.
//!
//! Every cold-start mitigation compared in the paper's §8.1, implemented
//! against the simulator's [`PrewarmController`] interface:
//!
//! * [`KeepAlivePolicy`] — the fixed 10-minute keep-alive of most
//!   providers (no pre-warming).
//! * [`ReactiveAutoscale`] — OpenWhisk's reactive stem-cell autoscaling.
//! * [`FaasCachePolicy`] — FaaSCache's greedy-dual caching: containers are
//!   kept until memory pressure evicts them (LRU fallback in the
//!   simulator), with conservative reactive scaling.
//! * [`HistogramPolicy`] — the histogram-based keep-alive of *Serverless
//!   in the Wild* (Shahrad et al.).
//! * [`IceBreakerPolicy`] — IceBreaker's Fourier-based pre-warming.
//! * [`AquatopePool`] — AQUATOPE's dynamic pool driven by the hybrid
//!   Bayesian NN with an uncertainty-aware head-room margin.
//! * [`AquaLitePool`] — the ablation without uncertainty (paper's
//!   "AquaLite").
//!
//! Plus two learning-based competitors beyond the paper's line-up:
//!
//! * [`SlackAwarePolicy`] — Fifer-style slack-aware batching/queueing:
//!   per-stage slack from the workflow deadline decides which functions
//!   defer pre-warming entirely and which get bucketed proactive boots.
//! * [`RlPoolPolicy`] — a tabular Q-learning agent per function over
//!   discretized utilization/demand/rate states and pre-warm deltas, with
//!   deterministic seeded exploration.
//!
//! All predictive policies observe the same per-window statistics and keep
//! per-function history; none peeks at the future trace. Every policy
//! routes its target through [`aqua_faas::replacement_target`] so
//! fault-killed boots are replaced uniformly (the `failed_boots` contract
//! in `tests/pool_contract.rs`).

pub mod aquatope;
pub mod baselines;
pub mod histogram;
pub mod rl;
pub mod service;
pub mod slack;

pub use aquatope::{AquaLitePool, AquatopePool, AquatopePoolConfig};
pub use baselines::{FaasCachePolicy, IceBreakerPolicy, KeepAlivePolicy, ReactiveAutoscale};
pub use histogram::HistogramPolicy;
pub use rl::{RlConfig, RlPoolPolicy};
pub use service::LivePoolSignal;
pub use slack::{SlackAwarePolicy, SlackConfig};

use aqua_forecast::{SeriesPoint, TriggerKind};

/// Converts a per-window concurrency history into the forecasting crate's
/// series points (1-minute windows, HTTP trigger by default).
pub fn to_series(history: &[f64]) -> Vec<SeriesPoint> {
    history
        .iter()
        .enumerate()
        .map(|(i, &c)| SeriesPoint::new(c, i as u64, TriggerKind::Http))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_series_preserves_counts_and_minutes() {
        let s = to_series(&[1.0, 4.0, 2.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s[1].count, 4.0);
        assert_eq!(s[2].minute, 2);
    }
}
