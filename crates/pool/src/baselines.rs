//! Keep-alive, autoscaling, FaaSCache, and IceBreaker pool baselines.

use std::collections::HashMap;

use aqua_faas::{replacement_target, FunctionId, PoolDecision, PoolObservation, PrewarmController};
use aqua_forecast::{FourierPredictor, Predictor};
use aqua_sim::SimDuration;

use crate::to_series;

/// Fixed keep-alive, no pre-warming — the provider default the paper's
/// Fig. 9 calls "Keep" (10 minutes by default).
#[derive(Debug, Clone, PartialEq)]
pub struct KeepAlivePolicy {
    keep_alive: SimDuration,
}

impl KeepAlivePolicy {
    /// The usual 10-minute keep-alive.
    pub fn provider_default() -> Self {
        KeepAlivePolicy {
            keep_alive: SimDuration::from_secs(600),
        }
    }

    /// A custom keep-alive duration.
    pub fn new(keep_alive: SimDuration) -> Self {
        KeepAlivePolicy { keep_alive }
    }
}

impl PrewarmController for KeepAlivePolicy {
    fn tick(&mut self, obs: &PoolObservation) -> Vec<PoolDecision> {
        obs.stats
            .iter()
            .map(|s| PoolDecision {
                function: s.function,
                // No pre-warming — but boots lost to faults in this window
                // are replaced, else a lossy node silently drains the pool.
                // With `shrink: true` any overshoot is reclaimed next tick.
                prewarm_target: replacement_target(None, s.failed_boots),
                keep_alive: self.keep_alive,
                shrink: true,
            })
            .collect()
    }
}

/// OpenWhisk-style reactive stem-cell autoscaling: scale the warm pool up
/// quickly toward observed demand plus head-room, and decay it slowly —
/// the paper's "Autoscale" baseline, which reacts too late under rapid
/// load fluctuation (§8.1).
#[derive(Debug, Clone, PartialEq)]
pub struct ReactiveAutoscale {
    headroom: f64,
    keep_alive: SimDuration,
    targets: HashMap<FunctionId, usize>,
}

impl ReactiveAutoscale {
    /// Default: 25% head-room over the last window's peak, 5-minute
    /// keep-alive.
    pub fn new() -> Self {
        ReactiveAutoscale {
            headroom: 1.25,
            keep_alive: SimDuration::from_secs(600),
            targets: HashMap::new(),
        }
    }
}

impl Default for ReactiveAutoscale {
    fn default() -> Self {
        ReactiveAutoscale::new()
    }
}

impl PrewarmController for ReactiveAutoscale {
    fn tick(&mut self, obs: &PoolObservation) -> Vec<PoolDecision> {
        obs.stats
            .iter()
            .map(|s| {
                let demand = (s.peak_concurrency as f64 * self.headroom).ceil() as usize;
                let prev = self.targets.get(&s.function).copied().unwrap_or(0);
                // Scale up in one step; scale down one container at a time
                // (the asymmetry the paper attributes to autoscaling). The
                // target is a creation floor only — reactive autoscalers do
                // not evict early; reclamation is left to the keep-alive,
                // which is why they hold over-provisioned memory for long.
                let target = if demand >= prev {
                    demand
                } else {
                    prev.saturating_sub(1)
                };
                self.targets.insert(s.function, target);
                PoolDecision {
                    function: s.function,
                    prewarm_target: replacement_target(Some(target), s.failed_boots),
                    keep_alive: self.keep_alive,
                    shrink: false,
                }
            })
            .collect()
    }
}

/// FaaSCache: containers are cached greedily (no pre-warming) and evicted
/// by a greedy-dual priority that decays with recency — approximated here
/// by a 15-minute keep-alive plus the simulator's LRU eviction under
/// memory pressure. When memory is plentiful this behaves like a
/// conservative keep-alive extension, matching the paper's observation
/// that FaaSCache tracks autoscaling on uncontended clusters.
#[derive(Debug, Clone, PartialEq)]
pub struct FaasCachePolicy {
    keep_alive: SimDuration,
}

impl FaasCachePolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        FaasCachePolicy {
            keep_alive: SimDuration::from_secs(900),
        }
    }
}

impl Default for FaasCachePolicy {
    fn default() -> Self {
        FaasCachePolicy::new()
    }
}

impl PrewarmController for FaasCachePolicy {
    fn tick(&mut self, obs: &PoolObservation) -> Vec<PoolDecision> {
        obs.stats
            .iter()
            .map(|s| PoolDecision {
                function: s.function,
                prewarm_target: replacement_target(None, s.failed_boots),
                keep_alive: self.keep_alive,
                shrink: true,
            })
            .collect()
    }
}

/// IceBreaker: per-function Fourier extrapolation of the concurrency
/// series decides next-window pre-warm counts; containers are reclaimed
/// promptly after use (the paper credits IceBreaker's memory savings to
/// exactly this).
#[derive(Debug, Clone)]
pub struct IceBreakerPolicy {
    history: HashMap<FunctionId, Vec<f64>>,
    window: usize,
    harmonics: usize,
    keep_alive: SimDuration,
}

impl IceBreakerPolicy {
    /// Default: top-6 harmonics over a 128-window history, 2-minute
    /// keep-alive.
    pub fn new() -> Self {
        IceBreakerPolicy {
            history: HashMap::new(),
            window: 128,
            harmonics: 6,
            keep_alive: SimDuration::from_secs(120),
        }
    }
}

impl Default for IceBreakerPolicy {
    fn default() -> Self {
        IceBreakerPolicy::new()
    }
}

impl IceBreakerPolicy {
    /// Pre-loads historical per-window concurrency (IceBreaker fits its
    /// Fourier model on stored invocation histories).
    pub fn preload_history(&mut self, function: FunctionId, history: &[f64]) {
        self.history
            .entry(function)
            .or_default()
            .extend_from_slice(history);
    }
}

impl PrewarmController for IceBreakerPolicy {
    fn tick(&mut self, obs: &PoolObservation) -> Vec<PoolDecision> {
        obs.stats
            .iter()
            .map(|s| {
                let hist = self.history.entry(s.function).or_default();
                hist.push(s.peak_concurrency as f64);
                let target = if hist.len() >= 8 {
                    let series = to_series(hist);
                    // forecast() alone extrapolates the truncated Fourier
                    // series; fit() only estimates residual spread, which
                    // the policy does not use (and is O(history) per call).
                    let mut model = FourierPredictor::new(self.harmonics, self.window);
                    model.forecast(&series).mean.ceil() as usize
                } else {
                    s.peak_concurrency as usize
                };
                PoolDecision {
                    function: s.function,
                    prewarm_target: replacement_target(Some(target), s.failed_boots),
                    keep_alive: self.keep_alive,
                    shrink: true,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_faas::cluster::ClusterSnapshot;
    use aqua_faas::sim::FnWindowStats;
    use aqua_sim::SimTime;

    fn obs(peaks: &[u32]) -> PoolObservation {
        obs_with_failures(peaks, 0)
    }

    fn obs_with_failures(peaks: &[u32], failed_boots: u32) -> PoolObservation {
        PoolObservation {
            now: SimTime::from_secs(60),
            window: SimDuration::from_secs(60),
            stats: peaks
                .iter()
                .enumerate()
                .map(|(i, &p)| FnWindowStats {
                    function: FunctionId(i),
                    invocations: p * 2,
                    peak_concurrency: p,
                    booting: 0,
                    idle: 0,
                    busy: 0,
                    failed_boots,
                })
                .collect(),
            cluster: ClusterSnapshot {
                reserved_memory_mb: 0.0,
                total_memory_mb: 1.0e6,
                containers: 0,
            },
        }
    }

    #[test]
    fn keep_alive_never_prewarms() {
        let mut p = KeepAlivePolicy::provider_default();
        let d = p.tick(&obs(&[5]));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].prewarm_target, None);
        assert_eq!(d[0].keep_alive, SimDuration::from_secs(600));
    }

    #[test]
    fn autoscale_scales_up_fast_down_slow() {
        let mut p = ReactiveAutoscale::new();
        let up = p.tick(&obs(&[8]));
        assert_eq!(up[0].prewarm_target, Some(10)); // 8 × 1.25
                                                    // Demand drops to zero: target shrinks one per tick.
        let down1 = p.tick(&obs(&[0]));
        assert_eq!(down1[0].prewarm_target, Some(9));
        let down2 = p.tick(&obs(&[0]));
        assert_eq!(down2[0].prewarm_target, Some(8));
    }

    #[test]
    fn faascache_uses_long_keep_alive() {
        // Greedy-dual decay timescale: longer than the provider default.
        let mut p = FaasCachePolicy::new();
        let d = p.tick(&obs(&[4]));
        assert!(d[0].keep_alive >= SimDuration::from_secs(900));
        assert_eq!(d[0].prewarm_target, None, "pure cache: no pre-warming");
    }

    #[test]
    fn icebreaker_tracks_periodic_demand() {
        // Strict period-4 pattern; run long enough that the 128-window
        // holds exactly 32 periods (no spectral leakage).
        let mut p = IceBreakerPolicy::new();
        let pattern = [0u32, 0, 8, 0];
        let mut high = Vec::new();
        let mut quiet = Vec::new();
        for cycle in 0..200usize {
            let peak = pattern[cycle % 4];
            let d = p.tick(&obs(&[peak]));
            if cycle >= 160 {
                let t = d[0].prewarm_target.unwrap();
                if pattern[(cycle + 1) % 4] == 8 {
                    high.push(t);
                } else {
                    quiet.push(t);
                }
            }
        }
        let high_mean = high.iter().sum::<usize>() as f64 / high.len() as f64;
        let quiet_mean = quiet.iter().sum::<usize>() as f64 / quiet.len() as f64;
        assert!(
            high_mean > quiet_mean + 2.0,
            "busy-phase targets {high_mean} should exceed quiet {quiet_mean}"
        );
    }

    #[test]
    fn icebreaker_bootstraps_reactively() {
        let mut p = IceBreakerPolicy::new();
        let d = p.tick(&obs(&[5]));
        assert_eq!(d[0].prewarm_target, Some(5));
    }

    #[test]
    fn every_baseline_replaces_failed_boots() {
        // Each policy must provision at least the capacity lost to boot
        // failures in the window, on top of its base target.
        let policies: Vec<(&str, Box<dyn PrewarmController>)> = vec![
            ("keep", Box::new(KeepAlivePolicy::provider_default())),
            ("autoscale", Box::new(ReactiveAutoscale::new())),
            ("faascache", Box::new(FaasCachePolicy::new())),
            ("icebreaker", Box::new(IceBreakerPolicy::new())),
        ];
        for (name, mut policy) in policies {
            let clean = policy.tick(&obs(&[4]));
            let base = clean[0].prewarm_target.unwrap_or(0);
            let faulty = policy.tick(&obs_with_failures(&[4], 3));
            let lifted = faulty[0].prewarm_target;
            assert!(
                lifted.unwrap_or(0) >= base.saturating_sub(1) + 3,
                "{name}: target {lifted:?} does not replace 3 failed boots over base {base}"
            );
        }
    }

    #[test]
    fn zero_failures_keep_pure_caches_passive() {
        // The no-fault path must stay a strict no-op: pure keep-alive
        // policies still emit no pre-warm target at all.
        let mut keep = KeepAlivePolicy::provider_default();
        let mut cache = FaasCachePolicy::new();
        assert_eq!(keep.tick(&obs(&[4]))[0].prewarm_target, None);
        assert_eq!(cache.tick(&obs(&[4]))[0].prewarm_target, None);
    }
}
