//! Tabular Q-learning pre-warm policy (after the RL-based dynamic
//! management of parallel farm skeletons on serverless platforms).
//!
//! Each function learns its own small Q-table online. The state is a
//! coarse discretization of what the pool can observe in a window —
//! container utilization, outstanding demand, and arrival rate — and the
//! actions are *deltas* on the current pre-warm target, so the policy
//! adjusts capacity incrementally rather than re-deriving it. The reward
//! punishes both shortfall (demand above the provisioned target → cold
//! starts) and waste (idle capacity above demand), the cost/QoS trade-off
//! every other policy in the zoo navigates by hand.
//!
//! Exploration is ε-greedy with a **deterministic seeded stream per
//! function** (forked from the policy seed by function id), so runs replay
//! bit-identically and the golden-trace/thread-determinism guarantees
//! extend to the learning policy.

use std::collections::HashMap;

use aqua_faas::{replacement_target, FunctionId, PoolDecision, PoolObservation, PrewarmController};
use aqua_sim::{SimDuration, SimRng};

/// Capacity deltas the agent may apply per window.
const ACTIONS: [i64; 5] = [-2, -1, 0, 1, 2];

/// Buckets per state dimension (utilization × demand × rate).
const UTIL_BUCKETS: usize = 4;
const DEMAND_BUCKETS: usize = 4;
const RATE_BUCKETS: usize = 4;
const STATES: usize = UTIL_BUCKETS * DEMAND_BUCKETS * RATE_BUCKETS;

/// Configuration of [`RlPoolPolicy`].
#[derive(Debug, Clone, PartialEq)]
pub struct RlConfig {
    /// Q-learning step size.
    pub alpha: f64,
    /// Discount factor.
    pub gamma: f64,
    /// Initial exploration probability.
    pub epsilon: f64,
    /// Multiplicative ε decay per window (floored at 0.02).
    pub epsilon_decay: f64,
    /// Reward penalty per container of shortfall (demand above target —
    /// the cold-start side of the trade-off).
    pub cold_penalty: f64,
    /// Reward penalty per container of excess (target above demand — the
    /// memory-waste side).
    pub waste_penalty: f64,
    /// Seed for the per-function exploration streams.
    pub seed: u64,
    /// Keep-alive for idle containers.
    pub keep_alive: SimDuration,
}

impl Default for RlConfig {
    /// Shortfall hurts ~4× more than waste (a cold start costs seconds,
    /// an idle container costs memory-minutes), matching the asymmetry in
    /// the paper's QoS-first objective.
    fn default() -> Self {
        RlConfig {
            alpha: 0.25,
            gamma: 0.6,
            epsilon: 0.3,
            epsilon_decay: 0.995,
            cold_penalty: 4.0,
            waste_penalty: 1.0,
            seed: 0x51AC,
            keep_alive: SimDuration::from_secs(180),
        }
    }
}

#[derive(Debug)]
struct FnAgent {
    q: Vec<[f64; ACTIONS.len()]>,
    rng: SimRng,
    epsilon: f64,
    /// Previous window's (state, action) awaiting its reward.
    last: Option<(usize, usize)>,
    /// Current pre-warm target the deltas act on.
    target: usize,
    /// Decaying envelope of recent peak demand; bounds the target so the
    /// response to bounded observations stays bounded (and silence drains
    /// the pool even mid-exploration).
    recent_peak: f64,
}

impl FnAgent {
    fn new(seed: u64, function: FunctionId, epsilon: f64) -> Self {
        FnAgent {
            q: vec![[0.0; ACTIONS.len()]; STATES],
            // Forked by function id: agents explore independently but
            // deterministically, whatever order functions appear in.
            rng: SimRng::seed(seed).fork(&format!("rl-fn-{}", function.0)),
            epsilon,
            last: None,
            target: 0,
            recent_peak: 0.0,
        }
    }

    /// Greedy argmax with lowest-index tie-break (determinism).
    fn best_action(&self, state: usize) -> usize {
        let row = &self.q[state];
        let mut best = 0;
        for (a, v) in row.iter().enumerate().skip(1) {
            if *v > row[best] {
                best = a;
            }
        }
        best
    }
}

/// The tabular Q-learning pool policy.
#[derive(Debug)]
pub struct RlPoolPolicy {
    config: RlConfig,
    agents: HashMap<FunctionId, FnAgent>,
}

impl RlPoolPolicy {
    /// Creates the policy.
    pub fn new(config: RlConfig) -> Self {
        RlPoolPolicy {
            config,
            agents: HashMap::new(),
        }
    }

    /// Discretizes one window's observation into a state index.
    fn state_of(peak: u32, invocations: u32, booting: u32, idle: u32, busy: u32) -> usize {
        let provisioned = (booting + idle + busy).max(1);
        let util = busy as f64 / provisioned as f64;
        let ub = match util {
            u if u < 0.25 => 0,
            u if u < 0.5 => 1,
            u if u < 0.75 => 2,
            _ => 3,
        };
        let db = match peak {
            0 => 0,
            1..=2 => 1,
            3..=5 => 2,
            _ => 3,
        };
        let rb = match invocations {
            0 => 0,
            1..=4 => 1,
            5..=14 => 2,
            _ => 3,
        };
        (ub * DEMAND_BUCKETS + db) * RATE_BUCKETS + rb
    }
}

impl PrewarmController for RlPoolPolicy {
    fn tick(&mut self, obs: &PoolObservation) -> Vec<PoolDecision> {
        obs.stats
            .iter()
            .map(|s| {
                let agent = self.agents.entry(s.function).or_insert_with(|| {
                    FnAgent::new(self.config.seed, s.function, self.config.epsilon)
                });
                let state =
                    Self::state_of(s.peak_concurrency, s.invocations, s.booting, s.idle, s.busy);

                // Reward the previous action with what this window showed:
                // shortfall (peak above the chosen target) and waste
                // (target above peak) are both penalized.
                if let Some((ps, pa)) = agent.last {
                    let shortfall = (s.peak_concurrency as f64 - agent.target as f64).max(0.0);
                    let excess = (agent.target as f64 - s.peak_concurrency as f64).max(0.0);
                    let reward = -(self.config.cold_penalty * shortfall
                        + self.config.waste_penalty * excess);
                    let next_best = agent.q[state][agent.best_action(state)];
                    let q = &mut agent.q[ps][pa];
                    *q += self.config.alpha * (reward + self.config.gamma * next_best - *q);
                }

                // ε-greedy action selection from the deterministic stream.
                let action = if agent.rng.chance(agent.epsilon) {
                    agent.rng.below(ACTIONS.len())
                } else {
                    agent.best_action(state)
                };
                agent.epsilon = (agent.epsilon * self.config.epsilon_decay).max(0.02);

                // Apply the delta inside the decaying demand envelope.
                agent.recent_peak = (s.peak_concurrency as f64).max(agent.recent_peak * 0.9);
                let cap = (2.0 * agent.recent_peak).ceil() as i64 + 1;
                let target = (agent.target as i64 + ACTIONS[action]).clamp(0, cap) as usize;
                agent.target = target;
                agent.last = Some((state, action));

                PoolDecision {
                    function: s.function,
                    prewarm_target: replacement_target(Some(target), s.failed_boots),
                    keep_alive: self.config.keep_alive,
                    shrink: true,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_faas::cluster::ClusterSnapshot;
    use aqua_faas::sim::FnWindowStats;
    use aqua_sim::SimTime;

    fn obs(peaks: &[u32], minute: u64, failed_boots: u32) -> PoolObservation {
        PoolObservation {
            now: SimTime::from_secs(60 * minute),
            window: SimDuration::from_secs(60),
            stats: peaks
                .iter()
                .enumerate()
                .map(|(i, &p)| FnWindowStats {
                    function: FunctionId(i),
                    invocations: p * 2,
                    peak_concurrency: p,
                    booting: 0,
                    idle: p / 2,
                    busy: p,
                    failed_boots,
                })
                .collect(),
            cluster: ClusterSnapshot {
                reserved_memory_mb: 0.0,
                total_memory_mb: 1.0e6,
                containers: 0,
            },
        }
    }

    #[test]
    fn decisions_are_deterministic_given_seed() {
        let run = || {
            let mut p = RlPoolPolicy::new(RlConfig::default());
            let mut out = Vec::new();
            for minute in 0..80u64 {
                let peak = [4, 4, 0, 1][minute as usize % 4];
                out.push(p.tick(&obs(&[peak], minute, 0)));
            }
            out
        };
        assert_eq!(run(), run(), "same seed must replay identically");
    }

    #[test]
    fn learns_to_cover_constant_demand() {
        let mut p = RlPoolPolicy::new(RlConfig::default());
        let mut late = Vec::new();
        for minute in 0..200u64 {
            let d = p.tick(&obs(&[4], minute, 0));
            if minute >= 150 {
                late.push(d[0].prewarm_target.unwrap());
            }
        }
        // Shortfall costs 4× waste: the learned target should hover at or
        // above the constant demand of 4 most of the time.
        let mean = late.iter().sum::<usize>() as f64 / late.len() as f64;
        assert!(mean >= 3.0, "late-phase mean target {mean}, {late:?}");
    }

    #[test]
    fn response_is_bounded_by_demand_envelope() {
        let mut p = RlPoolPolicy::new(RlConfig::default());
        for minute in 0..200u64 {
            let peak = [0, 3, 1, 2][minute as usize % 4];
            let d = p.tick(&obs(&[peak], minute, 0));
            let t = d[0].prewarm_target.unwrap();
            assert!(t <= 2 * 3 + 1, "target {t} exceeds 2×max-peak + 1");
        }
    }

    #[test]
    fn silence_drains_the_pool_despite_exploration() {
        let mut p = RlPoolPolicy::new(RlConfig::default());
        for minute in 0..20u64 {
            p.tick(&obs(&[5], minute, 0));
        }
        let mut last = Vec::new();
        for minute in 20..80u64 {
            last = p.tick(&obs(&[0], minute, 0));
        }
        // The decaying envelope caps the target at 1 after an hour of
        // silence, whatever the exploration stream does.
        assert!(last[0].prewarm_target.unwrap() <= 1);
    }

    #[test]
    fn failed_boots_lift_the_learned_target() {
        let run = |failed: u32| {
            let mut p = RlPoolPolicy::new(RlConfig::default());
            for minute in 0..30u64 {
                p.tick(&obs(&[4], minute, 0));
            }
            let mut p2 = RlPoolPolicy::new(RlConfig::default());
            let mut d = Vec::new();
            for minute in 0..31u64 {
                d = p2.tick(&obs(&[4], minute, if minute == 30 { failed } else { 0 }));
            }
            d[0].prewarm_target.unwrap()
        };
        assert_eq!(run(3), run(0) + 3, "lift is exactly the failed count");
    }

    #[test]
    fn per_function_streams_are_independent() {
        // Adding a second function must not change the first one's
        // decisions (forked streams, not one shared draw sequence).
        let solo = {
            let mut p = RlPoolPolicy::new(RlConfig::default());
            (0..40u64)
                .map(|m| p.tick(&obs(&[3], m, 0))[0].prewarm_target)
                .collect::<Vec<_>>()
        };
        let duo = {
            let mut p = RlPoolPolicy::new(RlConfig::default());
            (0..40u64)
                .map(|m| p.tick(&obs(&[3, 7], m, 0))[0].prewarm_target)
                .collect::<Vec<_>>()
        };
        assert_eq!(solo, duo);
    }
}
