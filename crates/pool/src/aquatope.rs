//! AQUATOPE's dynamic pre-warmed container pool (paper §4) and its
//! no-uncertainty ablation *AquaLite* (§8.1).
//!
//! Per function, the policy keeps the per-window concurrency history,
//! periodically (re)trains the hybrid Bayesian NN on a sliding window, and
//! sizes the pool to the predictive **upper confidence bound**
//! `mean + z·std` — the uncertainty-aware head-room that makes it robust
//! to fluctuating load (Figs. 10–11). Before enough history accumulates it
//! falls back to reactive provisioning. Workflow dependencies are
//! exploited by boosting a downstream function's target when its upstream
//! stages were active in the current window (§4.1's dependency-aware
//! prediction).

use std::collections::HashMap;

use aqua_faas::{
    replacement_target, FunctionId, PoolDecision, PoolObservation, PrewarmController, WorkflowDag,
};
use aqua_forecast::{HybridBayesian, HybridConfig, Predictor};
use aqua_sim::SimDuration;
use aqua_telemetry::{SimEvent, Telemetry};

use crate::to_series;

/// Configuration of [`AquatopePool`].
#[derive(Debug, Clone, PartialEq)]
pub struct AquatopePoolConfig {
    /// Windows of history before the first model training (reactive until
    /// then).
    pub warmup_windows: usize,
    /// Retrain the hybrid model every this many windows.
    pub retrain_every: usize,
    /// Sliding training-window length (most recent windows kept).
    pub training_window: usize,
    /// Uncertainty head-room: pool target = ⌈mean + z·std⌉.
    pub uncertainty_z: f64,
    /// Whether to use MC-dropout uncertainty at all (false = AquaLite).
    pub uncertainty: bool,
    /// Keep-alive for idle containers (short: the pool is predictive).
    pub keep_alive: SimDuration,
    /// Hybrid-model hyperparameters.
    pub hybrid: HybridConfig,
}

impl Default for AquatopePoolConfig {
    fn default() -> Self {
        AquatopePoolConfig {
            warmup_windows: 64,
            retrain_every: 120,
            training_window: 480,
            uncertainty_z: 1.3,
            uncertainty: true,
            keep_alive: SimDuration::from_secs(120),
            hybrid: HybridConfig {
                window: 24,
                horizon: 2,
                enc_hidden: vec![32],
                dec_hidden: vec![12],
                mlp_hidden: vec![48, 24],
                dropout: 0.05,
                pretrain_epochs: 6,
                train_epochs: 14,
                mc_passes: 25,
                seed: 0xA00A,
            },
        }
    }
}

#[derive(Debug)]
struct FnState {
    history: Vec<f64>,
    model: Option<HybridBayesian>,
    trained_at: usize,
}

/// Alias for the AquaLite ablation (constructed via
/// [`AquatopePool::aqualite`]): the same policy with uncertainty
/// estimation disabled.
pub type AquaLitePool = AquatopePool;

/// The AQUATOPE dynamic pre-warmed container pool.
#[derive(Debug)]
pub struct AquatopePool {
    config: AquatopePoolConfig,
    state: HashMap<FunctionId, FnState>,
    /// Upstream functions per downstream function (with task-ratio scale).
    upstream: HashMap<FunctionId, Vec<(FunctionId, f64)>>,
    telemetry: Telemetry,
}

/// What one [`AquatopePool::predict_target`] call decided for a function.
struct TargetPrediction {
    target: usize,
    /// False during reactive warm-up (no trained model yet).
    trained: bool,
    /// Predicted demand for the next window (containers).
    mean: f64,
    /// Predictive standard deviation behind the UCB head-room (0 when
    /// uncertainty is disabled or the policy is still reactive).
    std: f64,
}

impl AquatopePool {
    /// Creates the pool policy; `dags` enables dependency-aware boosts for
    /// the registered workflows (pass `&[]` to disable).
    pub fn new(config: AquatopePoolConfig, dags: &[&WorkflowDag]) -> Self {
        let mut upstream: HashMap<FunctionId, Vec<(FunctionId, f64)>> = HashMap::new();
        for dag in dags {
            for stage in dag.stages() {
                for &dep in &stage.deps {
                    let dep_stage = dag.stage(dep);
                    let ratio = stage.tasks as f64 / dep_stage.tasks.max(1) as f64;
                    upstream
                        .entry(stage.function)
                        .or_default()
                        .push((dep_stage.function, ratio));
                }
            }
        }
        AquatopePool {
            config,
            state: HashMap::new(),
            upstream,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Routes pool-resize decisions (with predicted demand + uncertainty)
    /// to `telemetry`.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The AquaLite ablation: same model, no uncertainty estimation.
    pub fn aqualite(mut config: AquatopePoolConfig, dags: &[&WorkflowDag]) -> Self {
        config.uncertainty = false;
        config.uncertainty_z = 0.0;
        AquatopePool::new(config, dags)
    }

    /// Pre-loads historical per-window concurrency for `function` — the
    /// paper's pool scheduler trains on invocation histories stored in
    /// CouchDB before it starts managing an application. The model trains
    /// on the first tick once enough history is present.
    pub fn preload_history(&mut self, function: FunctionId, history: &[f64]) {
        let st = self.state.entry(function).or_insert_with(|| FnState {
            history: Vec::new(),
            model: None,
            trained_at: 0,
        });
        st.history.extend_from_slice(history);
    }

    /// Computes the pool target (plus the prediction behind it) for one
    /// function. An associated function (not `&mut self`) so that
    /// [`AquatopePool::tick`] can fan independent functions out across
    /// worker threads — each call touches only its own `FnState`.
    fn predict_target(
        config: &AquatopePoolConfig,
        function: FunctionId,
        st: &mut FnState,
        fallback_peak: u32,
    ) -> TargetPrediction {
        let n = st.history.len();
        // (Re)train when due.
        let min_len = config.hybrid.window + config.hybrid.horizon + 8;
        let due = st.model.is_none() || n >= st.trained_at + config.retrain_every;
        if n >= config.warmup_windows.max(min_len) && due {
            let start = n.saturating_sub(config.training_window);
            let series = to_series(&st.history[start..]);
            let mut hybrid_cfg = config.hybrid.clone();
            hybrid_cfg.seed ^= function.0 as u64 ^ ((n as u64) << 20);
            let mut model = HybridBayesian::new(hybrid_cfg);
            model.fit(&series);
            st.model = Some(model);
            st.trained_at = n;
        }
        match st.model.as_mut() {
            Some(model) => {
                let start = n.saturating_sub(config.hybrid.window);
                let series = to_series(&st.history[start..]);
                // The predictive MEAN gates the pool on/off: confidently
                // idle minutes release everything (just-in-time behaviour
                // on sparse series). When demand is expected, the target is
                // rounded *up* from the upper confidence bound, so the
                // uncertainty margin sizes the head-room without pinning
                // insurance containers through provably quiet periods.
                let forecast = if config.uncertainty {
                    model.forecast(&series)
                } else {
                    aqua_forecast::Forecast::point(model.forecast_point(&series))
                };
                let raw = forecast.ucb(config.uncertainty_z);
                let target = if raw < 0.45 { 0 } else { raw.ceil() as usize };
                TargetPrediction {
                    target,
                    trained: true,
                    mean: forecast.mean,
                    std: forecast.std,
                }
            }
            // Reactive fallback during warm-up.
            None => {
                let mean = fallback_peak as f64 * 1.25;
                TargetPrediction {
                    target: mean.ceil() as usize,
                    trained: false,
                    mean,
                    std: 0.0,
                }
            }
        }
    }
}

impl PrewarmController for AquatopePool {
    fn tick(&mut self, obs: &PoolObservation) -> Vec<PoolDecision> {
        // Record this window's observation for every function first.
        for s in &obs.stats {
            let st = self.state.entry(s.function).or_insert_with(|| FnState {
                history: Vec::new(),
                model: None,
                trained_at: 0,
            });
            st.history.push(s.peak_concurrency as f64);
        }
        // Current-window peaks for dependency boosts.
        let peaks: HashMap<FunctionId, u32> = obs
            .stats
            .iter()
            .map(|s| (s.function, s.peak_concurrency))
            .collect();

        // Per-function model work (training and the MC forecast) is
        // independent across functions: take each function's state out of
        // the map and fan the calls out with the deterministic,
        // order-preserving parallel map. Results (and therefore telemetry
        // emission below) come back in `obs.stats` order, and each model's
        // RNG lives in its own `FnState`, so replays are bit-identical to
        // the sequential loop this replaces.
        let config = self.config.clone();
        let jobs: Vec<FnState> = obs
            .stats
            .iter()
            .map(|s| self.state.remove(&s.function).expect("recorded above"))
            .collect();
        let predictions = aqua_sim::par_map_owned(jobs, |i, mut st| {
            let s = &obs.stats[i];
            let p = Self::predict_target(&config, s.function, &mut st, s.peak_concurrency);
            (st, p)
        });

        obs.stats
            .iter()
            .zip(predictions)
            .map(|(s, (st, p))| {
                self.state.insert(s.function, st);
                let mut target = p.target;
                // Dependency-aware boost: active upstream stages imply
                // imminent downstream invocations. Once the function's own
                // model is trained, its history already reflects the
                // dependency, so the boost only bridges the warm-up phase.
                if !p.trained {
                    if let Some(ups) = self.upstream.get(&s.function) {
                        for (u, ratio) in ups {
                            let up_peak = peaks.get(u).copied().unwrap_or(0) as f64;
                            target = target.max((up_peak * ratio).ceil() as usize);
                        }
                    }
                }
                // Replace capacity lost to boot failures in this window on
                // top of the model's target.
                target = replacement_target(Some(target), s.failed_boots).expect("base is Some");
                self.telemetry.emit_with(|| SimEvent::PoolResize {
                    at: obs.now,
                    function: s.function.0,
                    target,
                    predicted_mean: p.mean,
                    predicted_std: p.std,
                    booting: s.booting,
                    idle: s.idle,
                    busy: s.busy,
                });
                PoolDecision {
                    function: s.function,
                    prewarm_target: Some(target),
                    keep_alive: self.config.keep_alive,
                    shrink: true,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_faas::cluster::ClusterSnapshot;
    use aqua_faas::sim::FnWindowStats;
    use aqua_faas::Stage;
    use aqua_sim::SimTime;

    fn obs(peaks: &[u32], minute: u64) -> PoolObservation {
        PoolObservation {
            now: SimTime::from_secs(60 * minute),
            window: SimDuration::from_secs(60),
            stats: peaks
                .iter()
                .enumerate()
                .map(|(i, &p)| FnWindowStats {
                    function: FunctionId(i),
                    invocations: p,
                    peak_concurrency: p,
                    booting: 0,
                    idle: 0,
                    busy: 0,
                    failed_boots: 0,
                })
                .collect(),
            cluster: ClusterSnapshot {
                reserved_memory_mb: 0.0,
                total_memory_mb: 1.0e6,
                containers: 0,
            },
        }
    }

    fn fast_config() -> AquatopePoolConfig {
        AquatopePoolConfig {
            warmup_windows: 40,
            retrain_every: 200,
            training_window: 200,
            hybrid: HybridConfig {
                window: 12,
                horizon: 2,
                enc_hidden: vec![8],
                dec_hidden: vec![6],
                mlp_hidden: vec![12, 8],
                dropout: 0.1,
                pretrain_epochs: 2,
                train_epochs: 4,
                mc_passes: 10,
                seed: 7,
            },
            ..AquatopePoolConfig::default()
        }
    }

    #[test]
    fn reactive_before_warmup() {
        let mut p = AquatopePool::new(fast_config(), &[]);
        let d = p.tick(&obs(&[4], 0));
        assert_eq!(d[0].prewarm_target, Some(5)); // 4 × 1.25
    }

    #[test]
    fn trains_and_tracks_periodic_load() {
        let mut p = AquatopePool::new(fast_config(), &[]);
        // Period-8 load: 6 containers for 4 windows, 0 for 4 windows.
        let mut last_targets = Vec::new();
        for minute in 0..120u64 {
            let peak = if (minute / 4) % 2 == 0 { 6 } else { 0 };
            let d = p.tick(&obs(&[peak], minute));
            if minute >= 100 {
                last_targets.push(d[0].prewarm_target.unwrap());
            }
        }
        // After training, targets must vary with the pattern rather than
        // sit at a constant reactive value.
        let max = *last_targets.iter().max().unwrap();
        let min = *last_targets.iter().min().unwrap();
        assert!(max >= 4, "peaks should be pre-warmed: {last_targets:?}");
        assert!(min <= 3, "quiet phases should shrink: {last_targets:?}");
    }

    #[test]
    fn uncertainty_adds_headroom_over_aqualite() {
        let run = |uncertainty: bool| -> usize {
            let mut cfg = fast_config();
            cfg.uncertainty = uncertainty;
            cfg.uncertainty_z = if uncertainty { 2.0 } else { 0.0 };
            let mut p = AquatopePool::new(cfg, &[]);
            let mut total = 0usize;
            let mut rngish = 1u64;
            for minute in 0..100u64 {
                // Noisy load around 5.
                rngish = rngish.wrapping_mul(6364136223846793005).wrapping_add(1);
                let peak = 3 + (rngish >> 33) % 5;
                let d = p.tick(&obs(&[peak as u32], minute));
                if minute >= 60 {
                    total += d[0].prewarm_target.unwrap();
                }
            }
            total
        };
        let with_unc = run(true);
        let without = run(false);
        assert!(
            with_unc > without,
            "UCB targets should exceed point targets: {with_unc} vs {without}"
        );
    }

    #[test]
    fn dependency_boost_prewarms_downstream() {
        // Workflow: f0 → f1 with 3× fan-out.
        let dag = WorkflowDag::new(
            "w",
            vec![
                Stage::new(FunctionId(0), 1, vec![]),
                Stage::new(FunctionId(1), 3, vec![0]),
            ],
        );
        let mut p = AquatopePool::new(fast_config(), &[&dag]);
        // Upstream saw 2 concurrent; downstream history is flat zero.
        let d = p.tick(&obs(&[2, 0], 0));
        let downstream = d.iter().find(|x| x.function == FunctionId(1)).unwrap();
        assert!(
            downstream.prewarm_target.unwrap() >= 6,
            "expected ≥ 2×3 boost, got {:?}",
            downstream.prewarm_target
        );
    }

    #[test]
    fn aqualite_disables_uncertainty() {
        let p = AquatopePool::aqualite(fast_config(), &[]);
        assert!(!p.config.uncertainty);
        assert_eq!(p.config.uncertainty_z, 0.0);
    }
}
