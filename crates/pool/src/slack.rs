//! Fifer-style slack-aware pre-warm policy (Gunasekaran et al.,
//! Middleware'20).
//!
//! Fifer's observation: a multi-stage workflow with an end-to-end deadline
//! has per-stage *slack* — the gap between the deadline and the critical
//! path. Stages whose slack covers a container cold start never need
//! pre-warmed capacity at all: requests are queued briefly and served by
//! lazily booted containers without violating the deadline. Only
//! slack-poor stages get proactive pre-warming, and those boots happen in
//! *buckets* (batched container launches) sized from a smoothed demand
//! estimate, which is what keeps Fifer's container footprint low.
//!
//! This adaptation works against the repo's [`PrewarmController`]
//! interface: per-stage slack is estimated once from the registered
//! workflow deadlines and the per-function execution model; at runtime the
//! policy only smooths observed demand and defers or buckets pre-warming
//! accordingly. It never peeks at the future trace.

use std::collections::HashMap;

use aqua_faas::{
    replacement_target, FunctionId, FunctionRegistry, PoolDecision, PoolObservation,
    PrewarmController, ResourceConfig, WorkflowDag,
};
use aqua_sim::SimDuration;

/// Configuration of [`SlackAwarePolicy`].
#[derive(Debug, Clone, PartialEq)]
pub struct SlackConfig {
    /// Container boots are batched in multiples of this bucket size.
    pub bucket: usize,
    /// Pre-warming is deferred while a function's slack exceeds
    /// `defer_margin ×` its cold-start estimate.
    pub defer_margin: f64,
    /// EWMA smoothing factor for the per-window demand estimate.
    pub ewma_alpha: f64,
    /// Head-room multiplier over smoothed demand for slack-poor stages.
    pub headroom: f64,
    /// Keep-alive for idle containers.
    pub keep_alive: SimDuration,
}

impl Default for SlackConfig {
    /// Buckets of 2, defer while slack covers one full cold start, 25%
    /// head-room, 5-minute keep-alive (Fifer holds queued requests rather
    /// than capacity, so its keep-alive sits between the pure caches and
    /// the predictive poolers).
    fn default() -> Self {
        SlackConfig {
            bucket: 2,
            defer_margin: 1.0,
            ewma_alpha: 0.4,
            headroom: 1.25,
            keep_alive: SimDuration::from_secs(300),
        }
    }
}

#[derive(Debug, Clone, Default)]
struct FnSlackState {
    /// Smoothed per-window demand (EWMA of peak concurrency).
    ewma_demand: f64,
}

/// The slack-aware batching/queueing pre-warm policy.
#[derive(Debug, Clone)]
pub struct SlackAwarePolicy {
    config: SlackConfig,
    /// Per-function slack estimate in milliseconds (functions absent from
    /// every registered workflow get zero slack — treated conservatively).
    slack_ms: HashMap<FunctionId, f64>,
    /// Per-function cold-start estimate in milliseconds.
    cold_ms: HashMap<FunctionId, f64>,
    state: HashMap<FunctionId, FnSlackState>,
}

impl SlackAwarePolicy {
    /// Creates the policy from the workflows it will serve.
    ///
    /// `workflows` pairs each DAG with its end-to-end deadline; the
    /// per-stage slack model distributes `deadline − critical path`
    /// proportionally to stage execution time (Fifer's proportional slack
    /// allocation) and a function inherits the *smallest* slack of any
    /// stage it serves.
    pub fn new(
        config: SlackConfig,
        workflows: &[(&WorkflowDag, SimDuration)],
        registry: &FunctionRegistry,
    ) -> Self {
        let base = ResourceConfig::default();
        let mut slack_ms: HashMap<FunctionId, f64> = HashMap::new();
        let mut cold_ms = HashMap::new();
        for (dag, deadline) in workflows {
            let exec_ms: Vec<f64> = dag
                .stages()
                .map(|s| registry.spec(s.function).base_exec_ms(&base))
                .collect();
            // Longest path through the DAG (stage deps always point at
            // earlier indices, so one forward pass suffices).
            let mut finish = vec![0.0f64; exec_ms.len()];
            for (i, stage) in dag.stages().enumerate() {
                let ready = stage.deps.iter().map(|&d| finish[d]).fold(0.0f64, f64::max);
                finish[i] = ready + exec_ms[i];
            }
            let critical = finish.iter().copied().fold(0.0f64, f64::max);
            let total_slack = (deadline.as_secs_f64() * 1000.0 - critical).max(0.0);
            let exec_sum: f64 = exec_ms.iter().sum::<f64>().max(1e-9);
            for (i, stage) in dag.stages().enumerate() {
                let share = total_slack * exec_ms[i] / exec_sum;
                slack_ms
                    .entry(stage.function)
                    .and_modify(|s| *s = s.min(share))
                    .or_insert(share);
                let spec = registry.spec(stage.function);
                cold_ms.insert(stage.function, spec.boot_ms + spec.init_work_ms);
            }
        }
        SlackAwarePolicy {
            config,
            slack_ms,
            cold_ms,
            state: HashMap::new(),
        }
    }

    /// The estimated slack for `function`, ms (zero when unknown).
    pub fn slack_of(&self, function: FunctionId) -> f64 {
        self.slack_ms.get(&function).copied().unwrap_or(0.0)
    }

    /// Whether pre-warming is deferred for `function` (its slack covers a
    /// cold start, so queueing is free deadline-wise).
    pub fn defers(&self, function: FunctionId) -> bool {
        let cold = self.cold_ms.get(&function).copied().unwrap_or(f64::MAX);
        self.slack_of(function) >= cold * self.config.defer_margin
    }

    /// Rounds a demand estimate up to the bucket size (batched boots).
    /// Near-zero estimates release the pool entirely — without the floor,
    /// a decayed EWMA residue would keep one bucket warm forever.
    fn bucketize(&self, demand: f64) -> usize {
        if demand < 0.25 {
            return 0;
        }
        let raw = demand.ceil() as usize;
        raw.div_ceil(self.config.bucket) * self.config.bucket
    }
}

impl PrewarmController for SlackAwarePolicy {
    fn tick(&mut self, obs: &PoolObservation) -> Vec<PoolDecision> {
        obs.stats
            .iter()
            .map(|s| {
                let st = self.state.entry(s.function).or_default();
                let a = self.config.ewma_alpha;
                st.ewma_demand = a * s.peak_concurrency as f64 + (1.0 - a) * st.ewma_demand;
                let demand = st.ewma_demand;
                let base = if self.defers(s.function) {
                    // Slack covers the cold start: queue requests instead
                    // of holding capacity (no pre-warm target at all, so
                    // the fault-free path stays a strict no-op).
                    None
                } else {
                    Some(self.bucketize(demand * self.config.headroom))
                };
                PoolDecision {
                    function: s.function,
                    prewarm_target: replacement_target(base, s.failed_boots),
                    keep_alive: self.config.keep_alive,
                    shrink: true,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_faas::cluster::ClusterSnapshot;
    use aqua_faas::sim::FnWindowStats;
    use aqua_faas::FunctionSpec;
    use aqua_sim::SimTime;

    fn obs(peaks: &[u32], failed_boots: u32) -> PoolObservation {
        PoolObservation {
            now: SimTime::from_secs(60),
            window: SimDuration::from_secs(60),
            stats: peaks
                .iter()
                .enumerate()
                .map(|(i, &p)| FnWindowStats {
                    function: FunctionId(i),
                    invocations: p,
                    peak_concurrency: p,
                    booting: 0,
                    idle: 0,
                    busy: p,
                    failed_boots,
                })
                .collect(),
            cluster: ClusterSnapshot {
                reserved_memory_mb: 0.0,
                total_memory_mb: 1.0e6,
                containers: 0,
            },
        }
    }

    /// Two-stage chain: a fast function (tiny cold start) and a slow one
    /// (huge cold start), under the given deadline.
    fn two_stage(deadline_secs: f64) -> (SlackAwarePolicy, FunctionId, FunctionId) {
        let mut registry = FunctionRegistry::new();
        let fast = registry.register(
            FunctionSpec::new("fast")
                .with_work_ms(100.0)
                .with_cold_start(50.0, 20.0),
        );
        let slow = registry.register(
            FunctionSpec::new("slow")
                .with_work_ms(200.0)
                .with_cold_start(10_000.0, 5_000.0),
        );
        let dag = WorkflowDag::chain("w", vec![fast, slow]);
        let policy = SlackAwarePolicy::new(
            SlackConfig::default(),
            &[(&dag, SimDuration::from_secs_f64(deadline_secs))],
            &registry,
        );
        (policy, fast, slow)
    }

    #[test]
    fn slack_rich_stage_defers_prewarming() {
        // 10 s deadline over ~0.3 s of work: plenty of slack. The fast
        // function's share covers its 70 ms cold start → defer; the slow
        // function's 15 s cold start exceeds its ~6.5 s share → prewarm.
        let (mut p, fast, slow) = two_stage(10.0);
        assert!(p.defers(fast), "slack {} ms", p.slack_of(fast));
        assert!(!p.defers(slow), "slack {} ms", p.slack_of(slow));
        let d = p.tick(&obs(&[3, 3], 0));
        assert_eq!(d[fast.0].prewarm_target, None, "deferred: keep-alive only");
        assert!(d[slow.0].prewarm_target.unwrap() >= 1);
    }

    #[test]
    fn tight_deadline_prewarms_everything() {
        // Deadline barely above the critical path: no slack anywhere.
        let (mut p, fast, slow) = two_stage(0.4);
        assert!(!p.defers(fast));
        assert!(!p.defers(slow));
        let d = p.tick(&obs(&[2, 2], 0));
        assert!(d[fast.0].prewarm_target.unwrap() >= 1);
        assert!(d[slow.0].prewarm_target.unwrap() >= 1);
    }

    #[test]
    fn targets_are_bucketed() {
        let (mut p, _, slow) = two_stage(10.0);
        // Sustained demand of 5: EWMA converges toward 5, headroom 1.25 →
        // 7 raw, bucketed up to the next multiple of 2.
        let mut d = Vec::new();
        for _ in 0..30 {
            d = p.tick(&obs(&[5, 5], 0));
        }
        let t = d[slow.0].prewarm_target.unwrap();
        assert!(t.is_multiple_of(2), "bucketed target, got {t}");
        assert!((6..=10).contains(&t), "near demand × headroom, got {t}");
    }

    #[test]
    fn response_is_bounded_by_observed_demand() {
        let (mut p, _, slow) = two_stage(10.0);
        for _ in 0..50 {
            let d = p.tick(&obs(&[4, 4], 0));
            let t = d[slow.0].prewarm_target.unwrap();
            // EWMA ≤ peak, so target ≤ bucketized(peak × headroom).
            assert!(t <= 6, "bounded response, got {t}");
        }
    }

    #[test]
    fn failed_boots_lift_both_regimes() {
        let (mut p, fast, slow) = two_stage(10.0);
        let d = p.tick(&obs(&[2, 2], 3));
        // Deferred function still replaces lost boots…
        assert!(d[fast.0].prewarm_target.unwrap() >= 3);
        // …and the prewarming one lifts its base target.
        let clean = {
            let (mut q, _, _) = two_stage(10.0);
            q.tick(&obs(&[2, 2], 0))[slow.0].prewarm_target.unwrap()
        };
        assert!(d[slow.0].prewarm_target.unwrap() >= clean + 3);
    }

    #[test]
    fn unknown_function_gets_zero_slack() {
        let (p, _, _) = two_stage(10.0);
        assert_eq!(p.slack_of(FunctionId(99)), 0.0);
        assert!(!p.defers(FunctionId(99)));
    }

    #[test]
    fn zero_demand_releases_the_pool() {
        let (mut p, _, slow) = two_stage(10.0);
        p.tick(&obs(&[4, 4], 0));
        let mut d = Vec::new();
        for _ in 0..40 {
            d = p.tick(&obs(&[0, 0], 0));
        }
        assert_eq!(d[slow.0].prewarm_target, Some(0), "EWMA decays to zero");
    }
}
