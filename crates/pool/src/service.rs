//! Service-facing (non-sim-clock) pool observation accumulation.
//!
//! Inside the batch simulator, [`PoolObservation`]s are assembled by the
//! event loop from the cluster's own ledgers. A live control plane has no
//! simulator cluster — it owns the containers itself — so it needs a way
//! to *accumulate* the same per-window statistics from the raw signals it
//! sees (task arrivals, boots failing, containers changing state) and
//! hand any [`aqua_faas::PrewarmController`] an observation that is
//! indistinguishable from a simulator tick. [`LivePoolSignal`] is that
//! accumulator: the service feeds it signals as they happen, then calls
//! [`LivePoolSignal::observe`] once per control window to cut the window
//! and obtain the observation.
//!
//! Keeping this in the pool crate (rather than the service) means every
//! policy in the zoo is service-hosted for free: the policies only ever
//! see `PoolObservation`, which this module produces bit-compatibly.

use aqua_faas::{ClusterSnapshot, FnWindowStats, PoolObservation};
use aqua_faas::{FunctionId, ResourceConfig};
use aqua_sim::{SimDuration, SimTime};

/// Accumulates live per-function window statistics and cuts
/// [`PoolObservation`]s for a [`aqua_faas::PrewarmController`].
#[derive(Debug, Clone)]
pub struct LivePoolSignal {
    functions: usize,
    total_memory_mb: f64,
    /// Invocations that became runnable this window, per function.
    invocations: Vec<u32>,
    /// Current number of in-flight (busy-equivalent) invocations.
    in_flight: Vec<u32>,
    /// Peak of `in_flight` within the window.
    peak: Vec<u32>,
    /// Boot failures observed this window.
    failed_boots: Vec<u32>,
    /// Window start time.
    window_start: SimTime,
}

impl LivePoolSignal {
    /// A signal accumulator for `functions` functions on a cluster with
    /// `total_memory_mb` of memory, starting its first window at `start`.
    pub fn new(functions: usize, total_memory_mb: f64, start: SimTime) -> Self {
        LivePoolSignal {
            functions,
            total_memory_mb,
            invocations: vec![0; functions],
            in_flight: vec![0; functions],
            peak: vec![0; functions],
            failed_boots: vec![0; functions],
            window_start: start,
        }
    }

    /// Records an invocation of `function` becoming runnable and entering
    /// execution (or a queue slot counted against concurrency).
    pub fn on_dispatch(&mut self, function: FunctionId) {
        self.invocations[function.0] += 1;
        self.in_flight[function.0] += 1;
        self.peak[function.0] = self.peak[function.0].max(self.in_flight[function.0]);
    }

    /// Records the completion (or rejection after dispatch) of one
    /// in-flight invocation of `function`.
    pub fn on_complete(&mut self, function: FunctionId) {
        self.in_flight[function.0] = self.in_flight[function.0].saturating_sub(1);
    }

    /// Records a failed container boot for `function`.
    pub fn on_boot_failure(&mut self, function: FunctionId) {
        self.failed_boots[function.0] += 1;
    }

    /// Current in-flight count for `function` (the live analogue of the
    /// cluster's busy-container count).
    pub fn in_flight(&self, function: FunctionId) -> u32 {
        self.in_flight[function.0]
    }

    /// Cuts the window at `now` and builds the observation a
    /// [`aqua_faas::PrewarmController`] expects. The caller supplies the
    /// container ledger view (`idle`/`booting` per function plus reserved
    /// memory and live-container totals) because the warm pool, not the
    /// signal accumulator, owns containers. Window counters reset; the
    /// next window starts at `now`.
    pub fn observe(
        &mut self,
        now: SimTime,
        idle: &[u32],
        booting: &[u32],
        reserved_memory_mb: f64,
        containers: usize,
    ) -> PoolObservation {
        assert_eq!(idle.len(), self.functions, "idle ledger length");
        assert_eq!(booting.len(), self.functions, "booting ledger length");
        let stats = (0..self.functions)
            .map(|i| FnWindowStats {
                function: FunctionId(i),
                invocations: self.invocations[i],
                peak_concurrency: self.peak[i],
                booting: booting[i],
                idle: idle[i],
                busy: self.in_flight[i],
                failed_boots: self.failed_boots[i],
            })
            .collect();
        let obs = PoolObservation {
            now,
            window: now - self.window_start,
            stats,
            cluster: ClusterSnapshot {
                reserved_memory_mb,
                total_memory_mb: self.total_memory_mb,
                containers,
            },
        };
        self.invocations.iter_mut().for_each(|v| *v = 0);
        self.failed_boots.iter_mut().for_each(|v| *v = 0);
        // Peak concurrency restarts from the carried-over in-flight level,
        // exactly as the simulator's window accounting does.
        self.peak.copy_from_slice(&self.in_flight);
        self.window_start = now;
        obs
    }

    /// Memory one container of `config` reserves — the unit the service
    /// uses to maintain `reserved_memory_mb` for [`LivePoolSignal::observe`].
    pub fn container_memory_mb(config: &ResourceConfig) -> f64 {
        config.memory_mb
    }

    /// Number of functions tracked.
    pub fn functions(&self) -> usize {
        self.functions
    }

    /// The default control-window length the service ticks policies at:
    /// a fine-grained 1 s window suited to reactive policies and the
    /// per-window predictive-veto budget. The batch simulator's default
    /// pool tick is 60 s — services hosting *forecasting* policies
    /// (histogram, AQUATOPE) that were tuned against sim runs should set
    /// their window to match, or per-window demand shrinks 60-fold.
    pub fn default_window() -> SimDuration {
        SimDuration::from_secs(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_counters_accumulate_and_reset() {
        let mut sig = LivePoolSignal::new(2, 4096.0, SimTime::ZERO);
        let f0 = FunctionId(0);
        let f1 = FunctionId(1);
        sig.on_dispatch(f0);
        sig.on_dispatch(f0);
        sig.on_complete(f0);
        sig.on_dispatch(f1);
        sig.on_boot_failure(f1);

        let obs = sig.observe(SimTime::from_secs(1), &[3, 0], &[1, 2], 512.0, 6);
        assert_eq!(obs.window, SimDuration::from_secs(1));
        assert_eq!(obs.stats[0].invocations, 2);
        assert_eq!(obs.stats[0].peak_concurrency, 2);
        assert_eq!(obs.stats[0].busy, 1);
        assert_eq!(obs.stats[0].idle, 3);
        assert_eq!(obs.stats[0].booting, 1);
        assert_eq!(obs.stats[0].failed_boots, 0);
        assert_eq!(obs.stats[1].invocations, 1);
        assert_eq!(obs.stats[1].failed_boots, 1);
        assert_eq!(obs.cluster.reserved_memory_mb, 512.0);
        assert_eq!(obs.cluster.total_memory_mb, 4096.0);
        assert_eq!(obs.cluster.containers, 6);

        // Next window: per-window counters reset, in-flight carries over.
        let obs2 = sig.observe(SimTime::from_secs(2), &[0, 0], &[0, 0], 0.0, 0);
        assert_eq!(obs2.stats[0].invocations, 0);
        assert_eq!(obs2.stats[0].failed_boots, 0);
        assert_eq!(obs2.stats[0].busy, 1, "in-flight carries across windows");
        assert_eq!(
            obs2.stats[0].peak_concurrency, 1,
            "peak restarts at carry-over"
        );
        assert_eq!(obs2.stats[1].failed_boots, 0);
    }

    #[test]
    fn observation_feeds_a_real_policy() {
        use aqua_faas::PrewarmController;

        let mut sig = LivePoolSignal::new(1, 16_384.0, SimTime::ZERO);
        for _ in 0..8 {
            sig.on_dispatch(FunctionId(0));
        }
        let obs = sig.observe(SimTime::from_secs(1), &[0], &[0], 0.0, 8);
        let mut policy = crate::ReactiveAutoscale::default();
        let decisions = policy.tick(&obs);
        assert_eq!(decisions.len(), 1);
        assert_eq!(decisions[0].function, FunctionId(0));
    }

    #[test]
    fn complete_never_underflows() {
        let mut sig = LivePoolSignal::new(1, 1024.0, SimTime::ZERO);
        sig.on_complete(FunctionId(0));
        assert_eq!(sig.in_flight(FunctionId(0)), 0);
    }
}
