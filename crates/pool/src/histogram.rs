//! Histogram-based keep-alive policy (*Serverless in the Wild*, Shahrad et
//! al., ATC'20).
//!
//! Per function, the policy maintains a histogram of idle-time gaps
//! between invocations (in 1-minute buckets). The keep-alive is set to the
//! 99th percentile of observed gaps (capped), and a pre-warm is scheduled
//! just before the histogram's likely next invocation — approximated per
//! tick: if the time since the last invocation is close to a histogram
//! mode, warm containers are provisioned at the recently observed
//! concurrency.

use std::collections::HashMap;

use aqua_faas::{replacement_target, FunctionId, PoolDecision, PoolObservation, PrewarmController};
use aqua_sim::SimDuration;

const MAX_GAP_MINUTES: usize = 240;

#[derive(Debug, Clone, Default)]
struct FnHistogram {
    /// gap histogram in minutes.
    buckets: Vec<u32>,
    minutes_since_invocation: usize,
    recent_peak: f64,
    seen_any: bool,
}

impl FnHistogram {
    fn record_window(&mut self, invocations: u32, peak: u32) {
        if invocations > 0 {
            if self.seen_any {
                let gap = self.minutes_since_invocation.min(MAX_GAP_MINUTES);
                if self.buckets.len() <= gap {
                    self.buckets.resize(gap + 1, 0);
                }
                self.buckets[gap] += 1;
            }
            self.seen_any = true;
            self.minutes_since_invocation = 0;
            // Exponential moving average of the observed concurrency.
            self.recent_peak = 0.6 * self.recent_peak + 0.4 * peak as f64;
        } else {
            self.minutes_since_invocation += 1;
        }
    }

    fn percentile_gap(&self, q: f64) -> Option<usize> {
        let total: u32 = self.buckets.iter().sum();
        if total == 0 {
            return None;
        }
        let target = (total as f64 * q).ceil() as u32;
        let mut acc = 0;
        for (gap, &count) in self.buckets.iter().enumerate() {
            acc += count;
            if acc >= target {
                return Some(gap);
            }
        }
        Some(self.buckets.len() - 1)
    }

    /// Probability mass of gaps equal to `gap ± 1` minutes.
    fn arrival_likely_at(&self, gap: usize) -> bool {
        let total: u32 = self.buckets.iter().sum();
        if total < 5 {
            return true; // not enough data: stay warm
        }
        let mass: u32 = (gap.saturating_sub(1)..=gap + 1)
            .filter_map(|g| self.buckets.get(g))
            .sum();
        mass as f64 / total as f64 > 0.15
    }
}

/// The histogram keep-alive policy.
#[derive(Debug, Clone, Default)]
pub struct HistogramPolicy {
    histograms: HashMap<FunctionId, FnHistogram>,
}

impl HistogramPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        HistogramPolicy::default()
    }
}

impl PrewarmController for HistogramPolicy {
    fn tick(&mut self, obs: &PoolObservation) -> Vec<PoolDecision> {
        obs.stats
            .iter()
            .map(|s| {
                let h = self.histograms.entry(s.function).or_default();
                h.record_window(s.invocations, s.peak_concurrency);
                // Keep-alive: p99 of gap distribution, min 2, max 60 min.
                let ka_min = h.percentile_gap(0.99).unwrap_or(10).clamp(2, 60) as u64;
                // Pre-warm if the histogram says an arrival is imminent.
                let next_gap = h.minutes_since_invocation + 1;
                let target = if h.arrival_likely_at(next_gap) {
                    h.recent_peak.ceil() as usize
                } else {
                    0
                };
                PoolDecision {
                    function: s.function,
                    // Boots lost to faults this window are replaced on top
                    // of the histogram's own target.
                    prewarm_target: replacement_target(Some(target), s.failed_boots),
                    keep_alive: SimDuration::from_secs(60 * ka_min),
                    shrink: true,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_faas::cluster::ClusterSnapshot;
    use aqua_faas::sim::FnWindowStats;
    use aqua_sim::SimTime;

    fn obs_one(invocations: u32, peak: u32) -> PoolObservation {
        PoolObservation {
            now: SimTime::from_secs(60),
            window: SimDuration::from_secs(60),
            stats: vec![FnWindowStats {
                function: FunctionId(0),
                invocations,
                peak_concurrency: peak,
                booting: 0,
                idle: 0,
                busy: 0,
                failed_boots: 0,
            }],
            cluster: ClusterSnapshot {
                reserved_memory_mb: 0.0,
                total_memory_mb: 1.0e6,
                containers: 0,
            },
        }
    }

    #[test]
    fn histogram_learns_periodic_gap() {
        let mut p = HistogramPolicy::new();
        // Invocations every 5 minutes (gap = 4 idle windows... pattern below
        // yields gap 5 in histogram terms: 4 empty windows + 1 active).
        let mut decisions = Vec::new();
        for round in 0..100 {
            let active = round % 5 == 0;
            decisions = p.tick(&obs_one(
                if active { 3 } else { 0 },
                if active { 2 } else { 0 },
            ));
        }
        // Keep-alive should have converged to roughly the observed gap, not
        // the 10-minute default or the 60-minute cap.
        let ka_minutes = decisions[0].keep_alive.as_secs_f64() / 60.0;
        assert!(
            (2.0..=10.0).contains(&ka_minutes),
            "keep-alive {ka_minutes} min"
        );
    }

    #[test]
    fn prewarms_when_arrival_imminent() {
        let mut p = HistogramPolicy::new();
        // Period 4: minute indices 0,4,8,... are active.
        let mut target_before_arrival = 0;
        for round in 0..80 {
            let active = round % 4 == 0;
            let d = p.tick(&obs_one(
                if active { 4 } else { 0 },
                if active { 3 } else { 0 },
            ));
            // One window before the next arrival (round % 4 == 3).
            if round > 40 && round % 4 == 3 {
                target_before_arrival = d[0].prewarm_target.unwrap();
            }
        }
        assert!(
            target_before_arrival >= 1,
            "histogram policy should pre-warm before a predicted arrival"
        );
    }

    #[test]
    fn percentile_of_empty_histogram_is_none() {
        let h = FnHistogram::default();
        assert_eq!(h.percentile_gap(0.99), None);
    }

    #[test]
    fn new_function_stays_warm_by_default() {
        let mut p = HistogramPolicy::new();
        let d = p.tick(&obs_one(2, 2));
        // Not enough histogram data → keeps warm reactively.
        assert!(d[0].prewarm_target.unwrap() >= 1);
    }
}
