//! ARIMA(p, d) forecasting via ordinary least squares.
//!
//! The auto-regressive coefficients are estimated on the `d`-times
//! differenced series by solving the Yule-Walker-style normal equations
//! with a Cholesky factorization; forecasts are integrated back through the
//! differencing. This is the model class *Serverless in the Wild* (and the
//! paper's Table 1) uses as the classic-statistics baseline; we omit the MA
//! term, which for these traces contributes little and keeps the estimator
//! a closed-form OLS (documented deviation).

use aqua_linalg::{Cholesky, Matrix};

use crate::point::{counts, Forecast, SeriesPoint};
use crate::Predictor;

/// ARIMA(p, d) with OLS-estimated AR coefficients.
///
/// # Examples
///
/// ```
/// use aqua_forecast::{Arima, Predictor, SeriesPoint, TriggerKind};
///
/// let series: Vec<SeriesPoint> = (0..120)
///     .map(|i| SeriesPoint::new(10.0 + (i % 6) as f64, i, TriggerKind::Http))
///     .collect();
/// let mut m = Arima::new(6, 1);
/// m.fit(&series[..100]);
/// let f = m.forecast(&series[..100]);
/// assert!(f.mean >= 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Arima {
    p: usize,
    d: usize,
    /// `[intercept, phi_1, ..., phi_p]` on the differenced series.
    coeffs: Vec<f64>,
    residual_std: f64,
}

fn difference(xs: &[f64], d: usize) -> Vec<f64> {
    let mut cur = xs.to_vec();
    for _ in 0..d {
        cur = cur.windows(2).map(|w| w[1] - w[0]).collect();
    }
    cur
}

impl Arima {
    /// Creates an ARIMA(p, d) model.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` or `d > 2` (higher differencing is never useful
    /// for these traces and destabilizes integration).
    pub fn new(p: usize, d: usize) -> Self {
        assert!(p > 0, "AR order must be positive");
        assert!(d <= 2, "differencing order above 2 is unsupported");
        Arima {
            p,
            d,
            coeffs: vec![0.0; p + 1],
            residual_std: 0.0,
        }
    }

    /// The AR order.
    pub fn order(&self) -> (usize, usize) {
        (self.p, self.d)
    }

    /// Fitted coefficients `[c, phi_1..phi_p]`.
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    fn fit_series(&mut self, series: &[f64]) {
        let z = difference(series, self.d);
        let n = z.len();
        assert!(
            n > self.p + 1,
            "need more than p+d+1 observations to fit ARIMA({}, {})",
            self.p,
            self.d
        );
        // Design matrix: rows t = p..n, predictors [1, z_{t-1}, ..., z_{t-p}].
        let rows = n - self.p;
        let cols = self.p + 1;
        let x = Matrix::from_fn(
            rows,
            cols,
            |r, c| {
                if c == 0 {
                    1.0
                } else {
                    z[self.p + r - c]
                }
            },
        );
        let y: Vec<f64> = (self.p..n).map(|t| z[t]).collect();
        // Ridge-regularized normal equations for numerical robustness.
        let xt = x.transpose();
        let mut xtx = xt.matmul(&x);
        xtx.add_diagonal(1e-6 * xtx.max_abs().max(1.0));
        let xty = xt.matvec(&y);
        let chol = Cholesky::new_with_jitter(&xtx).expect("regularized XtX must be SPD");
        self.coeffs = chol.solve_vec(&xty);

        // Residual spread for the (Gaussian) forecast uncertainty.
        let mut sse = 0.0;
        for (r, yr) in y.iter().enumerate().take(rows) {
            let pred: f64 = self.coeffs.iter().zip(x.row(r)).map(|(b, v)| b * v).sum();
            sse += (yr - pred).powi(2);
        }
        self.residual_std = (sse / rows.max(1) as f64).sqrt();
    }

    fn forecast_series(&self, series: &[f64]) -> f64 {
        let z = difference(series, self.d);
        if z.len() < self.p {
            return *series.last().expect("non-empty history");
        }
        let mut pred = self.coeffs[0];
        for k in 1..=self.p {
            pred += self.coeffs[k] * z[z.len() - k];
        }
        // Integrate the differenced forecast back to a level.
        match self.d {
            0 => pred,
            1 => series[series.len() - 1] + pred,
            2 => {
                let last = series[series.len() - 1];
                let prev = series[series.len() - 2];
                2.0 * last - prev + pred
            }
            _ => unreachable!("d validated in constructor"),
        }
    }
}

impl Predictor for Arima {
    fn name(&self) -> &'static str {
        "ARIMA"
    }

    fn fit(&mut self, train: &[SeriesPoint]) {
        self.fit_series(&counts(train));
    }

    fn forecast(&mut self, history: &[SeriesPoint]) -> Forecast {
        let series = counts(history);
        assert!(
            series.len() >= self.min_history(),
            "history shorter than p+d"
        );
        Forecast {
            mean: self.forecast_series(&series).max(0.0),
            std: self.residual_std,
        }
    }

    fn min_history(&self) -> usize {
        self.p + self.d + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::TriggerKind;

    fn pts(xs: &[f64]) -> Vec<SeriesPoint> {
        xs.iter()
            .enumerate()
            .map(|(i, &x)| SeriesPoint::new(x, i as u64, TriggerKind::Http))
            .collect()
    }

    #[test]
    fn difference_orders() {
        assert_eq!(difference(&[1.0, 3.0, 6.0, 10.0], 1), vec![2.0, 3.0, 4.0]);
        assert_eq!(difference(&[1.0, 3.0, 6.0, 10.0], 2), vec![1.0, 1.0]);
        assert_eq!(difference(&[5.0, 5.0], 0), vec![5.0, 5.0]);
    }

    #[test]
    fn learns_ar1_process() {
        // x_t = 0.8 x_{t-1} + 2, fixed point at 10.
        let mut series = vec![0.0];
        for _ in 0..200 {
            let last = *series.last().unwrap();
            series.push(0.8 * last + 2.0);
        }
        let mut m = Arima::new(1, 0);
        m.fit(&pts(&series));
        // phi_1 ≈ 0.8, intercept ≈ 2 (up to collinearity near the fixed point).
        let f = m.forecast(&pts(&series));
        let expect = 0.8 * series.last().unwrap() + 2.0;
        assert!(
            (f.mean - expect).abs() < 0.2,
            "forecast {} expect {expect}",
            f.mean
        );
    }

    #[test]
    fn handles_linear_trend_with_differencing() {
        let series: Vec<f64> = (0..100).map(|i| 3.0 * i as f64 + 5.0).collect();
        let mut m = Arima::new(2, 1);
        m.fit(&pts(&series));
        let f = m.forecast(&pts(&series));
        // Next value should be ≈ 3*100 + 5 = 305.
        assert!((f.mean - 305.0).abs() < 1.5, "forecast {}", f.mean);
    }

    #[test]
    fn periodic_series_beats_naive() {
        let series: Vec<f64> = (0..400).map(|i| 10.0 + 5.0 * ((i % 8) as f64)).collect();
        let mut m = Arima::new(8, 0);
        m.fit(&pts(&series[..300]));
        let mut err_arima = 0.0;
        let mut err_naive = 0.0;
        for t in 300..399 {
            let f = m.forecast(&pts(&series[..t]));
            err_arima += (f.mean - series[t]).abs();
            err_naive += (series[t - 1] - series[t]).abs();
        }
        assert!(
            err_arima < err_naive * 0.5,
            "ARIMA {err_arima} naive {err_naive}"
        );
    }

    #[test]
    fn forecasts_are_non_negative() {
        let series: Vec<f64> = (0..50).map(|i| (50 - i) as f64).collect();
        let mut m = Arima::new(1, 1);
        m.fit(&pts(&series));
        // A falling series extrapolates below zero; the forecast clamps.
        let f = m.forecast(&pts(&series));
        assert!(f.mean >= 0.0);
    }

    #[test]
    #[should_panic(expected = "AR order")]
    fn zero_order_rejected() {
        let _ = Arima::new(0, 0);
    }
}
