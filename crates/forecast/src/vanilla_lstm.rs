//! Vanilla LSTM baseline: same backbone capacity as the hybrid model but no
//! external features and no uncertainty (Table 1's third column).

use aqua_nn::{mse, Adam, Linear, Lstm, Parameterized};
use aqua_sim::SimRng;

use crate::point::{counts, Forecast, SeriesPoint};
use crate::Predictor;

/// One-step-ahead LSTM forecaster.
///
/// # Examples
///
/// ```no_run
/// use aqua_forecast::{Predictor, SeriesPoint, TriggerKind, VanillaLstm};
///
/// let series: Vec<SeriesPoint> = (0..300)
///     .map(|i| SeriesPoint::new(10.0 + (i % 12) as f64, i, TriggerKind::Http))
///     .collect();
/// let mut m = VanillaLstm::new(24, 3);
/// m.fit(&series[..240]);
/// let f = m.forecast(&series[..240]);
/// assert!(f.mean >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct VanillaLstm {
    window: usize,
    epochs: usize,
    lstm: Lstm,
    head: Linear,
    rng: SimRng,
    scale: f64,
    residual_std: f64,
}

impl VanillaLstm {
    /// Creates the model with the given input window and training epochs.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2`.
    pub fn new(window: usize, epochs: usize) -> Self {
        Self::with_seed(window, epochs, 0x5eed)
    }

    /// Like [`VanillaLstm::new`] with an explicit RNG seed.
    pub fn with_seed(window: usize, epochs: usize, seed: u64) -> Self {
        assert!(window >= 2, "window must be at least 2");
        let mut rng = SimRng::seed(seed);
        let lstm = Lstm::new(&[1, 32, 16], 0.0, &mut rng);
        let head = Linear::new(16, 1, &mut rng);
        VanillaLstm {
            window,
            epochs,
            lstm,
            head,
            rng,
            scale: 1.0,
            residual_std: 0.0,
        }
    }

    fn window_of(&self, xs: &[f64]) -> Vec<Vec<f64>> {
        let start = xs.len().saturating_sub(self.window);
        xs[start..].iter().map(|v| vec![v / self.scale]).collect()
    }

    fn predict_norm(&mut self, input: &[Vec<f64>]) -> f64 {
        // Arena-based inference step: no per-step caches, no RNG (inference
        // mode never draws masks), bit-identical to the training-path
        // forward with dropout off.
        let res = self.lstm.forward_infer(input, None);
        self.head.forward(&res.last_output)[0]
    }
}

impl Predictor for VanillaLstm {
    fn name(&self) -> &'static str {
        "LSTM"
    }

    fn fit(&mut self, train: &[SeriesPoint]) {
        let xs = counts(train);
        assert!(
            xs.len() > self.window + 1,
            "training series shorter than window"
        );
        self.scale = xs.iter().cloned().fold(1.0, f64::max);
        let norm: Vec<f64> = xs.iter().map(|v| v / self.scale).collect();

        // Mini-batched training: gradient averaging over a few sequences
        // stabilizes BPTT against Poisson label noise.
        let batch = 8;
        let mut examples: Vec<usize> = (0..norm.len() - self.window).collect();
        let mut adam = Adam::new(5e-3).with_clip(1.0);
        struct Both<'a>(&'a mut Lstm, &'a mut Linear);
        impl Parameterized for Both<'_> {
            fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
                self.0.visit_params(f);
                self.1.visit_params(f);
            }
        }
        for _ in 0..self.epochs {
            self.rng.shuffle(&mut examples);
            for chunk in examples.chunks(batch) {
                self.lstm.zero_grad();
                self.head.zero_grad();
                for &s in chunk {
                    let input: Vec<Vec<f64>> =
                        norm[s..s + self.window].iter().map(|v| vec![*v]).collect();
                    let target = [norm[s + self.window]];
                    let cache = self.lstm.forward_seq(&input, None, false, &mut self.rng);
                    let top = cache.outputs.last().expect("non-empty").clone();
                    let pred = self.head.forward(&top);
                    let (_, d_pred) = mse(&pred, &target);
                    let scaled: Vec<f64> = d_pred.iter().map(|g| g / chunk.len() as f64).collect();
                    let d_top = self.head.backward(&top, &scaled);
                    let mut d_outputs = vec![vec![0.0; self.lstm.top_hidden()]; input.len()];
                    *d_outputs.last_mut().expect("non-empty") = d_top;
                    self.lstm.backward_seq(&cache, &d_outputs, None);
                }
                adam.step(&mut Both(&mut self.lstm, &mut self.head));
            }
        }

        // One-step residual spread on the training set.
        let mut sse = 0.0;
        let mut n = 0;
        for s in 0..norm.len() - self.window {
            let input: Vec<Vec<f64>> = norm[s..s + self.window].iter().map(|v| vec![*v]).collect();
            let pred = self.predict_norm(&input);
            sse += (pred - norm[s + self.window]).powi(2);
            n += 1;
        }
        self.residual_std = (sse / n.max(1) as f64).sqrt() * self.scale;
    }

    fn forecast(&mut self, history: &[SeriesPoint]) -> Forecast {
        let xs = counts(history);
        assert!(xs.len() >= 2, "history too short");
        let input = self.window_of(&xs);
        let mean = (self.predict_norm(&input) * self.scale).max(0.0);
        Forecast {
            mean,
            std: self.residual_std,
        }
    }

    fn min_history(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::TriggerKind;

    fn pts(xs: &[f64]) -> Vec<SeriesPoint> {
        xs.iter()
            .enumerate()
            .map(|(i, &x)| SeriesPoint::new(x, i as u64, TriggerKind::Http))
            .collect()
    }

    #[test]
    fn learns_short_period_pattern() {
        let series: Vec<f64> = (0..240)
            .map(|t| 10.0 + 8.0 * (std::f64::consts::TAU * t as f64 / 12.0).sin())
            .collect();
        let mut m = VanillaLstm::with_seed(16, 4, 7);
        m.fit(&pts(&series[..200]));
        let mut err_lstm = 0.0;
        let mut err_naive = 0.0;
        for t in 200..239 {
            let f = m.forecast(&pts(&series[..t]));
            err_lstm += (f.mean - series[t]).abs();
            err_naive += (series[t - 1] - series[t]).abs();
        }
        assert!(
            err_lstm < err_naive,
            "LSTM should beat naive: {err_lstm} vs {err_naive}"
        );
    }

    #[test]
    fn forecast_is_deterministic_after_fit() {
        let series: Vec<f64> = (0..80).map(|t| (t % 5) as f64).collect();
        let mut m = VanillaLstm::with_seed(8, 1, 3);
        m.fit(&pts(&series));
        let a = m.forecast(&pts(&series)).mean;
        let b = m.forecast(&pts(&series)).mean;
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "shorter than window")]
    fn fit_requires_enough_data() {
        let mut m = VanillaLstm::new(24, 1);
        m.fit(&pts(&[1.0; 10]));
    }
}
