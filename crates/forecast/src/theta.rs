//! The Theta method (Assimakopoulos & Nikolopoulos 2000) — one of the
//! "classic timeseries prediction models" the paper's §4.2 lists alongside
//! exponential smoothing and ARIMA.
//!
//! The classic two-line variant: decompose the series into theta-lines with
//! θ = 0 (the linear-regression trend) and θ = 2 (double curvature, which
//! is then extrapolated with simple exponential smoothing) and average the
//! two forecasts.

use crate::point::{counts, Forecast, SeriesPoint};
use crate::Predictor;

/// Two-line Theta forecaster with SES extrapolation of the θ=2 line.
///
/// # Examples
///
/// ```
/// use aqua_forecast::{Predictor, SeriesPoint, Theta, TriggerKind};
///
/// let series: Vec<SeriesPoint> = (0..60)
///     .map(|i| SeriesPoint::new(5.0 + 0.5 * i as f64, i, TriggerKind::Http))
///     .collect();
/// let mut m = Theta::new(0.4);
/// m.fit(&series);
/// let f = m.forecast(&series);
/// assert!((f.mean - 35.0).abs() < 2.0); // follows the trend
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Theta {
    /// SES smoothing factor for the θ=2 line.
    alpha: f64,
    residual_std: f64,
}

/// Ordinary least-squares line `y = a + b t` over `xs`.
fn ols_line(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let t_mean = (n - 1.0) / 2.0;
    let y_mean = xs.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (t, y) in xs.iter().enumerate() {
        let dt = t as f64 - t_mean;
        num += dt * (y - y_mean);
        den += dt * dt;
    }
    let b = if den > 0.0 { num / den } else { 0.0 };
    (y_mean - b * t_mean, b)
}

impl Theta {
    /// Creates the forecaster.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha` lies in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Theta {
            alpha,
            residual_std: 0.0,
        }
    }

    /// One-step forecast of a raw series.
    fn forecast_series(&self, xs: &[f64]) -> f64 {
        let n = xs.len();
        let (a, b) = ols_line(xs);
        // θ=0 line: the trend, extrapolated one step.
        let line0 = a + b * n as f64;
        // θ=2 line: 2·x_t − trend_t, extrapolated with SES plus the
        // standard drift correction (SES lags a trending series by
        // b·(1−α)/α; one forecast step adds another b).
        let mut ses = 2.0 * xs[0] - a;
        for (t, x) in xs.iter().enumerate().skip(1) {
            let theta2 = 2.0 * x - (a + b * t as f64);
            ses = self.alpha * theta2 + (1.0 - self.alpha) * ses;
        }
        let drift = b * ((1.0 - self.alpha) / self.alpha + 1.0);
        (line0 + ses + drift) / 2.0
    }
}

impl Predictor for Theta {
    fn name(&self) -> &'static str {
        "Theta"
    }

    fn fit(&mut self, train: &[SeriesPoint]) {
        let xs = counts(train);
        assert!(xs.len() >= 4, "Theta needs at least 4 observations");
        let mut sse = 0.0;
        let mut n = 0;
        for t in (xs.len() / 2).max(4)..xs.len() {
            let pred = self.forecast_series(&xs[..t]);
            sse += (pred - xs[t]).powi(2);
            n += 1;
        }
        self.residual_std = (sse / n.max(1) as f64).sqrt();
    }

    fn forecast(&mut self, history: &[SeriesPoint]) -> Forecast {
        let xs = counts(history);
        assert!(xs.len() >= 4, "history too short for Theta");
        Forecast {
            mean: self.forecast_series(&xs).max(0.0),
            std: self.residual_std,
        }
    }

    fn min_history(&self) -> usize {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::TriggerKind;

    fn pts(xs: &[f64]) -> Vec<SeriesPoint> {
        xs.iter()
            .enumerate()
            .map(|(i, &x)| SeriesPoint::new(x, i as u64, TriggerKind::Http))
            .collect()
    }

    #[test]
    fn ols_line_recovers_exact_trend() {
        let xs: Vec<f64> = (0..20).map(|t| 3.0 + 2.0 * t as f64).collect();
        let (a, b) = ols_line(&xs);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn constant_series_forecasts_constant() {
        let mut m = Theta::new(0.5);
        let p = pts(&[7.0; 30]);
        m.fit(&p);
        let f = m.forecast(&p);
        assert!((f.mean - 7.0).abs() < 1e-6);
    }

    #[test]
    fn trend_series_extrapolates() {
        let xs: Vec<f64> = (0..50).map(|t| 1.0 + 0.8 * t as f64).collect();
        let mut m = Theta::new(0.3);
        let p = pts(&xs);
        m.fit(&p);
        let f = m.forecast(&p);
        assert!((f.mean - (1.0 + 0.8 * 50.0)).abs() < 1.0, "got {}", f.mean);
    }

    #[test]
    fn beats_naive_on_trend() {
        let xs: Vec<f64> = (0..120).map(|t| 2.0 * t as f64).collect();
        let mut theta = Theta::new(0.4);
        theta.fit(&pts(&xs[..90]));
        let mut err_t = 0.0;
        let mut err_n = 0.0;
        for t in 90..119 {
            let f = theta.forecast(&pts(&xs[..t]));
            err_t += (f.mean - xs[t]).abs();
            err_n += (xs[t - 1] - xs[t]).abs();
        }
        assert!(err_t < err_n, "theta {err_t} naive {err_n}");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let _ = Theta::new(0.0);
    }
}
