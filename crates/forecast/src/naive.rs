//! The fixed Keep-Alive baseline: predict the last observed window.

use crate::point::{Forecast, SeriesPoint};
use crate::Predictor;

/// Naive last-value model — the implicit predictor behind the fixed
/// keep-alive policy of most FaaS providers (Table 1's first column).
///
/// # Examples
///
/// ```
/// use aqua_forecast::{NaiveLast, Predictor, SeriesPoint, TriggerKind};
///
/// let mut m = NaiveLast::new();
/// let h = [SeriesPoint::new(7.0, 0, TriggerKind::Http)];
/// assert_eq!(m.forecast(&h).mean, 7.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NaiveLast;

impl NaiveLast {
    /// Creates the model (it has no parameters).
    pub fn new() -> Self {
        NaiveLast
    }
}

impl Predictor for NaiveLast {
    fn name(&self) -> &'static str {
        "KeepAlive"
    }

    fn fit(&mut self, _train: &[SeriesPoint]) {}

    fn forecast(&mut self, history: &[SeriesPoint]) -> Forecast {
        assert!(!history.is_empty(), "naive model needs at least one window");
        Forecast::point(history.last().expect("non-empty").count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::TriggerKind;

    #[test]
    fn echoes_last_value() {
        let mut m = NaiveLast::new();
        let hist: Vec<SeriesPoint> = (0..5)
            .map(|i| SeriesPoint::new(i as f64, i, TriggerKind::Http))
            .collect();
        assert_eq!(m.forecast(&hist).mean, 4.0);
        assert_eq!(m.forecast(&hist).std, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn empty_history_panics() {
        let mut m = NaiveLast::new();
        let _ = m.forecast(&[]);
    }
}
