//! Rolling-forecast evaluation with the SMAPE metric (paper Table 1).

use aqua_linalg::smape;

use crate::point::SeriesPoint;
use crate::Predictor;

/// Result of evaluating a predictor on a held-out suffix.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Model name as reported by [`Predictor::name`].
    pub model: String,
    /// SMAPE over the evaluation range, as a fraction (0.057 = 5.7%).
    pub smape: f64,
    /// Number of one-step forecasts evaluated.
    pub steps: usize,
}

impl std::fmt::Display for EvalReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<20} SMAPE = {:5.1}% over {} steps",
            self.model,
            self.smape * 100.0,
            self.steps
        )
    }
}

/// Fits `model` on `series[..train_len]` and rolls one-step forecasts over
/// the remainder, returning the SMAPE report.
///
/// # Panics
///
/// Panics if the split leaves no evaluation points or `train_len` is zero.
pub fn smape_eval(
    model: &mut dyn Predictor,
    series: &[SeriesPoint],
    train_len: usize,
) -> EvalReport {
    assert!(
        train_len > 0 && train_len < series.len(),
        "bad train/test split"
    );
    model.fit(&series[..train_len]);
    let mut actual = Vec::new();
    let mut forecast = Vec::new();
    let start = train_len.max(model.min_history());
    for t in start..series.len() {
        let f = model.forecast(&series[..t]);
        forecast.push(f.mean);
        actual.push(series[t].count);
    }
    assert!(!actual.is_empty(), "no evaluation points after split");
    EvalReport {
        model: model.name().to_string(),
        smape: smape(&actual, &forecast),
        steps: actual.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::TriggerKind;
    use crate::{Forecast, NaiveLast};

    fn pts(xs: &[f64]) -> Vec<SeriesPoint> {
        xs.iter()
            .enumerate()
            .map(|(i, &x)| SeriesPoint::new(x, i as u64, TriggerKind::Http))
            .collect()
    }

    #[test]
    fn perfect_predictor_scores_zero() {
        /// Cheating oracle that looks one step ahead via interior state.
        struct Oracle {
            series: Vec<f64>,
        }
        impl Predictor for Oracle {
            fn name(&self) -> &'static str {
                "Oracle"
            }
            fn fit(&mut self, _t: &[SeriesPoint]) {}
            fn forecast(&mut self, history: &[SeriesPoint]) -> Forecast {
                Forecast::point(self.series[history.len()])
            }
        }
        let xs: Vec<f64> = (0..50).map(|i| (i % 7) as f64 + 1.0).collect();
        let mut oracle = Oracle { series: xs.clone() };
        let report = smape_eval(&mut oracle, &pts(&xs), 30);
        assert_eq!(report.smape, 0.0);
        assert_eq!(report.steps, 20);
    }

    #[test]
    fn naive_on_constant_series_scores_zero() {
        let mut m = NaiveLast::new();
        let report = smape_eval(&mut m, &pts(&[5.0; 40]), 20);
        assert_eq!(report.smape, 0.0);
    }

    #[test]
    fn naive_on_alternating_series_scores_high() {
        let xs: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 2.0 } else { 6.0 })
            .collect();
        let mut m = NaiveLast::new();
        let report = smape_eval(&mut m, &pts(&xs), 20);
        assert!(
            report.smape > 0.5,
            "expected large error, got {}",
            report.smape
        );
    }

    #[test]
    fn report_formats_as_percentage() {
        let r = EvalReport {
            model: "X".into(),
            smape: 0.057,
            steps: 10,
        };
        assert!(r.to_string().contains("5.7%"));
    }

    #[test]
    #[should_panic(expected = "bad train/test split")]
    fn rejects_degenerate_split() {
        let mut m = NaiveLast::new();
        let _ = smape_eval(&mut m, &pts(&[1.0, 2.0]), 2);
    }
}
