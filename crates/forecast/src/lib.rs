//! Time-series predictors for serverless invocation patterns.
//!
//! This crate implements every prediction model compared in the paper's
//! Table 1 plus the models inside the cold-start baselines:
//!
//! * [`NaiveLast`] — "fixed Keep-Alive": the last window's count is the
//!   forecast for the next.
//! * [`Arima`] — the classic ARIMA model used by *Serverless in the Wild*.
//! * [`HoltWinters`] — double exponential smoothing (extension baseline).
//! * [`Theta`] — the Theta method, another of §4.2's classic baselines.
//! * [`VanillaLstm`] — an LSTM without external features or uncertainty.
//! * [`FourierPredictor`] — IceBreaker's Fourier-extrapolation model.
//! * [`HybridBayesian`] — AQUATOPE's hybrid Bayesian NN: LSTM
//!   encoder-decoder latent + external features into an MC-dropout MLP,
//!   yielding a predictive mean **and** uncertainty.
//!
//! All models implement [`Predictor`]; [`eval::smape_eval`] computes the
//! Table 1 metric over a held-out split.
//!
//! # Examples
//!
//! ```
//! use aqua_forecast::{NaiveLast, Predictor, SeriesPoint, TriggerKind};
//!
//! let series: Vec<SeriesPoint> = (0..64)
//!     .map(|i| SeriesPoint::new(5.0 + (i % 8) as f64, i, TriggerKind::Http))
//!     .collect();
//! let mut model = NaiveLast::new();
//! model.fit(&series);
//! let f = model.forecast(&series[..32]);
//! assert_eq!(f.mean, series[31].count);
//! ```

pub mod arima;
pub mod eval;
pub mod fourier;
pub mod holt;
pub mod hybrid;
pub mod naive;
pub mod point;
pub mod theta;
pub mod vanilla_lstm;

pub use arima::Arima;
pub use eval::{smape_eval, EvalReport};
pub use fourier::FourierPredictor;
pub use holt::HoltWinters;
pub use hybrid::{HybridBayesian, HybridConfig};
pub use naive::NaiveLast;
pub use point::{Forecast, SeriesPoint, TriggerKind};
pub use theta::Theta;
pub use vanilla_lstm::VanillaLstm;

/// A model that forecasts the next window's container count from history.
///
/// `fit` sees the training prefix once; `forecast` is called with a rolling
/// history slice (the most recent windows, oldest first) and must return the
/// prediction for the *next* window.
pub trait Predictor {
    /// Short human-readable model name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Trains the model on a historical series.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `train` is shorter than the model's
    /// minimum window.
    fn fit(&mut self, train: &[SeriesPoint]);

    /// Predicts the count in the window following `history`.
    fn forecast(&mut self, history: &[SeriesPoint]) -> Forecast;

    /// Minimum history length `forecast` needs. Defaults to 1.
    fn min_history(&self) -> usize {
        1
    }
}
