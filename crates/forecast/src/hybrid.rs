//! AQUATOPE's hybrid Bayesian neural network (paper §4.2, Fig. 2).
//!
//! Two stages:
//!
//! 1. An LSTM **encoder-decoder** is pre-trained to reconstruct the next
//!    `k` windows of the invocation series; its encoder then serves as a
//!    frozen feature-extraction black box whose final hidden state is the
//!    latent variable `Z`.
//! 2. A **prediction network** (3-layer tanh MLP with dropout) maps
//!    `[Z ‖ external features]` to the next window's container count.
//!
//! Bayesian inference is approximated with MC dropout: variational dropout
//! in the encoder, regular dropout in the MLP, `T` stochastic forward
//! passes → predictive mean and variance.

use aqua_linalg::Matrix;
use aqua_nn::{mse, Adam, EncoderDecoder, Mlp, Parameterized, Seq2SeqConfig};
use aqua_sim::SimRng;

use crate::point::{counts, Forecast, SeriesPoint, EXTERNAL_FEATURE_DIM};
use crate::Predictor;

/// Hyperparameters of the hybrid model.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridConfig {
    /// Input window length (past windows fed to the encoder).
    pub window: usize,
    /// Reconstruction horizon for encoder-decoder pre-training.
    pub horizon: usize,
    /// Encoder stack hidden widths (paper: two layers of 64).
    pub enc_hidden: Vec<usize>,
    /// Decoder stack hidden widths (paper: two layers of 16).
    pub dec_hidden: Vec<usize>,
    /// MLP hidden widths (three FC layers total → two hidden blocks).
    pub mlp_hidden: Vec<usize>,
    /// Dropout rate (variational in the encoder, regular in the MLP).
    pub dropout: f64,
    /// Pre-training epochs for the encoder-decoder.
    pub pretrain_epochs: usize,
    /// Training epochs for the prediction network.
    pub train_epochs: usize,
    /// Number of MC-dropout forward passes at inference.
    pub mc_passes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HybridConfig {
    /// Laptop-scale defaults that keep the paper's architecture shape
    /// (stacked encoder/decoder, 3-layer tanh MLP, MC dropout) while
    /// training in seconds. Use [`HybridConfig::paper_scale`] for the full
    /// 64/16 widths.
    fn default() -> Self {
        HybridConfig {
            window: 24,
            horizon: 2,
            enc_hidden: vec![32, 32],
            dec_hidden: vec![16],
            mlp_hidden: vec![64, 32],
            dropout: 0.05,
            pretrain_epochs: 10,
            train_epochs: 12,
            mc_passes: 40,
            seed: 0xA00A,
        }
    }
}

impl HybridConfig {
    /// The paper's full-size architecture (2×64 encoder, 2×16 decoder).
    pub fn paper_scale() -> Self {
        HybridConfig {
            enc_hidden: vec![64, 64],
            dec_hidden: vec![16, 16],
            mlp_hidden: vec![64, 32],
            ..Self::default()
        }
    }
}

/// The hybrid Bayesian forecaster.
///
/// # Examples
///
/// ```no_run
/// use aqua_forecast::{HybridBayesian, HybridConfig, Predictor, SeriesPoint, TriggerKind};
///
/// let series: Vec<SeriesPoint> = (0..400)
///     .map(|i| SeriesPoint::new(10.0 + (i % 30) as f64, i, TriggerKind::Http))
///     .collect();
/// let mut model = HybridBayesian::new(HybridConfig::default());
/// model.fit(&series[..300]);
/// let f = model.forecast(&series[..300]);
/// assert!(f.std >= 0.0); // Bayesian: carries uncertainty
/// ```
#[derive(Debug, Clone)]
pub struct HybridBayesian {
    config: HybridConfig,
    encoder_decoder: EncoderDecoder,
    mlp: Mlp,
    rng: SimRng,
    scale: f64,
    /// Per-dimension standardization of the MLP input (latent magnitudes
    /// are far smaller than the cyclic external features; without this the
    /// prediction network fixates on the features and ignores `Z`).
    input_mean: Vec<f64>,
    input_std: Vec<f64>,
    /// Aleatoric (residual) standard deviations estimated on the training
    /// set, in original units, split by predicted level: count noise is
    /// multiplicative, so confidently-quiet windows must not inherit the
    /// spike-sized residual (that would pin pool insurance up forever).
    residual_low: f64,
    residual_high: f64,
    /// Level (original units) separating the two residual buckets.
    level_split: f64,
    /// Weekly-phase features are only usable when the training span covers
    /// at least one full week; on shorter traces they are a raw time index
    /// that the network would overfit (out-of-distribution at test time).
    use_weekly: bool,
}

impl HybridBayesian {
    /// Builds the model from a configuration.
    pub fn new(config: HybridConfig) -> Self {
        let mut rng = SimRng::seed(config.seed);
        let seq_cfg = Seq2SeqConfig {
            input_dim: 1,
            enc_hidden: config.enc_hidden.clone(),
            dec_hidden: config.dec_hidden.clone(),
            horizon: config.horizon,
            dropout: config.dropout,
        };
        let encoder_decoder = EncoderDecoder::new(seq_cfg, &mut rng);
        let mlp = Mlp::new(
            encoder_decoder.latent_dim() + EXTERNAL_FEATURE_DIM + Self::RECENT_TAIL,
            &config.mlp_hidden,
            1,
            config.dropout,
            &mut rng,
        );
        let in_dim = encoder_decoder.latent_dim() + EXTERNAL_FEATURE_DIM + Self::RECENT_TAIL;
        HybridBayesian {
            config,
            encoder_decoder,
            mlp,
            rng,
            scale: 1.0,
            input_mean: vec![0.0; in_dim],
            input_std: vec![1.0; in_dim],
            residual_low: 0.0,
            residual_high: 0.0,
            level_split: 0.0,
            use_weekly: true,
        }
    }

    /// Zeroes the weekly-phase features in place when they are disabled.
    fn mask_features(&self, features: &mut [f64]) {
        if !self.use_weekly {
            features[2] = 0.0;
            features[3] = 0.0;
        }
    }

    /// Number of recent raw (normalized) counts appended to the MLP input
    /// alongside the latent and the external features, following Zhu &
    /// Laptev's hybrid design (the paper's reference for this model):
    /// the prediction network sees the local level directly and learns
    /// corrections from the latent and the calendar features.
    const RECENT_TAIL: usize = 4;

    fn recent_tail(window: &[Vec<f64>]) -> Vec<f64> {
        let n = window.len();
        (0..Self::RECENT_TAIL)
            .map(|k| {
                let idx = n.saturating_sub(k + 1);
                window[idx][0]
            })
            .collect()
    }

    fn standardize(&self, input: &mut [f64]) {
        for (d, v) in input.iter_mut().enumerate() {
            *v = (*v - self.input_mean[d]) / self.input_std[d];
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HybridConfig {
        &self.config
    }

    fn norm_window(&self, xs: &[f64]) -> Vec<Vec<f64>> {
        let start = xs.len().saturating_sub(self.config.window);
        xs[start..].iter().map(|v| vec![v / self.scale]).collect()
    }

    /// Deterministic single-pass forecast with dropout disabled — the
    /// non-Bayesian ablation the paper calls *AquaLite*. Returns only a
    /// point estimate (no uncertainty).
    pub fn forecast_point(&mut self, history: &[SeriesPoint]) -> f64 {
        let xs = counts(history);
        assert!(!xs.is_empty(), "empty history");
        let window = self.norm_window(&xs);
        let last = history.last().expect("non-empty");
        let next_point = SeriesPoint::new(0.0, last.minute + 1, last.trigger);
        let z = self.encoder_decoder.encode(&window, false, &mut self.rng);
        let mut input = z;
        let mut feats = next_point.external_features();
        self.mask_features(&mut feats);
        input.extend_from_slice(&feats);
        input.extend_from_slice(&Self::recent_tail(&window));
        self.standardize(&mut input);
        let last = window.last().expect("non-empty window")[0];
        ((last + self.mlp.forward(&input)[0]) * self.scale).max(0.0)
    }
}

impl Predictor for HybridBayesian {
    fn name(&self) -> &'static str {
        "Aquatope-Hybrid"
    }

    fn fit(&mut self, train: &[SeriesPoint]) {
        let xs = counts(train);
        let w = self.config.window;
        let h = self.config.horizon;
        assert!(
            xs.len() > w + h + 1,
            "training series shorter than window + horizon"
        );
        self.scale = xs.iter().cloned().fold(1.0, f64::max);
        let norm: Vec<f64> = xs.iter().map(|v| v / self.scale).collect();

        // Stage 1: pre-train the encoder-decoder for reconstruction.
        let mut pretrain = Vec::new();
        for s in 0..norm.len() - w - h {
            let input: Vec<Vec<f64>> = norm[s..s + w].iter().map(|v| vec![*v]).collect();
            let target: Vec<Vec<f64>> = norm[s + w..s + w + h].iter().map(|v| vec![*v]).collect();
            pretrain.push((input, target));
        }
        let mut rng = self.rng.fork("pretrain");
        self.encoder_decoder
            .train(&pretrain, self.config.pretrain_epochs, 1.5e-3, &mut rng);

        // Stage 2: train the prediction network on frozen-encoder latents +
        // external features. Latents are extracted deterministically
        // (dropout off): feeding dropout-perturbed latents to a frozen-
        // encoder regression induces errors-in-variables attenuation, so
        // epistemic uncertainty is carried by the prediction network's own
        // MC dropout (deviation from the paper documented in DESIGN.md —
        // variational dropout still regularizes encoder pre-training).
        let span_minutes = train.last().expect("non-empty").minute - train[0].minute;
        self.use_weekly = span_minutes >= 7 * 24 * 60;
        let mut inputs = Vec::new();
        let mut targets = Vec::new();
        for s in 0..norm.len() - w {
            let window: Vec<Vec<f64>> = norm[s..s + w].iter().map(|v| vec![*v]).collect();
            let mut input = self.encoder_decoder.encode(&window, false, &mut rng);
            let mut feats = train[s + w].external_features();
            self.mask_features(&mut feats);
            input.extend_from_slice(&feats);
            input.extend_from_slice(&Self::recent_tail(&window));
            inputs.push(input);
            // The network predicts the *delta* from the last observation:
            // deltas are near-stationary, the naive forecast becomes the
            // zero function, and any learned structure (calendar phase,
            // latent dynamics) improves on that floor.
            targets.push(norm[s + w] - norm[s + w - 1]);
        }
        // Fit the input standardization on the training inputs.
        let dim = inputs[0].len();
        let n = inputs.len() as f64;
        self.input_mean = vec![0.0; dim];
        self.input_std = vec![0.0; dim];
        for input in &inputs {
            for (d, v) in input.iter().enumerate() {
                self.input_mean[d] += v;
            }
        }
        for m in &mut self.input_mean {
            *m /= n;
        }
        for input in &inputs {
            for (d, v) in input.iter().enumerate() {
                self.input_std[d] += (v - self.input_mean[d]).powi(2);
            }
        }
        for sd in &mut self.input_std {
            *sd = (*sd / n).sqrt().max(1e-6);
        }
        for input in &mut inputs {
            for (d, v) in input.iter_mut().enumerate() {
                *v = (*v - self.input_mean[d]) / self.input_std[d];
            }
        }

        // Mini-batched AdamW: averaging gradients over small batches tames
        // the label noise of Poisson-count targets. Each chunk runs as one
        // batched forward/backward; masks are pre-drawn lane-major, so the
        // gradients (and RNG stream) are bit-identical to the sequential
        // per-example loop this replaces.
        let batch = 16;
        let mut adam = Adam::new(4e-3).with_clip(1.0).with_weight_decay(1e-4);
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        for _ in 0..self.config.train_epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(batch) {
                self.mlp.zero_grad();
                let mut x = Matrix::zeros(chunk.len(), dim);
                for (r, &i) in chunk.iter().enumerate() {
                    x.row_mut(r).copy_from_slice(&inputs[i]);
                }
                let cache = self.mlp.forward_train_batch(&x, &mut rng);
                let mut d = Matrix::zeros(chunk.len(), 1);
                for (r, &i) in chunk.iter().enumerate() {
                    let (_, g) = mse(cache.output.row(r), &[targets[i]]);
                    d[(r, 0)] = g[0] / chunk.len() as f64;
                }
                self.mlp.backward_batch(&cache, &d);
                adam.step(&mut self.mlp);
            }
        }
        // Heteroscedastic aleatoric residuals (deterministic forward),
        // bucketed by the *level* each prediction lands at. Targets are
        // deltas; the level is last + delta.
        let mut levels = Vec::with_capacity(inputs.len());
        let mut errs = Vec::with_capacity(inputs.len());
        for (i, (input, target)) in inputs.iter().zip(&targets).enumerate() {
            let pred = self.mlp.forward(input)[0];
            let last = norm[self.config.window + i - 1];
            levels.push((last + pred).max(0.0));
            errs.push(pred - target);
        }
        let mut sorted = levels.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let split_idx = ((sorted.len() as f64 * 0.6) as usize).min(sorted.len() - 1);
        let split = sorted[split_idx];
        let mut sse = [0.0f64; 2];
        let mut n = [0usize; 2];
        for (lv, e) in levels.iter().zip(&errs) {
            let b = usize::from(*lv >= split);
            sse[b] += e * e;
            n[b] += 1;
        }
        self.residual_low = (sse[0] / n[0].max(1) as f64).sqrt() * self.scale;
        self.residual_high = (sse[1] / n[1].max(1) as f64).sqrt() * self.scale;
        self.level_split = split * self.scale;
        self.rng = rng;
    }

    fn forecast(&mut self, history: &[SeriesPoint]) -> Forecast {
        let xs = counts(history);
        assert!(!xs.is_empty(), "empty history");
        let window = self.norm_window(&xs);
        // External features describe the *next* window.
        let last = history.last().expect("non-empty");
        let next_point = SeriesPoint::new(0.0, last.minute + 1, last.trigger);
        let mut features = next_point.external_features();
        self.mask_features(&mut features);

        // The latent is deterministic (dropout lives in the prediction
        // network), so encode once and reuse it across the MC passes.
        let z = self.encoder_decoder.encode(&window, false, &mut self.rng);
        let last = window.last().expect("non-empty window")[0];
        let mut base_input = z;
        base_input.extend_from_slice(&features);
        base_input.extend_from_slice(&Self::recent_tail(&window));
        self.standardize(&mut base_input);
        // All T MC-dropout passes share the input and the weights, so they
        // run as ONE batched forward over T broadcast rows; masks are
        // pre-drawn pass-major, making sample `p` bit-identical to the
        // `p`-th sequential `forward_train` call this replaces.
        let t = self.config.mc_passes.max(2);
        let mut mc_in = Matrix::zeros(t, base_input.len());
        for r in 0..t {
            mc_in.row_mut(r).copy_from_slice(&base_input);
        }
        let mc_out = self.mlp.forward_train_batch(&mc_in, &mut self.rng);
        let samples: Vec<f64> = (0..t)
            .map(|r| (last + mc_out.output.row(r)[0]) * self.scale)
            .collect();
        // Deterministic forward for the point estimate (the MC average of a
        // tanh network under dropout is biased upward near zero); the MC
        // spread still supplies the epistemic variance.
        let mean = (last + self.mlp.forward(&base_input)[0]) * self.scale;
        let mc_mean = samples.iter().sum::<f64>() / t as f64;
        let var = samples.iter().map(|s| (s - mc_mean).powi(2)).sum::<f64>() / (t - 1) as f64;
        let aleatoric = if mean.max(0.0) >= self.level_split {
            self.residual_high
        } else {
            self.residual_low
        };
        Forecast {
            mean: mean.max(0.0),
            // Epistemic (MC) + level-matched aleatoric uncertainty.
            std: (var + aleatoric * aleatoric).sqrt(),
        }
    }

    fn min_history(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::TriggerKind;
    use crate::NaiveLast;

    fn tiny_config(seed: u64) -> HybridConfig {
        HybridConfig {
            window: 12,
            horizon: 2,
            enc_hidden: vec![12],
            dec_hidden: vec![8],
            mlp_hidden: vec![16, 8],
            dropout: 0.1,
            pretrain_epochs: 3,
            train_epochs: 8,
            mc_passes: 20,
            seed,
        }
    }

    fn periodic_series(n: usize) -> Vec<SeriesPoint> {
        (0..n)
            .map(|t| {
                let v = 10.0 + 6.0 * (std::f64::consts::TAU * t as f64 / 16.0).sin();
                SeriesPoint::new(v.max(0.0), t as u64, TriggerKind::Http)
            })
            .collect()
    }

    #[test]
    fn beats_naive_on_periodic_load() {
        let series = periodic_series(320);
        let mut model = HybridBayesian::new(tiny_config(11));
        model.fit(&series[..260]);
        let mut naive = NaiveLast::new();
        let mut err_h = 0.0;
        let mut err_n = 0.0;
        for t in 260..319 {
            let f = model.forecast(&series[..t]);
            err_h += (f.mean - series[t].count).abs();
            err_n += (naive.forecast(&series[..t]).mean - series[t].count).abs();
        }
        assert!(err_h < err_n, "hybrid {err_h} vs naive {err_n}");
    }

    #[test]
    fn uncertainty_is_positive_with_dropout() {
        let series = periodic_series(200);
        let mut model = HybridBayesian::new(tiny_config(12));
        model.fit(&series[..150]);
        let f = model.forecast(&series[..150]);
        assert!(f.std > 0.0, "MC dropout must yield nonzero predictive std");
        assert!(f.mean >= 0.0);
    }

    #[test]
    fn paper_scale_config_has_paper_widths() {
        let cfg = HybridConfig::paper_scale();
        assert_eq!(cfg.enc_hidden, vec![64, 64]);
        assert_eq!(cfg.dec_hidden, vec![16, 16]);
    }

    #[test]
    #[should_panic(expected = "shorter than window")]
    fn fit_checks_length() {
        let mut model = HybridBayesian::new(tiny_config(13));
        model.fit(&periodic_series(10));
    }
}
