//! IceBreaker's Fourier-transformation prediction model.
//!
//! IceBreaker (ASPLOS'22) models a function's invocation history with a
//! Fourier decomposition: transform the history, keep the dominant
//! harmonics, and extrapolate the truncated series one step ahead. The
//! paper uses it as the strongest prior cold-start baseline (Figs. 9–10).

use crate::point::{counts, Forecast, SeriesPoint};
use crate::Predictor;

/// Fourier extrapolation with the `k` largest-amplitude harmonics.
///
/// # Examples
///
/// ```
/// use aqua_forecast::{FourierPredictor, Predictor, SeriesPoint, TriggerKind};
///
/// let series: Vec<SeriesPoint> = (0..128)
///     .map(|i| SeriesPoint::new(10.0 + 5.0 * ((i as f64) * 0.3).sin(), i, TriggerKind::Http))
///     .collect();
/// let mut m = FourierPredictor::new(8, 128);
/// m.fit(&series);
/// let f = m.forecast(&series);
/// assert!(f.mean >= 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FourierPredictor {
    harmonics: usize,
    window: usize,
    residual_std: f64,
}

/// Discrete Fourier transform (naive O(n²); windows are ≤ a few hundred).
fn dft(xs: &[f64]) -> Vec<(f64, f64)> {
    let n = xs.len();
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut re = 0.0;
        let mut im = 0.0;
        for (t, &x) in xs.iter().enumerate() {
            let ang = -std::f64::consts::TAU * k as f64 * t as f64 / n as f64;
            re += x * ang.cos();
            im += x * ang.sin();
        }
        out.push((re, im));
    }
    out
}

impl FourierPredictor {
    /// Creates the model using the top `harmonics` frequencies over a
    /// rolling window of `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `harmonics == 0` or `window < 4`.
    pub fn new(harmonics: usize, window: usize) -> Self {
        assert!(harmonics > 0, "need at least one harmonic");
        assert!(window >= 4, "window too small");
        FourierPredictor {
            harmonics,
            window,
            residual_std: 0.0,
        }
    }

    /// Reconstructs the truncated Fourier series at (possibly fractional)
    /// position `t` within a window of length `n`.
    fn extrapolate(&self, xs: &[f64], t: f64) -> f64 {
        let n = xs.len();
        let spectrum = dft(xs);
        // Rank frequency bins by amplitude, skipping conjugate duplicates.
        let half = n / 2;
        let mut bins: Vec<usize> = (0..=half).collect();
        bins.sort_by(|&a, &b| {
            let amp = |k: usize| {
                let (re, im) = spectrum[k];
                (re * re + im * im).sqrt()
            };
            amp(b).partial_cmp(&amp(a)).expect("finite amplitude")
        });
        let mut value = 0.0;
        for &k in bins.iter().take(self.harmonics) {
            let (re, im) = spectrum[k];
            let ang = std::f64::consts::TAU * k as f64 * t / n as f64;
            // Real-signal inverse with conjugate symmetry folded in.
            let scale = if k == 0 || (n.is_multiple_of(2) && k == half) {
                1.0
            } else {
                2.0
            };
            value += scale * (re * ang.cos() - im * ang.sin()) / n as f64;
        }
        value
    }

    fn tail<'a>(&self, xs: &'a [f64]) -> &'a [f64] {
        if xs.len() > self.window {
            &xs[xs.len() - self.window..]
        } else {
            xs
        }
    }
}

impl Predictor for FourierPredictor {
    fn name(&self) -> &'static str {
        "IceBreaker-Fourier"
    }

    fn fit(&mut self, train: &[SeriesPoint]) {
        // Estimate the one-step residual spread over the training series.
        let xs = counts(train);
        if xs.len() < 8 {
            self.residual_std = 0.0;
            return;
        }
        let mut sse = 0.0;
        let mut n = 0;
        let start = xs.len() / 2;
        for t in start..xs.len() {
            let hist = self.tail(&xs[..t]);
            let pred = self.extrapolate(hist, hist.len() as f64);
            sse += (pred - xs[t]).powi(2);
            n += 1;
        }
        self.residual_std = (sse / n.max(1) as f64).sqrt();
    }

    fn forecast(&mut self, history: &[SeriesPoint]) -> Forecast {
        let xs = counts(history);
        assert!(xs.len() >= 4, "Fourier model needs at least 4 windows");
        let hist = self.tail(&xs);
        let mean = self.extrapolate(hist, hist.len() as f64).max(0.0);
        Forecast {
            mean,
            std: self.residual_std,
        }
    }

    fn min_history(&self) -> usize {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::TriggerKind;

    fn pts(xs: &[f64]) -> Vec<SeriesPoint> {
        xs.iter()
            .enumerate()
            .map(|(i, &x)| SeriesPoint::new(x, i as u64, TriggerKind::Http))
            .collect()
    }

    #[test]
    fn dft_of_constant_is_dc_only() {
        let spec = dft(&[3.0; 8]);
        assert!((spec[0].0 - 24.0).abs() < 1e-9);
        for (re, im) in &spec[1..] {
            assert!(re.abs() < 1e-9 && im.abs() < 1e-9);
        }
    }

    #[test]
    fn reconstructs_pure_cosine() {
        let n = 64;
        let xs: Vec<f64> = (0..n)
            .map(|t| 5.0 + 2.0 * (std::f64::consts::TAU * 4.0 * t as f64 / n as f64).cos())
            .collect();
        let m = FourierPredictor::new(3, n);
        // In-window reconstruction at integer points matches the signal.
        for t in [0usize, 7, 31] {
            let v = m.extrapolate(&xs, t as f64);
            assert!((v - xs[t]).abs() < 1e-6, "t={t}: {v} vs {}", xs[t]);
        }
        // Extrapolation continues the period (t = n maps onto t = 0).
        let next = m.extrapolate(&xs, n as f64);
        assert!((next - xs[0]).abs() < 1e-6);
    }

    #[test]
    fn periodic_forecast_beats_naive() {
        let series: Vec<f64> = (0..512)
            .map(|t| 20.0 + 10.0 * (std::f64::consts::TAU * t as f64 / 32.0).sin())
            .collect();
        let mut m = FourierPredictor::new(6, 128);
        m.fit(&pts(&series[..384]));
        let mut err_f = 0.0;
        let mut err_naive = 0.0;
        for t in 384..511 {
            let f = m.forecast(&pts(&series[..t]));
            err_f += (f.mean - series[t]).abs();
            err_naive += (series[t - 1] - series[t]).abs();
        }
        assert!(err_f < err_naive * 0.6, "fourier {err_f} naive {err_naive}");
    }

    #[test]
    fn clamps_negative() {
        let series: Vec<f64> = (0..64)
            .map(|t| if t % 2 == 0 { 0.0 } else { 0.1 })
            .collect();
        let mut m = FourierPredictor::new(2, 64);
        m.fit(&pts(&series));
        assert!(m.forecast(&pts(&series)).mean >= 0.0);
    }
}
