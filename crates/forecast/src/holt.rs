//! Holt's double exponential smoothing (level + trend).
//!
//! Not part of the paper's Table 1 but a standard extension baseline the
//! paper's §4.2 mentions among "classic timeseries prediction models".

use crate::point::{counts, Forecast, SeriesPoint};
use crate::Predictor;

/// Double exponential smoothing with level-smoothing `alpha` and
/// trend-smoothing `beta`.
///
/// # Examples
///
/// ```
/// use aqua_forecast::{HoltWinters, Predictor, SeriesPoint, TriggerKind};
///
/// let series: Vec<SeriesPoint> = (0..50)
///     .map(|i| SeriesPoint::new(2.0 * i as f64, i, TriggerKind::Http))
///     .collect();
/// let mut m = HoltWinters::new(0.5, 0.3);
/// m.fit(&series);
/// let f = m.forecast(&series);
/// assert!((f.mean - 100.0).abs() < 3.0); // follows the trend
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoltWinters {
    alpha: f64,
    beta: f64,
    residual_std: f64,
}

impl HoltWinters {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics unless both smoothing factors are in `(0, 1]`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha) && alpha > 0.0,
            "alpha in (0,1]"
        );
        assert!((0.0..=1.0).contains(&beta) && beta > 0.0, "beta in (0,1]");
        HoltWinters {
            alpha,
            beta,
            residual_std: 0.0,
        }
    }

    fn run(&self, series: &[f64]) -> (f64, f64, f64) {
        // Returns (level, trend, residual std) after smoothing the series.
        let mut level = series[0];
        let mut trend = if series.len() > 1 {
            series[1] - series[0]
        } else {
            0.0
        };
        let mut sse = 0.0;
        let mut n = 0usize;
        for &x in &series[1..] {
            let pred = level + trend;
            sse += (x - pred).powi(2);
            n += 1;
            let new_level = self.alpha * x + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (new_level - level) + (1.0 - self.beta) * trend;
            level = new_level;
        }
        (level, trend, (sse / n.max(1) as f64).sqrt())
    }
}

impl Predictor for HoltWinters {
    fn name(&self) -> &'static str {
        "HoltWinters"
    }

    fn fit(&mut self, train: &[SeriesPoint]) {
        assert!(!train.is_empty(), "empty training series");
        let (_, _, std) = self.run(&counts(train));
        self.residual_std = std;
    }

    fn forecast(&mut self, history: &[SeriesPoint]) -> Forecast {
        assert!(!history.is_empty(), "empty history");
        let (level, trend, _) = self.run(&counts(history));
        Forecast {
            mean: (level + trend).max(0.0),
            std: self.residual_std,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::TriggerKind;

    fn pts(xs: &[f64]) -> Vec<SeriesPoint> {
        xs.iter()
            .enumerate()
            .map(|(i, &x)| SeriesPoint::new(x, i as u64, TriggerKind::Http))
            .collect()
    }

    #[test]
    fn constant_series_is_reproduced() {
        let mut m = HoltWinters::new(0.5, 0.2);
        let series = pts(&[4.0; 30]);
        m.fit(&series);
        let f = m.forecast(&series);
        assert!((f.mean - 4.0).abs() < 1e-9);
        assert!(f.std < 1e-9);
    }

    #[test]
    fn tracks_trend() {
        let series: Vec<f64> = (0..60).map(|i| 1.5 * i as f64).collect();
        let mut m = HoltWinters::new(0.6, 0.4);
        let p = pts(&series);
        m.fit(&p);
        let f = m.forecast(&p);
        assert!((f.mean - 90.0).abs() < 2.0, "forecast {}", f.mean);
    }

    #[test]
    fn clamps_negative_extrapolation() {
        let series: Vec<f64> = (0..40).map(|i| (40 - i) as f64 * 0.1).collect();
        let mut m = HoltWinters::new(0.9, 0.9);
        let p = pts(&series);
        m.fit(&p);
        assert!(m.forecast(&p).mean >= 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_zero_alpha() {
        let _ = HoltWinters::new(0.0, 0.5);
    }
}
