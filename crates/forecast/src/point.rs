//! Series points, external features, and forecast values.

/// The trigger type of a serverless function — one of the external features
/// the paper feeds into the hybrid model (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TriggerKind {
    /// HTTP / API-gateway triggered.
    #[default]
    Http,
    /// Object-storage event.
    ObjectStorage,
    /// Event-hub / message-queue.
    EventHub,
    /// Timer / cron.
    Timer,
}

impl TriggerKind {
    /// One-hot encoding, stable order.
    pub fn one_hot(self) -> [f64; 4] {
        match self {
            TriggerKind::Http => [1.0, 0.0, 0.0, 0.0],
            TriggerKind::ObjectStorage => [0.0, 1.0, 0.0, 0.0],
            TriggerKind::EventHub => [0.0, 0.0, 1.0, 0.0],
            TriggerKind::Timer => [0.0, 0.0, 0.0, 1.0],
        }
    }
}

/// One observation window of an invocation series: the number of active
/// containers in that window plus the external features of the *next*
/// window (time of day / week, trigger type).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Containers active / invocations observed in this window.
    pub count: f64,
    /// Index of this window (minutes since trace start).
    pub minute: u64,
    /// Trigger type of the workflow this series belongs to.
    pub trigger: TriggerKind,
}

impl SeriesPoint {
    /// Creates a point.
    pub fn new(count: f64, minute: u64, trigger: TriggerKind) -> Self {
        SeriesPoint {
            count,
            minute,
            trigger,
        }
    }

    /// Minute within the (simulated) day, assuming 1-minute windows.
    pub fn minute_of_day(&self) -> u64 {
        self.minute % (24 * 60)
    }

    /// Day within the (simulated) week.
    pub fn day_of_week(&self) -> u64 {
        (self.minute / (24 * 60)) % 7
    }

    /// The external feature vector `L` of the paper: cyclic encodings of
    /// time-of-day, time-of-week, and minute-of-hour (timer-triggered
    /// functions fire at fixed sub-hourly phases in the Azure dataset),
    /// plus the trigger one-hot (10 dims).
    pub fn external_features(&self) -> Vec<f64> {
        let day_frac = self.minute_of_day() as f64 / (24.0 * 60.0);
        let week_frac = (self.minute % (7 * 24 * 60)) as f64 / (7.0 * 24.0 * 60.0);
        let hour_frac = (self.minute % 60) as f64 / 60.0;
        let tau = std::f64::consts::TAU;
        let mut v = vec![
            (tau * day_frac).sin(),
            (tau * day_frac).cos(),
            (tau * week_frac).sin(),
            (tau * week_frac).cos(),
        ];
        v.extend_from_slice(&self.trigger.one_hot());
        v.push((tau * hour_frac).sin());
        v.push((tau * hour_frac).cos());
        v
    }
}

/// Width of [`SeriesPoint::external_features`].
pub const EXTERNAL_FEATURE_DIM: usize = 10;

/// A probabilistic next-window forecast.
///
/// Deterministic models report `std = 0`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Forecast {
    /// Predictive mean container count (may be fractional; consumers round).
    pub mean: f64,
    /// Predictive standard deviation (epistemic + aleatoric, model-defined).
    pub std: f64,
}

impl Forecast {
    /// A point forecast with zero uncertainty.
    pub fn point(mean: f64) -> Self {
        Forecast { mean, std: 0.0 }
    }

    /// Upper confidence bound `mean + z·std`, floored at zero.
    pub fn ucb(&self, z: f64) -> f64 {
        (self.mean + z * self.std).max(0.0)
    }
}

/// Extracts the raw count series from points.
pub fn counts(points: &[SeriesPoint]) -> Vec<f64> {
    points.iter().map(|p| p.count).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_is_exclusive() {
        for t in [
            TriggerKind::Http,
            TriggerKind::ObjectStorage,
            TriggerKind::EventHub,
            TriggerKind::Timer,
        ] {
            let v = t.one_hot();
            assert_eq!(v.iter().sum::<f64>(), 1.0);
        }
    }

    #[test]
    fn cyclic_features_wrap_daily() {
        let a = SeriesPoint::new(1.0, 10, TriggerKind::Http);
        let b = SeriesPoint::new(1.0, 10 + 24 * 60 * 7, TriggerKind::Http);
        // Same phase a whole week later.
        let fa = a.external_features();
        let fb = b.external_features();
        for (x, y) in fa.iter().zip(&fb) {
            assert!((x - y).abs() < 1e-9);
        }
        assert_eq!(fa.len(), EXTERNAL_FEATURE_DIM);
    }

    #[test]
    fn day_of_week_advances() {
        let p = SeriesPoint::new(0.0, 3 * 24 * 60 + 5, TriggerKind::Timer);
        assert_eq!(p.day_of_week(), 3);
        assert_eq!(p.minute_of_day(), 5);
    }

    #[test]
    fn ucb_floors_at_zero() {
        let f = Forecast {
            mean: 1.0,
            std: 2.0,
        };
        assert_eq!(f.ucb(-10.0), 0.0);
        assert!((f.ucb(1.0) - 3.0).abs() < 1e-12);
    }
}
