//! Online invariant checking over the event stream.
//!
//! [`InvariantChecker`] is an [`EventSink`] that replays the simulator's
//! accounting from events alone and records a violation whenever the
//! stream is inconsistent with the simulator's contracts:
//!
//! 1. **Container conservation per worker** — a container id is booted at
//!    most once, lives on exactly one worker, is evicted at most once,
//!    and is never used after eviction.
//! 2. **No memory oversubscription** — the memory reserved by live
//!    containers on a worker never exceeds the worker's capacity from the
//!    cluster spec.
//! 3. **Monotone event time** — timestamps never decrease along the
//!    stream (QoS-violation events are exempt: they are synthesized from
//!    the run report after the event loop ends).
//! 4. **Warm-hit ⇔ no cold-start accounting** — a warm hit lands only on
//!    a container whose boot already completed, boot completion happens
//!    exactly once per boot, and tasks that attach to a boot begin
//!    executing exactly at the boot-completion instant (a cold-start
//!    charge for a container that was already warm is a bug).
//!
//! Violations are collected, not panicked, so a test can assert on the
//! whole run via [`InvariantChecker::assert_ok`].

use std::collections::HashMap;

use aqua_sim::SimTime;

use crate::event::SimEvent;
use crate::sink::EventSink;

/// Tolerance for floating-point memory accounting, in MB.
const MEM_EPS: f64 = 1e-6;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ContainerPhase {
    Booting,
    Warm,
    Evicted,
}

#[derive(Debug, Clone)]
struct ContainerState {
    worker: usize,
    memory_mb: f64,
    slots: u32,
    busy: u32,
    phase: ContainerPhase,
    boot_done_at: Option<SimTime>,
}

/// The online checker; see the module docs for the invariants enforced.
#[derive(Debug, Clone)]
pub struct InvariantChecker {
    workers: usize,
    memory_mb_per_worker: f64,
    /// Reserved memory per worker, rebuilt from boot/evict events.
    reserved_mb: Vec<f64>,
    containers: HashMap<u64, ContainerState>,
    last_time: SimTime,
    events_seen: u64,
    violations: Vec<String>,
}

impl InvariantChecker {
    /// A checker for a cluster of `workers` workers with
    /// `memory_mb_per_worker` MB each (the `ClusterSpec` the run used).
    pub fn new(workers: usize, memory_mb_per_worker: f64) -> Self {
        InvariantChecker {
            workers,
            memory_mb_per_worker,
            reserved_mb: vec![0.0; workers],
            containers: HashMap::new(),
            last_time: SimTime::ZERO,
            events_seen: 0,
            violations: Vec::new(),
        }
    }

    /// All violations observed so far, in stream order.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// True when no invariant has been violated.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of events checked.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Panics with every recorded violation if any invariant failed.
    pub fn assert_ok(&self) {
        assert!(
            self.violations.is_empty(),
            "{} invariant violation(s) over {} events:\n{}",
            self.violations.len(),
            self.events_seen,
            self.violations.join("\n")
        );
    }

    fn violate(&mut self, at: SimTime, message: String) {
        self.violations.push(format!("[{at}] {message}"));
    }

    fn check_monotone(&mut self, event: &SimEvent) {
        // QoS violations are synthesized post-run from the report, stamped
        // with each workflow's finish time, so they may step backwards.
        if matches!(event, SimEvent::QosViolation { .. }) {
            return;
        }
        let at = event.at();
        if at < self.last_time {
            self.violate(
                at,
                format!("time moved backwards: {at} after {}", self.last_time),
            );
        } else {
            self.last_time = at;
        }
    }

    fn on_boot_begin(
        &mut self,
        at: SimTime,
        container: u64,
        worker: usize,
        memory_mb: f64,
        slots: u32,
    ) {
        if self.containers.contains_key(&container) {
            self.violate(at, format!("container {container} booted twice"));
            return;
        }
        if worker >= self.workers {
            self.violate(
                at,
                format!("container {container} booted on unknown worker {worker}"),
            );
            return;
        }
        self.reserved_mb[worker] += memory_mb;
        if self.reserved_mb[worker] > self.memory_mb_per_worker + MEM_EPS {
            self.violate(
                at,
                format!(
                    "worker {worker} oversubscribed: {:.1} MB reserved of {:.1} MB",
                    self.reserved_mb[worker], self.memory_mb_per_worker
                ),
            );
        }
        self.containers.insert(
            container,
            ContainerState {
                worker,
                memory_mb,
                slots: slots.max(1),
                busy: 0,
                phase: ContainerPhase::Booting,
                boot_done_at: None,
            },
        );
    }

    fn on_boot_end(&mut self, at: SimTime, container: u64, worker: usize, tasks: u32) {
        let mut msgs: Vec<String> = Vec::new();
        match self.containers.get_mut(&container) {
            None => msgs.push(format!("boot completed for unknown container {container}")),
            Some(state) if state.phase != ContainerPhase::Booting => {
                let phase = state.phase;
                msgs.push(format!(
                    "boot completed for container {container} in phase {phase:?}"
                ));
            }
            Some(state) => {
                if state.worker != worker {
                    let expect = state.worker;
                    msgs.push(format!(
                        "container {container} completed boot on worker {worker}, booted on {expect}"
                    ));
                }
                state.phase = ContainerPhase::Warm;
                state.boot_done_at = Some(at);
                state.busy = state.busy.saturating_add(tasks);
                if state.busy > state.slots {
                    let (busy, slots) = (state.busy, state.slots);
                    msgs.push(format!(
                        "container {container} over-committed at boot: {busy} tasks for {slots} slots"
                    ));
                }
            }
        }
        for m in msgs {
            self.violate(at, m);
        }
    }

    fn on_warm_hit(&mut self, at: SimTime, container: u64) {
        let mut msgs: Vec<String> = Vec::new();
        match self.containers.get_mut(&container) {
            None => msgs.push(format!("warm hit on unknown container {container}")),
            Some(state) => match state.phase {
                // Serving before boot completion would mean the hit dodged
                // cold-start accounting.
                ContainerPhase::Booting => {
                    msgs.push(format!(
                        "warm hit on container {container} that is still booting"
                    ));
                }
                ContainerPhase::Evicted => {
                    msgs.push(format!("warm hit on evicted container {container}"));
                }
                ContainerPhase::Warm => {
                    state.busy += 1;
                    if state.busy > state.slots {
                        let (busy, slots) = (state.busy, state.slots);
                        msgs.push(format!(
                            "container {container} over-committed: {busy} tasks for {slots} slots"
                        ));
                    }
                }
            },
        }
        for m in msgs {
            self.violate(at, m);
        }
    }

    fn on_task_complete(&mut self, at: SimTime, container: u64) {
        let mut msgs: Vec<String> = Vec::new();
        match self.containers.get_mut(&container) {
            None => msgs.push(format!("task completed on unknown container {container}")),
            Some(state) => {
                if state.phase != ContainerPhase::Warm {
                    let phase = state.phase;
                    msgs.push(format!(
                        "task completed on container {container} in phase {phase:?}"
                    ));
                }
                if state.busy == 0 {
                    msgs.push(format!(
                        "task completed on idle container {container} (slot underflow)"
                    ));
                } else {
                    state.busy -= 1;
                }
            }
        }
        for m in msgs {
            self.violate(at, m);
        }
    }

    fn on_eviction(&mut self, at: SimTime, container: u64, worker: usize, memory_mb: f64) {
        let mut msgs: Vec<String> = Vec::new();
        // `Some((worker, memory))` when the container's reservation must be
        // released from its worker after the state borrow ends.
        let mut release: Option<(usize, f64)> = None;
        match self.containers.get_mut(&container) {
            None => msgs.push(format!("eviction of unknown container {container}")),
            Some(state) if state.phase == ContainerPhase::Evicted => {
                msgs.push(format!("container {container} evicted twice"));
            }
            Some(state) => {
                if state.phase == ContainerPhase::Booting {
                    msgs.push(format!("container {container} evicted while booting"));
                }
                if state.busy > 0 {
                    let busy = state.busy;
                    msgs.push(format!(
                        "container {container} evicted with {busy} task(s) running"
                    ));
                }
                if state.worker != worker {
                    let expect = state.worker;
                    msgs.push(format!(
                        "container {container} evicted from worker {worker}, lives on {expect}"
                    ));
                }
                if (state.memory_mb - memory_mb).abs() > MEM_EPS {
                    let expect = state.memory_mb;
                    msgs.push(format!(
                        "container {container} eviction released {memory_mb} MB, reserved {expect} MB"
                    ));
                }
                state.phase = ContainerPhase::Evicted;
                release = Some((state.worker, state.memory_mb));
            }
        }
        if let Some((w, mem)) = release {
            if w < self.workers {
                self.reserved_mb[w] -= mem;
                if self.reserved_mb[w] < -MEM_EPS {
                    msgs.push(format!("worker {w} released more memory than it reserved"));
                }
            }
        }
        for m in msgs {
            self.violate(at, m);
        }
    }
}

impl EventSink for InvariantChecker {
    fn record(&mut self, event: &SimEvent) {
        self.events_seen += 1;
        self.check_monotone(event);
        match *event {
            SimEvent::ColdStartBegin {
                at,
                container,
                worker,
                memory_mb,
                slots,
                ..
            } => {
                self.on_boot_begin(at, container, worker, memory_mb, slots);
            }
            SimEvent::ColdStartEnd {
                at,
                container,
                worker,
                tasks_attached,
                ..
            } => {
                self.on_boot_end(at, container, worker, tasks_attached);
            }
            SimEvent::WarmHit { at, container, .. } => self.on_warm_hit(at, container),
            SimEvent::TaskComplete { at, container, .. } => {
                self.on_task_complete(at, container);
            }
            SimEvent::Eviction {
                at,
                container,
                worker,
                memory_mb,
                ..
            } => {
                self.on_eviction(at, container, worker, memory_mb);
            }
            SimEvent::PoolResize {
                at, predicted_std, ..
            } => {
                if predicted_std < 0.0 {
                    self.violate(at, "pool resize with negative uncertainty".to_string());
                }
            }
            SimEvent::StageDispatch { .. }
            | SimEvent::StageQueued { .. }
            | SimEvent::StageComplete { .. }
            | SimEvent::BoIteration { .. }
            | SimEvent::QosViolation { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EvictionReason;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn boot_begin(at: u64, container: u64, worker: usize, mb: f64) -> SimEvent {
        SimEvent::ColdStartBegin {
            at: t(at),
            function: 0,
            container,
            worker,
            memory_mb: mb,
            slots: 1,
            prewarmed: false,
        }
    }

    fn boot_end(at: u64, container: u64, worker: usize, tasks: u32) -> SimEvent {
        SimEvent::ColdStartEnd {
            at: t(at),
            function: 0,
            container,
            worker,
            tasks_attached: tasks,
        }
    }

    fn evict(at: u64, container: u64, worker: usize, mb: f64) -> SimEvent {
        SimEvent::Eviction {
            at: t(at),
            function: 0,
            container,
            worker,
            memory_mb: mb,
            reason: EvictionReason::KeepAlive,
        }
    }

    #[test]
    fn clean_lifecycle_passes() {
        let mut c = InvariantChecker::new(2, 1024.0);
        c.record(&boot_begin(1, 1, 0, 512.0));
        c.record(&boot_end(2, 1, 0, 1));
        c.record(&SimEvent::TaskComplete {
            at: t(3),
            workflow: 0,
            instance: 0,
            stage: 0,
            container: 1,
        });
        c.record(&SimEvent::WarmHit {
            at: t(4),
            function: 0,
            container: 1,
        });
        c.record(&SimEvent::TaskComplete {
            at: t(5),
            workflow: 0,
            instance: 0,
            stage: 0,
            container: 1,
        });
        c.record(&evict(700, 1, 0, 512.0));
        c.assert_ok();
        assert_eq!(c.events_seen(), 6);
    }

    #[test]
    fn detects_time_regression() {
        let mut c = InvariantChecker::new(1, 1024.0);
        c.record(&boot_begin(5, 1, 0, 100.0));
        c.record(&boot_end(3, 1, 0, 0));
        assert!(!c.is_ok());
        assert!(
            c.violations()[0].contains("time moved backwards"),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn qos_violation_is_exempt_from_monotonicity() {
        let mut c = InvariantChecker::new(1, 1024.0);
        c.record(&boot_begin(5, 1, 0, 100.0));
        c.record(&SimEvent::QosViolation {
            at: t(2),
            workflow: 0,
            instance: 0,
            latency_secs: 9.0,
            qos_secs: 1.0,
        });
        c.assert_ok();
    }

    #[test]
    fn detects_oversubscription() {
        let mut c = InvariantChecker::new(1, 1000.0);
        c.record(&boot_begin(1, 1, 0, 600.0));
        c.record(&boot_begin(2, 2, 0, 600.0));
        assert!(!c.is_ok());
        assert!(
            c.violations()[0].contains("oversubscribed"),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn detects_double_boot_and_double_evict() {
        let mut c = InvariantChecker::new(1, 4096.0);
        c.record(&boot_begin(1, 7, 0, 100.0));
        c.record(&boot_begin(2, 7, 0, 100.0));
        c.record(&boot_end(3, 7, 0, 0));
        c.record(&evict(4, 7, 0, 100.0));
        c.record(&evict(5, 7, 0, 100.0));
        let v = c.violations();
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("booted twice"));
        assert!(v[1].contains("evicted twice"));
    }

    #[test]
    fn warm_hit_on_booting_container_is_cold_start_evasion() {
        let mut c = InvariantChecker::new(1, 4096.0);
        c.record(&boot_begin(1, 3, 0, 100.0));
        c.record(&SimEvent::WarmHit {
            at: t(1),
            function: 0,
            container: 3,
        });
        assert!(!c.is_ok());
        assert!(
            c.violations()[0].contains("still booting"),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn detects_use_after_eviction() {
        let mut c = InvariantChecker::new(1, 4096.0);
        c.record(&boot_begin(1, 3, 0, 100.0));
        c.record(&boot_end(2, 3, 0, 0));
        c.record(&evict(3, 3, 0, 100.0));
        c.record(&SimEvent::WarmHit {
            at: t(4),
            function: 0,
            container: 3,
        });
        assert!(!c.is_ok());
        assert!(
            c.violations()[0].contains("evicted container"),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn detects_slot_overcommit() {
        let mut c = InvariantChecker::new(1, 4096.0);
        c.record(&boot_begin(1, 3, 0, 100.0));
        c.record(&boot_end(2, 3, 0, 1));
        c.record(&SimEvent::WarmHit {
            at: t(3),
            function: 0,
            container: 3,
        });
        assert!(!c.is_ok());
        assert!(
            c.violations()[0].contains("over-committed"),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn detects_eviction_of_busy_container() {
        let mut c = InvariantChecker::new(1, 4096.0);
        c.record(&boot_begin(1, 3, 0, 100.0));
        c.record(&boot_end(2, 3, 0, 1));
        c.record(&evict(3, 3, 0, 100.0));
        assert!(!c.is_ok());
        assert!(
            c.violations()[0].contains("task(s) running"),
            "{:?}",
            c.violations()
        );
    }
}
