//! Online invariant checking over the event stream.
//!
//! [`InvariantChecker`] is an [`EventSink`] that replays the simulator's
//! accounting from events alone and records a violation whenever the
//! stream is inconsistent with the simulator's contracts:
//!
//! 1. **Container conservation per worker** — a container id is booted at
//!    most once, lives on exactly one worker, is evicted at most once,
//!    and is never used after eviction.
//! 2. **No memory oversubscription** — the memory reserved by live
//!    containers on a worker never exceeds the worker's capacity from the
//!    cluster spec.
//! 3. **Monotone event time** — timestamps never decrease along the
//!    stream (QoS-violation events are exempt: they are synthesized from
//!    the run report after the event loop ends).
//! 4. **Warm-hit ⇔ no cold-start accounting** — a warm hit lands only on
//!    a container whose boot already completed, boot completion happens
//!    exactly once per boot, and tasks that attach to a boot begin
//!    executing exactly at the boot-completion instant (a cold-start
//!    charge for a container that was already warm is a bug).
//! 5. **Fault discipline** — a fault-reason eviction must be preceded by
//!    a `FaultInjected` event for that container (and only then may it
//!    take a booting or busy container); a killed container never serves
//!    a later invocation; every retry references a prior failure (a fault
//!    on its function or a timeout on its stage); and per stage the
//!    attempt ledger balances: completions plus timeouts never exceed
//!    dispatched tasks plus retries, and a `StageComplete` requires
//!    exactly `tasks` completions.
//! 6. **Tenant ledger** — a workflow instance is tenant-admitted at most
//!    once, a `TenantComplete` refers to a previously admitted instance
//!    (with the same tenant and workflow that admitted it), no instance
//!    completes twice, and completion latencies are finite and
//!    non-negative.
//!
//! Violations are collected, not panicked, so a test can assert on the
//! whole run via [`InvariantChecker::assert_ok`].

use std::collections::HashMap;

use aqua_sim::SimTime;

use crate::event::{EvictionReason, FaultKind, SimEvent};
use crate::sink::EventSink;

/// Tolerance for floating-point memory accounting, in MB.
const MEM_EPS: f64 = 1e-6;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ContainerPhase {
    Booting,
    Warm,
    Evicted,
}

#[derive(Debug, Clone)]
struct ContainerState {
    worker: usize,
    memory_mb: f64,
    slots: u32,
    busy: u32,
    phase: ContainerPhase,
    boot_done_at: Option<SimTime>,
    /// A boot-fail or crash fault was injected on this container; its
    /// fault-reason eviction may legally interrupt a boot or in-flight
    /// tasks.
    faulted: bool,
}

/// Attempt ledger for one `(workflow, instance, stage)`.
#[derive(Debug, Clone, Default)]
struct StageTally {
    /// Parallel tasks dispatched for the stage.
    tasks: u32,
    /// Task completions observed.
    completes: u32,
    /// Retries scheduled for the stage's tasks.
    retries: u32,
    /// Attempts cancelled by the per-stage timeout.
    timeouts: u32,
}

/// The online checker; see the module docs for the invariants enforced.
#[derive(Debug, Clone)]
pub struct InvariantChecker {
    workers: usize,
    memory_mb_per_worker: f64,
    /// Reserved memory per worker, rebuilt from boot/evict events.
    reserved_mb: Vec<f64>,
    containers: HashMap<u64, ContainerState>,
    /// Attempt ledgers keyed by `(workflow, instance, stage)`.
    stages: HashMap<(usize, usize, usize), StageTally>,
    /// Boot-fail/crash fault count per function id — retries draw their
    /// legitimacy from here or from a timeout on their own stage.
    fn_faults: HashMap<usize, u32>,
    /// Tenant-admission ledger keyed by instance id: who admitted the
    /// instance (`tenant`, `workflow`) and whether it already completed.
    tenant_admits: HashMap<u64, (usize, usize, bool)>,
    last_time: SimTime,
    events_seen: u64,
    violations: Vec<String>,
}

impl InvariantChecker {
    /// A checker for a cluster of `workers` workers with
    /// `memory_mb_per_worker` MB each (the `ClusterSpec` the run used).
    pub fn new(workers: usize, memory_mb_per_worker: f64) -> Self {
        InvariantChecker {
            workers,
            memory_mb_per_worker,
            reserved_mb: vec![0.0; workers],
            containers: HashMap::new(),
            stages: HashMap::new(),
            fn_faults: HashMap::new(),
            tenant_admits: HashMap::new(),
            last_time: SimTime::ZERO,
            events_seen: 0,
            violations: Vec::new(),
        }
    }

    /// All violations observed so far, in stream order.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// True when no invariant has been violated.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of events checked.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Panics with every recorded violation if any invariant failed.
    pub fn assert_ok(&self) {
        assert!(
            self.violations.is_empty(),
            "{} invariant violation(s) over {} events:\n{}",
            self.violations.len(),
            self.events_seen,
            self.violations.join("\n")
        );
    }

    fn violate(&mut self, at: SimTime, message: String) {
        self.violations.push(format!("[{at}] {message}"));
    }

    fn check_monotone(&mut self, event: &SimEvent) {
        // QoS violations are synthesized post-run from the report, stamped
        // with each workflow's finish time, so they may step backwards.
        if matches!(event, SimEvent::QosViolation { .. }) {
            return;
        }
        let at = event.at();
        if at < self.last_time {
            self.violate(
                at,
                format!("time moved backwards: {at} after {}", self.last_time),
            );
        } else {
            self.last_time = at;
        }
    }

    fn on_boot_begin(
        &mut self,
        at: SimTime,
        container: u64,
        worker: usize,
        memory_mb: f64,
        slots: u32,
    ) {
        if self.containers.contains_key(&container) {
            self.violate(at, format!("container {container} booted twice"));
            return;
        }
        if worker >= self.workers {
            self.violate(
                at,
                format!("container {container} booted on unknown worker {worker}"),
            );
            return;
        }
        self.reserved_mb[worker] += memory_mb;
        if self.reserved_mb[worker] > self.memory_mb_per_worker + MEM_EPS {
            self.violate(
                at,
                format!(
                    "worker {worker} oversubscribed: {:.1} MB reserved of {:.1} MB",
                    self.reserved_mb[worker], self.memory_mb_per_worker
                ),
            );
        }
        self.containers.insert(
            container,
            ContainerState {
                worker,
                memory_mb,
                slots: slots.max(1),
                busy: 0,
                phase: ContainerPhase::Booting,
                boot_done_at: None,
                faulted: false,
            },
        );
    }

    fn on_boot_end(&mut self, at: SimTime, container: u64, worker: usize, tasks: u32) {
        let mut msgs: Vec<String> = Vec::new();
        match self.containers.get_mut(&container) {
            None => msgs.push(format!("boot completed for unknown container {container}")),
            Some(state) if state.phase != ContainerPhase::Booting => {
                let phase = state.phase;
                msgs.push(format!(
                    "boot completed for container {container} in phase {phase:?}"
                ));
            }
            Some(state) => {
                if state.worker != worker {
                    let expect = state.worker;
                    msgs.push(format!(
                        "container {container} completed boot on worker {worker}, booted on {expect}"
                    ));
                }
                state.phase = ContainerPhase::Warm;
                state.boot_done_at = Some(at);
                state.busy = state.busy.saturating_add(tasks);
                if state.busy > state.slots {
                    let (busy, slots) = (state.busy, state.slots);
                    msgs.push(format!(
                        "container {container} over-committed at boot: {busy} tasks for {slots} slots"
                    ));
                }
            }
        }
        for m in msgs {
            self.violate(at, m);
        }
    }

    fn on_warm_hit(&mut self, at: SimTime, container: u64) {
        let mut msgs: Vec<String> = Vec::new();
        match self.containers.get_mut(&container) {
            None => msgs.push(format!("warm hit on unknown container {container}")),
            Some(state) => match state.phase {
                // Serving before boot completion would mean the hit dodged
                // cold-start accounting.
                ContainerPhase::Booting => {
                    msgs.push(format!(
                        "warm hit on container {container} that is still booting"
                    ));
                }
                ContainerPhase::Evicted => {
                    msgs.push(format!("warm hit on evicted container {container}"));
                }
                ContainerPhase::Warm => {
                    state.busy += 1;
                    if state.busy > state.slots {
                        let (busy, slots) = (state.busy, state.slots);
                        msgs.push(format!(
                            "container {container} over-committed: {busy} tasks for {slots} slots"
                        ));
                    }
                }
            },
        }
        for m in msgs {
            self.violate(at, m);
        }
    }

    fn on_task_complete(&mut self, at: SimTime, container: u64) {
        let mut msgs: Vec<String> = Vec::new();
        match self.containers.get_mut(&container) {
            None => msgs.push(format!("task completed on unknown container {container}")),
            Some(state) => {
                if state.phase != ContainerPhase::Warm {
                    let phase = state.phase;
                    msgs.push(format!(
                        "task completed on container {container} in phase {phase:?}"
                    ));
                }
                if state.busy == 0 {
                    msgs.push(format!(
                        "task completed on idle container {container} (slot underflow)"
                    ));
                } else {
                    state.busy -= 1;
                }
            }
        }
        for m in msgs {
            self.violate(at, m);
        }
    }

    fn on_eviction(
        &mut self,
        at: SimTime,
        container: u64,
        worker: usize,
        memory_mb: f64,
        reason: EvictionReason,
    ) {
        let mut msgs: Vec<String> = Vec::new();
        // `Some((worker, memory))` when the container's reservation must be
        // released from its worker after the state borrow ends.
        let mut release: Option<(usize, f64)> = None;
        match self.containers.get_mut(&container) {
            None => msgs.push(format!("eviction of unknown container {container}")),
            Some(state) if state.phase == ContainerPhase::Evicted => {
                msgs.push(format!("container {container} evicted twice"));
            }
            Some(state) => {
                // A fault-reason kill may legally take a booting or busy
                // container — but only if a fault was actually injected on
                // it; any other reason keeps the strict checks.
                let fault_kill = reason == EvictionReason::Fault;
                if fault_kill && !state.faulted {
                    msgs.push(format!(
                        "container {container} fault-evicted without a prior fault"
                    ));
                }
                if state.phase == ContainerPhase::Booting && !fault_kill {
                    msgs.push(format!("container {container} evicted while booting"));
                }
                if state.busy > 0 {
                    if fault_kill {
                        // In-flight tasks died with the container.
                        state.busy = 0;
                    } else {
                        let busy = state.busy;
                        msgs.push(format!(
                            "container {container} evicted with {busy} task(s) running"
                        ));
                    }
                }
                if state.worker != worker {
                    let expect = state.worker;
                    msgs.push(format!(
                        "container {container} evicted from worker {worker}, lives on {expect}"
                    ));
                }
                if (state.memory_mb - memory_mb).abs() > MEM_EPS {
                    let expect = state.memory_mb;
                    msgs.push(format!(
                        "container {container} eviction released {memory_mb} MB, reserved {expect} MB"
                    ));
                }
                state.phase = ContainerPhase::Evicted;
                release = Some((state.worker, state.memory_mb));
            }
        }
        if let Some((w, mem)) = release {
            if w < self.workers {
                self.reserved_mb[w] -= mem;
                if self.reserved_mb[w] < -MEM_EPS {
                    msgs.push(format!("worker {w} released more memory than it reserved"));
                }
            }
        }
        for m in msgs {
            self.violate(at, m);
        }
    }

    fn on_fault(
        &mut self,
        at: SimTime,
        kind: FaultKind,
        function: usize,
        container: Option<u64>,
        magnitude: f64,
    ) {
        let mut msgs: Vec<String> = Vec::new();
        match kind {
            FaultKind::BootFail | FaultKind::Crash => {
                *self.fn_faults.entry(function).or_insert(0) += 1;
                match container.and_then(|c| self.containers.get_mut(&c)) {
                    Some(state) => state.faulted = true,
                    None => msgs.push(format!(
                        "{} fault on unknown container {container:?}",
                        kind.as_str()
                    )),
                }
            }
            FaultKind::Straggler => {
                if !magnitude.is_finite() || magnitude < 1.0 {
                    msgs.push(format!("straggler with nonsensical factor {magnitude}"));
                }
            }
            FaultKind::HandoffDelay => {
                if !magnitude.is_finite() || magnitude < 0.0 {
                    msgs.push(format!("handoff delay of {magnitude} s"));
                }
            }
        }
        for m in msgs {
            self.violate(at, m);
        }
    }

    fn on_stage_dispatch(
        &mut self,
        at: SimTime,
        workflow: usize,
        instance: usize,
        stage: usize,
        tasks: u32,
    ) {
        let tally = self.stages.entry((workflow, instance, stage)).or_default();
        if tally.tasks > 0 {
            self.violate(
                at,
                format!("stage {workflow}/{instance}/{stage} dispatched twice"),
            );
        } else {
            tally.tasks = tasks;
        }
    }

    /// Asserts the attempt ledger after a terminal attempt outcome:
    /// attempts end at most once, so completions + timeouts can never
    /// exceed dispatched tasks + retries. Stages with no observed
    /// dispatch (partial streams) are skipped.
    fn check_attempt_ledger(&mut self, at: SimTime, key: (usize, usize, usize)) {
        let t = self.stages.entry(key).or_default().clone();
        if t.tasks == 0 {
            return;
        }
        if t.completes + t.timeouts > t.tasks + t.retries {
            self.violate(
                at,
                format!(
                    "stage {}/{}/{} attempt ledger broken: {} completions + {} timeouts \
                     for {} tasks + {} retries",
                    key.0, key.1, key.2, t.completes, t.timeouts, t.tasks, t.retries
                ),
            );
        }
    }

    fn on_retry(
        &mut self,
        at: SimTime,
        workflow: usize,
        instance: usize,
        stage: usize,
        function: usize,
    ) {
        let had_fault = self.fn_faults.get(&function).copied().unwrap_or(0) > 0;
        let tally = self.stages.entry((workflow, instance, stage)).or_default();
        tally.retries += 1;
        if !had_fault && tally.timeouts == 0 {
            self.violate(
                at,
                format!(
                    "retry on stage {workflow}/{instance}/{stage} without a prior fault \
                     or timeout"
                ),
            );
        }
    }

    fn on_timeout(
        &mut self,
        at: SimTime,
        workflow: usize,
        instance: usize,
        stage: usize,
        container: u64,
    ) {
        let mut msgs: Vec<String> = Vec::new();
        match self.containers.get_mut(&container) {
            None => msgs.push(format!("timeout on unknown container {container}")),
            Some(state) => {
                if state.phase != ContainerPhase::Warm {
                    let phase = state.phase;
                    msgs.push(format!(
                        "timeout on container {container} in phase {phase:?}"
                    ));
                }
                // The timeout frees the attempt's slot without a
                // completion.
                if state.busy == 0 {
                    msgs.push(format!(
                        "timeout on idle container {container} (slot underflow)"
                    ));
                } else {
                    state.busy -= 1;
                }
            }
        }
        for m in msgs {
            self.violate(at, m);
        }
        self.stages
            .entry((workflow, instance, stage))
            .or_default()
            .timeouts += 1;
        self.check_attempt_ledger(at, (workflow, instance, stage));
    }

    fn on_tenant_admit(&mut self, at: SimTime, tenant: usize, workflow: usize, instance: u64) {
        if self
            .tenant_admits
            .insert(instance, (tenant, workflow, false))
            .is_some()
        {
            self.violate(at, format!("instance {instance} tenant-admitted twice"));
        }
    }

    fn on_tenant_complete(
        &mut self,
        at: SimTime,
        tenant: usize,
        workflow: usize,
        instance: u64,
        latency_secs: f64,
    ) {
        let mut msgs: Vec<String> = Vec::new();
        if !latency_secs.is_finite() || latency_secs < 0.0 {
            msgs.push(format!(
                "instance {instance} completed with nonsensical latency {latency_secs}"
            ));
        }
        match self.tenant_admits.get_mut(&instance) {
            None => msgs.push(format!(
                "tenant completion for never-admitted instance {instance}"
            )),
            Some((adm_tenant, adm_wf, done)) => {
                if *adm_tenant != tenant || *adm_wf != workflow {
                    msgs.push(format!(
                        "instance {instance} completed as tenant {tenant}/workflow \
                         {workflow}, admitted as tenant {adm_tenant}/workflow {adm_wf}"
                    ));
                }
                if *done {
                    msgs.push(format!("instance {instance} tenant-completed twice"));
                }
                *done = true;
            }
        }
        for m in msgs {
            self.violate(at, m);
        }
    }

    fn on_stage_complete(&mut self, at: SimTime, workflow: usize, instance: usize, stage: usize) {
        let t = self
            .stages
            .entry((workflow, instance, stage))
            .or_default()
            .clone();
        if t.tasks == 0 {
            return;
        }
        if t.completes != t.tasks {
            self.violate(
                at,
                format!(
                    "stage {workflow}/{instance}/{stage} completed with {} of {} task \
                     completions",
                    t.completes, t.tasks
                ),
            );
        }
    }
}

impl EventSink for InvariantChecker {
    fn record(&mut self, event: &SimEvent) {
        self.events_seen += 1;
        self.check_monotone(event);
        match *event {
            SimEvent::ColdStartBegin {
                at,
                container,
                worker,
                memory_mb,
                slots,
                ..
            } => {
                self.on_boot_begin(at, container, worker, memory_mb, slots);
            }
            SimEvent::ColdStartEnd {
                at,
                container,
                worker,
                tasks_attached,
                ..
            } => {
                self.on_boot_end(at, container, worker, tasks_attached);
            }
            SimEvent::WarmHit { at, container, .. } => self.on_warm_hit(at, container),
            SimEvent::TaskComplete {
                at,
                workflow,
                instance,
                stage,
                container,
            } => {
                self.on_task_complete(at, container);
                self.stages
                    .entry((workflow, instance, stage))
                    .or_default()
                    .completes += 1;
                self.check_attempt_ledger(at, (workflow, instance, stage));
            }
            SimEvent::Eviction {
                at,
                container,
                worker,
                memory_mb,
                reason,
                ..
            } => {
                self.on_eviction(at, container, worker, memory_mb, reason);
            }
            SimEvent::PoolResize {
                at, predicted_std, ..
            } => {
                if predicted_std < 0.0 {
                    self.violate(at, "pool resize with negative uncertainty".to_string());
                }
            }
            SimEvent::FaultInjected {
                at,
                kind_of,
                function,
                container,
                magnitude,
            } => {
                self.on_fault(at, kind_of, function, container, magnitude);
            }
            SimEvent::InvocationRetried {
                at,
                workflow,
                instance,
                stage,
                function,
                ..
            } => {
                self.on_retry(at, workflow, instance, stage, function);
            }
            SimEvent::InvocationTimedOut {
                at,
                workflow,
                instance,
                stage,
                container,
                ..
            } => {
                self.on_timeout(at, workflow, instance, stage, container);
            }
            SimEvent::StageDispatch {
                at,
                workflow,
                instance,
                stage,
                tasks,
                ..
            } => {
                self.on_stage_dispatch(at, workflow, instance, stage, tasks);
            }
            SimEvent::StageComplete {
                at,
                workflow,
                instance,
                stage,
            } => {
                self.on_stage_complete(at, workflow, instance, stage);
            }
            SimEvent::TenantAdmit {
                at,
                tenant,
                workflow,
                instance,
            } => {
                self.on_tenant_admit(at, tenant, workflow, instance);
            }
            SimEvent::TenantComplete {
                at,
                tenant,
                workflow,
                instance,
                latency_secs,
            } => {
                self.on_tenant_complete(at, tenant, workflow, instance, latency_secs);
            }
            SimEvent::PredictiveReject {
                at,
                predicted_secs,
                sigma_secs,
                ..
            } => {
                if !predicted_secs.is_finite() || sigma_secs < 0.0 || !sigma_secs.is_finite() {
                    self.violate(
                        at,
                        format!(
                            "predictive reject with nonsensical prediction \
                             {predicted_secs} ± {sigma_secs}"
                        ),
                    );
                }
            }
            SimEvent::StageQueued { .. }
            | SimEvent::BoIteration { .. }
            | SimEvent::QosViolation { .. }
            | SimEvent::SurrogateTierSwitch { .. }
            | SimEvent::TenantShed { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EvictionReason;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn boot_begin(at: u64, container: u64, worker: usize, mb: f64) -> SimEvent {
        SimEvent::ColdStartBegin {
            at: t(at),
            function: 0,
            container,
            worker,
            memory_mb: mb,
            slots: 1,
            prewarmed: false,
        }
    }

    fn boot_end(at: u64, container: u64, worker: usize, tasks: u32) -> SimEvent {
        SimEvent::ColdStartEnd {
            at: t(at),
            function: 0,
            container,
            worker,
            tasks_attached: tasks,
        }
    }

    fn evict(at: u64, container: u64, worker: usize, mb: f64) -> SimEvent {
        SimEvent::Eviction {
            at: t(at),
            function: 0,
            container,
            worker,
            memory_mb: mb,
            reason: EvictionReason::KeepAlive,
        }
    }

    #[test]
    fn clean_lifecycle_passes() {
        let mut c = InvariantChecker::new(2, 1024.0);
        c.record(&boot_begin(1, 1, 0, 512.0));
        c.record(&boot_end(2, 1, 0, 1));
        c.record(&SimEvent::TaskComplete {
            at: t(3),
            workflow: 0,
            instance: 0,
            stage: 0,
            container: 1,
        });
        c.record(&SimEvent::WarmHit {
            at: t(4),
            function: 0,
            container: 1,
        });
        c.record(&SimEvent::TaskComplete {
            at: t(5),
            workflow: 0,
            instance: 0,
            stage: 0,
            container: 1,
        });
        c.record(&evict(700, 1, 0, 512.0));
        c.assert_ok();
        assert_eq!(c.events_seen(), 6);
    }

    #[test]
    fn detects_time_regression() {
        let mut c = InvariantChecker::new(1, 1024.0);
        c.record(&boot_begin(5, 1, 0, 100.0));
        c.record(&boot_end(3, 1, 0, 0));
        assert!(!c.is_ok());
        assert!(
            c.violations()[0].contains("time moved backwards"),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn qos_violation_is_exempt_from_monotonicity() {
        let mut c = InvariantChecker::new(1, 1024.0);
        c.record(&boot_begin(5, 1, 0, 100.0));
        c.record(&SimEvent::QosViolation {
            at: t(2),
            workflow: 0,
            instance: 0,
            latency_secs: 9.0,
            qos_secs: 1.0,
        });
        c.assert_ok();
    }

    #[test]
    fn detects_oversubscription() {
        let mut c = InvariantChecker::new(1, 1000.0);
        c.record(&boot_begin(1, 1, 0, 600.0));
        c.record(&boot_begin(2, 2, 0, 600.0));
        assert!(!c.is_ok());
        assert!(
            c.violations()[0].contains("oversubscribed"),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn detects_double_boot_and_double_evict() {
        let mut c = InvariantChecker::new(1, 4096.0);
        c.record(&boot_begin(1, 7, 0, 100.0));
        c.record(&boot_begin(2, 7, 0, 100.0));
        c.record(&boot_end(3, 7, 0, 0));
        c.record(&evict(4, 7, 0, 100.0));
        c.record(&evict(5, 7, 0, 100.0));
        let v = c.violations();
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("booted twice"));
        assert!(v[1].contains("evicted twice"));
    }

    #[test]
    fn warm_hit_on_booting_container_is_cold_start_evasion() {
        let mut c = InvariantChecker::new(1, 4096.0);
        c.record(&boot_begin(1, 3, 0, 100.0));
        c.record(&SimEvent::WarmHit {
            at: t(1),
            function: 0,
            container: 3,
        });
        assert!(!c.is_ok());
        assert!(
            c.violations()[0].contains("still booting"),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn detects_use_after_eviction() {
        let mut c = InvariantChecker::new(1, 4096.0);
        c.record(&boot_begin(1, 3, 0, 100.0));
        c.record(&boot_end(2, 3, 0, 0));
        c.record(&evict(3, 3, 0, 100.0));
        c.record(&SimEvent::WarmHit {
            at: t(4),
            function: 0,
            container: 3,
        });
        assert!(!c.is_ok());
        assert!(
            c.violations()[0].contains("evicted container"),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn detects_slot_overcommit() {
        let mut c = InvariantChecker::new(1, 4096.0);
        c.record(&boot_begin(1, 3, 0, 100.0));
        c.record(&boot_end(2, 3, 0, 1));
        c.record(&SimEvent::WarmHit {
            at: t(3),
            function: 0,
            container: 3,
        });
        assert!(!c.is_ok());
        assert!(
            c.violations()[0].contains("over-committed"),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn detects_eviction_of_busy_container() {
        let mut c = InvariantChecker::new(1, 4096.0);
        c.record(&boot_begin(1, 3, 0, 100.0));
        c.record(&boot_end(2, 3, 0, 1));
        c.record(&evict(3, 3, 0, 100.0));
        assert!(!c.is_ok());
        assert!(
            c.violations()[0].contains("task(s) running"),
            "{:?}",
            c.violations()
        );
    }

    fn fault(at: u64, kind_of: FaultKind, container: Option<u64>, magnitude: f64) -> SimEvent {
        SimEvent::FaultInjected {
            at: t(at),
            kind_of,
            function: 0,
            container,
            magnitude,
        }
    }

    fn fault_evict(at: u64, container: u64) -> SimEvent {
        SimEvent::Eviction {
            at: t(at),
            function: 0,
            container,
            worker: 0,
            memory_mb: 100.0,
            reason: EvictionReason::Fault,
        }
    }

    fn dispatch(at: u64, stage: usize, tasks: u32) -> SimEvent {
        SimEvent::StageDispatch {
            at: t(at),
            workflow: 0,
            instance: 0,
            stage,
            function: 0,
            tasks,
        }
    }

    fn complete(at: u64, stage: usize, container: u64) -> SimEvent {
        SimEvent::TaskComplete {
            at: t(at),
            workflow: 0,
            instance: 0,
            stage,
            container,
        }
    }

    #[test]
    fn fault_kill_of_busy_container_is_legal() {
        let mut c = InvariantChecker::new(1, 4096.0);
        c.record(&boot_begin(1, 3, 0, 100.0));
        c.record(&boot_end(2, 3, 0, 1));
        c.record(&fault(3, FaultKind::Crash, Some(3), 0.0));
        c.record(&fault_evict(3, 3));
        c.assert_ok();
    }

    #[test]
    fn fault_kill_of_booting_container_is_legal() {
        let mut c = InvariantChecker::new(1, 4096.0);
        c.record(&boot_begin(1, 3, 0, 100.0));
        c.record(&fault(2, FaultKind::BootFail, Some(3), 0.0));
        c.record(&fault_evict(2, 3));
        c.assert_ok();
    }

    #[test]
    fn detects_fault_eviction_without_prior_fault() {
        let mut c = InvariantChecker::new(1, 4096.0);
        c.record(&boot_begin(1, 3, 0, 100.0));
        c.record(&boot_end(2, 3, 0, 0));
        c.record(&fault_evict(3, 3));
        assert!(!c.is_ok());
        assert!(
            c.violations()[0].contains("without a prior fault"),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn detects_use_after_fault_kill() {
        let mut c = InvariantChecker::new(1, 4096.0);
        c.record(&boot_begin(1, 3, 0, 100.0));
        c.record(&boot_end(2, 3, 0, 0));
        c.record(&fault(3, FaultKind::Crash, Some(3), 0.0));
        c.record(&fault_evict(3, 3));
        c.record(&SimEvent::WarmHit {
            at: t(4),
            function: 0,
            container: 3,
        });
        assert!(!c.is_ok());
        assert!(
            c.violations()[0].contains("evicted container"),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn detects_retry_without_prior_failure() {
        let mut c = InvariantChecker::new(1, 4096.0);
        c.record(&SimEvent::InvocationRetried {
            at: t(1),
            workflow: 0,
            instance: 0,
            stage: 0,
            function: 0,
            attempt: 1,
        });
        assert!(!c.is_ok());
        assert!(
            c.violations()[0].contains("without a prior fault or timeout"),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn retry_after_fault_on_function_is_legal() {
        let mut c = InvariantChecker::new(1, 4096.0);
        c.record(&boot_begin(1, 3, 0, 100.0));
        c.record(&fault(2, FaultKind::BootFail, Some(3), 0.0));
        c.record(&fault_evict(2, 3));
        c.record(&SimEvent::InvocationRetried {
            at: t(2),
            workflow: 0,
            instance: 0,
            stage: 0,
            function: 0,
            attempt: 1,
        });
        c.assert_ok();
    }

    #[test]
    fn timeout_then_retry_balances_the_ledger() {
        let mut c = InvariantChecker::new(1, 4096.0);
        c.record(&dispatch(1, 0, 1));
        c.record(&boot_begin(1, 3, 0, 100.0));
        c.record(&boot_end(2, 3, 0, 1));
        c.record(&SimEvent::InvocationTimedOut {
            at: t(3),
            workflow: 0,
            instance: 0,
            stage: 0,
            function: 0,
            container: 3,
        });
        c.record(&SimEvent::InvocationRetried {
            at: t(3),
            workflow: 0,
            instance: 0,
            stage: 0,
            function: 0,
            attempt: 1,
        });
        c.record(&SimEvent::WarmHit {
            at: t(4),
            function: 0,
            container: 3,
        });
        c.record(&complete(5, 0, 3));
        c.record(&SimEvent::StageComplete {
            at: t(5),
            workflow: 0,
            instance: 0,
            stage: 0,
        });
        c.assert_ok();
    }

    #[test]
    fn detects_timeout_implies_no_completion() {
        // An attempt that times out must not also complete: one dispatched
        // task, one timeout, one completion — without a retry the ledger
        // cannot balance.
        let mut c = InvariantChecker::new(1, 4096.0);
        c.record(&dispatch(1, 0, 1));
        c.record(&boot_begin(1, 3, 0, 100.0));
        c.record(&boot_end(2, 3, 0, 1));
        c.record(&SimEvent::InvocationTimedOut {
            at: t(3),
            workflow: 0,
            instance: 0,
            stage: 0,
            function: 0,
            container: 3,
        });
        c.record(&SimEvent::WarmHit {
            at: t(4),
            function: 0,
            container: 3,
        });
        c.record(&complete(5, 0, 3));
        assert!(!c.is_ok());
        assert!(
            c.violations()[0].contains("attempt ledger broken"),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn detects_stage_complete_with_missing_tasks() {
        let mut c = InvariantChecker::new(1, 4096.0);
        c.record(&dispatch(1, 0, 2));
        c.record(&boot_begin(1, 3, 0, 100.0));
        c.record(&boot_end(2, 3, 0, 1));
        c.record(&complete(3, 0, 3));
        c.record(&SimEvent::StageComplete {
            at: t(3),
            workflow: 0,
            instance: 0,
            stage: 0,
        });
        assert!(!c.is_ok());
        assert!(
            c.violations()[0].contains("completed with 1 of 2"),
            "{:?}",
            c.violations()
        );
    }

    fn admit(at: u64, tenant: usize, workflow: usize, instance: u64) -> SimEvent {
        SimEvent::TenantAdmit {
            at: t(at),
            tenant,
            workflow,
            instance,
        }
    }

    fn tenant_done(at: u64, tenant: usize, workflow: usize, instance: u64) -> SimEvent {
        SimEvent::TenantComplete {
            at: t(at),
            tenant,
            workflow,
            instance,
            latency_secs: 0.25,
        }
    }

    #[test]
    fn tenant_ledger_balances_on_clean_run() {
        let mut c = InvariantChecker::new(1, 4096.0);
        c.record(&admit(1, 0, 0, 10));
        c.record(&admit(1, 1, 2, 11));
        c.record(&SimEvent::TenantShed {
            at: t(2),
            tenant: 0,
            workflow: 0,
            reason: crate::event::ShedReason::Queue,
        });
        c.record(&tenant_done(3, 0, 0, 10));
        c.record(&tenant_done(4, 1, 2, 11));
        c.assert_ok();
    }

    #[test]
    fn detects_double_admit_and_double_complete() {
        let mut c = InvariantChecker::new(1, 4096.0);
        c.record(&admit(1, 0, 0, 10));
        c.record(&admit(2, 0, 0, 10));
        c.record(&tenant_done(3, 0, 0, 10));
        c.record(&tenant_done(4, 0, 0, 10));
        let v = c.violations();
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("tenant-admitted twice"));
        assert!(v[1].contains("tenant-completed twice"));
    }

    #[test]
    fn detects_completion_without_admit_or_with_wrong_tenant() {
        let mut c = InvariantChecker::new(1, 4096.0);
        c.record(&tenant_done(1, 0, 0, 99));
        c.record(&admit(2, 0, 0, 10));
        c.record(&tenant_done(3, 1, 0, 10));
        let v = c.violations();
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("never-admitted"));
        assert!(v[1].contains("admitted as tenant 0"));
    }

    #[test]
    fn detects_nonsensical_predictive_reject() {
        let mut c = InvariantChecker::new(1, 4096.0);
        c.record(&SimEvent::PredictiveReject {
            at: t(1),
            tenant: 0,
            workflow: 0,
            predicted_secs: f64::NAN,
            sigma_secs: 0.1,
            slo_secs: 1.0,
        });
        assert!(!c.is_ok());
        assert!(
            c.violations()[0].contains("nonsensical prediction"),
            "{:?}",
            c.violations()
        );
    }

    #[test]
    fn detects_nonsensical_fault_magnitudes() {
        let mut c = InvariantChecker::new(1, 4096.0);
        c.record(&fault(1, FaultKind::Straggler, None, 0.5));
        c.record(&fault(2, FaultKind::HandoffDelay, None, f64::NAN));
        let v = c.violations();
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("straggler"));
        assert!(v[1].contains("handoff delay"));
    }
}
