//! Replay comparison: find the first divergent event between two traces.
//!
//! The determinism and golden-trace tests boil down to "these two runs
//! must have produced the same event stream"; when they did not, pointing
//! at the **first** differing event localizes the bug far better than a
//! whole-trace dump.

use std::fmt;

use crate::event::SimEvent;

/// The first point where two traces disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Zero-based index of the first differing event (or line).
    pub index: usize,
    /// The left trace's event at `index` (JSON), `None` if it ended early.
    pub left: Option<String>,
    /// The right trace's event at `index` (JSON), `None` if it ended early.
    pub right: Option<String>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "traces diverge at event {}:", self.index)?;
        match &self.left {
            Some(l) => writeln!(f, "  left : {l}")?,
            None => writeln!(f, "  left : <trace ended after {} events>", self.index)?,
        }
        match &self.right {
            Some(r) => write!(f, "  right: {r}"),
            None => write!(f, "  right: <trace ended after {} events>", self.index),
        }
    }
}

/// Compares two event traces, returning the first divergence or `None`
/// when they are identical.
///
/// # Examples
///
/// ```
/// use aqua_sim::SimTime;
/// use aqua_telemetry::{diff_traces, SimEvent};
///
/// let a = vec![SimEvent::WarmHit { at: SimTime::ZERO, function: 0, container: 1 }];
/// let b = vec![SimEvent::WarmHit { at: SimTime::ZERO, function: 0, container: 2 }];
/// let d = diff_traces(&a, &b).expect("differs");
/// assert_eq!(d.index, 0);
/// ```
pub fn diff_traces(left: &[SimEvent], right: &[SimEvent]) -> Option<Divergence> {
    let n = left.len().min(right.len());
    for i in 0..n {
        if left[i] != right[i] {
            return Some(Divergence {
                index: i,
                left: Some(left[i].to_json()),
                right: Some(right[i].to_json()),
            });
        }
    }
    if left.len() != right.len() {
        return Some(Divergence {
            index: n,
            left: left.get(n).map(SimEvent::to_json),
            right: right.get(n).map(SimEvent::to_json),
        });
    }
    None
}

/// Line-by-line comparison of two JSONL trace exports, returning the
/// first divergent line or `None` when identical. Works on anything
/// line-oriented, so golden files can be diffed without re-parsing.
pub fn diff_jsonl(left: &str, right: &str) -> Option<Divergence> {
    let mut l = left.lines();
    let mut r = right.lines();
    let mut index = 0usize;
    loop {
        match (l.next(), r.next()) {
            (None, None) => return None,
            (a, b) => {
                if a != b {
                    return Some(Divergence {
                        index,
                        left: a.map(str::to_string),
                        right: b.map(str::to_string),
                    });
                }
            }
        }
        index += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_sim::SimTime;

    fn hit(us: u64, container: u64) -> SimEvent {
        SimEvent::WarmHit {
            at: SimTime::from_micros(us),
            function: 0,
            container,
        }
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        let a = vec![hit(1, 1), hit(2, 2)];
        assert_eq!(diff_traces(&a, &a.clone()), None);
        let j = "{\"a\":1}\n{\"b\":2}\n";
        assert_eq!(diff_jsonl(j, j), None);
    }

    #[test]
    fn first_difference_is_reported() {
        let a = vec![hit(1, 1), hit(2, 2), hit(3, 3)];
        let b = vec![hit(1, 1), hit(2, 9), hit(3, 9)];
        let d = diff_traces(&a, &b).expect("differs");
        assert_eq!(d.index, 1);
        assert!(d.left.as_deref().unwrap().contains("\"container\":2"));
        assert!(d.right.as_deref().unwrap().contains("\"container\":9"));
    }

    #[test]
    fn length_mismatch_diverges_at_truncation() {
        let a = vec![hit(1, 1), hit(2, 2)];
        let b = vec![hit(1, 1)];
        let d = diff_traces(&a, &b).expect("differs");
        assert_eq!(d.index, 1);
        assert!(d.left.is_some());
        assert_eq!(d.right, None);
    }

    #[test]
    fn jsonl_diff_finds_first_line() {
        let a = "one\ntwo\nthree";
        let b = "one\nTWO\nthree";
        let d = diff_jsonl(a, b).expect("differs");
        assert_eq!(d.index, 1);
        assert_eq!(d.left.as_deref(), Some("two"));
        assert_eq!(d.right.as_deref(), Some("TWO"));
    }

    #[test]
    fn divergence_display_mentions_index() {
        let d = Divergence {
            index: 4,
            left: Some("x".into()),
            right: None,
        };
        let text = d.to_string();
        assert!(text.contains("event 4"));
        assert!(text.contains("<trace ended"));
    }
}
