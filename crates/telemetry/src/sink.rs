//! Pluggable event sinks and the cheap [`Telemetry`] handle the simulator
//! threads through its hot path.

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::event::SimEvent;

/// A consumer of simulator events.
///
/// Implementations must be cheap per call: `record` runs inline in the
/// simulator's event loop.
pub trait EventSink {
    /// Consumes one event.
    fn record(&mut self, event: &SimEvent);

    /// Flushes any buffered output. Called at the end of a run; the
    /// default does nothing.
    fn flush(&mut self) {}
}

impl EventSink for Box<dyn EventSink + Send> {
    fn record(&mut self, event: &SimEvent) {
        (**self).record(event)
    }

    fn flush(&mut self) {
        (**self).flush()
    }
}

/// A shared, interiorly-mutable sink handle.
///
/// `Send` so a [`Telemetry`] clone can ride inside per-shard simulator
/// state across the `par_map` worker threads; the mutex is uncontended in
/// practice because each shard writes to its own private recorder.
pub type SharedSink = Arc<Mutex<dyn EventSink + Send>>;

/// The handle the simulator and controllers emit through.
///
/// `Telemetry::default()` is the **null sink**: the `Option` is `None`,
/// [`Telemetry::emit_with`] never runs its closure, and the hot path pays
/// a single branch — no event construction, no allocation, no dynamic
/// dispatch.
///
/// Cloning is shallow: all clones feed the same sink, which is how one
/// recorder observes the simulator, the cluster, and the controllers at
/// once.
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<SharedSink>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.sink.is_some())
            .finish()
    }
}

impl Telemetry {
    /// The null sink: every emit is a no-op.
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// A telemetry handle feeding `sink`.
    pub fn new(sink: SharedSink) -> Self {
        Telemetry { sink: Some(sink) }
    }

    /// Wraps a concrete sink, returning the emit handle plus a typed
    /// handle for inspecting the sink afterwards.
    ///
    /// # Examples
    ///
    /// ```
    /// use aqua_telemetry::{Recorder, Telemetry};
    ///
    /// let (tel, rec) = Telemetry::attach(Recorder::unbounded());
    /// assert!(tel.is_enabled());
    /// assert!(rec.lock().unwrap().events().is_empty());
    /// ```
    pub fn attach<S: EventSink + Send + 'static>(sink: S) -> (Telemetry, Arc<Mutex<S>>) {
        let shared = Arc::new(Mutex::new(sink));
        (
            Telemetry {
                sink: Some(shared.clone()),
            },
            shared,
        )
    }

    /// Shorthand for [`Telemetry::attach`] with an unbounded [`Recorder`].
    pub fn recording() -> (Telemetry, Arc<Mutex<Recorder>>) {
        Telemetry::attach(Recorder::unbounded())
    }

    /// True when events reach a sink.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits an already-built event.
    pub fn emit(&self, event: &SimEvent) {
        if let Some(sink) = &self.sink {
            sink.lock().unwrap().record(event);
        }
    }

    /// Emits the event produced by `build`, constructing it only when a
    /// sink is attached. Use this on hot paths so the disabled case pays
    /// nothing beyond the branch.
    #[inline]
    pub fn emit_with<F: FnOnce() -> SimEvent>(&self, build: F) {
        if let Some(sink) = &self.sink {
            sink.lock().unwrap().record(&build());
        }
    }

    /// Flushes the attached sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.lock().unwrap().flush();
        }
    }
}

/// An in-memory trace recorder.
///
/// With a capacity it behaves as a ring buffer keeping the **latest**
/// `capacity` events; unbounded it keeps everything.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    events: Vec<SimEvent>,
    capacity: Option<usize>,
    /// Ring start index when the buffer has wrapped.
    head: usize,
    /// Total events ever recorded (≥ `events.len()`).
    seen: u64,
}

impl Recorder {
    /// A recorder that keeps every event.
    pub fn unbounded() -> Self {
        Recorder::default()
    }

    /// A ring-buffer recorder keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Recorder {
            capacity: Some(capacity),
            ..Recorder::default()
        }
    }

    /// The recorded events in arrival order (oldest first).
    pub fn events(&self) -> Vec<SimEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }

    /// Total events observed, including any that fell out of the ring.
    pub fn total_seen(&self) -> u64 {
        self.seen
    }

    /// Encodes the recorded trace as JSONL (one event per line, trailing
    /// newline included when non-empty).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for ev in self.events() {
            s.push_str(&ev.to_json());
            s.push('\n');
        }
        s
    }

    /// Clears the buffer (the `total_seen` counter keeps counting).
    pub fn clear(&mut self) {
        self.events.clear();
        self.head = 0;
    }
}

impl EventSink for Recorder {
    fn record(&mut self, event: &SimEvent) {
        self.seen += 1;
        match self.capacity {
            Some(cap) if self.events.len() == cap => {
                // Overwrite the oldest slot.
                self.events[self.head] = event.clone();
                self.head = (self.head + 1) % cap;
            }
            _ => self.events.push(event.clone()),
        }
    }
}

/// Streams events as line-delimited JSON to any writer.
pub struct JsonlWriter<W: Write> {
    out: W,
    /// First I/O error observed, surfaced via [`JsonlWriter::error`].
    error: Option<io::Error>,
}

impl JsonlWriter<BufWriter<File>> {
    /// Creates a writer streaming to a fresh file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(JsonlWriter::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlWriter<W> {
    /// Wraps an arbitrary writer.
    pub fn new(out: W) -> Self {
        JsonlWriter { out, error: None }
    }

    /// The first I/O error hit while writing, if any. Write failures do
    /// not panic the simulation; check this after the run.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Consumes the sink, flushing and returning the inner writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

impl<W: Write> EventSink for JsonlWriter<W> {
    fn record(&mut self, event: &SimEvent) {
        if self.error.is_some() {
            return;
        }
        let line = event.to_json();
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
    }
}

/// Broadcasts each event to several sinks in order — e.g. a [`Recorder`]
/// plus an [`crate::InvariantChecker`] watching the same run.
#[derive(Default)]
pub struct Fanout {
    sinks: Vec<SharedSink>,
}

impl Fanout {
    /// A fan-out over `sinks`.
    pub fn new(sinks: Vec<SharedSink>) -> Self {
        Fanout { sinks }
    }

    /// Adds another downstream sink.
    pub fn push(&mut self, sink: SharedSink) {
        self.sinks.push(sink);
    }
}

impl EventSink for Fanout {
    fn record(&mut self, event: &SimEvent) {
        for sink in &self.sinks {
            sink.lock().unwrap().record(event);
        }
    }

    fn flush(&mut self) {
        for sink in &self.sinks {
            sink.lock().unwrap().flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_sim::SimTime;

    fn hit(us: u64) -> SimEvent {
        SimEvent::WarmHit {
            at: SimTime::from_micros(us),
            function: 0,
            container: us,
        }
    }

    #[test]
    fn null_sink_never_builds_the_event() {
        let tel = Telemetry::disabled();
        let mut built = false;
        tel.emit_with(|| {
            built = true;
            hit(1)
        });
        assert!(!built, "disabled telemetry must not construct events");
        assert!(!tel.is_enabled());
    }

    #[test]
    fn recorder_keeps_arrival_order() {
        let (tel, rec) = Telemetry::recording();
        for i in 0..5 {
            tel.emit(&hit(i));
        }
        let evs = rec.lock().unwrap().events();
        assert_eq!(evs.len(), 5);
        assert_eq!(evs[0].at(), SimTime::from_micros(0));
        assert_eq!(evs[4].at(), SimTime::from_micros(4));
    }

    #[test]
    fn ring_buffer_keeps_latest() {
        let (tel, rec) = Telemetry::attach(Recorder::with_capacity(3));
        for i in 0..7 {
            tel.emit(&hit(i));
        }
        let rec = rec.lock().unwrap();
        assert_eq!(rec.total_seen(), 7);
        let evs = rec.events();
        assert_eq!(evs.len(), 3);
        let at: Vec<u64> = evs.iter().map(|e| e.at().as_micros()).collect();
        assert_eq!(at, vec![4, 5, 6]);
    }

    #[test]
    fn jsonl_writer_streams_lines() {
        let (tel, sink) = Telemetry::attach(JsonlWriter::new(Vec::new()));
        tel.emit(&hit(1));
        tel.emit(&hit(2));
        tel.flush();
        drop(tel);
        let sink = Arc::try_unwrap(sink)
            .map_err(|_| ())
            .expect("sole owner")
            .into_inner()
            .expect("unpoisoned");
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"type\":\"warm_hit\""));
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a: Arc<Mutex<Recorder>> = Arc::new(Mutex::new(Recorder::unbounded()));
        let b: Arc<Mutex<Recorder>> = Arc::new(Mutex::new(Recorder::unbounded()));
        let tel = Telemetry::new(Arc::new(Mutex::new(Fanout::new(vec![
            a.clone() as SharedSink,
            b.clone() as SharedSink,
        ]))));
        tel.emit(&hit(9));
        assert_eq!(a.lock().unwrap().events().len(), 1);
        assert_eq!(b.lock().unwrap().events().len(), 1);
    }

    #[test]
    fn clones_share_one_sink() {
        let (tel, rec) = Telemetry::recording();
        let tel2 = tel.clone();
        tel.emit(&hit(1));
        tel2.emit(&hit(2));
        assert_eq!(rec.lock().unwrap().events().len(), 2);
    }
}
