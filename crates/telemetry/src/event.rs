//! The simulator event taxonomy and its line-oriented JSON encoding.
//!
//! Events reference functions, containers, workers, and workflow jobs by
//! their raw integer ids (`usize` / `u64`) rather than the `aqua-faas`
//! newtypes: the simulator depends on this crate, so the event layer cannot
//! depend back on the simulator's types.

use std::fmt::Write as _;

use aqua_sim::SimTime;

/// Why a container was killed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvictionReason {
    /// Idle longer than the pool policy's keep-alive.
    KeepAlive,
    /// Pool shrunk below the current idle count by an explicit target.
    Shrink,
    /// LRU eviction to make room for a new container under memory pressure.
    Pressure,
    /// Killed by an injected fault (boot failure, OOM, crash).
    Fault,
}

impl EvictionReason {
    /// Stable lowercase identifier used in the JSON encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            EvictionReason::KeepAlive => "keep_alive",
            EvictionReason::Shrink => "shrink",
            EvictionReason::Pressure => "pressure",
            EvictionReason::Fault => "fault",
        }
    }
}

/// Class of an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A container boot that never completes; the container dies instead
    /// of turning warm.
    BootFail,
    /// A warm or busy container killed mid-run (OOM / crash); in-flight
    /// invocations on it are lost.
    Crash,
    /// One invocation slowed down by a multiplicative straggler factor.
    Straggler,
    /// A stage handoff delayed between a stage finishing and its
    /// dependents dispatching.
    HandoffDelay,
}

impl FaultKind {
    /// Stable lowercase identifier used in the JSON encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::BootFail => "boot_fail",
            FaultKind::Crash => "crash",
            FaultKind::Straggler => "straggler",
            FaultKind::HandoffDelay => "handoff_delay",
        }
    }
}

/// Why a tenant's load was shed by queue-depth admission control (as
/// opposed to the model-driven [`SimEvent::PredictiveReject`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedReason {
    /// The arrival found the in-flight cap (global or tenant) exhausted.
    Inflight,
    /// A task found its function queue (global or tenant cap) full and
    /// its workflow instance was aborted.
    Queue,
}

impl ShedReason {
    /// Stable lowercase identifier used in the JSON encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            ShedReason::Inflight => "inflight",
            ShedReason::Queue => "queue",
        }
    }
}

/// One scheduling-relevant moment in a simulation run.
///
/// Every variant carries its simulated timestamp `at`. Identifier fields
/// are raw ids: `function` and `worker` index into the registry and the
/// cluster's worker list, `container` is the cluster-unique container id,
/// and `workflow`/`instance` name a job in the workload mix and an arrival
/// within it.
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// A container started booting on a worker.
    ColdStartBegin {
        at: SimTime,
        function: usize,
        container: u64,
        worker: usize,
        /// Memory reserved on the worker for this container's lifetime.
        memory_mb: f64,
        /// Concurrent execution slots the container will offer when warm.
        slots: u32,
        /// True when booted speculatively by the pool controller rather
        /// than on demand by a waiting task.
        prewarmed: bool,
    },
    /// A container finished booting and became warm.
    ColdStartEnd {
        at: SimTime,
        function: usize,
        container: u64,
        worker: usize,
        /// Tasks that waited on this boot and start executing now; each
        /// is charged one cold start. Zero for pre-warmed boots.
        tasks_attached: u32,
    },
    /// A task found a warm container with a free slot and starts
    /// immediately — no cold-start accounting.
    WarmHit {
        at: SimTime,
        function: usize,
        container: u64,
    },
    /// A warm container was killed.
    Eviction {
        at: SimTime,
        function: usize,
        container: u64,
        worker: usize,
        /// Memory released back to the worker.
        memory_mb: f64,
        reason: EvictionReason,
    },
    /// A pool controller chose a pre-warm target for one function.
    PoolResize {
        at: SimTime,
        function: usize,
        /// Desired warm + in-flight container count.
        target: usize,
        /// Predicted demand (containers) for the next window.
        predicted_mean: f64,
        /// Predictive uncertainty (standard deviation) behind the
        /// target's head-room.
        predicted_std: f64,
        /// Containers booting at decision time.
        booting: u32,
        /// Warm-idle containers at decision time.
        idle: u32,
        /// Busy containers at decision time.
        busy: u32,
    },
    /// A workflow stage became runnable and its tasks were dispatched.
    StageDispatch {
        at: SimTime,
        workflow: usize,
        instance: usize,
        stage: usize,
        function: usize,
        /// Number of parallel tasks in the stage.
        tasks: u32,
    },
    /// A dispatched task found no capacity anywhere and was queued.
    StageQueued {
        at: SimTime,
        workflow: usize,
        instance: usize,
        stage: usize,
        function: usize,
    },
    /// One task of a stage finished executing.
    TaskComplete {
        at: SimTime,
        workflow: usize,
        instance: usize,
        stage: usize,
        container: u64,
    },
    /// Every task of a stage finished; downstream stages may unblock.
    StageComplete {
        at: SimTime,
        workflow: usize,
        instance: usize,
        stage: usize,
    },
    /// One Bayesian-optimization iteration of the resource allocator.
    ///
    /// Stamped with the (simulated) time of the profiling run it follows;
    /// during offline planning this is [`SimTime::ZERO`].
    BoIteration {
        at: SimTime,
        /// Evaluation index within the search (bootstrap samples included).
        iteration: usize,
        /// The evaluated resource configuration, flattened per stage.
        candidate: Vec<f64>,
        /// Acquisition value (constrained noisy EI) of the candidate;
        /// bootstrap samples carry `0.0`.
        ei: f64,
        /// Observed end-to-end latency (seconds) of the candidate.
        latency: f64,
        /// Observed execution cost of the candidate.
        cost: f64,
    },
    /// A fault from the run's [`FaultPlan`] fired.
    ///
    /// `container` is `None` for faults not tied to a container
    /// (stage-handoff delays). `magnitude` is fault-specific: the
    /// straggler slowdown factor, the handoff delay in seconds, or `0.0`
    /// for boot failures and crashes.
    FaultInjected {
        at: SimTime,
        kind_of: FaultKind,
        function: usize,
        container: Option<u64>,
        magnitude: f64,
    },
    /// A failed or timed-out invocation was rescheduled with backoff.
    InvocationRetried {
        at: SimTime,
        workflow: usize,
        instance: usize,
        stage: usize,
        function: usize,
        /// Attempt number being scheduled (first retry is 1).
        attempt: u32,
    },
    /// An invocation exceeded the per-stage timeout and was cancelled.
    InvocationTimedOut {
        at: SimTime,
        workflow: usize,
        instance: usize,
        stage: usize,
        function: usize,
        container: u64,
    },
    /// A completed workflow instance exceeded its QoS latency target.
    ///
    /// Synthesized while the run report is analyzed, after the event loop
    /// ends, so it is exempt from the monotone-time invariant.
    QosViolation {
        at: SimTime,
        workflow: usize,
        instance: usize,
        /// Achieved end-to-end latency in seconds.
        latency_secs: f64,
        /// The QoS target it missed, in seconds.
        qos_secs: f64,
    },
    /// An online latency model crossed its size threshold and was rebuilt
    /// on the sparse (inducing-point) surrogate tier. Emitted by the
    /// service control plane during refit ticks; the simulator's exact
    /// tier never produces it, so golden sim traces are unaffected.
    SurrogateTierSwitch {
        at: SimTime,
        /// Application whose model switched.
        app: usize,
        /// Training-set size at the switch.
        train: usize,
        /// Inducing-set size of the new sparse model.
        inducing: usize,
    },
    /// A workflow arrival was admitted on a multi-tenant control plane.
    /// Emitted by the live service only; the batch simulator has no
    /// tenant vocabulary, so sim golden traces never contain it.
    TenantAdmit {
        at: SimTime,
        /// Tenant the workflow belongs to.
        tenant: usize,
        /// Job (workflow template) index.
        workflow: usize,
        /// Plane-unique workflow instance id.
        instance: u64,
    },
    /// An admitted workflow instance finished every stage.
    TenantComplete {
        at: SimTime,
        tenant: usize,
        workflow: usize,
        instance: u64,
        /// Achieved end-to-end latency, seconds.
        latency_secs: f64,
    },
    /// A tenant's load was shed by queue-depth admission control — at the
    /// front door (`reason = inflight`, nothing was dispatched) or at a
    /// full function queue (`reason = queue`, the instance aborts).
    TenantShed {
        at: SimTime,
        tenant: usize,
        workflow: usize,
        reason: ShedReason,
    },
    /// A workflow arrival was rejected *before admission* because the
    /// online latency model predicted its end-to-end latency
    /// (`mean + k·σ`) would already miss the tenant's SLO. Distinct from
    /// queue-depth shedding: nothing about the queues triggered it.
    PredictiveReject {
        at: SimTime,
        tenant: usize,
        workflow: usize,
        /// Predicted end-to-end latency mean, seconds.
        predicted_secs: f64,
        /// Predictive standard deviation, seconds.
        sigma_secs: f64,
        /// The SLO the prediction already misses, seconds.
        slo_secs: f64,
    },
}

impl SimEvent {
    /// The event's simulated timestamp.
    pub fn at(&self) -> SimTime {
        match *self {
            SimEvent::ColdStartBegin { at, .. }
            | SimEvent::ColdStartEnd { at, .. }
            | SimEvent::WarmHit { at, .. }
            | SimEvent::Eviction { at, .. }
            | SimEvent::PoolResize { at, .. }
            | SimEvent::StageDispatch { at, .. }
            | SimEvent::StageQueued { at, .. }
            | SimEvent::TaskComplete { at, .. }
            | SimEvent::StageComplete { at, .. }
            | SimEvent::BoIteration { at, .. }
            | SimEvent::FaultInjected { at, .. }
            | SimEvent::InvocationRetried { at, .. }
            | SimEvent::InvocationTimedOut { at, .. }
            | SimEvent::QosViolation { at, .. }
            | SimEvent::SurrogateTierSwitch { at, .. }
            | SimEvent::TenantAdmit { at, .. }
            | SimEvent::TenantComplete { at, .. }
            | SimEvent::TenantShed { at, .. }
            | SimEvent::PredictiveReject { at, .. } => at,
        }
    }

    /// Stable lowercase name of the variant, the `"type"` field of the
    /// JSON encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            SimEvent::ColdStartBegin { .. } => "cold_start_begin",
            SimEvent::ColdStartEnd { .. } => "cold_start_end",
            SimEvent::WarmHit { .. } => "warm_hit",
            SimEvent::Eviction { .. } => "eviction",
            SimEvent::PoolResize { .. } => "pool_resize",
            SimEvent::StageDispatch { .. } => "stage_dispatch",
            SimEvent::StageQueued { .. } => "stage_queued",
            SimEvent::TaskComplete { .. } => "task_complete",
            SimEvent::StageComplete { .. } => "stage_complete",
            SimEvent::BoIteration { .. } => "bo_iteration",
            SimEvent::FaultInjected { .. } => "fault_injected",
            SimEvent::InvocationRetried { .. } => "invocation_retried",
            SimEvent::InvocationTimedOut { .. } => "invocation_timed_out",
            SimEvent::QosViolation { .. } => "qos_violation",
            SimEvent::SurrogateTierSwitch { .. } => "surrogate_tier_switch",
            SimEvent::TenantAdmit { .. } => "tenant_admit",
            SimEvent::TenantComplete { .. } => "tenant_complete",
            SimEvent::TenantShed { .. } => "tenant_shed",
            SimEvent::PredictiveReject { .. } => "predictive_reject",
        }
    }

    /// Encodes the event as one deterministic JSON object (no trailing
    /// newline). Field order is fixed, floats use Rust's shortest
    /// round-trip formatting, so identical events always produce
    /// byte-identical lines — the property the golden-trace and
    /// determinism tests rely on.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push('{');
        push_str_field(&mut s, "type", self.kind());
        push_u64_field(&mut s, "at_us", self.at().as_micros());
        match *self {
            SimEvent::ColdStartBegin {
                function,
                container,
                worker,
                memory_mb,
                slots,
                prewarmed,
                ..
            } => {
                push_u64_field(&mut s, "function", function as u64);
                push_u64_field(&mut s, "container", container);
                push_u64_field(&mut s, "worker", worker as u64);
                push_f64_field(&mut s, "memory_mb", memory_mb);
                push_u64_field(&mut s, "slots", slots as u64);
                push_bool_field(&mut s, "prewarmed", prewarmed);
            }
            SimEvent::ColdStartEnd {
                function,
                container,
                worker,
                tasks_attached,
                ..
            } => {
                push_u64_field(&mut s, "function", function as u64);
                push_u64_field(&mut s, "container", container);
                push_u64_field(&mut s, "worker", worker as u64);
                push_u64_field(&mut s, "tasks_attached", tasks_attached as u64);
            }
            SimEvent::WarmHit {
                function,
                container,
                ..
            } => {
                push_u64_field(&mut s, "function", function as u64);
                push_u64_field(&mut s, "container", container);
            }
            SimEvent::Eviction {
                function,
                container,
                worker,
                memory_mb,
                reason,
                ..
            } => {
                push_u64_field(&mut s, "function", function as u64);
                push_u64_field(&mut s, "container", container);
                push_u64_field(&mut s, "worker", worker as u64);
                push_f64_field(&mut s, "memory_mb", memory_mb);
                push_str_field(&mut s, "reason", reason.as_str());
            }
            SimEvent::PoolResize {
                function,
                target,
                predicted_mean,
                predicted_std,
                booting,
                idle,
                busy,
                ..
            } => {
                push_u64_field(&mut s, "function", function as u64);
                push_u64_field(&mut s, "target", target as u64);
                push_f64_field(&mut s, "predicted_mean", predicted_mean);
                push_f64_field(&mut s, "predicted_std", predicted_std);
                push_u64_field(&mut s, "booting", booting as u64);
                push_u64_field(&mut s, "idle", idle as u64);
                push_u64_field(&mut s, "busy", busy as u64);
            }
            SimEvent::StageDispatch {
                workflow,
                instance,
                stage,
                function,
                tasks,
                ..
            } => {
                push_u64_field(&mut s, "workflow", workflow as u64);
                push_u64_field(&mut s, "instance", instance as u64);
                push_u64_field(&mut s, "stage", stage as u64);
                push_u64_field(&mut s, "function", function as u64);
                push_u64_field(&mut s, "tasks", tasks as u64);
            }
            SimEvent::StageQueued {
                workflow,
                instance,
                stage,
                function,
                ..
            } => {
                push_u64_field(&mut s, "workflow", workflow as u64);
                push_u64_field(&mut s, "instance", instance as u64);
                push_u64_field(&mut s, "stage", stage as u64);
                push_u64_field(&mut s, "function", function as u64);
            }
            SimEvent::TaskComplete {
                workflow,
                instance,
                stage,
                container,
                ..
            } => {
                push_u64_field(&mut s, "workflow", workflow as u64);
                push_u64_field(&mut s, "instance", instance as u64);
                push_u64_field(&mut s, "stage", stage as u64);
                push_u64_field(&mut s, "container", container);
            }
            SimEvent::StageComplete {
                workflow,
                instance,
                stage,
                ..
            } => {
                push_u64_field(&mut s, "workflow", workflow as u64);
                push_u64_field(&mut s, "instance", instance as u64);
                push_u64_field(&mut s, "stage", stage as u64);
            }
            SimEvent::BoIteration {
                iteration,
                ref candidate,
                ei,
                latency,
                cost,
                ..
            } => {
                push_u64_field(&mut s, "iteration", iteration as u64);
                s.push_str("\"candidate\":[");
                for (i, x) in candidate.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    push_f64(&mut s, *x);
                }
                s.push_str("],");
                push_f64_field(&mut s, "ei", ei);
                push_f64_field(&mut s, "latency", latency);
                push_f64_field(&mut s, "cost", cost);
            }
            SimEvent::FaultInjected {
                kind_of,
                function,
                container,
                magnitude,
                ..
            } => {
                push_str_field(&mut s, "kind", kind_of.as_str());
                push_u64_field(&mut s, "function", function as u64);
                push_opt_u64_field(&mut s, "container", container);
                push_f64_field(&mut s, "magnitude", magnitude);
            }
            SimEvent::InvocationRetried {
                workflow,
                instance,
                stage,
                function,
                attempt,
                ..
            } => {
                push_u64_field(&mut s, "workflow", workflow as u64);
                push_u64_field(&mut s, "instance", instance as u64);
                push_u64_field(&mut s, "stage", stage as u64);
                push_u64_field(&mut s, "function", function as u64);
                push_u64_field(&mut s, "attempt", attempt as u64);
            }
            SimEvent::InvocationTimedOut {
                workflow,
                instance,
                stage,
                function,
                container,
                ..
            } => {
                push_u64_field(&mut s, "workflow", workflow as u64);
                push_u64_field(&mut s, "instance", instance as u64);
                push_u64_field(&mut s, "stage", stage as u64);
                push_u64_field(&mut s, "function", function as u64);
                push_u64_field(&mut s, "container", container);
            }
            SimEvent::QosViolation {
                workflow,
                instance,
                latency_secs,
                qos_secs,
                ..
            } => {
                push_u64_field(&mut s, "workflow", workflow as u64);
                push_u64_field(&mut s, "instance", instance as u64);
                push_f64_field(&mut s, "latency_secs", latency_secs);
                push_f64_field(&mut s, "qos_secs", qos_secs);
            }
            SimEvent::SurrogateTierSwitch {
                app,
                train,
                inducing,
                ..
            } => {
                push_u64_field(&mut s, "app", app as u64);
                push_u64_field(&mut s, "train", train as u64);
                push_u64_field(&mut s, "inducing", inducing as u64);
            }
            SimEvent::TenantAdmit {
                tenant,
                workflow,
                instance,
                ..
            } => {
                push_u64_field(&mut s, "tenant", tenant as u64);
                push_u64_field(&mut s, "workflow", workflow as u64);
                push_u64_field(&mut s, "instance", instance);
            }
            SimEvent::TenantComplete {
                tenant,
                workflow,
                instance,
                latency_secs,
                ..
            } => {
                push_u64_field(&mut s, "tenant", tenant as u64);
                push_u64_field(&mut s, "workflow", workflow as u64);
                push_u64_field(&mut s, "instance", instance);
                push_f64_field(&mut s, "latency_secs", latency_secs);
            }
            SimEvent::TenantShed {
                tenant,
                workflow,
                reason,
                ..
            } => {
                push_u64_field(&mut s, "tenant", tenant as u64);
                push_u64_field(&mut s, "workflow", workflow as u64);
                push_str_field(&mut s, "reason", reason.as_str());
            }
            SimEvent::PredictiveReject {
                tenant,
                workflow,
                predicted_secs,
                sigma_secs,
                slo_secs,
                ..
            } => {
                push_u64_field(&mut s, "tenant", tenant as u64);
                push_u64_field(&mut s, "workflow", workflow as u64);
                push_f64_field(&mut s, "predicted_secs", predicted_secs);
                push_f64_field(&mut s, "sigma_secs", sigma_secs);
                push_f64_field(&mut s, "slo_secs", slo_secs);
            }
        }
        // Every field helper appends a trailing comma; replace the last
        // with the closing brace.
        let last = s.pop();
        debug_assert_eq!(last, Some(','));
        s.push('}');
        s
    }
}

fn push_key(s: &mut String, key: &str) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":");
}

fn push_str_field(s: &mut String, key: &str, value: &str) {
    push_key(s, key);
    s.push('"');
    s.push_str(value);
    s.push_str("\",");
}

fn push_u64_field(s: &mut String, key: &str, value: u64) {
    push_key(s, key);
    let _ = write!(s, "{value},");
}

fn push_opt_u64_field(s: &mut String, key: &str, value: Option<u64>) {
    push_key(s, key);
    match value {
        Some(v) => {
            let _ = write!(s, "{v},");
        }
        None => s.push_str("null,"),
    }
}

fn push_bool_field(s: &mut String, key: &str, value: bool) {
    push_key(s, key);
    s.push_str(if value { "true," } else { "false," });
}

fn push_f64(s: &mut String, value: f64) {
    if value.is_finite() {
        // Shortest round-trip formatting; force a decimal point so the
        // value reads back as a float rather than an integer.
        let mut t = String::with_capacity(24);
        let _ = write!(t, "{value}");
        if !t.contains(['.', 'e', 'E']) {
            t.push_str(".0");
        }
        s.push_str(&t);
    } else {
        // JSON has no NaN/inf; encode as null.
        s.push_str("null");
    }
}

fn push_f64_field(s: &mut String, key: &str, value: f64) {
    push_key(s, key);
    push_f64(s, value);
    s.push(',');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_fields_are_ordered_and_typed() {
        let ev = SimEvent::ColdStartBegin {
            at: SimTime::from_millis(1500),
            function: 2,
            container: 7,
            worker: 1,
            memory_mb: 512.0,
            slots: 4,
            prewarmed: true,
        };
        assert_eq!(
            ev.to_json(),
            "{\"type\":\"cold_start_begin\",\"at_us\":1500000,\"function\":2,\
             \"container\":7,\"worker\":1,\"memory_mb\":512.0,\"slots\":4,\
             \"prewarmed\":true}"
        );
    }

    #[test]
    fn float_encoding_round_trips() {
        let ev = SimEvent::QosViolation {
            at: SimTime::from_micros(3),
            workflow: 0,
            instance: 5,
            latency_secs: 1.25,
            qos_secs: 1.0,
        };
        let j = ev.to_json();
        assert!(j.contains("\"latency_secs\":1.25"), "{j}");
        assert!(j.contains("\"qos_secs\":1.0"), "{j}");
    }

    #[test]
    fn candidate_vector_encodes_as_array() {
        let ev = SimEvent::BoIteration {
            at: SimTime::ZERO,
            iteration: 3,
            candidate: vec![1.0, 2.5],
            ei: 0.125,
            latency: 2.0,
            cost: 3.5,
        };
        let j = ev.to_json();
        assert!(j.contains("\"candidate\":[1.0,2.5]"), "{j}");
    }

    #[test]
    fn fault_injected_encodes_optional_container() {
        let with = SimEvent::FaultInjected {
            at: SimTime::from_millis(250),
            kind_of: FaultKind::Crash,
            function: 3,
            container: Some(12),
            magnitude: 0.0,
        };
        assert_eq!(
            with.to_json(),
            "{\"type\":\"fault_injected\",\"at_us\":250000,\"kind\":\"crash\",\
             \"function\":3,\"container\":12,\"magnitude\":0.0}"
        );
        let without = SimEvent::FaultInjected {
            at: SimTime::from_millis(250),
            kind_of: FaultKind::HandoffDelay,
            function: 3,
            container: None,
            magnitude: 1.5,
        };
        assert!(
            without.to_json().contains("\"container\":null"),
            "{}",
            without.to_json()
        );
    }

    #[test]
    fn retry_and_timeout_round_trip() {
        let retry = SimEvent::InvocationRetried {
            at: SimTime::from_secs(2),
            workflow: 0,
            instance: 4,
            stage: 1,
            function: 6,
            attempt: 2,
        };
        assert_eq!(retry.kind(), "invocation_retried");
        assert!(
            retry.to_json().contains("\"attempt\":2"),
            "{}",
            retry.to_json()
        );
        let timeout = SimEvent::InvocationTimedOut {
            at: SimTime::from_secs(3),
            workflow: 1,
            instance: 0,
            stage: 2,
            function: 5,
            container: 9,
        };
        assert_eq!(timeout.kind(), "invocation_timed_out");
        assert!(
            timeout.to_json().contains("\"container\":9"),
            "{}",
            timeout.to_json()
        );
        assert_eq!(timeout.at(), SimTime::from_secs(3));
    }

    #[test]
    fn fault_kind_names_are_stable() {
        assert_eq!(FaultKind::BootFail.as_str(), "boot_fail");
        assert_eq!(FaultKind::Crash.as_str(), "crash");
        assert_eq!(FaultKind::Straggler.as_str(), "straggler");
        assert_eq!(FaultKind::HandoffDelay.as_str(), "handoff_delay");
        assert_eq!(EvictionReason::Fault.as_str(), "fault");
    }

    #[test]
    fn tenant_events_encode_deterministically() {
        let admit = SimEvent::TenantAdmit {
            at: SimTime::from_millis(750),
            tenant: 1,
            workflow: 0,
            instance: 42,
        };
        assert_eq!(
            admit.to_json(),
            "{\"type\":\"tenant_admit\",\"at_us\":750000,\"tenant\":1,\
             \"workflow\":0,\"instance\":42}"
        );
        let shed = SimEvent::TenantShed {
            at: SimTime::from_secs(2),
            tenant: 0,
            workflow: 3,
            reason: ShedReason::Queue,
        };
        assert!(shed.to_json().contains("\"reason\":\"queue\""));
        assert_eq!(ShedReason::Inflight.as_str(), "inflight");
        let done = SimEvent::TenantComplete {
            at: SimTime::from_secs(3),
            tenant: 1,
            workflow: 0,
            instance: 42,
            latency_secs: 0.5,
        };
        assert!(done.to_json().contains("\"latency_secs\":0.5"));
        assert_eq!(done.kind(), "tenant_complete");
    }

    #[test]
    fn predictive_reject_carries_the_criterion() {
        let ev = SimEvent::PredictiveReject {
            at: SimTime::from_secs(9),
            tenant: 2,
            workflow: 1,
            predicted_secs: 2.5,
            sigma_secs: 0.25,
            slo_secs: 1.5,
        };
        assert_eq!(ev.kind(), "predictive_reject");
        assert_eq!(
            ev.to_json(),
            "{\"type\":\"predictive_reject\",\"at_us\":9000000,\"tenant\":2,\
             \"workflow\":1,\"predicted_secs\":2.5,\"sigma_secs\":0.25,\
             \"slo_secs\":1.5}"
        );
        assert_eq!(ev.at(), SimTime::from_secs(9));
    }

    #[test]
    fn at_accessor_matches_stamp() {
        let ev = SimEvent::WarmHit {
            at: SimTime::from_secs(9),
            function: 0,
            container: 1,
        };
        assert_eq!(ev.at(), SimTime::from_secs(9));
        assert_eq!(ev.kind(), "warm_hit");
    }
}
