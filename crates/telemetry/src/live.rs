//! Live (non-replay) sink mode for a long-running control plane.
//!
//! Replay sinks ([`crate::Recorder`], [`crate::JsonlWriter`]) assume a
//! bounded run: buffer everything, flush once at the end. A service that
//! never ends needs the opposite contract — bounded memory, periodic
//! flushes, and cheap aggregate counters that can be scraped while events
//! keep streaming. [`LiveSink`] provides that: it wraps any downstream
//! [`EventSink`], forwards every event, force-flushes the downstream every
//! `flush_every` events, and maintains per-kind counters (keyed by
//! [`SimEvent::kind`]) readable at any time without stopping the stream.

use std::collections::BTreeMap;

use crate::event::SimEvent;
use crate::sink::EventSink;

/// Aggregate counters scraped from a [`LiveSink`] while it runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LiveStats {
    /// Events seen, total.
    pub events: u64,
    /// Flushes forced by the periodic cadence (excludes terminal flush).
    pub periodic_flushes: u64,
    /// Events seen per [`SimEvent::kind`] tag, sorted by kind.
    pub by_kind: BTreeMap<&'static str, u64>,
}

impl LiveStats {
    /// Count for one event kind (0 when never seen).
    pub fn kind(&self, kind: &str) -> u64 {
        self.by_kind.get(kind).copied().unwrap_or(0)
    }
}

/// An [`EventSink`] adapter for long-running processes: forwards to a
/// downstream sink, flushes it every `flush_every` events, and keeps
/// scrapeable per-kind counters.
pub struct LiveSink<S> {
    downstream: S,
    flush_every: u64,
    since_flush: u64,
    stats: LiveStats,
}

impl<S: EventSink> LiveSink<S> {
    /// Wraps `downstream`, flushing it after every `flush_every` events.
    ///
    /// # Panics
    ///
    /// Panics if `flush_every` is zero.
    pub fn new(downstream: S, flush_every: u64) -> Self {
        assert!(flush_every > 0, "flush cadence must be positive");
        LiveSink {
            downstream,
            flush_every,
            since_flush: 0,
            stats: LiveStats::default(),
        }
    }

    /// A snapshot of the aggregate counters.
    pub fn stats(&self) -> LiveStats {
        self.stats.clone()
    }

    /// Borrows the downstream sink (e.g. to inspect a wrapped recorder).
    pub fn downstream(&self) -> &S {
        &self.downstream
    }

    /// Consumes the adapter, flushing and returning the downstream sink.
    pub fn into_downstream(mut self) -> S {
        self.downstream.flush();
        self.downstream
    }
}

impl<S: EventSink> EventSink for LiveSink<S> {
    fn record(&mut self, event: &SimEvent) {
        self.stats.events += 1;
        *self.stats.by_kind.entry(event.kind()).or_insert(0) += 1;
        self.downstream.record(event);
        self.since_flush += 1;
        if self.since_flush >= self.flush_every {
            self.since_flush = 0;
            self.stats.periodic_flushes += 1;
            self.downstream.flush();
        }
    }

    fn flush(&mut self) {
        self.since_flush = 0;
        self.downstream.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::Recorder;
    use aqua_sim::SimTime;

    /// A sink that counts flushes, for asserting the cadence.
    #[derive(Default)]
    struct FlushCounter {
        records: u64,
        flushes: u64,
    }

    impl EventSink for FlushCounter {
        fn record(&mut self, _event: &SimEvent) {
            self.records += 1;
        }
        fn flush(&mut self) {
            self.flushes += 1;
        }
    }

    fn hit(us: u64) -> SimEvent {
        SimEvent::WarmHit {
            at: SimTime::from_micros(us),
            function: 0,
            container: us,
        }
    }

    fn cold(us: u64) -> SimEvent {
        SimEvent::ColdStartBegin {
            at: SimTime::from_micros(us),
            function: 0,
            container: us,
            worker: 0,
            memory_mb: 128.0,
            slots: 1,
            prewarmed: false,
        }
    }

    #[test]
    fn flushes_on_cadence_and_counts_kinds() {
        let mut live = LiveSink::new(FlushCounter::default(), 3);
        for i in 0..7 {
            live.record(&hit(i));
        }
        live.record(&cold(7));
        let stats = live.stats();
        assert_eq!(stats.events, 8);
        assert_eq!(stats.kind("warm_hit"), 7);
        assert_eq!(stats.kind("cold_start_begin"), 1);
        assert_eq!(stats.kind("never_seen"), 0);
        // 8 events at cadence 3 → flushes after events 3 and 6.
        assert_eq!(stats.periodic_flushes, 2);
        assert_eq!(live.downstream().flushes, 2);
        assert_eq!(live.downstream().records, 8);
    }

    #[test]
    fn explicit_flush_resets_the_cadence() {
        let mut live = LiveSink::new(FlushCounter::default(), 3);
        live.record(&hit(0));
        live.record(&hit(1));
        live.flush();
        // The cadence restarted: two more events stay under the threshold.
        live.record(&hit(2));
        live.record(&hit(3));
        assert_eq!(live.stats().periodic_flushes, 0);
        assert_eq!(live.downstream().flushes, 1);
    }

    #[test]
    fn into_downstream_flushes_and_returns_the_wrapped_sink() {
        let mut live = LiveSink::new(Recorder::unbounded(), 1000);
        live.record(&hit(0));
        live.record(&hit(1));
        let rec = live.into_downstream();
        assert_eq!(rec.events().len(), 2);
    }

    #[test]
    #[should_panic(expected = "flush cadence must be positive")]
    fn zero_cadence_is_rejected() {
        let _ = LiveSink::new(Recorder::unbounded(), 0);
    }
}
