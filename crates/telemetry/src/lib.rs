//! Typed event-trace telemetry for the AQUATOPE reproduction.
//!
//! Every scheduling-relevant moment in the simulator and its controllers —
//! container cold starts, warm hits, keep-alive evictions, pool-resize
//! decisions with their predicted demand and uncertainty, stage
//! dispatch/queue/complete, Bayesian-optimization iterations, and QoS
//! violations — is emitted as a [`SimEvent`] through a pluggable
//! [`EventSink`]. On top of the stream sit:
//!
//! * [`Recorder`] — an in-memory (optionally bounded) trace recorder;
//! * [`JsonlWriter`] — line-delimited JSON export for offline analysis;
//! * [`InvariantChecker`] — online checks of simulator accounting
//!   invariants (per-worker container conservation, no memory
//!   oversubscription, monotone event time, warm-hit ⇔ no cold-start
//!   accounting);
//! * [`diff_traces`] / [`diff_jsonl`] — replay comparison reporting the
//!   first divergent event between two traces, the backbone of the
//!   determinism and golden-trace regression tests.
//!
//! The default [`Telemetry`] handle is a **null sink**: one `Option`
//! branch on the hot path and the event is never even constructed (use
//! [`Telemetry::emit_with`]), so an uninstrumented run pays nothing.
//!
//! # Examples
//!
//! ```
//! use aqua_telemetry::{Recorder, SimEvent, Telemetry};
//! use aqua_sim::SimTime;
//!
//! let (tel, rec) = Telemetry::recording();
//! tel.emit_with(|| SimEvent::WarmHit {
//!     at: SimTime::from_millis(5),
//!     function: 0,
//!     container: 42,
//! });
//! assert_eq!(rec.lock().unwrap().events().len(), 1);
//! ```

pub mod diff;
pub mod event;
pub mod invariant;
pub mod live;
pub mod sink;

pub use diff::{diff_jsonl, diff_traces, Divergence};
pub use event::{EvictionReason, FaultKind, ShedReason, SimEvent};
pub use invariant::InvariantChecker;
pub use live::{LiveSink, LiveStats};
pub use sink::{EventSink, Fanout, JsonlWriter, Recorder, SharedSink, Telemetry};
