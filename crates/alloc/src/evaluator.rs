//! The black-box configuration evaluator backed by the FaaS simulator.

use aqua_faas::types::ConfigSpace;
use aqua_faas::{FaasSim, StageConfigs, WorkflowDag};

/// Aggregated result of profiling one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleResult {
    /// Mean end-to-end latency over the profiling samples, seconds.
    pub latency: f64,
    /// Mean execution cost over the profiling samples.
    pub cost: f64,
    /// Raw per-sample `(latency, cost)` pairs.
    pub raw: Vec<(f64, f64)>,
}

/// A black-box mapping from configuration points to observed performance.
///
/// Points live in `[0,1]^{3·stages}` and are decoded through the
/// evaluator's [`ConfigSpace`].
pub trait ConfigEvaluator {
    /// Profiles the decoded configuration and returns aggregate metrics.
    fn evaluate(&mut self, u: &[f64]) -> SampleResult;

    /// Number of workflow stages (the dimension is `3 ×` this).
    fn stages(&self) -> usize;

    /// The decoding space.
    fn space(&self) -> &ConfigSpace;

    /// Search dimensionality (3 knobs per stage).
    fn dim(&self) -> usize {
        3 * self.stages()
    }
}

/// Evaluator that profiles configurations on a [`FaasSim`].
#[derive(Debug, Clone)]
pub struct SimEvaluator {
    sim: FaasSim,
    dag: WorkflowDag,
    space: ConfigSpace,
    samples: usize,
    warm: bool,
    price_cpu: f64,
    price_mem: f64,
    evaluations: usize,
}

impl SimEvaluator {
    /// Creates an evaluator profiling `samples` workflow runs per
    /// configuration (`warm = true` routes them through a pre-warmed pool,
    /// the paper's §5.3 batch-evaluation setup).
    pub fn new(
        sim: FaasSim,
        dag: WorkflowDag,
        space: ConfigSpace,
        samples: usize,
        warm: bool,
    ) -> Self {
        assert!(samples > 0, "need at least one sample per evaluation");
        SimEvaluator {
            sim,
            dag,
            space,
            samples,
            warm,
            price_cpu: 1.0,
            price_mem: 1.0,
            evaluations: 0,
        }
    }

    /// Overrides the linear price model (defaults: 1.0 per core·s and per
    /// GB·s, so cost ≈ CPU-time + memory-time).
    pub fn with_prices(mut self, price_cpu: f64, price_mem: f64) -> Self {
        assert!(
            price_cpu >= 0.0 && price_mem >= 0.0,
            "prices must be non-negative"
        );
        self.price_cpu = price_cpu;
        self.price_mem = price_mem;
        self
    }

    /// Total evaluator calls so far (the search-budget meter).
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// The workflow being profiled.
    pub fn dag(&self) -> &WorkflowDag {
        &self.dag
    }

    /// Replaces the workflow (used to model behaviour change, Fig. 16).
    pub fn set_dag(&mut self, dag: WorkflowDag) {
        assert_eq!(
            dag.num_stages(),
            self.dag.num_stages(),
            "stage count must be stable"
        );
        self.dag = dag;
    }

    /// Replaces the backing simulator (e.g. to raise the noise level).
    pub fn set_sim(&mut self, sim: FaasSim) {
        self.sim = sim;
    }
}

impl ConfigEvaluator for SimEvaluator {
    fn evaluate(&mut self, u: &[f64]) -> SampleResult {
        assert_eq!(u.len(), self.dim(), "dimension mismatch");
        self.evaluations += 1;
        let configs = StageConfigs::decode(&self.space, u);
        let raw = self.sim.profile_config(
            &self.dag,
            &configs,
            self.samples,
            self.warm,
            self.price_cpu,
            self.price_mem,
        );
        let latency = raw.iter().map(|s| s.0).sum::<f64>() / raw.len().max(1) as f64;
        let cost = raw.iter().map(|s| s.1).sum::<f64>() / raw.len().max(1) as f64;
        SampleResult { latency, cost, raw }
    }

    fn stages(&self) -> usize {
        self.dag.num_stages()
    }

    fn space(&self) -> &ConfigSpace {
        &self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::tiny_problem;

    #[test]
    fn evaluation_returns_sane_metrics() {
        let (sim, dag, _) = tiny_problem(1);
        let mut eval = SimEvaluator::new(sim, dag, ConfigSpace::default(), 3, true);
        let r = eval.evaluate(&vec![0.5; eval.dim()]);
        assert!(r.latency > 0.0);
        assert!(r.cost > 0.0);
        // Each profiling window launches a burst of 2 instances.
        assert_eq!(r.raw.len(), 6);
        assert_eq!(eval.evaluations(), 1);
    }

    #[test]
    fn more_cpu_lowers_latency_raises_rate_of_cost() {
        let (sim, dag, _) = tiny_problem(2);
        let mut eval = SimEvaluator::new(sim, dag, ConfigSpace::default(), 4, true);
        let dim = eval.dim();
        let mut low = vec![0.1; dim];
        let mut high = vec![0.9; dim];
        // Fix memory and concurrency mid-range; sweep CPU only.
        for s in 0..dim / 3 {
            low[3 * s + 1] = 0.7;
            high[3 * s + 1] = 0.7;
            low[3 * s + 2] = 0.0;
            high[3 * s + 2] = 0.0;
        }
        let r_low = eval.evaluate(&low);
        let r_high = eval.evaluate(&high);
        assert!(
            r_high.latency < r_low.latency,
            "more CPU must be faster: {} vs {}",
            r_high.latency,
            r_low.latency
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dimension_is_rejected() {
        let (sim, dag, _) = tiny_problem(3);
        let mut eval = SimEvaluator::new(sim, dag, ConfigSpace::default(), 1, true);
        let _ = eval.evaluate(&[0.5]);
    }
}
