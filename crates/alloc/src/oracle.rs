//! The offline ORACLE: iterated coordinate descent over the quantized
//! configuration grid.
//!
//! The paper's ORACLE exhaustively searches the entire allocation space,
//! which is tractable on their coarse per-function grid but explodes
//! combinatorially for 6–8-stage workflows. We substitute iterated
//! per-stage coordinate descent from a generous starting point: on these
//! workloads (latency monotone in per-stage resources, cost separable per
//! stage) it converges to the same optimum while staying polynomial. The
//! substitution is recorded in DESIGN.md.

use crate::evaluator::ConfigEvaluator;
use crate::{outcome_from_history, ResourceManager, SearchOutcome, SearchStep};

/// Exhaustive-per-stage coordinate descent.
#[derive(Debug, Clone)]
pub struct OracleSearch {
    /// Grid resolution per knob (values per axis).
    pub cpu_steps: usize,
    /// Memory grid resolution.
    pub mem_steps: usize,
    /// Concurrency settings tried.
    pub conc_steps: usize,
    /// Full passes over all stages.
    pub passes: usize,
}

impl Default for OracleSearch {
    fn default() -> Self {
        OracleSearch {
            cpu_steps: 6,
            mem_steps: 5,
            conc_steps: 2,
            passes: 2,
        }
    }
}

impl OracleSearch {
    /// Creates the oracle with default grid resolution.
    pub fn new() -> Self {
        OracleSearch::default()
    }
}

impl ResourceManager for OracleSearch {
    fn name(&self) -> &'static str {
        "Oracle"
    }

    /// `budget` caps total evaluations as a safety net; the oracle
    /// normally uses `passes × stages × grid` evaluations.
    fn optimize(
        &mut self,
        eval: &mut dyn ConfigEvaluator,
        qos_secs: f64,
        budget: usize,
    ) -> SearchOutcome {
        let stages = eval.stages();
        let dim = eval.dim();
        // Start from the most generous configuration: if anything is
        // feasible, this is.
        let mut current = vec![1.0; dim];
        for s in 0..stages {
            current[3 * s + 2] = 0.0; // concurrency 1
        }
        let mut history = Vec::new();
        let first = eval.evaluate(&current);
        history.push(SearchStep {
            u: current.clone(),
            latency: first.latency,
            cost: first.cost,
        });
        let mut best_cost = if first.latency <= qos_secs {
            first.cost
        } else {
            f64::INFINITY
        };

        'outer: for _ in 0..self.passes {
            let mut improved = false;
            for s in 0..stages {
                for ci in 0..self.cpu_steps {
                    for mi in 0..self.mem_steps {
                        for ki in 0..self.conc_steps {
                            if history.len() >= budget {
                                break 'outer;
                            }
                            let mut u = current.clone();
                            u[3 * s] = ci as f64 / (self.cpu_steps - 1).max(1) as f64;
                            u[3 * s + 1] = mi as f64 / (self.mem_steps - 1).max(1) as f64;
                            u[3 * s + 2] = ki as f64 / (self.conc_steps - 1).max(1) as f64;
                            if u == current {
                                continue;
                            }
                            let r = eval.evaluate(&u);
                            history.push(SearchStep {
                                u: u.clone(),
                                latency: r.latency,
                                cost: r.cost,
                            });
                            if r.latency <= qos_secs && r.cost < best_cost {
                                best_cost = r.cost;
                                current = u;
                                improved = true;
                            }
                        }
                    }
                }
            }
            if !improved {
                break;
            }
        }
        outcome_from_history(history, qos_secs, eval.space())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::RandomSearch;
    use crate::evaluator::SimEvaluator;
    use crate::testkit::tiny_problem;
    use aqua_faas::types::ConfigSpace;

    #[test]
    fn oracle_is_at_least_as_good_as_random() {
        let (sim, dag, qos) = tiny_problem(90);
        let mut eval = SimEvaluator::new(sim, dag, ConfigSpace::default(), 2, true);
        let mut oracle = OracleSearch::default();
        let oracle_out = oracle.optimize(&mut eval, qos, 400);
        let oracle_cost = oracle_out
            .best
            .as_ref()
            .expect("oracle must find feasible")
            .1;

        let (sim, dag, qos) = tiny_problem(90);
        let mut eval = SimEvaluator::new(sim, dag, ConfigSpace::default(), 2, true);
        let random_out = RandomSearch::new(5).optimize(&mut eval, qos, 60);
        let random_cost = random_out.best.map(|b| b.1).unwrap_or(f64::INFINITY);

        assert!(
            oracle_cost <= random_cost * 1.02,
            "oracle {oracle_cost} must be ≤ random {random_cost}"
        );
    }

    #[test]
    fn oracle_meets_qos() {
        let (sim, dag, qos) = tiny_problem(91);
        let mut eval = SimEvaluator::new(sim, dag, ConfigSpace::default(), 2, true);
        let out = OracleSearch::default().optimize(&mut eval, qos, 400);
        let (_, _, lat) = out.best.expect("feasible");
        assert!(lat <= qos);
    }

    #[test]
    fn respects_budget_cap() {
        let (sim, dag, qos) = tiny_problem(92);
        let mut eval = SimEvaluator::new(sim, dag, ConfigSpace::default(), 1, true);
        let out = OracleSearch::default().optimize(&mut eval, qos, 10);
        assert!(out.evaluations() <= 10);
    }
}
