//! Per-function resource managers (paper §5, §8.2).
//!
//! Everything behind one trait, [`ResourceManager`]: given a black-box
//! [`ConfigEvaluator`] (the simulated cluster) and an end-to-end QoS, find
//! per-stage resource configurations that minimize execution cost.
//!
//! * [`RandomSearch`] — budgeted random sampling (Starfish-style tuner).
//! * [`AutoscaleRm`] — usage-feedback scaling applied uniformly to all
//!   stages (EMARS/ENSURE-style), no learning.
//! * [`Clite`] — the prior state-of-the-art BO manager: a single GP over a
//!   hand-crafted penalized objective, sequential EI, no noise handling.
//! * [`AquatopeRm`] — the paper's customized BO: separate fixed-noise cost
//!   and latency GPs, constrained noisy EI with QMC, batch sampling (q=3),
//!   leave-one-out anomaly pruning, and sliding-window change adaptation.
//! * [`OracleSearch`] — iterated coordinate descent over the quantized
//!   grid, the stand-in for the paper's exhaustive offline ORACLE
//!   (documented substitution: full cross-product search is intractable
//!   for 18–24-dimensional spaces, coordinate descent converges to the
//!   same optimum on these monotone-response workloads).
//!
//! # Examples
//!
//! ```no_run
//! use aqua_alloc::{AquatopeRm, ResourceManager, SimEvaluator};
//! use aqua_faas::prelude::*;
//! use aqua_faas::types::ConfigSpace;
//!
//! # let (sim, dag, qos) = aqua_alloc::testkit::tiny_problem(1);
//! let mut eval = SimEvaluator::new(sim, dag, ConfigSpace::default(), 3, true);
//! let mut manager = AquatopeRm::new(7);
//! let outcome = manager.optimize(&mut eval, qos, 30);
//! assert!(outcome.best.is_some());
//! ```

pub mod aquatope;
pub mod baselines;
pub mod evaluator;
pub mod online;
pub mod oracle;
pub mod testkit;

pub use aquatope::{AquatopeRm, AquatopeRmConfig};
pub use baselines::{AutoscaleRm, Clite, RandomSearch};
pub use evaluator::{ConfigEvaluator, SampleResult, SimEvaluator};
pub use online::{OnlineLatencyModel, OnlineModelStats, SurrogateTier, TierSwitch};
pub use oracle::OracleSearch;

use aqua_faas::StageConfigs;

/// One evaluated configuration along a search trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchStep {
    /// The point in `[0,1]^{3·stages}` that was decoded and evaluated.
    pub u: Vec<f64>,
    /// Mean end-to-end latency observed, seconds.
    pub latency: f64,
    /// Mean execution cost observed.
    pub cost: f64,
}

/// Result of a search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Best QoS-feasible configuration found, with its observed cost and
    /// latency (`None` if nothing feasible was found).
    pub best: Option<(StageConfigs, f64, f64)>,
    /// Every evaluation, in order.
    pub history: Vec<SearchStep>,
}

impl SearchOutcome {
    /// Best feasible cost after the first `k` evaluations (`None` if no
    /// feasible point was seen yet) — the Fig. 12 convergence metric.
    pub fn best_cost_after(&self, k: usize, qos: f64) -> Option<f64> {
        self.history[..k.min(self.history.len())]
            .iter()
            .filter(|s| s.latency <= qos)
            .map(|s| s.cost)
            .fold(None, |acc, c| Some(acc.map_or(c, |a: f64| a.min(c))))
    }

    /// Number of evaluations performed.
    pub fn evaluations(&self) -> usize {
        self.history.len()
    }
}

/// A strategy that searches the resource-configuration space.
pub trait ResourceManager {
    /// Short display name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Runs the search with at most `budget` evaluator calls, aiming to
    /// minimize cost subject to `latency ≤ qos_secs`.
    fn optimize(
        &mut self,
        eval: &mut dyn evaluator::ConfigEvaluator,
        qos_secs: f64,
        budget: usize,
    ) -> SearchOutcome;
}

/// Builds the outcome from a history, selecting the best feasible step.
pub(crate) fn outcome_from_history(
    history: Vec<SearchStep>,
    qos: f64,
    space: &aqua_faas::types::ConfigSpace,
) -> SearchOutcome {
    let best = history
        .iter()
        .filter(|s| s.latency <= qos)
        .min_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite cost"))
        .map(|s| (StageConfigs::decode(space, &s.u), s.cost, s.latency));
    SearchOutcome { best, history }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_faas::types::ConfigSpace;

    #[test]
    fn best_cost_after_tracks_feasible_prefix() {
        let history = vec![
            SearchStep {
                u: vec![0.5; 3],
                latency: 9.0,
                cost: 1.0,
            }, // infeasible
            SearchStep {
                u: vec![0.5; 3],
                latency: 1.0,
                cost: 5.0,
            },
            SearchStep {
                u: vec![0.5; 3],
                latency: 1.0,
                cost: 3.0,
            },
        ];
        let out = outcome_from_history(history, 2.0, &ConfigSpace::default());
        assert_eq!(out.best_cost_after(1, 2.0), None);
        assert_eq!(out.best_cost_after(2, 2.0), Some(5.0));
        assert_eq!(out.best_cost_after(3, 2.0), Some(3.0));
        let (_, cost, lat) = out.best.clone().unwrap();
        assert_eq!(cost, 3.0);
        assert_eq!(lat, 1.0);
    }

    #[test]
    fn no_feasible_points_gives_none() {
        let history = vec![SearchStep {
            u: vec![0.0; 3],
            latency: 10.0,
            cost: 1.0,
        }];
        let out = outcome_from_history(history, 1.0, &ConfigSpace::default());
        assert!(out.best.is_none());
        assert_eq!(out.evaluations(), 1);
    }
}
