//! Baseline resource managers: random search, autoscaling, and CLITE.

use aqua_gp::{expected_improvement, Gp, GpConfig, Halton};
use aqua_sim::SimRng;

use crate::evaluator::ConfigEvaluator;
use crate::{outcome_from_history, ResourceManager, SearchOutcome, SearchStep};

/// Budgeted random search (the Starfish-style tuner of §7.4): sample
/// uniformly, keep the best feasible.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    rng: SimRng,
}

impl RandomSearch {
    /// Creates a seeded random search.
    pub fn new(seed: u64) -> Self {
        RandomSearch {
            rng: SimRng::seed(seed),
        }
    }
}

impl ResourceManager for RandomSearch {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn optimize(
        &mut self,
        eval: &mut dyn ConfigEvaluator,
        qos_secs: f64,
        budget: usize,
    ) -> SearchOutcome {
        let dim = eval.dim();
        let mut history = Vec::with_capacity(budget);
        for _ in 0..budget {
            let u: Vec<f64> = (0..dim).map(|_| self.rng.uniform()).collect();
            let r = eval.evaluate(&u);
            history.push(SearchStep {
                u,
                latency: r.latency,
                cost: r.cost,
            });
        }
        outcome_from_history(history, qos_secs, eval.space())
    }
}

/// Usage-feedback autoscaling applied uniformly to every stage (§7.4's
/// autoscaling baseline): scale all stages up while QoS is violated, then
/// trim until just before violation. No model, no per-stage attribution —
/// the two failure modes the paper highlights (it "adds resources to all
/// containers belonging to a serverless workflow").
#[derive(Debug, Clone)]
pub struct AutoscaleRm {
    step: f64,
}

impl AutoscaleRm {
    /// Default 10%-of-range adjustment step.
    pub fn new() -> Self {
        AutoscaleRm { step: 0.1 }
    }
}

impl Default for AutoscaleRm {
    fn default() -> Self {
        AutoscaleRm::new()
    }
}

impl ResourceManager for AutoscaleRm {
    fn name(&self) -> &'static str {
        "Autoscale"
    }

    fn optimize(
        &mut self,
        eval: &mut dyn ConfigEvaluator,
        qos_secs: f64,
        budget: usize,
    ) -> SearchOutcome {
        let dim = eval.dim();
        // Start mid-range with concurrency 1.
        let mut u = vec![0.5; dim];
        for s in 0..dim / 3 {
            u[3 * s + 2] = 0.0;
        }
        let mut history = Vec::with_capacity(budget);
        let mut evals = 0;
        let mut trimming = false;
        while evals < budget {
            let r = eval.evaluate(&u);
            evals += 1;
            history.push(SearchStep {
                u: u.clone(),
                latency: r.latency,
                cost: r.cost,
            });
            if r.latency > qos_secs {
                if trimming {
                    // Trimmed too far: step back up and stop.
                    for s in 0..dim / 3 {
                        u[3 * s] = (u[3 * s] + self.step).min(1.0);
                        u[3 * s + 1] = (u[3 * s + 1] + self.step).min(1.0);
                    }
                    if evals < budget {
                        let r = eval.evaluate(&u);
                        history.push(SearchStep {
                            u: u.clone(),
                            latency: r.latency,
                            cost: r.cost,
                        });
                    }
                    break;
                }
                // Violating: scale every stage up.
                if u[0] >= 1.0 && u[1] >= 1.0 {
                    break; // cannot scale further
                }
                for s in 0..dim / 3 {
                    u[3 * s] = (u[3 * s] + self.step).min(1.0);
                    u[3 * s + 1] = (u[3 * s + 1] + self.step).min(1.0);
                }
            } else {
                // Meeting QoS: trim every stage down to reclaim resources.
                trimming = true;
                if u[0] <= 0.0 && u[1] <= 0.0 {
                    break;
                }
                for s in 0..dim / 3 {
                    u[3 * s] = (u[3 * s] - self.step).max(0.0);
                    u[3 * s + 1] = (u[3 * s + 1] - self.step).max(0.0);
                }
            }
        }
        outcome_from_history(history, qos_secs, eval.space())
    }
}

/// CLITE (Patel & Tiwari, HPCA'20), adapted to FaaS as in §7.4: Bayesian
/// optimization over a **single** GP fit to a hand-crafted objective that
/// adds a reactive penalty on QoS violation, sampled one point at a time
/// with classic (noise-blind) expected improvement.
#[derive(Debug, Clone)]
pub struct Clite {
    rng: SimRng,
    bootstrap: usize,
    candidates: usize,
}

impl Clite {
    /// Creates CLITE with the standard 5-point bootstrap.
    pub fn new(seed: u64) -> Self {
        Clite {
            rng: SimRng::seed(seed),
            bootstrap: 5,
            candidates: 48,
        }
    }

    /// The hand-crafted penalized objective (lower is better).
    fn score(cost: f64, latency: f64, qos: f64) -> f64 {
        if latency <= qos {
            cost
        } else {
            // Reactive penalty: scale by the relative violation.
            cost * (1.0 + 4.0 * (latency - qos) / qos)
        }
    }
}

impl ResourceManager for Clite {
    fn name(&self) -> &'static str {
        "CLITE"
    }

    fn optimize(
        &mut self,
        eval: &mut dyn ConfigEvaluator,
        qos_secs: f64,
        budget: usize,
    ) -> SearchOutcome {
        let dim = eval.dim();
        let mut history: Vec<SearchStep> = Vec::with_capacity(budget);
        // Bootstrap.
        for _ in 0..self.bootstrap.min(budget) {
            let u: Vec<f64> = (0..dim).map(|_| self.rng.uniform()).collect();
            let r = eval.evaluate(&u);
            history.push(SearchStep {
                u,
                latency: r.latency,
                cost: r.cost,
            });
        }
        // Sequential EI over the penalized scalar objective.
        while history.len() < budget {
            let xs: Vec<Vec<f64>> = history.iter().map(|s| s.u.clone()).collect();
            let ys: Vec<f64> = history
                .iter()
                .map(|s| Self::score(s.cost, s.latency, qos_secs))
                .collect();
            // Noise-blind: near-zero fixed noise, as in the original.
            let next_u = match Gp::fit(xs, ys.clone(), GpConfig::with_noise(1e-6)) {
                Ok(gp) => {
                    let best = ys.iter().cloned().fold(f64::INFINITY, f64::min);
                    let mut halton = Halton::new(dim);
                    let candidates = halton.points(self.candidates);
                    candidates
                        .into_iter()
                        .max_by(|a, b| {
                            expected_improvement(&gp, a, best)
                                .partial_cmp(&expected_improvement(&gp, b, best))
                                .expect("finite EI")
                        })
                        .expect("candidates non-empty")
                }
                Err(_) => (0..dim).map(|_| self.rng.uniform()).collect(),
            };
            let r = eval.evaluate(&next_u);
            history.push(SearchStep {
                u: next_u,
                latency: r.latency,
                cost: r.cost,
            });
        }
        outcome_from_history(history, qos_secs, eval.space())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SimEvaluator;
    use crate::testkit::tiny_problem;
    use aqua_faas::types::ConfigSpace;

    fn make_eval(seed: u64) -> (SimEvaluator, f64) {
        let (sim, dag, qos) = tiny_problem(seed);
        (
            SimEvaluator::new(sim, dag, ConfigSpace::default(), 2, true),
            qos,
        )
    }

    #[test]
    fn random_finds_a_feasible_config() {
        let (mut eval, qos) = make_eval(11);
        let mut rm = RandomSearch::new(1);
        let out = rm.optimize(&mut eval, qos, 25);
        assert_eq!(out.evaluations(), 25);
        let (_, _, lat) = out.best.expect("feasible config in 25 random draws");
        assert!(lat <= qos);
    }

    #[test]
    fn autoscale_converges_to_feasible() {
        let (mut eval, qos) = make_eval(12);
        let mut rm = AutoscaleRm::new();
        let out = rm.optimize(&mut eval, qos, 30);
        let (_, _, lat) = out.best.expect("autoscale should reach feasibility");
        assert!(lat <= qos);
    }

    #[test]
    fn clite_beats_random_on_average_cost() {
        let budget = 22;
        let mut random_cost = 0.0;
        let mut clite_cost = 0.0;
        let trials = 3;
        for t in 0..trials {
            let (mut eval, qos) = make_eval(20 + t);
            let out = RandomSearch::new(t).optimize(&mut eval, qos, budget);
            random_cost += out.best.map(|b| b.1).unwrap_or(1e9);
            let (mut eval, qos) = make_eval(20 + t);
            let out = Clite::new(t).optimize(&mut eval, qos, budget);
            clite_cost += out.best.map(|b| b.1).unwrap_or(1e9);
        }
        assert!(
            clite_cost <= random_cost * 1.05,
            "CLITE {clite_cost} should be at least on par with random {random_cost}"
        );
    }

    #[test]
    fn clite_score_penalizes_violation() {
        assert_eq!(Clite::score(10.0, 0.5, 1.0), 10.0);
        assert!(Clite::score(10.0, 2.0, 1.0) > 10.0);
    }

    #[test]
    fn budget_is_respected() {
        let (mut eval, qos) = make_eval(30);
        let mut rm = Clite::new(3);
        let out = rm.optimize(&mut eval, qos, 12);
        assert!(out.evaluations() <= 12);
        assert_eq!(eval.evaluations(), out.evaluations());
    }
}
