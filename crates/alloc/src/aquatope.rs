//! AQUATOPE's container resource manager: customized Bayesian optimization
//! (paper §5.3).
//!
//! The differences from conventional BO managers, all implemented here:
//!
//! 1. **Noise-aware by design** — separate *fixed-noise* GPs for cost and
//!    end-to-end latency; acquisition is constrained **noisy** EI
//!    integrated with QMC, and leave-one-out diagnostic GPs prune
//!    non-Gaussian outliers before every model update.
//! 2. **Proactive QoS handling** — an independent latency GP filters
//!    candidates by probability of feasibility instead of a reactive
//!    penalty term.
//! 3. **Batch sampling** — q=3 candidates per iteration via greedy
//!    Kriging-believer fantasies, exploiting serverless scalability.
//! 4. **Incremental retraining** — when fresh observations contradict the
//!    model (input change, function update), old samples are dropped via a
//!    sliding window and exploration resumes (Fig. 16).

use aqua_gp::{
    constrained_nei_batch, detect_anomalies, probability_feasible, propose_batch, Gp, GpConfig,
    Halton, NeiConfig,
};
use aqua_sim::{SimRng, SimTime};
use aqua_telemetry::{SimEvent, Telemetry};

use crate::evaluator::ConfigEvaluator;
use crate::{outcome_from_history, ResourceManager, SearchOutcome, SearchStep};

/// Tunables of [`AquatopeRm`].
#[derive(Debug, Clone, PartialEq)]
pub struct AquatopeRmConfig {
    /// Random configurations used to warm up the surrogates.
    pub bootstrap: usize,
    /// Batch size per BO iteration (paper: 3).
    pub batch: usize,
    /// Candidate pool size per iteration (Halton + local perturbations).
    pub candidates: usize,
    /// QMC samples for the noisy-EI integral.
    pub qmc_samples: usize,
    /// Fixed observation-noise variance for both GPs (standardized units).
    pub noise: f64,
    /// Confidence level of the leave-one-out anomaly pruner.
    pub anomaly_confidence: f64,
    /// Observations kept when a behaviour change is detected.
    pub sliding_window: usize,
    /// Enable behaviour-change detection / sliding-window retraining.
    pub change_detection: bool,
    /// Disable all noise-awareness (anomaly pruning, noisy EI) — the
    /// *AquaLite* ablation of Fig. 15.
    pub noise_aware: bool,
    /// Reuse cached surrogates across BO iterations, appending fresh
    /// observations via the rank-1 [`Gp::extend`] path instead of
    /// refitting from scratch. Off by default: the exact full-refit path
    /// re-selects hyperparameters every iteration, while this one only
    /// re-selects every [`AquatopeRmConfig::refit_every`] appends.
    pub incremental_refit: bool,
    /// Hyperparameter re-selection cadence of the incremental path
    /// (forwarded to [`GpConfig::refit_every`]; 0 = never re-select).
    pub refit_every: usize,
}

impl Default for AquatopeRmConfig {
    fn default() -> Self {
        AquatopeRmConfig {
            bootstrap: 5,
            batch: 3,
            candidates: 72,
            qmc_samples: 16,
            noise: 0.05,
            anomaly_confidence: 0.95,
            sliding_window: 12,
            change_detection: true,
            noise_aware: true,
            incremental_refit: false,
            refit_every: 8,
        }
    }
}

/// Full-data surrogates kept alive between [`AquatopeRm::fit_models`]
/// calls for the incremental-refit path, together with the state that
/// must match for an extension to be valid.
#[derive(Debug, Clone)]
struct SurrogateCache {
    cost: Gp,
    lat: Gp,
    /// How many leading observations the cached GPs cover.
    n_obs: usize,
    /// Winsorization caps the cached targets were computed with; a cap
    /// change retroactively alters old targets, so it invalidates.
    lat_cap: f64,
    cost_cap: f64,
}

/// The customized-BO resource manager. Observations persist across
/// [`ResourceManager::optimize`] calls, so a second call continues the
/// search (and adapts if the workload changed underneath).
#[derive(Debug, Clone)]
pub struct AquatopeRm {
    config: AquatopeRmConfig,
    rng: SimRng,
    observations: Vec<SearchStep>,
    /// Set when change detection fired during the last optimize call.
    changes_detected: usize,
    /// Persistent low-discrepancy stream: every BO iteration draws *fresh*
    /// candidates instead of re-ranking the same fixed point set.
    halton: Option<Halton>,
    /// Evaluations performed across all optimize calls (event numbering).
    evaluations: usize,
    /// Cached full-data surrogates (incremental-refit path only).
    surrogate_cache: Option<SurrogateCache>,
    telemetry: Telemetry,
}

impl AquatopeRm {
    /// Creates the manager with default configuration.
    pub fn new(seed: u64) -> Self {
        AquatopeRm::with_config(seed, AquatopeRmConfig::default())
    }

    /// Creates the manager with an explicit configuration.
    pub fn with_config(seed: u64, config: AquatopeRmConfig) -> Self {
        AquatopeRm {
            config,
            rng: SimRng::seed(seed),
            observations: Vec::new(),
            changes_detected: 0,
            halton: None,
            evaluations: 0,
            surrogate_cache: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry channel; every profiled configuration is
    /// reported as a [`SimEvent::BoIteration`].
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Replaces the telemetry channel in place.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The AquaLite ablation: same skeleton, noise handling disabled.
    pub fn aqualite(seed: u64) -> Self {
        AquatopeRm::with_config(
            seed,
            AquatopeRmConfig {
                noise_aware: false,
                noise: 1e-6,
                ..AquatopeRmConfig::default()
            },
        )
    }

    /// All retained observations (post sliding-window truncations).
    pub fn observations(&self) -> &[SearchStep] {
        &self.observations
    }

    /// How many behaviour changes were detected so far.
    pub fn changes_detected(&self) -> usize {
        self.changes_detected
    }

    /// Fits the two surrogates on the non-anomalous observations.
    fn fit_models(&mut self, qos: f64) -> Option<(Gp, Gp)> {
        if self.observations.len() < 2 {
            return None;
        }
        // Winsorize censored / pathological latencies: a sample that timed
        // out is "very infeasible" — its exact magnitude carries no signal
        // and would stretch the GP's scale until EI goes flat.
        let lat_cap = 5.0 * qos;
        let cost_cap = {
            let feasible_max = self
                .observations
                .iter()
                .filter(|s| s.latency <= qos)
                .map(|s| s.cost)
                .fold(0.0_f64, f64::max);
            if feasible_max > 0.0 {
                5.0 * feasible_max
            } else {
                f64::INFINITY
            }
        };
        let gp_cfg = GpConfig {
            refit_every: self.config.refit_every,
            ..GpConfig::with_noise(self.config.noise)
        };
        let (cost_gp, lat_gp) = if self.config.incremental_refit {
            self.cached_surrogates(lat_cap, cost_cap, &gp_cfg)?
        } else {
            let xs: Vec<Vec<f64>> = self.observations.iter().map(|s| s.u.clone()).collect();
            let lats: Vec<f64> = self
                .observations
                .iter()
                .map(|s| s.latency.min(lat_cap))
                .collect();
            let costs: Vec<f64> = self
                .observations
                .iter()
                .map(|s| s.cost.min(cost_cap))
                .collect();
            let lat_gp = Gp::fit(xs.clone(), lats, gp_cfg.clone()).ok()?;
            let cost_gp = Gp::fit(xs, costs, gp_cfg).ok()?;
            (cost_gp, lat_gp)
        };

        if !self.config.noise_aware {
            return Some((cost_gp, lat_gp));
        }
        // Prune non-Gaussian outliers flagged on either surrogate.
        let mut bad: Vec<usize> = detect_anomalies(&lat_gp, self.config.anomaly_confidence);
        bad.extend(detect_anomalies(&cost_gp, self.config.anomaly_confidence));
        bad.sort_unstable();
        bad.dedup();
        if bad.is_empty() || bad.len() + 2 > self.observations.len() {
            return Some((cost_gp, lat_gp));
        }
        let keep: Vec<usize> = (0..self.observations.len())
            .filter(|i| !bad.contains(i))
            .collect();
        let cost_clean = cost_gp.refit_subset(&keep).ok()?;
        let lat_clean = lat_gp.refit_subset(&keep).ok()?;
        Some((cost_clean, lat_clean))
    }

    /// Returns full-data surrogates from the incremental cache, appending
    /// any observations the cache has not seen via the rank-1
    /// [`Gp::extend`] path. Any mismatch (cap change, observation drain,
    /// extension failure) falls back to a from-scratch fit that reseeds
    /// the cache.
    fn cached_surrogates(
        &mut self,
        lat_cap: f64,
        cost_cap: f64,
        gp_cfg: &GpConfig,
    ) -> Option<(Gp, Gp)> {
        if let Some(mut cache) = self.surrogate_cache.take() {
            if cache.lat_cap == lat_cap
                && cache.cost_cap == cost_cap
                && cache.n_obs <= self.observations.len()
            {
                // Extend both GPs per observation; a single failure drops
                // the (now possibly lopsided) cache and rebuilds below.
                let extended = self.observations[cache.n_obs..].iter().all(|s| {
                    cache
                        .lat
                        .extend(s.u.clone(), s.latency.min(lat_cap))
                        .is_ok()
                        && cache.cost.extend(s.u.clone(), s.cost.min(cost_cap)).is_ok()
                });
                if extended {
                    cache.n_obs = self.observations.len();
                    let models = (cache.cost.clone(), cache.lat.clone());
                    self.surrogate_cache = Some(cache);
                    return Some(models);
                }
            }
        }
        let xs: Vec<Vec<f64>> = self.observations.iter().map(|s| s.u.clone()).collect();
        let lats: Vec<f64> = self
            .observations
            .iter()
            .map(|s| s.latency.min(lat_cap))
            .collect();
        let costs: Vec<f64> = self
            .observations
            .iter()
            .map(|s| s.cost.min(cost_cap))
            .collect();
        let lat = Gp::fit(xs.clone(), lats, gp_cfg.clone()).ok()?;
        let cost = Gp::fit(xs, costs, gp_cfg.clone()).ok()?;
        let models = (cost.clone(), lat.clone());
        self.surrogate_cache = Some(SurrogateCache {
            cost,
            lat,
            n_obs: self.observations.len(),
            lat_cap,
            cost_cap,
        });
        Some(models)
    }

    /// Generates the iteration's candidate pool: fresh Halton coverage
    /// plus local perturbations of the best feasible point.
    fn candidates(&mut self, dim: usize, qos: f64) -> Vec<Vec<f64>> {
        let halton = self.halton.get_or_insert_with(|| Halton::new(dim.min(32)));
        let mut cands = halton.points(self.config.candidates);
        // Exploit around the best feasible points at two perturbation
        // radii (local refinement matters in the quantized config space).
        let mut feasible: Vec<&SearchStep> = self
            .observations
            .iter()
            .filter(|s| s.latency <= qos)
            .collect();
        feasible.sort_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite"));
        for best in feasible.iter().take(3) {
            for sigma in [0.05, 0.12] {
                for _ in 0..(self.config.candidates / 12).max(2) {
                    let perturbed: Vec<f64> = best
                        .u
                        .iter()
                        .map(|v| (v + self.rng.normal(0.0, sigma)).clamp(0.0, 1.0))
                        .collect();
                    cands.push(perturbed);
                }
            }
        }
        cands
    }

    /// Checks whether the latest batch contradicts the model (behaviour
    /// change); if so, truncates to the sliding window.
    fn detect_change(&mut self, lat_gp: &Gp, batch: &[SearchStep]) {
        if !self.config.change_detection || batch.len() < 2 {
            return;
        }
        let surprises = batch
            .iter()
            .filter(|s| {
                let (mean, var) = lat_gp.predict(&s.u);
                let sd = var.sqrt().max(1e-6 * mean.abs().max(1.0));
                let miss = (s.latency - mean).abs();
                // Statistical surprise at confident points, or a scale-free
                // >100% relative miss (exploratory points keep wide GP
                // variance, which would otherwise mask real regime shifts).
                miss > 4.0 * sd || miss > mean.abs().max(0.05)
            })
            .count();
        // Majority of the batch contradicting the model ⇒ behaviour change.
        if surprises * 2 >= batch.len().max(1)
            && self.observations.len() > self.config.sliding_window
        {
            // Keep only the most recent window of samples.
            let keep_from =
                self.observations.len() - self.config.sliding_window.min(self.observations.len());
            self.observations.drain(..keep_from);
            // The cached surrogates were fit on drained samples.
            self.surrogate_cache = None;
            self.changes_detected += 1;
        }
    }
}

impl ResourceManager for AquatopeRm {
    fn name(&self) -> &'static str {
        "Aquatope"
    }

    fn optimize(
        &mut self,
        eval: &mut dyn ConfigEvaluator,
        qos_secs: f64,
        budget: usize,
    ) -> SearchOutcome {
        let dim = eval.dim();
        let mut history = Vec::with_capacity(budget);
        let mut spent = 0;

        // Bootstrap with Halton-spread random configurations.
        while self.observations.len() < self.config.bootstrap && spent < budget {
            let mut u = self
                .halton
                .get_or_insert_with(|| Halton::new(dim.min(32)))
                .next_point();
            // Jitter to decorrelate repeated optimize calls.
            for v in &mut u {
                *v = (*v + self.rng.normal(0.0, 0.03)).clamp(0.0, 1.0);
            }
            let r = eval.evaluate(&u);
            spent += 1;
            self.evaluations += 1;
            let step = SearchStep {
                u,
                latency: r.latency,
                cost: r.cost,
            };
            self.telemetry.emit_with(|| SimEvent::BoIteration {
                at: SimTime::ZERO,
                iteration: self.evaluations - 1,
                candidate: step.u.clone(),
                ei: 0.0, // bootstrap samples are drawn before any surrogate exists
                latency: step.latency,
                cost: step.cost,
            });
            history.push(step.clone());
            self.observations.push(step);
        }

        // BO iterations with batch sampling.
        while spent < budget {
            let q = self.config.batch.min(budget - spent);
            let models = self.fit_models(qos_secs);
            let batch_points: Vec<(Vec<f64>, f64)> = match &models {
                Some((cost_gp, lat_gp)) => {
                    let cands = self.candidates(dim, qos_secs);
                    let nei = NeiConfig {
                        qmc_samples: if self.config.noise_aware {
                            self.config.qmc_samples
                        } else {
                            1
                        },
                    };
                    let picks = propose_batch(cost_gp, lat_gp, qos_secs, &cands, q, nei);
                    let picked: Vec<Vec<f64>> = picks.iter().map(|&i| cands[i].clone()).collect();
                    // Telemetry EI comes from the *original* surrogates
                    // (not the fantasies), so the whole batch can share
                    // one incumbent-sample pass.
                    let eis = constrained_nei_batch(cost_gp, lat_gp, qos_secs, &picked, nei);
                    picked.into_iter().zip(eis).collect()
                }
                None => (0..q)
                    .map(|_| ((0..dim).map(|_| self.rng.uniform()).collect(), 0.0))
                    .collect(),
            };

            let mut batch_steps = Vec::with_capacity(batch_points.len());
            for (u, ei) in batch_points {
                let r = eval.evaluate(&u);
                spent += 1;
                self.evaluations += 1;
                let step = SearchStep {
                    u,
                    latency: r.latency,
                    cost: r.cost,
                };
                self.telemetry.emit_with(|| SimEvent::BoIteration {
                    at: SimTime::ZERO,
                    iteration: self.evaluations - 1,
                    candidate: step.u.clone(),
                    ei,
                    latency: step.latency,
                    cost: step.cost,
                });
                history.push(step.clone());
                batch_steps.push(step.clone());
                self.observations.push(step);
            }
            if let Some((_, lat_gp)) = &models {
                self.detect_change(lat_gp, &batch_steps);
            }
        }

        // Final selection over everything we know (observations survive
        // truncation only if still trusted). Among configurations whose
        // observed latency met QoS, prefer those the latency surrogate is
        // *confident* about: a pick sitting exactly on the QoS boundary
        // looks cheapest in profiling but violates at runtime under noise
        // — the opposite of the paper's "meet QoS with minimal
        // overprovisioning" objective.
        let all: Vec<SearchStep> = self.observations.clone();
        let mut outcome = outcome_from_history(history, qos_secs, eval.space());
        let models = self.fit_models(qos_secs);
        let confident: Box<dyn Fn(&SearchStep) -> bool> = match &models {
            Some((_, lat_gp)) if self.config.noise_aware => {
                let lat_gp = lat_gp.clone();
                Box::new(move |s: &SearchStep| {
                    // The smoothed posterior mean must itself carry a
                    // margin: a single noise-lucky observation is not
                    // evidence of feasibility.
                    let (mean, _) = lat_gp.predict(&s.u);
                    probability_feasible(&lat_gp, &s.u, qos_secs) >= 0.7 && mean <= 0.92 * qos_secs
                })
            }
            _ => Box::new(|_s: &SearchStep| true),
        };
        // Prefer configurations with an explicit latency margin (observed
        // ≤ 90% of QoS) that the surrogate also deems feasible; fall back
        // to any observed-feasible point.
        let best_overall = all
            .iter()
            .filter(|s| s.latency <= 0.9 * qos_secs && confident(s))
            .min_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite"))
            .or_else(|| {
                all.iter()
                    .filter(|s| s.latency <= qos_secs)
                    .min_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite"))
            });
        if let Some(b) = best_overall {
            outcome.best = Some((
                aqua_faas::StageConfigs::decode(eval.space(), &b.u),
                b.cost,
                b.latency,
            ));
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::RandomSearch;
    use crate::evaluator::SimEvaluator;
    use crate::testkit::tiny_problem;
    use aqua_faas::types::ConfigSpace;

    fn make_eval(seed: u64) -> (SimEvaluator, f64) {
        let (sim, dag, qos) = tiny_problem(seed);
        (
            SimEvaluator::new(sim, dag, ConfigSpace::default(), 2, true),
            qos,
        )
    }

    #[test]
    fn finds_feasible_configuration() {
        let (mut eval, qos) = make_eval(40);
        let mut rm = AquatopeRm::new(1);
        let out = rm.optimize(&mut eval, qos, 24);
        let (_, cost, lat) = out.best.expect("feasible config expected");
        assert!(lat <= qos);
        assert!(cost > 0.0);
    }

    #[test]
    fn beats_random_at_equal_budget() {
        let budget = 24;
        let trials = 3;
        let mut aq = 0.0;
        let mut rnd = 0.0;
        for t in 0..trials {
            let (mut eval, qos) = make_eval(50 + t);
            aq += AquatopeRm::new(t)
                .optimize(&mut eval, qos, budget)
                .best
                .map(|b| b.1)
                .unwrap_or(1e9);
            let (mut eval, qos) = make_eval(50 + t);
            rnd += RandomSearch::new(t)
                .optimize(&mut eval, qos, budget)
                .best
                .map(|b| b.1)
                .unwrap_or(1e9);
        }
        assert!(aq < rnd, "Aquatope {aq} should beat random {rnd}");
    }

    #[test]
    fn second_call_continues_search() {
        let (mut eval, qos) = make_eval(60);
        let mut rm = AquatopeRm::new(2);
        let first = rm.optimize(&mut eval, qos, 12);
        let n_obs = rm.observations().len();
        assert_eq!(n_obs, 12);
        let second = rm.optimize(&mut eval, qos, 6);
        assert_eq!(rm.observations().len(), 18);
        // Bootstrap is skipped on the second call (observations persist).
        assert_eq!(second.evaluations(), 6);
        let b1 = first.best.map(|b| b.1).unwrap_or(f64::INFINITY);
        let b2 = second.best.map(|b| b.1).unwrap_or(f64::INFINITY);
        assert!(
            b2 <= b1 * 1.2,
            "continuation should not regress much: {b1} -> {b2}"
        );
    }

    #[test]
    fn change_detection_slides_window() {
        let (mut eval, qos) = make_eval(70);
        let mut rm = AquatopeRm::with_config(
            3,
            AquatopeRmConfig {
                sliding_window: 6,
                ..AquatopeRmConfig::default()
            },
        );
        rm.optimize(&mut eval, qos, 18);
        assert_eq!(
            rm.changes_detected(),
            0,
            "stable workload: no change events"
        );

        // Swap in a much heavier workload (input-size change).
        let (sim2, dag2, _) = tiny_problem(71);
        let mut registry2 = aqua_faas::FunctionRegistry::new();
        let heavy_a = registry2.register(
            aqua_faas::FunctionSpec::new("a2")
                .with_work_ms(2_000.0)
                .with_exec_cv(0.02),
        );
        let heavy_b = registry2.register(
            aqua_faas::FunctionSpec::new("b2")
                .with_work_ms(1_500.0)
                .with_exec_cv(0.02),
        );
        let heavy_dag = aqua_faas::WorkflowDag::chain("tiny", vec![heavy_a, heavy_b]);
        let heavy_sim = aqua_faas::FaasSim::builder()
            .workers(4, 40.0, 131_072)
            .registry(registry2)
            .noise(aqua_faas::NoiseModel::quiet())
            .seed(72)
            .build();
        drop((sim2, dag2));
        let mut eval2 = SimEvaluator::new(heavy_sim, heavy_dag, ConfigSpace::default(), 2, true);
        rm.optimize(&mut eval2, 6.0, 12);
        assert!(
            rm.changes_detected() >= 1,
            "behaviour change should be detected after the workload swap"
        );
        assert!(rm.observations().len() <= 6 + 12, "sliding window applied");
    }

    #[test]
    fn incremental_refit_finds_feasible_configuration() {
        let (mut eval, qos) = make_eval(40);
        let mut rm = AquatopeRm::with_config(
            1,
            AquatopeRmConfig {
                incremental_refit: true,
                refit_every: 4,
                ..AquatopeRmConfig::default()
            },
        );
        let out = rm.optimize(&mut eval, qos, 24);
        let (_, cost, lat) = out.best.expect("feasible config expected");
        assert!(lat <= qos);
        assert!(cost > 0.0);
        let cache = rm.surrogate_cache.as_ref().expect("cache populated");
        assert_eq!(cache.n_obs, rm.observations().len());
        assert_eq!(cache.lat.len(), rm.observations().len());
    }

    #[test]
    fn incremental_cache_invalidated_by_window_drain() {
        let (mut eval, qos) = make_eval(70);
        let mut rm = AquatopeRm::with_config(
            3,
            AquatopeRmConfig {
                incremental_refit: true,
                sliding_window: 6,
                ..AquatopeRmConfig::default()
            },
        );
        rm.optimize(&mut eval, qos, 18);
        assert!(rm.surrogate_cache.is_some());

        // A drastically heavier workload triggers the sliding-window
        // drain, which must drop the cache (it covers drained samples)
        // and then rebuild it on the new window.
        let (mut eval2, _) = {
            let mut registry2 = aqua_faas::FunctionRegistry::new();
            let heavy_a = registry2.register(
                aqua_faas::FunctionSpec::new("a2")
                    .with_work_ms(2_000.0)
                    .with_exec_cv(0.02),
            );
            let heavy_b = registry2.register(
                aqua_faas::FunctionSpec::new("b2")
                    .with_work_ms(1_500.0)
                    .with_exec_cv(0.02),
            );
            let heavy_dag = aqua_faas::WorkflowDag::chain("tiny", vec![heavy_a, heavy_b]);
            let heavy_sim = aqua_faas::FaasSim::builder()
                .workers(4, 40.0, 131_072)
                .registry(registry2)
                .noise(aqua_faas::NoiseModel::quiet())
                .seed(72)
                .build();
            (
                SimEvaluator::new(heavy_sim, heavy_dag, ConfigSpace::default(), 2, true),
                6.0,
            )
        };
        rm.optimize(&mut eval2, 6.0, 12);
        assert!(rm.changes_detected() >= 1, "workload swap detected");
        let cache = rm.surrogate_cache.as_ref().expect("cache rebuilt");
        assert_eq!(cache.n_obs, rm.observations().len());
    }

    #[test]
    fn aqualite_disables_noise_awareness() {
        let rm = AquatopeRm::aqualite(5);
        assert!(!rm.config.noise_aware);
    }
}
