//! Online (service-clock) latency modelling with budgeted incremental
//! refits.
//!
//! The batch resource managers fit their GPs inside one `optimize` call;
//! a live control plane instead sees a *stream* of completed invocations
//! and must fold them into its models without ever blocking the request
//! path. [`OnlineLatencyModel`] is the alloc crate's service-facing entry
//! point for that: completions are **buffered** (O(1), request path), and
//! a refit scheduler running on its own cadence calls
//! [`OnlineLatencyModel::refit`] per application, which drains the buffer
//! through [`Gp::extend`] — the O(n²) rank-1 `Cholesky::extend` append,
//! with the full hyperparameter grid search only every
//! [`GpConfig::refit_every`] appends. A sliding window
//! ([`Gp::refit_subset`]) caps the training set so per-append cost stays
//! bounded over an unbounded run.
//!
//! Inputs are `(config ∈ [0,1]³, t ∈ [0,1])`: the normalized resource
//! coordinates plus a normalized-time coordinate. The time coordinate
//! both models drift (recent observations dominate nearby predictions)
//! and keeps the kernel matrix non-singular when the same configuration
//! is observed repeatedly — the usual failure mode of an online GP fed
//! production traffic.

use std::collections::HashMap;

use aqua_gp::{Gp, GpConfig};

/// One buffered observation: normalized input coordinates and an observed
/// latency (seconds).
#[derive(Debug, Clone, PartialEq)]
struct PendingObs {
    x: Vec<f64>,
    latency: f64,
}

/// Per-application online model state.
#[derive(Debug, Clone, Default)]
struct AppModel {
    gp: Option<Gp>,
    pending: Vec<PendingObs>,
    /// Completions recorded since the last successful refit.
    staleness: u64,
    /// Warm-up observations held until there are enough to fit.
    warmup: Vec<PendingObs>,
}

/// Counters describing the work an [`OnlineLatencyModel`] has done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnlineModelStats {
    /// Observations recorded (buffered).
    pub observed: u64,
    /// Observations folded into a GP.
    pub absorbed: u64,
    /// Sliding-window compactions applied.
    pub compactions: u64,
    /// Appends rejected by the GP (singular kernel); dropped.
    pub rejected: u64,
}

/// Streaming per-application latency models with incremental GP refits.
#[derive(Debug, Clone)]
pub struct OnlineLatencyModel {
    apps: HashMap<usize, AppModel>,
    config: GpConfig,
    /// Training-set size cap; exceeding it triggers a sliding-window
    /// compaction keeping the most recent half.
    window: usize,
    /// Observations needed before the first fit.
    min_fit: usize,
    /// Horizon (seconds) the time coordinate is normalized by.
    time_horizon: f64,
    stats: OnlineModelStats,
}

impl OnlineLatencyModel {
    /// A model set with the given GP config, training-window cap, and
    /// time-normalization horizon in seconds.
    ///
    /// # Panics
    ///
    /// Panics unless `window ≥ 8` and `time_horizon > 0`.
    pub fn new(config: GpConfig, window: usize, time_horizon: f64) -> Self {
        assert!(window >= 8, "window must hold at least 8 observations");
        assert!(time_horizon > 0.0, "time horizon must be positive");
        OnlineLatencyModel {
            apps: HashMap::new(),
            config,
            window,
            min_fit: 4,
            time_horizon,
            stats: OnlineModelStats::default(),
        }
    }

    /// Sensible service defaults: a 64-point window and a 1-hour time
    /// horizon. The hyperparameter grid search (24 full Cholesky fits)
    /// runs every 32nd append rather than the batch default of 8 —
    /// an online model absorbs thousands of appends per hour, and at
    /// that volume the search dominates total refit cost while the
    /// hyperparameters barely move between consecutive windows.
    pub fn service_default() -> Self {
        let config = GpConfig {
            refit_every: 32,
            ..GpConfig::default()
        };
        OnlineLatencyModel::new(config, 64, 3600.0)
    }

    /// Records one completed invocation of `app`: resource coordinates
    /// `u ∈ [0,1]³` (or `3·stages`), completion time `at_secs` on the
    /// service clock, observed end-to-end latency in seconds. O(1); no GP
    /// work happens here.
    pub fn observe(&mut self, app: usize, u: &[f64], at_secs: f64, latency_secs: f64) {
        let mut x = Vec::with_capacity(u.len() + 1);
        x.extend_from_slice(u);
        x.push((at_secs / self.time_horizon).clamp(0.0, 1.0));
        let entry = self.apps.entry(app).or_default();
        entry.pending.push(PendingObs {
            x,
            latency: latency_secs,
        });
        entry.staleness += 1;
        self.stats.observed += 1;
    }

    /// Completions recorded for `app` since its last successful refit —
    /// the priority key a refit scheduler sorts by.
    pub fn staleness(&self, app: usize) -> u64 {
        self.apps.get(&app).map_or(0, |m| m.staleness)
    }

    /// Applications with at least one buffered observation, sorted by
    /// (staleness descending, app id ascending) — deterministic refit
    /// order for a budgeted scheduler.
    pub fn pending_apps(&self) -> Vec<usize> {
        let mut apps: Vec<(u64, usize)> = self
            .apps
            .iter()
            .filter(|(_, m)| !m.pending.is_empty())
            .map(|(&id, m)| (m.staleness, id))
            .collect();
        apps.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        apps.into_iter().map(|(_, id)| id).collect()
    }

    /// Drains `app`'s buffer into its GP: warm-up observations accumulate
    /// until the first [`Gp::fit`]; afterwards each observation is a
    /// rank-1 [`Gp::extend`] append (full grid search every
    /// `refit_every`-th). Exceeding the window cap triggers a
    /// [`Gp::refit_subset`] compaction keeping the newest half. Returns
    /// the number of observations absorbed.
    pub fn refit(&mut self, app: usize) -> usize {
        let Some(model) = self.apps.get_mut(&app) else {
            return 0;
        };
        let drained: Vec<PendingObs> = model.pending.drain(..).collect();
        let mut absorbed = 0;
        for obs in drained {
            match &mut model.gp {
                None => {
                    model.warmup.push(obs);
                    absorbed += 1;
                    if model.warmup.len() >= self.min_fit {
                        let xs: Vec<Vec<f64>> = model.warmup.iter().map(|o| o.x.clone()).collect();
                        let ys: Vec<f64> = model.warmup.iter().map(|o| o.latency).collect();
                        match Gp::fit(xs, ys, self.config.clone()) {
                            Ok(gp) => {
                                model.warmup.clear();
                                model.gp = Some(gp);
                            }
                            Err(_) => {
                                // Keep accumulating; more spread may fix a
                                // singular kernel.
                            }
                        }
                    }
                }
                Some(gp) => {
                    if gp.extend(obs.x, obs.latency).is_ok() {
                        absorbed += 1;
                    } else {
                        self.stats.rejected += 1;
                    }
                    if gp.len() > self.window {
                        let keep: Vec<usize> = (gp.len() - self.window / 2..gp.len()).collect();
                        if let Ok(compact) = gp.refit_subset(&keep) {
                            *gp = compact;
                            self.stats.compactions += 1;
                        }
                    }
                }
            }
        }
        model.staleness = 0;
        self.stats.absorbed += absorbed as u64;
        absorbed
    }

    /// Predicted `(mean, variance)` latency for `app` at coordinates `u`
    /// and service time `at_secs`, or `None` before the first fit.
    pub fn predict(&self, app: usize, u: &[f64], at_secs: f64) -> Option<(f64, f64)> {
        let gp = self.apps.get(&app)?.gp.as_ref()?;
        let mut x = Vec::with_capacity(u.len() + 1);
        x.extend_from_slice(u);
        x.push((at_secs / self.time_horizon).clamp(0.0, 1.0));
        Some(gp.predict(&x))
    }

    /// Training points currently held for `app` (0 before the first fit).
    pub fn model_size(&self, app: usize) -> usize {
        self.apps
            .get(&app)
            .and_then(|m| m.gp.as_ref())
            .map_or(0, |gp| gp.len())
    }

    /// Work counters.
    pub fn stats(&self) -> OnlineModelStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(model: &mut OnlineLatencyModel, app: usize, n: usize, offset: f64) {
        for i in 0..n {
            let v = (i as f64 / n.max(2) as f64 + offset).fract();
            model.observe(app, &[v, 1.0 - v, 0.5], i as f64 * 10.0, 1.0 + v);
        }
    }

    #[test]
    fn buffering_is_decoupled_from_fitting() {
        let mut m = OnlineLatencyModel::service_default();
        feed(&mut m, 0, 6, 0.05);
        assert!(
            m.predict(0, &[0.5, 0.5, 0.5], 0.0).is_none(),
            "no refit yet"
        );
        assert_eq!(m.staleness(0), 6);
        let absorbed = m.refit(0);
        assert_eq!(absorbed, 6);
        assert_eq!(m.staleness(0), 0);
        assert!(m.predict(0, &[0.5, 0.5, 0.5], 0.0).is_some());
    }

    #[test]
    fn pending_apps_sorts_stalest_first_then_id() {
        let mut m = OnlineLatencyModel::service_default();
        feed(&mut m, 2, 3, 0.0);
        feed(&mut m, 0, 5, 0.1);
        feed(&mut m, 1, 5, 0.2);
        assert_eq!(m.pending_apps(), vec![0, 1, 2]);
        m.refit(0);
        assert_eq!(m.pending_apps(), vec![1, 2]);
    }

    #[test]
    fn window_cap_bounds_model_size() {
        let mut m = OnlineLatencyModel::new(GpConfig::default(), 16, 3600.0);
        for batch in 0..10 {
            feed(&mut m, 0, 5, batch as f64 * 0.37);
            m.refit(0);
        }
        assert!(
            m.model_size(0) <= 16,
            "window cap violated: {}",
            m.model_size(0)
        );
        assert!(m.stats().compactions > 0, "cap was exercised");
    }

    #[test]
    fn repeated_identical_configs_do_not_kill_the_model() {
        // Without the time coordinate these would be duplicate rows and a
        // singular kernel; with it the model keeps absorbing.
        let mut m = OnlineLatencyModel::service_default();
        for i in 0..12 {
            m.observe(0, &[0.5, 0.5, 0.5], i as f64 * 60.0, 1.2);
        }
        m.refit(0);
        let (mean, _) = m.predict(0, &[0.5, 0.5, 0.5], 720.0).expect("fitted");
        assert!((mean - 1.2).abs() < 0.2, "mean {mean}");
        assert_eq!(m.stats().rejected, 0);
    }

    #[test]
    fn prediction_tracks_observed_latency() {
        let mut m = OnlineLatencyModel::service_default();
        // Latency rises with the first coordinate.
        for i in 0..20 {
            let v = i as f64 / 20.0;
            m.observe(0, &[v, 0.5, 0.5], i as f64, 1.0 + 2.0 * v);
        }
        m.refit(0);
        let (lo, _) = m.predict(0, &[0.1, 0.5, 0.5], 20.0).unwrap();
        let (hi, _) = m.predict(0, &[0.9, 0.5, 0.5], 20.0).unwrap();
        assert!(hi > lo, "monotone trend not captured: {lo} vs {hi}");
    }

    #[test]
    fn unknown_app_is_harmless() {
        let mut m = OnlineLatencyModel::service_default();
        assert_eq!(m.refit(99), 0);
        assert_eq!(m.staleness(99), 0);
        assert!(m.predict(99, &[0.5, 0.5, 0.5], 0.0).is_none());
    }
}
