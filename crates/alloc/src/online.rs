//! Online (service-clock) latency modelling with budgeted incremental
//! refits.
//!
//! The batch resource managers fit their GPs inside one `optimize` call;
//! a live control plane instead sees a *stream* of completed invocations
//! and must fold them into its models without ever blocking the request
//! path. [`OnlineLatencyModel`] is the alloc crate's service-facing entry
//! point for that: completions are **buffered** (O(1), request path), and
//! a refit scheduler running on its own cadence calls
//! [`OnlineLatencyModel::refit`] per application, which drains the buffer
//! through [`Gp::extend`] — the O(n²) rank-1 `Cholesky::extend` append,
//! with the full hyperparameter grid search only every
//! [`GpConfig::refit_every`] appends. A sliding window
//! ([`Gp::refit_subset`]) caps the training set so per-append cost stays
//! bounded over an unbounded run.
//!
//! Inputs are `(config ∈ [0,1]³, t ∈ [0,1])`: the normalized resource
//! coordinates plus a normalized-time coordinate. The time coordinate
//! both models drift (recent observations dominate nearby predictions)
//! and keeps the kernel matrix non-singular when the same configuration
//! is observed repeatedly — the usual failure mode of an online GP fed
//! production traffic.

use std::collections::HashMap;

use aqua_gp::{Gp, GpConfig, SparseGp};

/// One buffered observation: normalized input coordinates and an observed
/// latency (seconds).
#[derive(Debug, Clone, PartialEq)]
struct PendingObs {
    x: Vec<f64>,
    latency: f64,
}

/// Which surrogate tier an application's model currently runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurrogateTier {
    /// Exact GP: O(n²) per append, O(n²) per prediction.
    Exact,
    /// Sparse inducing-point GP: O(m²) per append and prediction.
    Sparse,
}

/// One exact→sparse tier transition, recorded by [`OnlineLatencyModel::refit`]
/// and drained by the host (the service emits a telemetry event per entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierSwitch {
    /// Application whose model switched.
    pub app: usize,
    /// Training-set size at the moment of the switch.
    pub train: usize,
    /// Inducing-set size of the new sparse model.
    pub inducing: usize,
}

/// The fitted model behind one application, on either tier.
#[derive(Debug, Clone)]
enum TierGp {
    Exact(Gp),
    Sparse(SparseGp),
}

/// Per-application online model state.
#[derive(Debug, Clone, Default)]
struct AppModel {
    model: Option<TierGp>,
    pending: Vec<PendingObs>,
    /// Completions recorded since the last successful refit.
    staleness: u64,
    /// Warm-up observations held until there are enough to fit.
    warmup: Vec<PendingObs>,
    /// The observations currently inside the training window, mirrored
    /// outside the GP so a tier switch or sparse rebuild can refit from
    /// raw data. Kept in lockstep with the exact tier's training set.
    history: Vec<PendingObs>,
    /// Appends absorbed on the sparse tier since its last full rebuild.
    sparse_appends: usize,
}

/// Counters describing the work an [`OnlineLatencyModel`] has done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnlineModelStats {
    /// Observations recorded (buffered).
    pub observed: u64,
    /// Observations folded into a GP.
    pub absorbed: u64,
    /// Sliding-window compactions applied.
    pub compactions: u64,
    /// Appends rejected by the GP (singular kernel); dropped.
    pub rejected: u64,
    /// Exact→sparse tier switches performed.
    pub tier_switches: u64,
}

/// Streaming per-application latency models with incremental GP refits.
#[derive(Debug, Clone)]
pub struct OnlineLatencyModel {
    apps: HashMap<usize, AppModel>,
    config: GpConfig,
    /// Training-set size cap; exceeding it triggers a sliding-window
    /// compaction keeping the most recent half.
    window: usize,
    /// Observations needed before the first fit.
    min_fit: usize,
    /// Horizon (seconds) the time coordinate is normalized by.
    time_horizon: f64,
    /// Training size past which refits switch an app's model to the
    /// sparse tier. Windows at or below the threshold never switch.
    tier_threshold: usize,
    /// Inducing-set size for the sparse tier.
    inducing: usize,
    /// Tier switches not yet drained by the host.
    switches: Vec<TierSwitch>,
    stats: OnlineModelStats,
}

impl OnlineLatencyModel {
    /// A model set with the given GP config, training-window cap, and
    /// time-normalization horizon in seconds.
    ///
    /// # Panics
    ///
    /// Panics unless `window ≥ 8` and `time_horizon > 0`.
    pub fn new(config: GpConfig, window: usize, time_horizon: f64) -> Self {
        assert!(window >= 8, "window must hold at least 8 observations");
        assert!(time_horizon > 0.0, "time horizon must be positive");
        OnlineLatencyModel {
            apps: HashMap::new(),
            config,
            window,
            min_fit: 4,
            time_horizon,
            tier_threshold: 256,
            inducing: 64,
            switches: Vec::new(),
            stats: OnlineModelStats::default(),
        }
    }

    /// Sensible service defaults: a 64-point window and a 1-hour time
    /// horizon. The hyperparameter grid search (24 full Cholesky fits)
    /// runs every 32nd append rather than the batch default of 8 —
    /// an online model absorbs thousands of appends per hour, and at
    /// that volume the search dominates total refit cost while the
    /// hyperparameters barely move between consecutive windows.
    pub fn service_default() -> Self {
        let config = GpConfig {
            refit_every: 32,
            ..GpConfig::default()
        };
        OnlineLatencyModel::new(config, 64, 3600.0)
    }

    /// Service defaults sized for heavy per-app traffic: a 4096-point
    /// window with the surrogate switching to the sparse tier once an
    /// app's training set crosses 256 points. The exact tier's O(n²)
    /// append and O(n³) periodic grid search would dominate refit budget
    /// long before the window fills; past the threshold every append is
    /// an O(m²) rank-1 update against `m = 64` inducing points.
    pub fn scalable_default() -> Self {
        let config = GpConfig {
            refit_every: 32,
            ..GpConfig::default()
        };
        OnlineLatencyModel::new(config, 4096, 3600.0)
    }

    /// Overrides the exact→sparse switch threshold (training-set size).
    /// `usize::MAX` pins every app to the exact tier.
    #[must_use]
    pub fn with_tier_threshold(mut self, threshold: usize) -> Self {
        self.tier_threshold = threshold;
        self
    }

    /// Overrides the sparse tier's inducing-set size.
    ///
    /// # Panics
    ///
    /// Panics if `inducing < 2` (the sparse fit would always fail).
    #[must_use]
    pub fn with_inducing(mut self, inducing: usize) -> Self {
        assert!(inducing >= 2, "need at least 2 inducing points");
        self.inducing = inducing;
        self
    }

    /// Records one completed invocation of `app`: resource coordinates
    /// `u ∈ [0,1]³` (or `3·stages`), completion time `at_secs` on the
    /// service clock, observed end-to-end latency in seconds. O(1); no GP
    /// work happens here.
    pub fn observe(&mut self, app: usize, u: &[f64], at_secs: f64, latency_secs: f64) {
        let mut x = Vec::with_capacity(u.len() + 1);
        x.extend_from_slice(u);
        x.push((at_secs / self.time_horizon).clamp(0.0, 1.0));
        let entry = self.apps.entry(app).or_default();
        entry.pending.push(PendingObs {
            x,
            latency: latency_secs,
        });
        entry.staleness += 1;
        self.stats.observed += 1;
    }

    /// Completions recorded for `app` since its last successful refit —
    /// the priority key a refit scheduler sorts by.
    pub fn staleness(&self, app: usize) -> u64 {
        self.apps.get(&app).map_or(0, |m| m.staleness)
    }

    /// Applications with at least one buffered observation, sorted by
    /// (staleness descending, app id ascending) — deterministic refit
    /// order for a budgeted scheduler.
    pub fn pending_apps(&self) -> Vec<usize> {
        let mut apps: Vec<(u64, usize)> = self
            .apps
            .iter()
            .filter(|(_, m)| !m.pending.is_empty())
            .map(|(&id, m)| (m.staleness, id))
            .collect();
        apps.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        apps.into_iter().map(|(_, id)| id).collect()
    }

    /// Drains `app`'s buffer into its model: warm-up observations
    /// accumulate until the first [`Gp::fit`]; afterwards each
    /// observation is a rank-1 append — [`Gp::extend`] on the exact tier
    /// (full grid search every `refit_every`-th), [`SparseGp::absorb`] on
    /// the sparse tier. Exceeding the window cap triggers a compaction
    /// keeping the newest half. A refit that leaves the exact tier's
    /// training set above the tier threshold rebuilds the model as a
    /// [`SparseGp`] inheriting the exact tier's kernel; the transition is
    /// recorded for [`OnlineLatencyModel::drain_tier_switches`]. Returns
    /// the number of observations absorbed.
    pub fn refit(&mut self, app: usize) -> usize {
        let Some(model) = self.apps.get_mut(&app) else {
            return 0;
        };
        let drained: Vec<PendingObs> = model.pending.drain(..).collect();
        let mut absorbed = 0;
        for obs in drained {
            match &mut model.model {
                None => {
                    model.warmup.push(obs);
                    absorbed += 1;
                    if model.warmup.len() >= self.min_fit {
                        let xs: Vec<Vec<f64>> = model.warmup.iter().map(|o| o.x.clone()).collect();
                        let ys: Vec<f64> = model.warmup.iter().map(|o| o.latency).collect();
                        match Gp::fit(xs, ys, self.config.clone()) {
                            Ok(gp) => {
                                model.history = std::mem::take(&mut model.warmup);
                                model.model = Some(TierGp::Exact(gp));
                            }
                            Err(_) => {
                                // Keep accumulating; more spread may fix a
                                // singular kernel.
                            }
                        }
                    }
                }
                Some(TierGp::Exact(gp)) => {
                    if gp.extend(obs.x.clone(), obs.latency).is_ok() {
                        absorbed += 1;
                        model.history.push(obs);
                    } else {
                        self.stats.rejected += 1;
                    }
                    if gp.len() > self.window {
                        let keep: Vec<usize> = (gp.len() - self.window / 2..gp.len()).collect();
                        if let Ok(compact) = gp.refit_subset(&keep) {
                            *gp = compact;
                            let drop = model.history.len() - self.window / 2;
                            model.history.drain(..drop);
                            self.stats.compactions += 1;
                        }
                    }
                    if gp.len() > self.tier_threshold {
                        let xs: Vec<Vec<f64>> = model.history.iter().map(|o| o.x.clone()).collect();
                        let ys: Vec<f64> = model.history.iter().map(|o| o.latency).collect();
                        // Inherit the exact tier's selected kernel — the
                        // sparse fit is pure linear algebra, no search.
                        if let Ok(sparse) = SparseGp::fit_points(
                            &xs,
                            &ys,
                            *gp.kernel(),
                            self.config.noise,
                            self.inducing,
                        ) {
                            self.switches.push(TierSwitch {
                                app,
                                train: sparse.len(),
                                inducing: sparse.support_size(),
                            });
                            self.stats.tier_switches += 1;
                            model.sparse_appends = 0;
                            model.model = Some(TierGp::Sparse(sparse));
                        }
                    }
                }
                Some(TierGp::Sparse(sgp)) => {
                    sgp.absorb(&obs.x, obs.latency);
                    absorbed += 1;
                    model.history.push(obs);
                    model.sparse_appends += 1;
                    let compact = model.history.len() > self.window;
                    let rebuild_due = self.config.refit_every > 0
                        && model.sparse_appends >= self.config.refit_every;
                    if compact {
                        let drop = model.history.len() - self.window / 2;
                        model.history.drain(..drop);
                        self.stats.compactions += 1;
                    }
                    if compact || rebuild_due {
                        // Full rebuild from the raw window: re-selects
                        // inducing points and re-standardizes the target,
                        // so absorb's frozen standardization tracks drift
                        // at a bounded cadence. On failure the absorbed
                        // model stands.
                        let xs: Vec<Vec<f64>> = model.history.iter().map(|o| o.x.clone()).collect();
                        let ys: Vec<f64> = model.history.iter().map(|o| o.latency).collect();
                        if let Ok(next) = SparseGp::fit_points(
                            &xs,
                            &ys,
                            *sgp.kernel(),
                            self.config.noise,
                            self.inducing,
                        ) {
                            *sgp = next;
                            model.sparse_appends = 0;
                        }
                    }
                }
            }
        }
        model.staleness = 0;
        self.stats.absorbed += absorbed as u64;
        absorbed
    }

    /// Predicted `(mean, variance)` latency for `app` at coordinates `u`
    /// and service time `at_secs`, or `None` before the first fit.
    pub fn predict(&self, app: usize, u: &[f64], at_secs: f64) -> Option<(f64, f64)> {
        let model = self.apps.get(&app)?.model.as_ref()?;
        let mut x = Vec::with_capacity(u.len() + 1);
        x.extend_from_slice(u);
        x.push((at_secs / self.time_horizon).clamp(0.0, 1.0));
        Some(match model {
            TierGp::Exact(gp) => gp.predict(&x),
            TierGp::Sparse(sgp) => sgp.predict(&x),
        })
    }

    /// Training points currently held for `app` (0 before the first fit).
    pub fn model_size(&self, app: usize) -> usize {
        self.apps.get(&app).map_or(0, |m| match &m.model {
            Some(TierGp::Exact(gp)) => gp.len(),
            Some(TierGp::Sparse(sgp)) => sgp.len(),
            None => 0,
        })
    }

    /// The tier `app`'s model currently runs on, or `None` before the
    /// first fit.
    pub fn tier(&self, app: usize) -> Option<SurrogateTier> {
        self.apps.get(&app).and_then(|m| match m.model {
            Some(TierGp::Exact(_)) => Some(SurrogateTier::Exact),
            Some(TierGp::Sparse(_)) => Some(SurrogateTier::Sparse),
            None => None,
        })
    }

    /// Tier switches performed since the last drain, oldest first — the
    /// host turns these into telemetry events.
    pub fn drain_tier_switches(&mut self) -> Vec<TierSwitch> {
        std::mem::take(&mut self.switches)
    }

    /// Work counters.
    pub fn stats(&self) -> OnlineModelStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(model: &mut OnlineLatencyModel, app: usize, n: usize, offset: f64) {
        for i in 0..n {
            let v = (i as f64 / n.max(2) as f64 + offset).fract();
            model.observe(app, &[v, 1.0 - v, 0.5], i as f64 * 10.0, 1.0 + v);
        }
    }

    #[test]
    fn buffering_is_decoupled_from_fitting() {
        let mut m = OnlineLatencyModel::service_default();
        feed(&mut m, 0, 6, 0.05);
        assert!(
            m.predict(0, &[0.5, 0.5, 0.5], 0.0).is_none(),
            "no refit yet"
        );
        assert_eq!(m.staleness(0), 6);
        let absorbed = m.refit(0);
        assert_eq!(absorbed, 6);
        assert_eq!(m.staleness(0), 0);
        assert!(m.predict(0, &[0.5, 0.5, 0.5], 0.0).is_some());
    }

    #[test]
    fn pending_apps_sorts_stalest_first_then_id() {
        let mut m = OnlineLatencyModel::service_default();
        feed(&mut m, 2, 3, 0.0);
        feed(&mut m, 0, 5, 0.1);
        feed(&mut m, 1, 5, 0.2);
        assert_eq!(m.pending_apps(), vec![0, 1, 2]);
        m.refit(0);
        assert_eq!(m.pending_apps(), vec![1, 2]);
    }

    #[test]
    fn window_cap_bounds_model_size() {
        let mut m = OnlineLatencyModel::new(GpConfig::default(), 16, 3600.0);
        for batch in 0..10 {
            feed(&mut m, 0, 5, batch as f64 * 0.37);
            m.refit(0);
        }
        assert!(
            m.model_size(0) <= 16,
            "window cap violated: {}",
            m.model_size(0)
        );
        assert!(m.stats().compactions > 0, "cap was exercised");
    }

    #[test]
    fn repeated_identical_configs_do_not_kill_the_model() {
        // Without the time coordinate these would be duplicate rows and a
        // singular kernel; with it the model keeps absorbing.
        let mut m = OnlineLatencyModel::service_default();
        for i in 0..12 {
            m.observe(0, &[0.5, 0.5, 0.5], i as f64 * 60.0, 1.2);
        }
        m.refit(0);
        let (mean, _) = m.predict(0, &[0.5, 0.5, 0.5], 720.0).expect("fitted");
        assert!((mean - 1.2).abs() < 0.2, "mean {mean}");
        assert_eq!(m.stats().rejected, 0);
    }

    #[test]
    fn prediction_tracks_observed_latency() {
        let mut m = OnlineLatencyModel::service_default();
        // Latency rises with the first coordinate.
        for i in 0..20 {
            let v = i as f64 / 20.0;
            m.observe(0, &[v, 0.5, 0.5], i as f64, 1.0 + 2.0 * v);
        }
        m.refit(0);
        let (lo, _) = m.predict(0, &[0.1, 0.5, 0.5], 20.0).unwrap();
        let (hi, _) = m.predict(0, &[0.9, 0.5, 0.5], 20.0).unwrap();
        assert!(hi > lo, "monotone trend not captured: {lo} vs {hi}");
    }

    #[test]
    fn crossing_the_threshold_switches_to_the_sparse_tier() {
        let mut m = OnlineLatencyModel::new(GpConfig::default(), 128, 3600.0)
            .with_tier_threshold(24)
            .with_inducing(8);
        feed(&mut m, 0, 20, 0.01);
        m.refit(0);
        assert_eq!(m.tier(0), Some(SurrogateTier::Exact));
        assert!(m.drain_tier_switches().is_empty());

        feed(&mut m, 0, 10, 0.43);
        m.refit(0);
        assert_eq!(m.tier(0), Some(SurrogateTier::Sparse));
        let switches = m.drain_tier_switches();
        assert_eq!(switches.len(), 1);
        assert_eq!(switches[0].app, 0);
        assert!(switches[0].train > 24, "switched at {}", switches[0].train);
        assert_eq!(switches[0].inducing, 8);
        assert_eq!(m.stats().tier_switches, 1);
        assert!(m.drain_tier_switches().is_empty(), "drain is one-shot");

        // The sparse tier keeps absorbing and predicting.
        feed(&mut m, 0, 10, 0.77);
        m.refit(0);
        assert_eq!(m.tier(0), Some(SurrogateTier::Sparse));
        assert_eq!(m.stats().tier_switches, 1, "no repeat switch");
        let (lo, _) = m.predict(0, &[0.1, 0.9, 0.5], 400.0).unwrap();
        let (hi, _) = m.predict(0, &[0.9, 0.1, 0.5], 400.0).unwrap();
        assert!(hi > lo, "sparse tier lost the trend: {lo} vs {hi}");
    }

    #[test]
    fn default_threshold_is_unreachable_for_service_window() {
        // service_default's window (64) sits below the tier threshold
        // (256): existing service behavior stays on the exact tier.
        let mut m = OnlineLatencyModel::service_default();
        for batch in 0..8 {
            feed(&mut m, 0, 20, batch as f64 * 0.13);
            m.refit(0);
        }
        assert_eq!(m.tier(0), Some(SurrogateTier::Exact));
        assert_eq!(m.stats().tier_switches, 0);
        assert!(m.drain_tier_switches().is_empty());
    }

    #[test]
    fn sparse_window_cap_bounds_history() {
        let mut m = OnlineLatencyModel::new(GpConfig::default(), 32, 3600.0)
            .with_tier_threshold(16)
            .with_inducing(8);
        for batch in 0..12 {
            feed(&mut m, 0, 8, batch as f64 * 0.29);
            m.refit(0);
        }
        assert_eq!(m.tier(0), Some(SurrogateTier::Sparse));
        assert!(
            m.model_size(0) <= 32,
            "window cap violated: {}",
            m.model_size(0)
        );
        assert!(m.stats().compactions > 0, "cap was exercised");
    }

    #[test]
    fn unknown_app_is_harmless() {
        let mut m = OnlineLatencyModel::service_default();
        assert_eq!(m.refit(99), 0);
        assert_eq!(m.staleness(99), 0);
        assert!(m.predict(99, &[0.5, 0.5, 0.5], 0.0).is_none());
    }
}
