//! Shared fixtures for tests, examples, and benches.

use aqua_faas::{FaasSim, FunctionRegistry, FunctionSpec, NoiseModel, WorkflowDag};

/// A small two-stage chain problem on a quiet cluster: returns
/// `(simulator, dag, qos_secs)`. The QoS is meetable with mid-range
/// resources but violated by the stingiest configurations.
pub fn tiny_problem(seed: u64) -> (FaasSim, WorkflowDag, f64) {
    let mut registry = FunctionRegistry::new();
    let a = registry.register(
        FunctionSpec::new("stage-a")
            .with_work_ms(300.0)
            .with_io_ms(20.0)
            .with_mem_demand(768.0)
            .with_parallelism(2.0)
            .with_cold_start(500.0, 300.0)
            .with_exec_cv(0.03),
    );
    let b = registry.register(
        FunctionSpec::new("stage-b")
            .with_work_ms(200.0)
            .with_io_ms(20.0)
            .with_mem_demand(512.0)
            .with_parallelism(2.0)
            .with_cold_start(500.0, 300.0)
            .with_exec_cv(0.03),
    );
    let dag = WorkflowDag::chain("tiny", vec![a, b]);
    let sim = FaasSim::builder()
        .workers(4, 40.0, 131_072)
        .registry(registry)
        .noise(NoiseModel::quiet())
        .seed(seed)
        .build();
    // Warm latency ranges roughly 0.4 s (4 CPU) – 3+ s (0.25 CPU, starved
    // memory); 0.8 s is meetable but not trivial.
    (sim, dag, 0.8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_faas::types::{ConfigSpace, StageConfigs};

    #[test]
    fn qos_separates_configs() {
        let (mut sim, dag, qos) = tiny_problem(9);
        let space = ConfigSpace::default();
        let generous = StageConfigs::decode(&space, &[1.0, 1.0, 0.0, 1.0, 1.0, 0.0]);
        let stingy = StageConfigs::decode(&space, &[0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let fast = sim.profile_config(&dag, &generous, 3, true, 1.0, 1.0);
        let slow = sim.profile_config(&dag, &stingy, 3, true, 1.0, 1.0);
        let fast_lat = fast.iter().map(|s| s.0).sum::<f64>() / 3.0;
        let slow_lat = slow.iter().map(|s| s.0).sum::<f64>() / 3.0;
        assert!(fast_lat <= qos, "generous config must meet QoS: {fast_lat}");
        assert!(slow_lat > qos, "stingy config must violate QoS: {slow_lat}");
    }
}
