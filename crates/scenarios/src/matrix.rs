//! The scenario-matrix evaluator: every policy × every scenario × N
//! seeds, reduced to per-cell metrics with replicate confidence
//! intervals, sanity-ordering gates, and a deterministic JSON report.

use aqua_faas::{FaasSim, FaultRates, NoiseModel};
use aqua_sim::par_map;
use serde_json::{json, Value};

use crate::policy::PolicyKind;
use crate::scenario::{default_fault_rates, ScenarioSpec};
use crate::stats::{mean_ci95, Comparison};

/// Cluster sizing shared by every cell (six 40-core/128 GiB workers, the
/// bench suite's standard cluster).
const WORKERS: (usize, f64, u64) = (6, 40.0, 131_072);

/// What the matrix runs: rows × columns × replicates.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixConfig {
    /// Scenario rows.
    pub scenarios: Vec<ScenarioSpec>,
    /// Policy columns.
    pub policies: Vec<PolicyKind>,
    /// Seed replicates (each cell runs once per seed).
    pub seeds: Vec<u64>,
    /// Event-loop shards per cell run (see [`FaasSim`]'s `shards`). The
    /// committed report pins 1 — the sequential reference model — so its
    /// bytes stay comparable across releases; sharded-path equivalence is
    /// asserted by the determinism test matrix instead.
    pub shards: usize,
}

impl MatrixConfig {
    /// The committed `MATRIX_REPORT.json` configuration: all 5 scenarios ×
    /// all 6 policies × 6 seeds at 90 minutes — long enough for the
    /// AQUATOPE cells to leave reactive warm-up and train their models,
    /// and enough replicates that a clean sweep reaches sign-test
    /// significance (two-sided p = 2/2⁶ ≈ 0.031; 5 seeds bottom out at
    /// 0.0625 and could never clear α = 0.05).
    pub fn full() -> Self {
        MatrixConfig {
            scenarios: ScenarioSpec::all_kinds(90, 3.0),
            policies: PolicyKind::ALL.to_vec(),
            seeds: vec![1, 2, 3, 4, 5, 6],
            shards: 1,
        }
    }

    /// CI smoke variant: same coverage, 25-minute traces, 3 seeds.
    pub fn smoke() -> Self {
        MatrixConfig {
            scenarios: ScenarioSpec::all_kinds(25, 3.0),
            policies: PolicyKind::ALL.to_vec(),
            seeds: vec![1, 2, 3],
            shards: 1,
        }
    }

    /// This config with every cell run through `shards` parallel event
    /// loops (each shard count is its own deterministic model).
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        self.shards = shards;
        self
    }
}

impl ScenarioSpec {
    /// One spec per [`crate::ScenarioKind`] at a common length and rate.
    pub fn all_kinds(minutes: usize, mean_rpm: f64) -> Vec<ScenarioSpec> {
        crate::ScenarioKind::ALL
            .into_iter()
            .map(|k| ScenarioSpec::new(k, minutes, mean_rpm))
            .collect()
    }
}

/// One seed-replicate's scores for one (scenario, policy) cell. Every
/// metric is lower-is-better.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMetrics {
    /// Fraction of primary workflow instances that missed the QoS target
    /// (unfinished instances count as misses).
    pub qos_violation_rate: f64,
    /// Provisioned memory-time over the whole cluster, GB·s — the paper's
    /// cost axis, and the one pre-warming actually moves.
    pub cost_gb_s: f64,
    /// Median primary end-to-end latency, seconds.
    pub p50_s: f64,
    /// Tail primary end-to-end latency, seconds.
    pub p99_s: f64,
    /// Fraction of primary invocations that paid a cold start.
    pub cold_start_ratio: f64,
}

/// Scores one cell-seed: instantiate, build the policy, run, reduce.
pub fn evaluate(spec: &ScenarioSpec, policy: PolicyKind, seed: u64) -> CellMetrics {
    evaluate_cell(spec, policy, seed, default_fault_rates(), 1)
}

/// [`evaluate`] with explicit fault rates for the faulted row (how the
/// tests score a zero-rate faulted twin against the clean diurnal cell).
pub fn evaluate_with_rates(
    spec: &ScenarioSpec,
    policy: PolicyKind,
    seed: u64,
    rates: FaultRates,
) -> CellMetrics {
    evaluate_cell(spec, policy, seed, rates, 1)
}

/// The general cell scorer: explicit fault rates and shard count. This is
/// how [`run_matrix`] routes the matrix through the sharded simulator.
pub fn evaluate_cell(
    spec: &ScenarioSpec,
    policy: PolicyKind,
    seed: u64,
    rates: FaultRates,
    shards: usize,
) -> CellMetrics {
    let inst = spec.instantiate_with_rates(seed, rates);
    let mut controller = policy.build(&inst);
    let mut sim = FaasSim::builder()
        .workers(WORKERS.0, WORKERS.1, WORKERS.2)
        .registry(inst.registry.clone())
        .noise(NoiseModel::quiet())
        .seed(seed)
        .faults(inst.faults.clone())
        .retry_policy(inst.retry.clone())
        .shards(shards)
        .build();
    let report = sim.run(&inst.jobs, controller.as_mut(), spec.horizon());

    // Score the primary application only: its instances hold the global
    // indices 0..n_primary because the primary job is always first.
    let finished: Vec<f64> = report
        .workflows
        .iter()
        .filter(|w| w.instance < inst.n_primary)
        .map(|w| w.latency().as_secs_f64())
        .collect();
    let violated = report
        .workflows
        .iter()
        .filter(|w| w.instance < inst.n_primary && w.latency() > inst.qos)
        .count()
        + (inst.n_primary - finished.len());
    let (cold, invocations) = report
        .invocations
        .iter()
        .filter(|r| r.workflow_instance < inst.n_primary)
        .fold((0usize, 0usize), |(c, n), r| {
            (c + usize::from(r.cold), n + 1)
        });
    CellMetrics {
        qos_violation_rate: violated as f64 / inst.n_primary.max(1) as f64,
        cost_gb_s: report.memory_gb_seconds,
        p50_s: quantile_or_zero(&finished, 0.5),
        p99_s: quantile_or_zero(&finished, 0.99),
        cold_start_ratio: if invocations == 0 {
            0.0
        } else {
            cold as f64 / invocations as f64
        },
    }
}

fn quantile_or_zero(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        aqua_linalg::quantile(xs, q)
    }
}

/// One (scenario, policy) cell with its seed replicates.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Scenario name (row).
    pub scenario: String,
    /// Policy name (column).
    pub policy: String,
    /// One entry per seed, in the config's seed order.
    pub per_seed: Vec<CellMetrics>,
}

impl Cell {
    /// Per-seed values of one metric.
    pub fn metric(&self, pick: fn(&CellMetrics) -> f64) -> Vec<f64> {
        self.per_seed.iter().map(pick).collect()
    }

    /// Replicate mean of every metric.
    pub fn mean(&self) -> CellMetrics {
        self.reduce(|xs| mean_ci95(xs).0)
    }

    /// 95% confidence half-width of every metric.
    pub fn ci95(&self) -> CellMetrics {
        self.reduce(|xs| mean_ci95(xs).1)
    }

    fn reduce(&self, f: impl Fn(&[f64]) -> f64) -> CellMetrics {
        CellMetrics {
            qos_violation_rate: f(&self.metric(|m| m.qos_violation_rate)),
            cost_gb_s: f(&self.metric(|m| m.cost_gb_s)),
            p50_s: f(&self.metric(|m| m.p50_s)),
            p99_s: f(&self.metric(|m| m.p99_s)),
            cold_start_ratio: f(&self.metric(|m| m.cold_start_ratio)),
        }
    }
}

/// The full matrix result.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixReport {
    /// Scenario rows as configured.
    pub specs: Vec<ScenarioSpec>,
    /// Policy columns as configured.
    pub policies: Vec<PolicyKind>,
    /// Seed replicates as configured.
    pub seeds: Vec<u64>,
    /// Event-loop shards per cell run.
    pub shards: usize,
    /// Cells, scenario-major in config order.
    pub cells: Vec<Cell>,
}

/// Runs the whole matrix. Cell-seeds are evaluated through
/// [`aqua_sim::par_map`], so the result is bit-identical whatever
/// `AQUA_THREADS` says.
pub fn run_matrix(config: &MatrixConfig) -> MatrixReport {
    let mut work = Vec::new();
    for spec in &config.scenarios {
        for &policy in &config.policies {
            for &seed in &config.seeds {
                work.push((spec.clone(), policy, seed));
            }
        }
    }
    let scores = par_map(&work, |_, (spec, policy, seed)| {
        evaluate_cell(spec, *policy, *seed, default_fault_rates(), config.shards)
    });
    let per_cell = config.seeds.len();
    let cells = scores
        .chunks(per_cell)
        .zip(work.chunks(per_cell))
        .map(|(metrics, cell_work)| Cell {
            scenario: cell_work[0].0.kind.name().to_string(),
            policy: cell_work[0].1.name().to_string(),
            per_seed: metrics.to_vec(),
        })
        .collect();
    MatrixReport {
        specs: config.scenarios.clone(),
        policies: config.policies.clone(),
        seeds: config.seeds.clone(),
        shards: config.shards,
        cells,
    }
}

impl MatrixReport {
    /// Looks up one cell by names.
    pub fn cell(&self, scenario: &str, policy: &str) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| c.scenario == scenario && c.policy == policy)
    }

    /// The sanity-ordering gates: on every scenario, the clairvoyant
    /// oracle must not violate QoS more than AQUATOPE, and AQUATOPE must
    /// not violate more than the fixed keep-alive — each up to the summed
    /// replicate CI half-widths plus a 2-point epsilon. Returns one
    /// message per violated gate (empty = all gates hold).
    pub fn sanity_violations(&self) -> Vec<String> {
        const EPSILON: f64 = 0.02;
        let mut out = Vec::new();
        for spec in &self.specs {
            let scenario = spec.kind.name();
            for (better, worse) in [("oracle", "aquatope"), ("aquatope", "fixed")] {
                let (Some(a), Some(b)) = (self.cell(scenario, better), self.cell(scenario, worse))
                else {
                    continue;
                };
                let (ma, ca) = mean_ci95(&a.metric(|m| m.qos_violation_rate));
                let (mb, cb) = mean_ci95(&b.metric(|m| m.qos_violation_rate));
                let tol = ca + cb + EPSILON;
                if ma > mb + tol {
                    out.push(format!(
                        "{scenario}: qos_violation({better}) = {ma:.4} exceeds \
                         qos_violation({worse}) = {mb:.4} by more than tol {tol:.4}"
                    ));
                }
            }
        }
        out
    }

    /// Paired seed-wise comparison of two policies on one scenario's
    /// QoS-violation rate.
    pub fn compare(&self, scenario: &str, policy_a: &str, policy_b: &str) -> Option<Comparison> {
        let a = self.cell(scenario, policy_a)?;
        let b = self.cell(scenario, policy_b)?;
        Some(Comparison::paired(
            scenario,
            "qos_violation_rate",
            (policy_a, &a.metric(|m| m.qos_violation_rate)),
            (policy_b, &b.metric(|m| m.qos_violation_rate)),
        ))
    }

    /// The report's head-to-head panel: every policy against the fixed
    /// keep-alive incumbent, plus the oracle against AQUATOPE, per
    /// scenario.
    pub fn comparisons(&self) -> Vec<Comparison> {
        let mut out = Vec::new();
        for spec in &self.specs {
            let scenario = spec.kind.name();
            for policy in &self.policies {
                if *policy != PolicyKind::Fixed {
                    out.extend(self.compare(scenario, policy.name(), "fixed"));
                }
            }
            out.extend(self.compare(scenario, "oracle", "aquatope"));
        }
        out
    }

    /// Deterministic JSON: cells in run order, floats rounded to 1e-9 (the
    /// values themselves are already bit-stable; rounding only keeps the
    /// textual form short).
    pub fn to_json(&self) -> Value {
        let cells = cells_json(&self.cells);
        let comparisons: Vec<Value> = self.comparisons().iter().map(comparison_json).collect();
        let scenarios: Vec<Value> = self
            .specs
            .iter()
            .map(|s| {
                json!({
                    "name": s.kind.name(),
                    "minutes": s.minutes as u64,
                    "mean_rpm": round9(s.mean_rpm),
                })
            })
            .collect();
        let policies: Vec<Value> = self
            .policies
            .iter()
            .map(|p| Value::from(p.name()))
            .collect();
        json!({
            "schema": "aquatope.matrix_report.v1",
            "seeds": self.seeds.clone(),
            "shards": self.shards as u64,
            "scenarios": scenarios,
            "policies": policies,
            "cells": cells,
            "comparisons": comparisons,
            "sanity_violations": self.sanity_violations(),
        })
    }
}

impl MatrixReport {
    /// The pretty-printed report exactly as `MATRIX_REPORT.json` stores
    /// it (trailing newline included) — the byte-stable golden form.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(self.to_json()).expect("report serializes") + "\n"
    }
}

/// Cells in run order, in the byte-stable v1 shape (shared with the
/// service-mode v2 report so sim and service cells render identically).
pub(crate) fn cells_json(cells: &[Cell]) -> Vec<Value> {
    cells
        .iter()
        .map(|c| {
            let per_seed: Vec<Value> = c.per_seed.iter().map(metrics_json).collect();
            json!({
                "scenario": c.scenario.clone(),
                "policy": c.policy.clone(),
                "mean": metrics_json(&c.mean()),
                "ci95": metrics_json(&c.ci95()),
                "per_seed": per_seed,
            })
        })
        .collect()
}

/// One paired sign-test comparison in the v1 report shape.
pub(crate) fn comparison_json(c: &Comparison) -> Value {
    json!({
        "scenario": c.scenario.clone(),
        "metric": c.metric.clone(),
        "policy_a": c.policy_a.clone(),
        "policy_b": c.policy_b.clone(),
        "mean_delta": round9(c.mean_delta),
        "wins": c.wins as u64,
        "losses": c.losses as u64,
        "ties": c.ties as u64,
        "p_value": round9(c.p_value),
        "a_beats_b_at_0_05": c.a_beats_b(0.05),
    })
}

fn metrics_json(m: &CellMetrics) -> Value {
    json!({
        "qos_violation_rate": round9(m.qos_violation_rate),
        "cost_gb_s": round9(m.cost_gb_s),
        "p50_s": round9(m.p50_s),
        "p99_s": round9(m.p99_s),
        "cold_start_ratio": round9(m.cold_start_ratio),
    })
}

pub(crate) fn round9(x: f64) -> f64 {
    (x * 1e9).round() / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioKind;

    fn tiny() -> MatrixConfig {
        MatrixConfig {
            scenarios: vec![ScenarioSpec::new(ScenarioKind::Diurnal, 8, 3.0)],
            policies: vec![PolicyKind::Fixed, PolicyKind::Oracle],
            seeds: vec![1, 2],
            shards: 1,
        }
    }

    #[test]
    fn matrix_shape_and_replicates() {
        let r = run_matrix(&tiny());
        assert_eq!(r.cells.len(), 2);
        for c in &r.cells {
            assert_eq!(c.per_seed.len(), 2);
            for m in &c.per_seed {
                assert!(m.qos_violation_rate >= 0.0 && m.qos_violation_rate <= 1.0);
                assert!(m.cost_gb_s.is_finite() && m.cost_gb_s >= 0.0);
                assert!(m.p99_s >= m.p50_s);
                assert!(m.cold_start_ratio >= 0.0 && m.cold_start_ratio <= 1.0);
            }
        }
    }

    #[test]
    fn run_matrix_is_deterministic() {
        let a = run_matrix(&tiny());
        let b = run_matrix(&tiny());
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string_pretty(a.to_json()).unwrap(),
            serde_json::to_string_pretty(b.to_json()).unwrap()
        );
    }

    #[test]
    fn report_json_has_the_contracted_shape() {
        let r = run_matrix(&tiny());
        let v = r.to_json();
        assert_eq!(v["schema"].as_str(), Some("aquatope.matrix_report.v1"));
        assert_eq!(v["cells"].as_array().unwrap().len(), 2);
        let cell = &v["cells"].as_array().unwrap()[0];
        for key in [
            "qos_violation_rate",
            "cost_gb_s",
            "p50_s",
            "p99_s",
            "cold_start_ratio",
        ] {
            assert!(cell["mean"][key].as_f64().is_some(), "missing {key}");
        }
        // One comparison (oracle vs fixed) plus oracle vs aquatope is
        // absent (no aquatope cell in the tiny config).
        assert_eq!(v["comparisons"].as_array().unwrap().len(), 1);
    }

    #[test]
    fn sharded_matrix_is_deterministic_and_sane() {
        let cfg = tiny().with_shards(2);
        let a = run_matrix(&cfg);
        let b = run_matrix(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.shards, 2);
        assert_eq!(a.to_json()["shards"], serde_json::json!(2));
        for c in &a.cells {
            for m in &c.per_seed {
                assert!(m.qos_violation_rate >= 0.0 && m.qos_violation_rate <= 1.0);
                assert!(m.cost_gb_s.is_finite() && m.cost_gb_s >= 0.0);
                assert!(m.p99_s >= m.p50_s);
            }
        }
    }

    #[test]
    fn cell_lookup_and_mean() {
        let r = run_matrix(&tiny());
        let c = r.cell("diurnal", "oracle").unwrap();
        let mean = c.mean();
        let by_hand = c.metric(|m| m.qos_violation_rate).iter().sum::<f64>() / 2.0;
        assert!((mean.qos_violation_rate - by_hand).abs() < 1e-12);
        assert!(r.cell("diurnal", "rl").is_none());
    }
}
