//! Service execution mode for the scenario matrix: every policy ×
//! scenario cell re-run against the **live control plane**
//! ([`aqua_service::ControlPlane`]) instead of the batch simulator, so
//! sim-vs-service QoS drift is a first-class, machine-checked quantity.
//!
//! Two live cluster profiles are used:
//!
//! * [`ClusterProfile::sim_matched`] — the simulator's aggregate capacity
//!   (six 128 GiB workers). The **service** matrix runs every configured
//!   policy × scenario cell here, with the scenario's multi-tenant plan
//!   installed ([`crate::ScenarioInstance::tenant_plan`]); its cells are
//!   seed-paired against the sim cells to produce per-cell QoS-violation
//!   **drift** with 95% CIs, and the same oracle ≤ aquatope ≤ fixed
//!   sanity-ordering gates are applied to the live cells.
//! * [`ClusterProfile::constrained`] — a deliberately tiny pool fed a
//!   rate-amplified trace ([`PREDICTIVE_STRESS`]×), so bursts genuinely
//!   overload it. The **predictive** section runs bursty/faulted cells
//!   here twice — predictive rejection off, then on — and pairs them
//!   seed-wise with a sign test. Prediction only has something to win
//!   under contention: a veto counts as a QoS miss either way, so its
//!   value is the queueing it spares the *survivors*, and an uncontended
//!   pool would make the comparison vacuously a tie.
//!
//! The combined report serializes as `aquatope.matrix_report.v2`: the
//! byte-stable v1 report embedded verbatim, service cells in the same
//! shape, drift rows, service-side sanity gates, and the
//! predictive-vs-depth-shedding verdicts.
//!
//! Known, deliberate drift sources on the live plane: only boot failures
//! of the fault plan are injected (crashes, stragglers, and hand-off
//! delays are simulator-loop mechanisms), and the cold-start ratio is
//! pool-wide (the live pool does not attribute boots to tenants), which
//! is exact on single-tenant rows and an approximation on
//! `noisy_neighbor`.

use aqua_faas::FaultRates;
use aqua_service::{ControlPlane, PredictiveConfig, ServiceConfig, WarmPoolConfig};
use aqua_sim::{par_map, SimDuration};
use serde_json::{json, Value};

use crate::matrix::{
    cells_json, comparison_json, round9, run_matrix, Cell, CellMetrics, MatrixConfig, MatrixReport,
};
use crate::policy::PolicyKind;
use crate::scenario::{default_fault_rates, ScenarioKind, ScenarioSpec};
use crate::stats::{mean_ci95, Comparison};

/// Live-cluster sizing for one service-mode run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterProfile {
    /// Warm-pool memory budget, MiB.
    pub memory_budget_mb: f64,
    /// Boot-semaphore width (concurrent pre-warm boots).
    pub max_concurrent_boots: usize,
    /// Control window the policy is ticked at. Forecasting policies
    /// (histogram, AQUATOPE) learn *per-window* demand, so this must
    /// match the batch simulator's 60 s pool tick wherever live cells
    /// are compared against sim cells — a 1 s window would starve them
    /// of 59/60ths of their forecast.
    pub policy_window: SimDuration,
}

impl ClusterProfile {
    /// The simulator's aggregate cluster: six 128 GiB workers ticked at
    /// the simulator's 60 s pool cadence. Service cells on this profile
    /// are directly comparable to sim cells.
    pub fn sim_matched() -> Self {
        ClusterProfile {
            memory_budget_mb: 6.0 * 131_072.0,
            max_concurrent_boots: 64,
            policy_window: SimDuration::from_secs(60),
        }
    }

    /// A four-container pool behind a two-wide boot semaphore: the
    /// overload stage for the predictive-rejection comparison. Ticked at
    /// the live plane's fine-grained 1 s window so the predictive veto
    /// budget replenishes per second under burst.
    pub fn constrained() -> Self {
        ClusterProfile {
            memory_budget_mb: 4.0 * 1024.0,
            max_concurrent_boots: 2,
            policy_window: SimDuration::from_secs(1),
        }
    }
}

/// Rate amplification of the predictive section's traces: stressed cells
/// run at `mean_rpm × PREDICTIVE_STRESS` so 4× bursts exceed the
/// constrained pool's throughput and queueing cascades actually form.
/// 15× is the mildest sustained overload at which the predictive twin
/// beats depth-only shedding on every seed of both stressed rows;
/// higher factors only push both planes deeper into saturation.
pub const PREDICTIVE_STRESS: f64 = 15.0;

/// Scenario rows the predictive section runs (the overload-prone ones;
/// a smooth row would compare two near-idle planes).
pub const PREDICTIVE_SCENARIOS: [ScenarioKind; 2] = [ScenarioKind::Bursty, ScenarioKind::Faulted];

/// Policy columns that get a predictive twin: the incumbent and the
/// paper's policy (running every column twice would double the matrix
/// for comparisons the report never makes).
pub const PREDICTIVE_POLICIES: [PolicyKind; 2] = [PolicyKind::Fixed, PolicyKind::Aquatope];

/// The predictive-admission knobs the predictive section runs with: the
/// model may veto up to 8 arrivals per 1 s policy window at `mean + 1σ`.
pub fn service_predictive() -> PredictiveConfig {
    PredictiveConfig::enabled(8, 1.0)
}

fn service_config(
    spec: &ScenarioSpec,
    seed: u64,
    predictive: PredictiveConfig,
    profile: ClusterProfile,
) -> ServiceConfig {
    ServiceConfig {
        pool: WarmPoolConfig {
            max_concurrent_boots: profile.max_concurrent_boots,
            memory_budget_mb: profile.memory_budget_mb,
            ..WarmPoolConfig::default()
        },
        policy_window: profile.policy_window,
        // Feed every completion to the latency model: cell traces are a
        // few thousand workflows at most, nowhere near the sampling
        // regime the 100k inv/s bench needs.
        model_sample_every: 1,
        refit_interval: SimDuration::from_secs(5),
        run_for: SimDuration::from_secs(spec.minutes as u64 * 60 + 120),
        seed,
        predictive,
        ..ServiceConfig::default()
    }
}

/// Scores one cell-seed on the live control plane: instantiate the
/// scenario, install its tenancy plan, run the service to drain, and
/// reduce the primary tenant's report to the matrix metrics.
///
/// Metrics mirror [`crate::matrix::evaluate_cell`]: the QoS-violation
/// rate counts every primary arrival that did not complete on time —
/// sheds, predictive rejects, and queue-abort casualties all count as
/// misses.
pub fn evaluate_cell_service(
    spec: &ScenarioSpec,
    policy: PolicyKind,
    seed: u64,
    rates: FaultRates,
    predictive: PredictiveConfig,
    profile: ClusterProfile,
) -> CellMetrics {
    let inst = spec.instantiate_with_rates(seed, rates);
    let controller = policy.build(&inst);
    let cfg = service_config(spec, seed, predictive, profile);
    let plan = inst.tenant_plan(cfg.pool.memory_budget_mb);
    let plane = ControlPlane::new(
        inst.registry.clone(),
        inst.jobs.clone(),
        controller,
        &inst.faults,
        cfg,
    )
    .with_tenants(plan);
    let report = plane.run();

    let t0 = &report.tenants[0];
    debug_assert_eq!(
        t0.admission.arrivals() as usize,
        inst.n_primary,
        "every primary arrival lands before drain"
    );
    let on_time = (t0.latency.count as u64).saturating_sub(t0.qos_misses);
    let violated = inst.n_primary as u64 - on_time.min(inst.n_primary as u64);
    let pool_boots = report.pool.warm_hits + report.pool.demand_boots;
    CellMetrics {
        qos_violation_rate: violated as f64 / inst.n_primary.max(1) as f64,
        cost_gb_s: report.cost_gb_s,
        p50_s: t0.latency.p50,
        p99_s: t0.latency.p99,
        cold_start_ratio: if pool_boots == 0 {
            0.0
        } else {
            report.pool.demand_boots as f64 / pool_boots as f64
        },
    }
}

/// Runs `policies × scenarios × config.seeds` on the live plane
/// (through [`par_map`], bit-identical whatever `AQUA_THREADS` says) and
/// packs the result as a [`MatrixReport`] so cell lookup, sanity gates,
/// and JSON shape are shared with the sim matrix. `shards` is pinned 1:
/// the live reactor has no sharded mode.
pub fn run_service_cells(
    scenarios: &[ScenarioSpec],
    policies: &[PolicyKind],
    seeds: &[u64],
    predictive: PredictiveConfig,
    profile: ClusterProfile,
) -> MatrixReport {
    let mut work = Vec::new();
    for spec in scenarios {
        for &policy in policies {
            for &seed in seeds {
                work.push((spec.clone(), policy, seed));
            }
        }
    }
    let scores = par_map(&work, |_, (spec, policy, seed)| {
        evaluate_cell_service(
            spec,
            *policy,
            *seed,
            default_fault_rates(),
            predictive,
            profile,
        )
    });
    let per_cell = seeds.len();
    let cells = scores
        .chunks(per_cell)
        .zip(work.chunks(per_cell))
        .map(|(metrics, cell_work)| Cell {
            scenario: cell_work[0].0.kind.name().to_string(),
            policy: cell_work[0].1.name().to_string(),
            per_seed: metrics.to_vec(),
        })
        .collect();
    MatrixReport {
        specs: scenarios.to_vec(),
        policies: policies.to_vec(),
        seeds: seeds.to_vec(),
        shards: 1,
        cells,
    }
}

/// One cell's sim-vs-service QoS drift: the seed-paired delta
/// `service − sim` on the QoS-violation rate, with its replicate 95% CI.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftRow {
    /// Scenario name (row).
    pub scenario: String,
    /// Policy name (column).
    pub policy: String,
    /// Replicate-mean sim QoS-violation rate.
    pub sim_mean: f64,
    /// Replicate-mean service QoS-violation rate.
    pub service_mean: f64,
    /// Mean of the per-seed deltas `service − sim`.
    pub delta_mean: f64,
    /// 95% confidence half-width of the per-seed deltas.
    pub delta_ci95: f64,
}

/// The combined sim + service + predictive matrix result.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceMatrixReport {
    /// The batch-simulator matrix, exactly as [`run_matrix`] returns it.
    pub sim: MatrixReport,
    /// The same cells on the live plane's sim-matched cluster.
    pub service: MatrixReport,
    /// Stressed constrained-cluster cells with predictive rejection OFF
    /// (the depth-only-shedding baseline).
    pub predictive_off: MatrixReport,
    /// The same stressed cells with predictive rejection ON.
    pub predictive_on: MatrixReport,
    /// The predictive knobs the ON cells ran with.
    pub predictive_cfg: PredictiveConfig,
}

/// The stressed specs of the predictive section for one matrix config:
/// the config's [`PREDICTIVE_SCENARIOS`] rows at
/// [`PREDICTIVE_STRESS`]-times their configured rate.
pub fn stressed_specs(config: &MatrixConfig) -> Vec<ScenarioSpec> {
    config
        .scenarios
        .iter()
        .filter(|s| PREDICTIVE_SCENARIOS.contains(&s.kind))
        .map(|s| ScenarioSpec::new(s.kind, s.minutes, s.mean_rpm * PREDICTIVE_STRESS))
        .collect()
}

/// Runs the full service-mode matrix: sim cells, live-plane cells on the
/// sim-matched cluster, and the stressed predictive on/off pair on the
/// constrained cluster.
pub fn run_service_matrix(config: &MatrixConfig) -> ServiceMatrixReport {
    let sim = run_matrix(config);
    let service = run_service_cells(
        &config.scenarios,
        &config.policies,
        &config.seeds,
        PredictiveConfig::default(),
        ClusterProfile::sim_matched(),
    );
    let twin_policies: Vec<PolicyKind> = config
        .policies
        .iter()
        .copied()
        .filter(|p| PREDICTIVE_POLICIES.contains(p))
        .collect();
    let stressed = stressed_specs(config);
    let predictive_off = run_service_cells(
        &stressed,
        &twin_policies,
        &config.seeds,
        PredictiveConfig::default(),
        ClusterProfile::constrained(),
    );
    let predictive_cfg = service_predictive();
    let predictive_on = run_service_cells(
        &stressed,
        &twin_policies,
        &config.seeds,
        predictive_cfg,
        ClusterProfile::constrained(),
    );
    ServiceMatrixReport {
        sim,
        service,
        predictive_off,
        predictive_on,
        predictive_cfg,
    }
}

impl ServiceMatrixReport {
    /// Per-cell sim-vs-service QoS-violation drift, cells in run order.
    pub fn drift(&self) -> Vec<DriftRow> {
        self.sim
            .cells
            .iter()
            .filter_map(|s| {
                let l = self.service.cell(&s.scenario, &s.policy)?;
                let sim_vals = s.metric(|m| m.qos_violation_rate);
                let svc_vals = l.metric(|m| m.qos_violation_rate);
                let deltas: Vec<f64> = svc_vals.iter().zip(&sim_vals).map(|(a, b)| a - b).collect();
                let (delta_mean, delta_ci95) = mean_ci95(&deltas);
                Some(DriftRow {
                    scenario: s.scenario.clone(),
                    policy: s.policy.clone(),
                    sim_mean: mean_ci95(&sim_vals).0,
                    service_mean: mean_ci95(&svc_vals).0,
                    delta_mean,
                    delta_ci95,
                })
            })
            .collect()
    }

    /// Seed-paired sign tests of predictive rejection against plain
    /// depth-only shedding on the stressed constrained cluster, per
    /// scenario and twin policy: `a` is the predictive plane, `b` the
    /// depth-only one, so a negative delta (and `a_beats_b`) favors
    /// prediction.
    pub fn predictive_comparisons(&self) -> Vec<Comparison> {
        let mut out = Vec::new();
        for on in &self.predictive_on.cells {
            let Some(off) = self.predictive_off.cell(&on.scenario, &on.policy) else {
                continue;
            };
            out.push(Comparison::paired(
                &on.scenario,
                "qos_violation_rate",
                (
                    &format!("{}+predictive", on.policy),
                    &on.metric(|m| m.qos_violation_rate),
                ),
                (&on.policy, &off.metric(|m| m.qos_violation_rate)),
            ));
        }
        out
    }

    /// Stressed cells where the predictive twin beat depth-only shedding
    /// at the 0.05 sign-test level — the matrix's headline predictive
    /// verdicts.
    pub fn predictive_wins(&self) -> Vec<Comparison> {
        self.predictive_comparisons()
            .into_iter()
            .filter(|c| c.a_beats_b(0.05))
            .collect()
    }

    /// Sanity-ordering gates over the *service* cells (the sim gates live
    /// in the embedded v1 report), each message prefixed `service:`.
    pub fn service_sanity_violations(&self) -> Vec<String> {
        self.service
            .sanity_violations()
            .into_iter()
            .map(|v| format!("service: {v}"))
            .collect()
    }

    /// The combined deterministic report: the byte-stable v1 sim report
    /// embedded verbatim under `"sim"`, service and predictive cells in
    /// the same cell shape, drift rows, and the predictive verdicts.
    pub fn to_json(&self) -> Value {
        let drift: Vec<Value> = self
            .drift()
            .iter()
            .map(|d| {
                json!({
                    "scenario": d.scenario.clone(),
                    "policy": d.policy.clone(),
                    "metric": "qos_violation_rate",
                    "sim_mean": round9(d.sim_mean),
                    "service_mean": round9(d.service_mean),
                    "delta_mean": round9(d.delta_mean),
                    "delta_ci95": round9(d.delta_ci95),
                })
            })
            .collect();
        let predictive_comparisons: Vec<Value> = self
            .predictive_comparisons()
            .iter()
            .map(comparison_json)
            .collect();
        let sim_matched = ClusterProfile::sim_matched();
        let constrained = ClusterProfile::constrained();
        json!({
            "schema": "aquatope.matrix_report.v2",
            "sim": self.sim.to_json(),
            "service": {
                "memory_budget_mb": round9(sim_matched.memory_budget_mb),
                "max_concurrent_boots": sim_matched.max_concurrent_boots as u64,
                "policy_window_s": round9(sim_matched.policy_window.as_secs_f64()),
                "cells": cells_json(&self.service.cells),
                "sanity_violations": self.service_sanity_violations(),
            },
            "drift": drift,
            "predictive": {
                "checks_per_window": self.predictive_cfg.checks_per_window as u64,
                "k_sigma": round9(self.predictive_cfg.k_sigma),
                "stress_factor": round9(PREDICTIVE_STRESS),
                "memory_budget_mb": round9(constrained.memory_budget_mb),
                "max_concurrent_boots": constrained.max_concurrent_boots as u64,
                "policy_window_s": round9(constrained.policy_window.as_secs_f64()),
                "baseline_cells": cells_json(&self.predictive_off.cells),
                "cells": cells_json(&self.predictive_on.cells),
                "comparisons": predictive_comparisons,
            },
        })
    }

    /// The pretty-printed v2 report with a trailing newline — the form
    /// `MATRIX_REPORT.json` stores when the matrix runs in service mode.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(self.to_json()).expect("report serializes") + "\n"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioKind;

    fn tiny() -> MatrixConfig {
        MatrixConfig {
            scenarios: vec![
                ScenarioSpec::new(ScenarioKind::Diurnal, 6, 3.0),
                ScenarioSpec::new(ScenarioKind::Bursty, 6, 3.0),
            ],
            policies: vec![PolicyKind::Fixed, PolicyKind::Oracle],
            seeds: vec![1, 2],
            shards: 1,
        }
    }

    #[test]
    fn service_cells_are_deterministic_and_sane() {
        let cfg = tiny();
        let run = || {
            run_service_cells(
                &cfg.scenarios[..1],
                &cfg.policies,
                &cfg.seeds,
                PredictiveConfig::default(),
                ClusterProfile::sim_matched(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.cells.len(), 2);
        for c in &a.cells {
            assert_eq!(c.per_seed.len(), 2);
            for m in &c.per_seed {
                assert!(m.qos_violation_rate >= 0.0 && m.qos_violation_rate <= 1.0);
                assert!(m.cost_gb_s.is_finite() && m.cost_gb_s > 0.0);
                assert!(m.p99_s >= m.p50_s);
                assert!(m.cold_start_ratio >= 0.0 && m.cold_start_ratio <= 1.0);
            }
        }
    }

    #[test]
    fn noisy_neighbor_service_cell_scores_the_primary_tenant() {
        let spec = ScenarioSpec::new(ScenarioKind::NoisyNeighbor, 6, 3.0);
        let m = evaluate_cell_service(
            &spec,
            PolicyKind::Fixed,
            3,
            default_fault_rates(),
            PredictiveConfig::default(),
            ClusterProfile::sim_matched(),
        );
        assert!(m.qos_violation_rate >= 0.0 && m.qos_violation_rate <= 1.0);
        assert!(m.cost_gb_s > 0.0, "two tenants still bill memory-time");
    }

    #[test]
    fn v2_report_embeds_v1_and_carries_drift_and_verdicts() {
        let r = run_service_matrix(&tiny());
        // Only the fixed column gets a predictive twin in this config,
        // and only the bursty row is stress-eligible.
        assert_eq!(r.predictive_on.policies, vec![PolicyKind::Fixed]);
        assert_eq!(r.predictive_on.specs.len(), 1);
        assert!(
            (r.predictive_on.specs[0].mean_rpm - 3.0 * PREDICTIVE_STRESS).abs() < 1e-12,
            "stressed row runs at the amplified rate"
        );
        let drift = r.drift();
        assert_eq!(drift.len(), 4, "one drift row per sim cell");
        for d in &drift {
            assert!(d.delta_ci95 >= 0.0);
            assert!((d.delta_mean - (d.service_mean - d.sim_mean)).abs() < 1e-12);
        }
        assert_eq!(r.predictive_comparisons().len(), 1);
        let v = r.to_json();
        assert_eq!(v["schema"].as_str(), Some("aquatope.matrix_report.v2"));
        assert_eq!(
            v["sim"]["schema"].as_str(),
            Some("aquatope.matrix_report.v1")
        );
        assert_eq!(v["sim"], r.sim.to_json(), "v1 report embedded verbatim");
        assert_eq!(v["drift"].as_array().unwrap().len(), 4);
        let c = &v["predictive"]["comparisons"].as_array().unwrap()[0];
        assert_eq!(c["policy_a"].as_str(), Some("fixed+predictive"));
        assert_eq!(c["policy_b"].as_str(), Some("fixed"));
        assert_eq!(c["scenario"].as_str(), Some("bursty"));
    }
}
