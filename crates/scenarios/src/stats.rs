//! Seed-replicate statistics, re-exported from [`aqua_sim::stats`].
//!
//! The percentile/CI/paired-delta arithmetic originally lived here next to
//! the matrix evaluator; it now sits in `aqua-sim` so the control-plane
//! service can reuse the same reductions for its live latency summaries.
//! This module keeps the `crate::stats::…` paths used throughout the
//! matrix code (and any downstream users) stable.

pub use aqua_sim::stats::{mean_ci95, sign_test_p, Comparison, LatencySummary};
