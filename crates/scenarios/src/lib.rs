//! Head-to-head evaluation harness for the pre-warm policy zoo.
//!
//! The paper's §8 compares AQUATOPE against one baseline at a time on one
//! workload at a time. This crate makes the comparison systematic: a
//! *scenario matrix* runs every policy (the paper's line-up plus the
//! slack-aware, RL, and oracle competitors from `aqua-pool`) over every
//! workload regime (diurnal, bursty, CV-swept, fault-injected,
//! noisy-neighbor) over N seeds, and reduces each cell to QoS-violation
//! rate, provisioned cost, latency quantiles, and cold-start ratio with
//! seed-replicate confidence intervals.
//!
//! On top of the raw cells sits a small statistics layer
//! ([`stats::Comparison`]): paired seed-wise deltas and an exact sign
//! test make "policy A beats policy B on scenario C" a machine-checkable
//! claim rather than a glance at a table, which is what the regression
//! gates in `tests/scenario_matrix.rs` and the CI smoke job check.
//!
//! Everything is deterministic: scenarios derive their arrival processes
//! from forked [`aqua_sim::SimRng`] streams, cells are evaluated through
//! [`aqua_sim::par_map`] (order-preserving, `AQUA_THREADS`-independent),
//! and [`matrix::MatrixReport::to_json`] emits a byte-stable report
//! (`MATRIX_REPORT.json` at the workspace root).
//!
//! The [`service_mode`] module re-runs the same cells against the live
//! control plane (`aqua-service`) with multi-tenant admission and,
//! optionally, predictive rejection enabled, and reports sim-vs-service
//! QoS drift plus predictive-vs-shedding sign-test verdicts as the
//! `aquatope.matrix_report.v2` schema.

pub mod matrix;
pub mod policy;
pub mod scenario;
pub mod service_mode;
pub mod stats;

pub use matrix::{run_matrix, Cell, CellMetrics, MatrixConfig, MatrixReport};
pub use policy::{OraclePrewarm, PolicyKind};
pub use scenario::{default_fault_rates, ScenarioInstance, ScenarioKind, ScenarioSpec};
pub use service_mode::{
    evaluate_cell_service, run_service_cells, run_service_matrix, ClusterProfile, DriftRow,
    ServiceMatrixReport,
};
pub use stats::{mean_ci95, sign_test_p, Comparison};
