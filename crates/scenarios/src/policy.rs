//! The policy zoo: the columns of the evaluation matrix.
//!
//! [`PolicyKind`] names every competitor and knows how to build it for a
//! given [`ScenarioInstance`]. Five are real contenders (fixed keep-alive,
//! histogram, AQUATOPE, slack-aware, tabular RL); the sixth is
//! [`OraclePrewarm`], a deliberately clairvoyant upper bound that reads
//! the arrival trace and provisions next-window demand exactly. No real
//! policy can see the future, so the oracle's QoS-violation rate anchors
//! the top of the sanity ordering every matrix run is checked against.

use std::collections::HashMap;

use aqua_faas::{replacement_target, FunctionId, PoolDecision, PoolObservation, PrewarmController};
use aqua_forecast::HybridConfig;
use aqua_pool::{
    AquatopePool, AquatopePoolConfig, HistogramPolicy, KeepAlivePolicy, RlConfig, RlPoolPolicy,
    SlackAwarePolicy, SlackConfig,
};
use aqua_sim::SimDuration;

use crate::scenario::ScenarioInstance;

/// Every competitor in the zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Provider-default 10-minute keep-alive, no pre-warming.
    Fixed,
    /// *Serverless in the Wild* histogram keep-alive + pre-warming.
    Histogram,
    /// AQUATOPE's uncertainty-aware hybrid-Bayesian pool.
    Aquatope,
    /// Fifer-style slack-aware deferral with bucketed boots.
    SlackAware,
    /// Tabular Q-learning over pre-warm deltas.
    Rl,
    /// Clairvoyant upper bound: provisions the true next-window demand.
    Oracle,
}

impl PolicyKind {
    /// Every policy, in matrix column order.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::Fixed,
        PolicyKind::Histogram,
        PolicyKind::Aquatope,
        PolicyKind::SlackAware,
        PolicyKind::Rl,
        PolicyKind::Oracle,
    ];

    /// Stable snake_case name used in reports and goldens.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fixed => "fixed",
            PolicyKind::Histogram => "histogram",
            PolicyKind::Aquatope => "aquatope",
            PolicyKind::SlackAware => "slack_aware",
            PolicyKind::Rl => "rl",
            PolicyKind::Oracle => "oracle",
        }
    }

    /// Builds the controller for one scenario instance.
    pub fn build(self, inst: &ScenarioInstance) -> Box<dyn PrewarmController> {
        match self {
            PolicyKind::Fixed => Box::new(KeepAlivePolicy::provider_default()),
            PolicyKind::Histogram => Box::new(HistogramPolicy::new()),
            PolicyKind::Aquatope => {
                let dags: Vec<_> = inst.jobs.iter().map(|j| &j.dag).collect();
                Box::new(AquatopePool::new(matrix_aquatope_config(), &dags))
            }
            PolicyKind::SlackAware => {
                let workflows: Vec<_> = inst
                    .jobs
                    .iter()
                    .zip(&inst.deadlines)
                    .map(|(j, &d)| (&j.dag, d))
                    .collect();
                Box::new(SlackAwarePolicy::new(
                    SlackConfig::default(),
                    &workflows,
                    &inst.registry,
                ))
            }
            PolicyKind::Rl => Box::new(RlPoolPolicy::new(RlConfig::default())),
            PolicyKind::Oracle => Box::new(OraclePrewarm::new(inst)),
        }
    }
}

/// A small hybrid-model configuration so AQUATOPE cells stay affordable
/// inside a 150-run matrix: ~40 minutes of reactive warm-up, then one
/// compact model per function. Longer matrices retrain on cadence.
fn matrix_aquatope_config() -> AquatopePoolConfig {
    AquatopePoolConfig {
        warmup_windows: 40,
        retrain_every: 200,
        training_window: 200,
        hybrid: HybridConfig {
            window: 12,
            horizon: 2,
            enc_hidden: vec![8],
            dec_hidden: vec![6],
            mlp_hidden: vec![12, 8],
            dropout: 0.1,
            pretrain_epochs: 2,
            train_epochs: 4,
            mc_passes: 10,
            seed: 7,
        },
        ..AquatopePoolConfig::default()
    }
}

/// The clairvoyant pre-warmer: knows the arrival trace, provisions each
/// function's true demand for the window it is deciding for. It pays real
/// cost for that capacity — the oracle bounds *QoS*, not spend.
#[derive(Debug, Clone)]
pub struct OraclePrewarm {
    /// Per-function containers wanted per minute window.
    schedule: HashMap<FunctionId, Vec<u32>>,
    keep_alive: SimDuration,
}

impl OraclePrewarm {
    /// Builds the oracle from a scenario's known jobs: each arrival in
    /// minute `m` contributes every stage's task count to that minute's
    /// demand for the stage's function (a chain finishes well within its
    /// arrival window at these rates, so the window of the arrival is the
    /// window of the work).
    pub fn new(inst: &ScenarioInstance) -> Self {
        let mut schedule: HashMap<FunctionId, Vec<u32>> = HashMap::new();
        for job in &inst.jobs {
            for stage in job.dag.stages() {
                let lane = schedule
                    .entry(stage.function)
                    .or_insert_with(|| vec![0; inst.minutes + 3]);
                for t in &job.arrivals {
                    let m = (t.as_secs_f64() / 60.0) as usize;
                    if m < lane.len() {
                        lane[m] += stage.tasks;
                    }
                }
            }
        }
        OraclePrewarm::from_schedule(schedule, SimDuration::from_secs(120))
    }

    /// Builds the oracle from an explicit per-minute schedule (used by the
    /// trait-level contract tests).
    pub fn from_schedule(schedule: HashMap<FunctionId, Vec<u32>>, keep_alive: SimDuration) -> Self {
        OraclePrewarm {
            schedule,
            keep_alive,
        }
    }
}

impl PrewarmController for OraclePrewarm {
    fn tick(&mut self, obs: &PoolObservation) -> Vec<PoolDecision> {
        // Ticks land on window boundaries: the tick at t decides for
        // [t, t + window), i.e. minute t/60.
        let minute = (obs.now.as_secs_f64() / 60.0) as usize;
        obs.stats
            .iter()
            .map(|s| {
                let want = self
                    .schedule
                    .get(&s.function)
                    .and_then(|lane| lane.get(minute))
                    .copied()
                    .unwrap_or(0) as usize;
                PoolDecision {
                    function: s.function,
                    prewarm_target: replacement_target(Some(want), s.failed_boots),
                    keep_alive: self.keep_alive,
                    shrink: true,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioKind, ScenarioSpec};
    use aqua_faas::cluster::ClusterSnapshot;
    use aqua_faas::sim::FnWindowStats;
    use aqua_sim::SimTime;

    fn obs(now_min: u64, fns: &[usize], failed: u32) -> PoolObservation {
        PoolObservation {
            now: SimTime::from_secs(60 * now_min),
            window: SimDuration::from_secs(60),
            stats: fns
                .iter()
                .map(|&f| FnWindowStats {
                    function: FunctionId(f),
                    invocations: 1,
                    peak_concurrency: 1,
                    booting: 0,
                    idle: 0,
                    busy: 1,
                    failed_boots: failed,
                })
                .collect(),
            cluster: ClusterSnapshot {
                reserved_memory_mb: 0.0,
                total_memory_mb: 1.0e6,
                containers: 0,
            },
        }
    }

    #[test]
    fn every_policy_builds_and_ticks() {
        let inst = ScenarioSpec::new(ScenarioKind::NoisyNeighbor, 10, 3.0).instantiate(1);
        for kind in PolicyKind::ALL {
            let mut p = kind.build(&inst);
            let d = p.tick(&obs(0, &[0, 1, 2], 0));
            assert_eq!(d.len(), 3, "{}", kind.name());
        }
    }

    #[test]
    fn oracle_tracks_its_schedule() {
        let mut schedule = HashMap::new();
        schedule.insert(FunctionId(0), vec![2, 0, 5]);
        let mut oracle = OraclePrewarm::from_schedule(schedule, SimDuration::from_secs(60));
        for (minute, want) in [(0u64, 2usize), (1, 0), (2, 5), (9, 0)] {
            let d = oracle.tick(&obs(minute, &[0], 0));
            assert_eq!(d[0].prewarm_target, Some(want), "minute {minute}");
        }
    }

    #[test]
    fn oracle_replaces_failed_boots() {
        let mut schedule = HashMap::new();
        schedule.insert(FunctionId(0), vec![2]);
        let mut oracle = OraclePrewarm::from_schedule(schedule, SimDuration::from_secs(60));
        let d = oracle.tick(&obs(0, &[0], 3));
        assert_eq!(d[0].prewarm_target, Some(5));
    }

    #[test]
    fn oracle_schedule_covers_chain_arrivals() {
        let inst = ScenarioSpec::new(ScenarioKind::Diurnal, 20, 3.0).instantiate(2);
        let oracle = OraclePrewarm::new(&inst);
        let total: u32 = oracle
            .schedule
            .values()
            .map(|lane| lane.iter().sum::<u32>())
            .sum();
        // 3 chain stages × one task each × every arrival.
        assert_eq!(total as usize, 3 * inst.n_primary);
    }
}
