//! Workload scenarios: the rows of the evaluation matrix.
//!
//! Every scenario serves the same primary application (the §7.1 3-stage
//! chain with its 1.5 s end-to-end QoS) so cells are comparable across
//! rows; what varies is the arrival process, the fault environment, and
//! the presence of a competing tenant. Arrival streams are derived from
//! seed-forked [`SimRng`] streams, so two instantiations with the same
//! seed are identical — and the `faulted` scenario reuses the *diurnal*
//! stream verbatim, which is what lets the regression tests assert that a
//! zero-rate fault plan reproduces the clean cells bit-for-bit.

use aqua_faas::{
    FaultPlan, FaultRates, FunctionRegistry, QosClass, ResourceConfig, RetryPolicy, StageConfigs,
    TenantId, TenantPlan, WorkflowJob,
};
use aqua_sim::{arrivals_with_cv, SimDuration, SimRng, SimTime};
use aqua_workflows::{apps, RateTraceConfig};

/// The workload regimes in the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Smooth daytime-peaking rate (the Azure-like baseline regime).
    Diurnal,
    /// Mild diurnal shape with frequent 4× bursts of a few minutes.
    Bursty,
    /// Hyperexponential inter-arrivals at CV 4 (the paper's Fig. 10 sweep
    /// end-point): maximal clumping at the same mean rate.
    CvSwept,
    /// The diurnal arrivals with boot failures, crashes, stragglers, and
    /// hand-off delays injected (PR-4's `FaultPlan`), plus task timeouts.
    Faulted,
    /// The diurnal primary sharing the cluster with a bursty fan-out/in
    /// neighbor tenant; metrics still score the primary only.
    NoisyNeighbor,
}

impl ScenarioKind {
    /// Every scenario, in matrix row order.
    pub const ALL: [ScenarioKind; 5] = [
        ScenarioKind::Diurnal,
        ScenarioKind::Bursty,
        ScenarioKind::CvSwept,
        ScenarioKind::Faulted,
        ScenarioKind::NoisyNeighbor,
    ];

    /// Stable snake_case name used in reports and goldens.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Diurnal => "diurnal",
            ScenarioKind::Bursty => "bursty",
            ScenarioKind::CvSwept => "cv_swept",
            ScenarioKind::Faulted => "faulted",
            ScenarioKind::NoisyNeighbor => "noisy_neighbor",
        }
    }
}

/// The fault environment of [`ScenarioKind::Faulted`]: every fault class
/// at a rate high enough to matter over a short horizon, with the default
/// magnitudes (4× stragglers, 2 s hand-off delays).
pub fn default_fault_rates() -> FaultRates {
    FaultRates {
        boot_fail: 0.08,
        crash: 0.04,
        straggler: 0.08,
        handoff_delay: 0.05,
        ..FaultRates::default()
    }
}

/// One matrix row: a scenario kind at a given length and mean rate.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Which regime.
    pub kind: ScenarioKind,
    /// Trace length in minutes.
    pub minutes: usize,
    /// Mean primary arrivals per minute.
    pub mean_rpm: f64,
}

/// A fully materialized scenario for one seed: registry, jobs, fault
/// environment, and the bookkeeping the evaluator needs to score the
/// primary application in isolation.
#[derive(Debug, Clone)]
pub struct ScenarioInstance {
    /// Functions of every job, primary first.
    pub registry: FunctionRegistry,
    /// Jobs to run; the primary application is always `jobs[0]`.
    pub jobs: Vec<WorkflowJob>,
    /// Per-job end-to-end deadlines, parallel to `jobs`.
    pub deadlines: Vec<SimDuration>,
    /// Tenant of each job, parallel to `jobs`: the primary application
    /// is [`TenantId`]`(0)`, a noisy neighbor is `TenantId(1)`. Shared
    /// with the live service via [`ScenarioInstance::tenant_plan`] so
    /// "tenant" means the same thing in sim and service mode.
    pub tenants: Vec<TenantId>,
    /// The primary application's QoS target (`deadlines[0]`).
    pub qos: SimDuration,
    /// Number of primary workflow instances; the simulator assigns the
    /// primary job the global instance indices `0..n_primary`.
    pub n_primary: usize,
    /// Trace length in minutes (the oracle's schedule horizon).
    pub minutes: usize,
    /// Fault plan (disabled outside [`ScenarioKind::Faulted`]).
    pub faults: FaultPlan,
    /// Retry policy paired with the fault plan.
    pub retry: RetryPolicy,
}

impl ScenarioInstance {
    /// The tenancy plan for running this scenario on the live service:
    /// each tenant's SLO is the deadline of its first job, and with more
    /// than one tenant the warm-pool budget is split into equal
    /// guaranteed shares covering 90% of `memory_budget_mb` (the last
    /// 10% stays unguaranteed, work-conserving borrowing slack). A
    /// single-tenant scenario gets a zero share, which keeps the pool on
    /// its untenanted fast path.
    pub fn tenant_plan(&self, memory_budget_mb: f64) -> TenantPlan {
        let n = self.tenants.iter().map(|t| t.0 + 1).max().unwrap_or(1);
        let share = if n > 1 {
            memory_budget_mb * 0.9 / n as f64
        } else {
            0.0
        };
        let classes = (0..n)
            .map(|t| {
                let slo = self
                    .tenants
                    .iter()
                    .position(|x| x.0 == t)
                    .map(|j| self.deadlines[j])
                    .expect("tenant with no job");
                QosClass::new(slo, usize::MAX, usize::MAX, share)
            })
            .collect();
        TenantPlan {
            classes,
            job_tenants: self.tenants.clone(),
        }
    }
}

impl ScenarioSpec {
    /// Creates a spec.
    pub fn new(kind: ScenarioKind, minutes: usize, mean_rpm: f64) -> Self {
        ScenarioSpec {
            kind,
            minutes,
            mean_rpm,
        }
    }

    /// Simulation horizon: the trace length plus drain time for the tail.
    pub fn horizon(&self) -> SimTime {
        SimTime::from_secs(self.minutes as u64 * 60 + 120)
    }

    /// Materializes the scenario for `seed` (faulted rows use
    /// [`default_fault_rates`]).
    pub fn instantiate(&self, seed: u64) -> ScenarioInstance {
        self.instantiate_with_rates(seed, default_fault_rates())
    }

    /// Materializes the scenario with explicit fault rates — only the
    /// [`ScenarioKind::Faulted`] row reads them, which is how the tests
    /// build a zero-rate faulted twin of the diurnal row.
    pub fn instantiate_with_rates(&self, seed: u64, rates: FaultRates) -> ScenarioInstance {
        let root = SimRng::seed(seed);
        let mut registry = FunctionRegistry::new();
        let primary = apps::chain(&mut registry, 3);
        // Faulted shares the diurnal stream so its clean twin is exact.
        let primary_arrivals = match self.kind {
            ScenarioKind::Diurnal | ScenarioKind::Faulted | ScenarioKind::NoisyNeighbor => {
                self.rate_config(0.6, 0.0, 0.15)
                    .generate(&mut root.fork("arrivals-diurnal"))
                    .arrivals
            }
            ScenarioKind::Bursty => {
                self.rate_config(0.2, 0.08, 0.3)
                    .generate(&mut root.fork("arrivals-bursty"))
                    .arrivals
            }
            ScenarioKind::CvSwept => {
                let n = (self.minutes as f64 * self.mean_rpm).round() as usize;
                let end = self.minutes as f64 * 60.0;
                arrivals_with_cv(n, 60.0 / self.mean_rpm, 4.0, &mut root.fork("arrivals-cv"))
                    .into_iter()
                    .filter(|t| t.as_secs_f64() < end)
                    .collect()
            }
        };
        let n_primary = primary_arrivals.len();
        let mut jobs = vec![WorkflowJob::new(
            primary.dag.clone(),
            StageConfigs::uniform(&primary.dag, ResourceConfig::default()),
            primary_arrivals,
        )];
        let mut deadlines = vec![primary.qos];
        let mut tenants = vec![TenantId(0)];
        if self.kind == ScenarioKind::NoisyNeighbor {
            let neighbor = apps::fan_out_in(&mut registry, 6);
            let arrivals = ScenarioSpec::new(ScenarioKind::Bursty, self.minutes, self.mean_rpm)
                .rate_config(0.2, 0.1, 0.3)
                .generate(&mut root.fork("arrivals-neighbor"))
                .arrivals;
            jobs.push(WorkflowJob::new(
                neighbor.dag.clone(),
                StageConfigs::uniform(&neighbor.dag, ResourceConfig::default()),
                arrivals,
            ));
            deadlines.push(neighbor.qos);
            tenants.push(TenantId(1));
        }
        let (faults, retry) = if self.kind == ScenarioKind::Faulted {
            (
                FaultPlan::from_seed(seed ^ 0xFA17_FA17, rates),
                RetryPolicy {
                    task_timeout: Some(SimDuration::from_secs(30)),
                    ..RetryPolicy::default()
                },
            )
        } else {
            (FaultPlan::disabled(), RetryPolicy::default())
        };
        ScenarioInstance {
            registry,
            jobs,
            deadlines,
            tenants,
            qos: primary.qos,
            n_primary,
            minutes: self.minutes,
            faults,
            retry,
        }
    }

    fn rate_config(&self, diurnal: f64, burst_prob: f64, noise_cv: f64) -> RateTraceConfig {
        RateTraceConfig {
            minutes: self.minutes,
            mean_rpm: self.mean_rpm,
            diurnal,
            weekly: 0.0,
            burst_prob,
            burst_scale: 4.0,
            burst_len: 3.0,
            rate_noise_cv: noise_cv,
            business_hours: 0.0,
            timer_spike: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: ScenarioKind) -> ScenarioSpec {
        ScenarioSpec::new(kind, 30, 3.0)
    }

    #[test]
    fn every_kind_produces_primary_arrivals_within_horizon() {
        for kind in ScenarioKind::ALL {
            let inst = spec(kind).instantiate(7);
            assert!(inst.n_primary > 0, "{}: no arrivals", kind.name());
            assert_eq!(inst.n_primary, inst.jobs[0].arrivals.len());
            let end = spec(kind).horizon();
            for t in &inst.jobs[0].arrivals {
                assert!(*t < end, "{}: arrival beyond horizon", kind.name());
            }
        }
    }

    #[test]
    fn instantiation_is_deterministic_per_seed() {
        for kind in ScenarioKind::ALL {
            let a = spec(kind).instantiate(11);
            let b = spec(kind).instantiate(11);
            assert_eq!(a.jobs[0].arrivals, b.jobs[0].arrivals);
            let c = spec(kind).instantiate(12);
            assert_ne!(
                a.jobs[0].arrivals,
                c.jobs[0].arrivals,
                "{}: seeds must differ",
                kind.name()
            );
        }
    }

    #[test]
    fn faulted_shares_the_diurnal_arrival_stream() {
        let clean = spec(ScenarioKind::Diurnal).instantiate(5);
        let faulted = spec(ScenarioKind::Faulted).instantiate(5);
        assert_eq!(clean.jobs[0].arrivals, faulted.jobs[0].arrivals);
        assert!(clean.faults.is_disabled());
        assert!(!faulted.faults.is_disabled());
    }

    #[test]
    fn zero_rates_yield_a_disabled_faulted_plan() {
        // A zero-rate faulted row carries a plan that can never fire —
        // the simulator treats it as a strict no-op, which is what makes
        // the bit-identical-to-clean assertion in
        // tests/scenario_matrix.rs meaningful.
        let faulted = spec(ScenarioKind::Faulted).instantiate_with_rates(5, FaultRates::default());
        assert!(faulted.faults.is_disabled());
        assert!(faulted.retry.task_timeout.is_some(), "timeouts stay armed");
    }

    #[test]
    fn noisy_neighbor_adds_a_second_tenant() {
        let inst = spec(ScenarioKind::NoisyNeighbor).instantiate(3);
        assert_eq!(inst.jobs.len(), 2);
        assert_eq!(inst.deadlines.len(), 2);
        assert_eq!(inst.tenants, vec![TenantId(0), TenantId(1)]);
        assert!(inst.n_primary < inst.jobs[0].arrivals.len() + inst.jobs[1].arrivals.len());
    }

    #[test]
    fn tenant_plan_maps_deadlines_to_slos_and_splits_the_budget() {
        let inst = spec(ScenarioKind::NoisyNeighbor).instantiate(3);
        let plan = inst.tenant_plan(10_000.0);
        plan.validate();
        assert_eq!(plan.tenants(), 2);
        assert_eq!(plan.classes[0].latency_slo, Some(inst.deadlines[0]));
        assert_eq!(plan.classes[1].latency_slo, Some(inst.deadlines[1]));
        assert!((plan.classes[0].memory_share_mb - 4500.0).abs() < 1e-9);
        assert!((plan.classes[1].memory_share_mb - 4500.0).abs() < 1e-9);
    }

    #[test]
    fn single_tenant_plan_keeps_the_untenanted_fast_path() {
        let inst = spec(ScenarioKind::Diurnal).instantiate(3);
        let plan = inst.tenant_plan(10_000.0);
        assert_eq!(plan.tenants(), 1);
        assert_eq!(plan.classes[0].memory_share_mb, 0.0);
        assert_eq!(plan.classes[0].latency_slo, Some(inst.qos));
        assert_eq!(plan.job_tenants, vec![TenantId(0)]);
    }
}
