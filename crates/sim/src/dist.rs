//! Probability distributions used by the workload and interference models.
//!
//! Each distribution is a small value type sampled with a [`SimRng`], keeping
//! all stochasticity attributable to explicit seeded streams.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// # Examples
///
/// ```
/// use aqua_sim::{Exponential, SimRng};
///
/// let exp = Exponential::with_mean(2.0);
/// let mut rng = SimRng::seed(1);
/// let x = exp.sample(&mut rng);
/// assert!(x >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates the distribution from its rate parameter.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        Exponential { rate }
    }

    /// Creates the distribution from its mean (`1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        Exponential { rate: 1.0 / mean }
    }

    /// The rate parameter `lambda`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = loop {
            let u = rng.uniform();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / self.rate
    }
}

/// Log-normal distribution parameterized by the underlying normal's
/// `mu` and `sigma`.
///
/// Used for function execution-time noise: multiplicative, right-skewed,
/// always positive — the shape measured for FaaS latencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates the distribution from the underlying normal parameters.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is not finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "invalid parameters"
        );
        LogNormal { mu, sigma }
    }

    /// Creates a log-normal with the given arithmetic mean and coefficient
    /// of variation (`std/mean`).
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0` or `cv < 0`.
    pub fn with_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        assert!(cv.is_finite() && cv >= 0.0, "cv must be non-negative");
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        LogNormal {
            mu,
            sigma: sigma2.sqrt(),
        }
    }

    /// Arithmetic mean of the distribution.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * rng.standard_normal()).exp()
    }
}

/// Pareto (power-law) distribution, used for heavy-tailed outlier noise
/// (the paper's "non-Gaussian" interference component).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Creates a Pareto with minimum value `scale` and tail index `shape`.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite.
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        assert!(shape.is_finite() && shape > 0.0, "shape must be positive");
        Pareto { scale, shape }
    }

    /// Draws one sample (always `>= scale`).
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = loop {
            let u = rng.uniform();
            if u > 0.0 {
                break u;
            }
        };
        self.scale / u.powf(1.0 / self.shape)
    }
}

/// Gamma distribution (shape `k`, scale `theta`), sampled with the
/// Marsaglia–Tsang method. Used to generate inter-arrival times with a
/// controlled coefficient of variation below 1 (`CV = 1/√k`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape.is_finite() && shape > 0.0, "shape must be positive");
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        Gamma { shape, scale }
    }

    /// Gamma with a given mean and coefficient of variation.
    ///
    /// # Panics
    ///
    /// Panics unless `mean > 0` and `cv > 0`.
    pub fn with_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        assert!(cv > 0.0, "cv must be positive");
        let shape = 1.0 / (cv * cv);
        Gamma::new(shape, mean / shape)
    }

    /// Arithmetic mean `k·θ`.
    pub fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        if self.shape < 1.0 {
            // Boost: Gamma(k) = Gamma(k+1) · U^(1/k).
            let u = loop {
                let u = rng.uniform();
                if u > 0.0 {
                    break u;
                }
            };
            let boosted = Gamma::new(self.shape + 1.0, self.scale).sample(rng);
            return boosted * u.powf(1.0 / self.shape);
        }
        let d = self.shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = rng.standard_normal();
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = rng.uniform();
            if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v * self.scale;
            }
        }
    }
}

/// Two-phase hyperexponential distribution: with probability `p` draw from
/// a fast exponential, else a slow one. Produces inter-arrival times with a
/// coefficient of variation above 1 (bursty serverless traffic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperExp {
    p: f64,
    fast: Exponential,
    slow: Exponential,
}

impl HyperExp {
    /// Builds a balanced two-phase hyperexponential with the given mean and
    /// coefficient of variation.
    ///
    /// # Panics
    ///
    /// Panics unless `mean > 0` and `cv > 1`.
    pub fn with_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        assert!(cv > 1.0, "hyperexponential needs cv > 1");
        // Balanced-means parameterization: p chosen so both phases carry
        // half the probability mass of the mean.
        let c2 = cv * cv;
        let p = 0.5 * (1.0 + ((c2 - 1.0) / (c2 + 1.0)).sqrt());
        let m1 = mean / (2.0 * p);
        let m2 = mean / (2.0 * (1.0 - p));
        HyperExp {
            p,
            fast: Exponential::with_mean(m1),
            slow: Exponential::with_mean(m2),
        }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        if rng.chance(self.p) {
            self.fast.sample(rng)
        } else {
            self.slow.sample(rng)
        }
    }
}

/// Generates `n` arrival timestamps whose inter-arrival times have the
/// given mean (seconds) and coefficient of variation. `cv == 0` yields a
/// deterministic arrival stream; `cv < 1` uses a Gamma renewal process,
/// `cv == 1` exponential, `cv > 1` hyperexponential — the knob behind the
/// paper's Fig. 10 sweep.
///
/// # Panics
///
/// Panics if `mean_gap <= 0` or `cv < 0`.
pub fn arrivals_with_cv(n: usize, mean_gap: f64, cv: f64, rng: &mut SimRng) -> Vec<SimTime> {
    assert!(mean_gap > 0.0, "mean gap must be positive");
    assert!(cv >= 0.0, "cv must be non-negative");
    let mut t = 0.0;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let gap = if cv == 0.0 {
            mean_gap
        } else if cv < 1.0 {
            Gamma::with_mean_cv(mean_gap, cv).sample(rng)
        } else if (cv - 1.0).abs() < 1e-9 {
            Exponential::with_mean(mean_gap).sample(rng)
        } else {
            HyperExp::with_mean_cv(mean_gap, cv).sample(rng)
        };
        t += gap;
        out.push(SimTime::from_secs_f64(t));
    }
    out
}

/// A non-homogeneous Poisson arrival process over 1-minute rate buckets.
///
/// This mirrors the paper's workload generation: "within each one-minute
/// interval provided in the trace, we use a Poisson process to generate
/// workflow invocation traffic with an exponential distribution of
/// inter-arrival times" (§7.2).
///
/// # Examples
///
/// ```
/// use aqua_sim::{PoissonProcess, SimRng};
///
/// // 60 invocations/min for two minutes.
/// let proc_ = PoissonProcess::from_per_minute_rates(&[60.0, 60.0]);
/// let mut rng = SimRng::seed(9);
/// let arrivals = proc_.generate(&mut rng);
/// assert!(!arrivals.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonProcess {
    /// Invocations per minute, one entry per minute bucket.
    rates: Vec<f64>,
}

impl PoissonProcess {
    /// Builds the process from per-minute invocation rates.
    ///
    /// # Panics
    ///
    /// Panics if any rate is negative or not finite.
    pub fn from_per_minute_rates(rates: &[f64]) -> Self {
        assert!(
            rates.iter().all(|r| r.is_finite() && *r >= 0.0),
            "rates must be finite and non-negative"
        );
        PoissonProcess {
            rates: rates.to_vec(),
        }
    }

    /// The per-minute rates backing this process.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Total simulated horizon covered by the rate buckets.
    pub fn horizon(&self) -> SimDuration {
        SimDuration::from_secs(60 * self.rates.len() as u64)
    }

    /// Generates the arrival timestamps for the whole horizon.
    ///
    /// Within each minute the inter-arrival gaps are exponential with that
    /// minute's rate; minutes with rate zero produce no arrivals.
    pub fn generate(&self, rng: &mut SimRng) -> Vec<SimTime> {
        let mut arrivals = Vec::new();
        for (i, &rate) in self.rates.iter().enumerate() {
            if rate <= 0.0 {
                continue;
            }
            let start = 60.0 * i as f64;
            let exp = Exponential::new(rate / 60.0); // events per second
            let mut t = start;
            loop {
                t += exp.sample(rng);
                if t >= start + 60.0 {
                    break;
                }
                arrivals.push(SimTime::from_secs_f64(t));
            }
        }
        arrivals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_mean() {
        let exp = Exponential::with_mean(3.0);
        let mut rng = SimRng::seed(2);
        let n = 100_000;
        let mean = (0..n).map(|_| exp.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean = {mean}");
        assert!((exp.rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lognormal_mean_and_cv() {
        let ln = LogNormal::with_mean_cv(10.0, 0.5);
        assert!((ln.mean() - 10.0).abs() < 1e-9);
        let mut rng = SimRng::seed(4);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| ln.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean;
        assert!((mean - 10.0).abs() < 0.15, "mean = {mean}");
        assert!((cv - 0.5).abs() < 0.02, "cv = {cv}");
    }

    #[test]
    fn lognormal_zero_cv_is_deterministic() {
        let ln = LogNormal::with_mean_cv(5.0, 0.0);
        let mut rng = SimRng::seed(8);
        for _ in 0..10 {
            assert!((ln.sample(&mut rng) - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pareto_respects_scale() {
        let p = Pareto::new(2.0, 1.5);
        let mut rng = SimRng::seed(6);
        for _ in 0..1_000 {
            assert!(p.sample(&mut rng) >= 2.0);
        }
    }

    #[test]
    fn poisson_process_counts_match_rates() {
        let rates = vec![120.0; 50];
        let proc_ = PoissonProcess::from_per_minute_rates(&rates);
        let mut rng = SimRng::seed(12);
        let arrivals = proc_.generate(&mut rng);
        let expected = 120.0 * 50.0;
        let got = arrivals.len() as f64;
        assert!((got - expected).abs() < 0.05 * expected, "got {got}");
    }

    #[test]
    fn poisson_process_is_sorted_within_horizon() {
        let proc_ = PoissonProcess::from_per_minute_rates(&[10.0, 0.0, 30.0]);
        let mut rng = SimRng::seed(13);
        let arrivals = proc_.generate(&mut rng);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        let horizon = proc_.horizon();
        assert!(arrivals.iter().all(|t| *t < SimTime::ZERO + horizon));
        // No arrivals in the zero-rate minute.
        assert!(!arrivals
            .iter()
            .any(|t| (60.0..120.0).contains(&t.as_secs_f64())));
    }

    #[test]
    fn gamma_moments() {
        let mut rng = SimRng::seed(21);
        for &(shape, scale) in &[(0.5, 2.0), (2.0, 1.5), (9.0, 0.3)] {
            let g = Gamma::new(shape, scale);
            let n = 100_000;
            let xs: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape * scale).abs() < 0.03 * shape * scale + 0.01,
                "k={shape} mean={mean}"
            );
            assert!(
                (var - shape * scale * scale).abs() < 0.06 * shape * scale * scale + 0.02,
                "k={shape} var={var}"
            );
        }
    }

    #[test]
    fn hyperexp_hits_target_cv() {
        let mut rng = SimRng::seed(22);
        for &cv in &[1.5, 2.5, 4.0] {
            let h = HyperExp::with_mean_cv(10.0, cv);
            let n = 300_000;
            let xs: Vec<f64> = (0..n).map(|_| h.sample(&mut rng)).collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            let got_cv = var.sqrt() / mean;
            assert!((mean - 10.0).abs() < 0.3, "cv={cv} mean={mean}");
            assert!(
                (got_cv - cv).abs() < 0.1 * cv,
                "target cv={cv} got {got_cv}"
            );
        }
    }

    #[test]
    fn arrivals_with_cv_spans_regimes() {
        let mut rng = SimRng::seed(23);
        for &cv in &[0.0, 0.5, 1.0, 3.0] {
            let arr = arrivals_with_cv(5_000, 2.0, cv, &mut rng);
            assert_eq!(arr.len(), 5_000);
            assert!(arr.windows(2).all(|w| w[0] <= w[1]));
            let gaps: Vec<f64> = arr
                .windows(2)
                .map(|w| w[1].as_secs_f64() - w[0].as_secs_f64())
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            let got = var.sqrt() / mean;
            assert!((mean - 2.0).abs() < 0.25, "cv={cv} mean gap {mean}");
            assert!(
                (got - cv).abs() < 0.15 * cv.max(0.5),
                "target {cv} got {got}"
            );
        }
    }

    #[test]
    fn zero_rate_process_is_empty() {
        let proc_ = PoissonProcess::from_per_minute_rates(&[0.0; 10]);
        let mut rng = SimRng::seed(14);
        assert!(proc_.generate(&mut rng).is_empty());
    }
}
