//! Replicate and latency statistics shared across the workspace.
//!
//! One home for the percentile/CI/paired-delta arithmetic that the
//! scenario-matrix evaluator, the benches, and the control-plane service
//! all need: replicate confidence intervals ([`mean_ci95`]), an exact
//! paired sign test ([`sign_test_p`], [`Comparison`]), and one-pass
//! latency summaries ([`LatencySummary`]).
//!
//! Cells and benches are replicated over seeds, so "A beats B on
//! scenario C" is a paired comparison: both policies saw the *same*
//! arrival stream per seed, and the per-seed delta cancels the workload
//! draw. The sign test makes no distributional assumption — with a
//! handful of seeds that is the honest choice (a t-test on 5
//! QoS-violation rates is theater).

/// Mean and 95% confidence half-width of seed replicates. Degenerate
/// inputs (no or one replicate) report a zero half-width.
pub fn mean_ci95(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let m = aqua_linalg::mean(xs);
    if xs.len() < 2 {
        return (m, 0.0);
    }
    let hw = 1.96 * aqua_linalg::sample_std(xs) / (xs.len() as f64).sqrt();
    (m, hw)
}

/// Exact two-sided sign-test p-value for paired deltas. Zero deltas are
/// dropped (the standard treatment); with no informative pair the test is
/// maximally inconclusive (p = 1).
pub fn sign_test_p(deltas: &[f64]) -> f64 {
    let pos = deltas.iter().filter(|&&d| d > 0.0).count();
    let neg = deltas.iter().filter(|&&d| d < 0.0).count();
    let n = pos + neg;
    if n == 0 {
        return 1.0;
    }
    let k = pos.min(neg);
    let tail: f64 = (0..=k).map(|i| binomial(n, i)).sum();
    (2.0 * tail / 2f64.powi(n as i32)).min(1.0)
}

/// Binomial coefficient C(n, k) as f64 (n is a seed count — tiny).
fn binomial(n: usize, k: usize) -> f64 {
    let k = k.min(n - k);
    let mut c = 1.0;
    for i in 0..k {
        c = c * (n - i) as f64 / (i + 1) as f64;
    }
    c
}

/// One head-to-head claim: policy A vs policy B on one scenario and one
/// metric, over paired seed replicates.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Scenario the pairing ran on.
    pub scenario: String,
    /// Metric compared (lower is better for every matrix metric).
    pub metric: String,
    /// The challenger.
    pub policy_a: String,
    /// The incumbent.
    pub policy_b: String,
    /// Mean of the per-seed deltas `a − b` (negative favors A).
    pub mean_delta: f64,
    /// Seeds where A was strictly lower.
    pub wins: usize,
    /// Seeds where A was strictly higher.
    pub losses: usize,
    /// Exact ties.
    pub ties: usize,
    /// Two-sided sign-test p-value over the non-tied pairs.
    pub p_value: f64,
}

impl Comparison {
    /// Pairs two per-seed metric vectors (same seed order).
    ///
    /// # Panics
    ///
    /// Panics if the replicate vectors differ in length.
    pub fn paired(
        scenario: &str,
        metric: &str,
        (policy_a, a): (&str, &[f64]),
        (policy_b, b): (&str, &[f64]),
    ) -> Self {
        assert_eq!(a.len(), b.len(), "paired comparison needs equal replicates");
        let deltas: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
        Comparison {
            scenario: scenario.to_string(),
            metric: metric.to_string(),
            policy_a: policy_a.to_string(),
            policy_b: policy_b.to_string(),
            mean_delta: if deltas.is_empty() {
                0.0
            } else {
                aqua_linalg::mean(&deltas)
            },
            wins: deltas.iter().filter(|&&d| d < 0.0).count(),
            losses: deltas.iter().filter(|&&d| d > 0.0).count(),
            ties: deltas.iter().filter(|&&d| d == 0.0).count(),
            p_value: sign_test_p(&deltas),
        }
    }

    /// Whether A beats B at significance `alpha`: the mean delta favors A
    /// *and* the sign test rejects "coin flip".
    pub fn a_beats_b(&self, alpha: f64) -> bool {
        self.mean_delta < 0.0 && self.p_value <= alpha
    }
}

/// A one-pass percentile summary of a latency (or any lower-is-better)
/// sample — the reduction the scenario matrix applies per cell and the
/// control-plane service applies to its live completion stream.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Number of samples summarized.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl LatencySummary {
    /// Summarizes `xs`. An empty sample reports all-zero statistics so
    /// callers (e.g. a run that shed every request) need no special case.
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return LatencySummary::default();
        }
        LatencySummary {
            count: xs.len(),
            mean: aqua_linalg::mean(xs),
            p50: aqua_linalg::quantile(xs, 0.5),
            p90: aqua_linalg::quantile(xs, 0.9),
            p99: aqua_linalg::quantile(xs, 0.99),
            max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_of_constant_replicates_is_tight() {
        let (m, hw) = mean_ci95(&[0.2, 0.2, 0.2, 0.2]);
        assert_eq!(m, 0.2);
        assert_eq!(hw, 0.0);
    }

    #[test]
    fn ci_degenerate_inputs() {
        assert_eq!(mean_ci95(&[]), (0.0, 0.0));
        assert_eq!(mean_ci95(&[3.0]), (3.0, 0.0));
    }

    #[test]
    fn sign_test_matches_hand_computation() {
        // 5 positive, 0 negative: p = 2 × C(5,0)/2^5 = 1/16.
        let p = sign_test_p(&[1.0, 2.0, 0.5, 3.0, 0.1]);
        assert!((p - 2.0 / 32.0).abs() < 1e-12, "{p}");
        // 3 vs 2: tail = C(5,0)+C(5,1)+C(5,2) = 16, p = 1.
        assert_eq!(sign_test_p(&[1.0, 1.0, 1.0, -1.0, -1.0]), 1.0);
        // All zeros: inconclusive.
        assert_eq!(sign_test_p(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn binomial_small_values() {
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(6, 3), 20.0);
    }

    #[test]
    fn paired_comparison_decides() {
        let a = [0.1, 0.1, 0.2, 0.0, 0.1, 0.1];
        let b = [0.3, 0.4, 0.3, 0.2, 0.2, 0.3];
        let c = Comparison::paired("diurnal", "qos_violation_rate", ("aqua", &a), ("fixed", &b));
        assert_eq!(c.wins, 6);
        assert_eq!(c.losses, 0);
        assert!(c.mean_delta < 0.0);
        assert!((c.p_value - 2.0 / 64.0).abs() < 1e-12);
        assert!(c.a_beats_b(0.05));
        assert!(!c.a_beats_b(0.01), "6 seeds cannot reach 0.01");
    }

    #[test]
    fn symmetric_comparison_never_beats() {
        let a = [0.1, 0.3];
        let b = [0.3, 0.1];
        let c = Comparison::paired("s", "m", ("a", &a), ("b", &b));
        assert!(!c.a_beats_b(0.5));
        assert_eq!(c.p_value, 1.0);
    }

    #[test]
    fn latency_summary_percentiles() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencySummary::of(&xs);
        assert_eq!(s.count, 100);
        assert_eq!(s.mean, 50.5);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!((s.p99 - 99.01).abs() < 1e-9);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn latency_summary_empty_is_zero() {
        assert_eq!(LatencySummary::of(&[]), LatencySummary::default());
    }
}
