//! A deterministic future-event list.
//!
//! [`EventQueue`] is a min-heap keyed by [`SimTime`] with a monotonically
//! increasing sequence number as a tiebreaker, so events scheduled for the
//! same instant pop in insertion (FIFO) order. Determinism of the pop order
//! is what makes whole-simulation replays reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list ordered by simulated time with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use aqua_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "late");
/// q.push(SimTime::from_secs(1), "early");
/// q.push(SimTime::from_secs(1), "early-second");
///
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "early-second");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Like [`EventQueue::new`] but with heap space for `capacity` events
    /// reserved up front, so a run whose arrival count is known in advance
    /// never reallocates mid-simulation.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Reserves space for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// The number of events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to the current clock so that the
    /// simulation clock never moves backwards.
    pub fn push(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue clock went backwards");
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Returns the timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// The current simulation clock: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events, keeping the clock where it is.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), 3);
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_and_clamps_past_pushes() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), "a");
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
        // Scheduling in the past clamps to now.
        q.push(SimTime::from_secs(1), "b");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(5));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn with_capacity_reserves_and_behaves_identically() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::with_capacity(64);
        assert!(b.capacity() >= 64);
        for i in (0..50u64).rev() {
            a.push(SimTime::from_millis(i), i);
            b.push(SimTime::from_millis(i), i);
        }
        assert!(b.capacity() >= 64, "pre-sized heap must not shrink");
        while let Some(x) = a.pop() {
            assert_eq!(Some(x), b.pop());
        }
        assert!(b.pop().is_none());
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), ());
        q.pop();
        q.push(SimTime::from_secs(9), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_secs(1));
    }

    proptest! {
        /// Pop order is always non-decreasing in time, for arbitrary pushes.
        #[test]
        fn prop_pop_times_monotonic(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_micros(*t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        /// Every pushed event is popped exactly once.
        #[test]
        fn prop_conservation(times in prop::collection::vec(0u64..1_000, 0..100)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_micros(*t), i);
            }
            let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
        }
    }
}
