//! Seeded random-number streams.
//!
//! [`SimRng`] wraps a SplitMix64/xoshiro256++-style generator implemented
//! locally so the whole reproduction depends on one tiny, inspectable PRNG.
//! Independent named streams can be forked from a root seed so that, e.g.,
//! arrival noise and execution noise do not perturb each other when one
//! component draws more samples.

use rand::{Error, RngCore, SeedableRng};

/// Deterministic 64-bit PRNG (xoshiro256++) with cheap stream forking.
///
/// Implements [`rand::RngCore`] so it can be used with the `rand` crate's
/// distribution adapters while remaining fully reproducible from a `u64`
/// seed.
///
/// # Examples
///
/// ```
/// use aqua_sim::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let mut fork = a.fork("arrivals");
/// let _ = fork.uniform(); // independent stream, same reproducibility
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Derives an independent stream from this generator and a label.
    ///
    /// Forking does not consume randomness from `self`, so adding a new
    /// forked stream never perturbs existing draws.
    pub fn fork(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SimRng::seed(self.state[0] ^ h.rotate_left(17))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid range"
        );
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        (self.uniform() * n as f64) as usize % n
    }

    /// Standard normal sample via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u1 = self.uniform();
            if u1 > 1e-300 {
                let u2 = self.uniform();
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.standard_normal()
    }

    /// Bernoulli trial returning true with probability `p` (clamped to [0,1]).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Poisson sample with mean `lambda` (Knuth for small, normal
    /// approximation for large means).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or not finite.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "lambda must be non-negative"
        );
        if lambda == 0.0 {
            return 0;
        }
        if lambda > 50.0 {
            let x = self.normal(lambda, lambda.sqrt());
            return x.max(0.0).round() as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        SimRng::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = SimRng::next_u64(self).to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SimRng {
    type Seed = [u8; 8];
    fn from_seed(seed: Self::Seed) -> Self {
        SimRng::seed(u64::from_le_bytes(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn forks_are_independent_and_stable() {
        let root = SimRng::seed(99);
        let mut f1 = root.fork("arrivals");
        let mut f2 = root.fork("arrivals");
        let mut g = root.fork("exec");
        assert_eq!(f1.next_u64(), f2.next_u64());
        assert_ne!(f1.next_u64(), g.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SimRng::seed(3);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_close_to_half() {
        let mut r = SimRng::seed(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::seed(5);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.15, "var = {var}");
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut r = SimRng::seed(17);
        for &lambda in &[0.5, 4.0, 30.0, 200.0] {
            let n = 20_000;
            let mean = (0..n).map(|_| r.poisson(lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < 0.05 * lambda.max(1.0),
                "lambda={lambda} mean={mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut r = SimRng::seed(1);
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn below_covers_range() {
        let mut r = SimRng::seed(23);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.below(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed(31);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(41);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
