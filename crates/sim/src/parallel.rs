//! Deterministic, order-preserving parallel map.
//!
//! The BO hot paths (hyperparameter grid search, acquisition scoring over
//! candidate pools) are embarrassingly parallel, but the repository's
//! golden-trace tests demand *bit-identical* replays. This helper keeps
//! that contract by construction:
//!
//! * the closure receives the item **index** and must be pure (no shared
//!   mutable state, no RNG of its own);
//! * items are split into contiguous chunks, one `std::thread::scope`
//!   worker per chunk — no work stealing, no reordering;
//! * results are collected back **in input order**, so the output is the
//!   same `Vec` a sequential `map` would produce regardless of how many
//!   threads actually ran.
//!
//! Thread count adapts to `std::thread::available_parallelism`, can be
//! pinned with the `AQUA_THREADS` environment variable (`AQUA_THREADS=1`
//! forces the sequential path), and never affects results — only wall
//! clock.

use std::thread;

/// Number of worker threads to use for `len` items.
fn worker_threads(len: usize) -> usize {
    let hw = thread::available_parallelism().map_or(1, |n| n.get());
    let cap = std::env::var("AQUA_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(hw);
    cap.min(len).max(1)
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Equivalent to `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()`
/// for any pure `f`, bit for bit. Falls back to the sequential loop for
/// single-item inputs or single-threaded machines.
///
/// # Panics
///
/// Propagates a panic from `f`.
///
/// # Examples
///
/// ```
/// use aqua_sim::par_map;
///
/// let squares = par_map(&[1, 2, 3, 4], |i, x| (i, x * x));
/// assert_eq!(squares, vec![(0, 1), (1, 4), (2, 9), (3, 16)]);
/// ```
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = worker_threads(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<R>> = Vec::with_capacity(threads);
    thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                let f = &f;
                s.spawn(move || {
                    slice
                        .iter()
                        .enumerate()
                        .map(|(j, t)| f(ci * chunk + j, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            chunks.push(h.join().expect("par_map worker panicked"));
        }
    });
    chunks.into_iter().flatten().collect()
}

/// Like [`par_map`] but takes **ownership** of the items and passes them to
/// `f` by value — for fan-outs whose work items carry non-`Sync` state that
/// each worker must mutate (e.g. a per-function model with its own RNG).
///
/// Results come back in input order; the same determinism contract as
/// [`par_map`] applies (contiguous chunks, no work stealing, thread count
/// affects only wall clock, `AQUA_THREADS=1` forces the sequential path).
///
/// # Panics
///
/// Propagates a panic from `f`.
///
/// # Examples
///
/// ```
/// use aqua_sim::par_map_owned;
///
/// let items = vec![String::from("a"), String::from("bb")];
/// let lens = par_map_owned(items, |i, s| (i, s.len()));
/// assert_eq!(lens, vec![(0, 1), (1, 2)]);
/// ```
pub fn par_map_owned<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let threads = worker_threads(items.len());
    if threads <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut owned: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        owned.push(c);
    }
    let mut chunks: Vec<Vec<R>> = Vec::with_capacity(owned.len());
    thread::scope(|s| {
        let handles: Vec<_> = owned
            .into_iter()
            .enumerate()
            .map(|(ci, slice)| {
                let f = &f;
                s.spawn(move || {
                    slice
                        .into_iter()
                        .enumerate()
                        .map(|(j, t)| f(ci * chunk + j, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            chunks.push(h.join().expect("par_map_owned worker panicked"));
        }
    });
    chunks.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..103).collect();
        let seq: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| i as u64 + x * 3)
            .collect();
        assert_eq!(par_map(&items, |i, x| i as u64 + x * 3), seq);
    }

    #[test]
    fn preserves_order_for_uneven_chunks() {
        // Lengths that don't divide evenly across typical core counts.
        for len in [1usize, 2, 5, 7, 17, 33, 100] {
            let items: Vec<usize> = (0..len).collect();
            let out = par_map(&items, |i, _| i);
            assert_eq!(out, items, "len {len}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<i32> = par_map(&[] as &[i32], |_, x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn index_matches_item_position() {
        let items: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let out = par_map(&items, |i, x| (i, *x));
        for (i, (idx, val)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*val, i as f64);
        }
    }

    #[test]
    fn owned_map_preserves_order_and_moves_items() {
        for len in [0usize, 1, 2, 5, 7, 17, 33, 100] {
            let items: Vec<Vec<usize>> = (0..len).map(|i| vec![i]).collect();
            let out = par_map_owned(items, |i, mut v| {
                v.push(i);
                v
            });
            let expected: Vec<Vec<usize>> = (0..len).map(|i| vec![i, i]).collect();
            assert_eq!(out, expected, "len {len}");
        }
    }
}
