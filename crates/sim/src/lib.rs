//! Discrete-event simulation engine underpinning the AQUATOPE reproduction.
//!
//! The engine is intentionally small and deterministic: a monotonic
//! [`SimTime`] clock, a binary-heap [`EventQueue`] with stable FIFO ordering
//! for simultaneous events, and seeded random-number streams plus the
//! probability distributions the FaaS simulator and workload generators need.
//!
//! # Examples
//!
//! ```
//! use aqua_sim::{EventQueue, SimTime};
//!
//! let mut queue = EventQueue::new();
//! queue.push(SimTime::from_millis(10), "b");
//! queue.push(SimTime::from_millis(5), "a");
//! let (t, ev) = queue.pop().unwrap();
//! assert_eq!(t, SimTime::from_millis(5));
//! assert_eq!(ev, "a");
//! ```

pub mod dist;
pub mod parallel;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use dist::{arrivals_with_cv, Exponential, Gamma, HyperExp, LogNormal, Pareto, PoissonProcess};
pub use parallel::{par_map, par_map_owned};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use stats::{mean_ci95, sign_test_p, Comparison, LatencySummary};
pub use time::{SimDuration, SimTime};
