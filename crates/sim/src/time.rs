//! Simulation time and duration newtypes.
//!
//! Simulated time is kept in integer microseconds so that event ordering is
//! exact and replays are bit-for-bit reproducible. [`SimTime`] is a point on
//! the simulated timeline; [`SimDuration`] is a span between two points.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, measured in integer microseconds from the
/// start of the simulation.
///
/// # Examples
///
/// ```
/// use aqua_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs_f64(1.5);
/// assert_eq!(t.as_millis(), 1_500);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, measured in integer microseconds.
///
/// # Examples
///
/// ```
/// use aqua_sim::SimDuration;
///
/// let d = SimDuration::from_millis(250) * 4;
/// assert_eq!(d.as_secs_f64(), 1.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// A time far beyond any simulated horizon, usable as a sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from integer microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from integer milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from integer seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates a time from fractional seconds, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "time must be finite and non-negative"
        );
        SimTime((s * 1e6).round() as u64)
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from integer microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from integer milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from integer seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((s * 1e6).round() as u64)
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns true if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of durations.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Returns the span from `rhs` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(
            self.0 >= rhs.0,
            "subtracting a later time from an earlier one"
        );
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrip_units() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_micros(7).as_micros(), 7);
        assert_eq!(SimTime::from_secs_f64(0.25).as_millis(), 250);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_millis(300) + SimDuration::from_millis(700);
        assert_eq!(d.as_secs_f64(), 1.0);
        assert_eq!((d - SimDuration::from_secs(2)), SimDuration::ZERO);
        assert_eq!(d * 3, SimDuration::from_secs(3));
        assert_eq!(d / 4, SimDuration::from_millis(250));
    }

    #[test]
    fn time_duration_interaction() {
        let t0 = SimTime::from_secs(1);
        let t1 = t0 + SimDuration::from_millis(500);
        assert_eq!(t1 - t0, SimDuration::from_millis(500));
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
        assert_eq!(t1.saturating_since(t0), SimDuration::from_millis(500));
    }

    #[test]
    fn ordering_and_extremes() {
        assert!(SimTime::ZERO < SimTime::MAX);
        assert_eq!(
            SimTime::from_secs(3).max(SimTime::from_secs(5)),
            SimTime::from_secs(5)
        );
        assert_eq!(
            SimTime::from_secs(3).min(SimTime::from_secs(5)),
            SimTime::from_secs(3)
        );
    }

    #[test]
    fn saturating_add_does_not_wrap() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_seconds() {
        let _ = SimDuration::from_secs_f64(f64::NAN);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_micros(1).to_string(), "0.000001s");
    }
}
