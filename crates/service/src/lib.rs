//! The AQUATOPE control-plane service.
//!
//! Everything in the rest of the workspace runs the controller as a
//! *batch*: build a workload, run the simulator to completion, read the
//! report. This crate lifts the same components into a **long-running
//! service process** shaped the way a production control plane is:
//!
//! * [`Reactor`] — a hand-rolled, deterministic-when-seeded event loop
//!   over the simulation engine's future-event list. No tokio, no OS
//!   timers; the existing `par_map`/`AQUA_THREADS` contract remains the
//!   workspace's only concurrency substrate.
//! * [`WarmPoolManager`] — owns the containers: per-function idle pools,
//!   a background filler task working toward any
//!   [`aqua_faas::PrewarmController`]'s targets under a boot-concurrency
//!   semaphore and a memory budget, keep-alive reaping, and a
//!   drain-aware shutdown path that provably leaves zero containers.
//! * [`Admission`] — workflow in-flight caps and bounded per-function
//!   task queues with load-shedding counters.
//! * [`RefitScheduler`] — budgeted incremental GP refits
//!   ([`aqua_alloc::OnlineLatencyModel`]) on a cadence decoupled from
//!   the request path.
//! * [`ControlPlane`] — the service itself: admission → warm pool →
//!   execution → completion bookkeeping, policy/filler/refit ticks, and
//!   graceful shutdown that drains in-flight work.
//! * [`driver`] — an open-loop load driver replaying
//!   [`aqua_workflows::azure`] traces at full speed and measuring the
//!   sustained wall-clock invocation rate.
//!
//! # Example
//!
//! ```
//! use aqua_service::{ControlPlane, ServiceConfig};
//! use aqua_faas::prelude::*;
//! use aqua_faas::WorkflowJob;
//!
//! let mut registry = FunctionRegistry::new();
//! let f = registry.register(FunctionSpec::new("hello").with_work_ms(40.0));
//! let dag = WorkflowDag::chain("hello-wf", vec![f]);
//! let configs = StageConfigs::uniform(&dag, ResourceConfig::default());
//! let job = WorkflowJob {
//!     dag,
//!     configs,
//!     arrivals: (1..=10).map(SimTime::from_secs).collect(),
//! };
//!
//! let cfg = ServiceConfig {
//!     run_for: SimDuration::from_secs(60),
//!     ..ServiceConfig::default()
//! };
//! let plane = ControlPlane::new(
//!     registry,
//!     vec![job],
//!     Box::new(aqua_pool::ReactiveAutoscale::default()),
//!     &FaultPlan::disabled(),
//!     cfg,
//! );
//! let report = plane.run();
//! assert_eq!(report.completed, 10);
//! assert_eq!(report.live_containers_at_exit, 0);
//! ```

pub mod admission;
pub mod driver;
pub mod fxhash;
pub mod reactor;
pub mod refit;
pub mod service;
pub mod warm_pool;

pub use admission::{Admission, AdmissionConfig, AdmissionStats};
pub use driver::{drive, drive_tenanted, DriverReport};
pub use fxhash::FxHashMap;
pub use reactor::Reactor;
pub use refit::{RefitScheduler, RefitStats};
pub use service::{
    ControlPlane, PredictiveConfig, ServiceConfig, ServiceReport, SvcEvent, TenantReport,
};
pub use warm_pool::{Acquired, BootPurpose, WarmPoolConfig, WarmPoolManager, WarmPoolStats};
