//! The online refit scheduler: budgeted model maintenance on a cadence
//! decoupled from the request path.
//!
//! Completions buffer into the [`OnlineLatencyModel`] in O(1); all GP
//! work happens here, on `RefitTick` events the service schedules every
//! [`RefitScheduler::interval`]. Each tick refits at most
//! [`RefitScheduler::budget`] applications — stalest first (most
//! completions since their last refit), ties broken by app id so the
//! schedule is deterministic. Apps over budget are *deferred*, not
//! dropped: their buffers keep accumulating and their staleness keeps
//! rising, so they win the next tick. The budget is the contract that
//! bounds per-tick latency impact: request-path work never waits on a
//! Cholesky.

use aqua_alloc::OnlineLatencyModel;
use aqua_sim::SimDuration;

/// Work counters for the refit scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefitStats {
    /// Ticks executed.
    pub ticks: u64,
    /// Per-app refits performed.
    pub refits: u64,
    /// Observations folded into models across all refits.
    pub absorbed: u64,
    /// App refits deferred to a later tick by the budget.
    pub deferred: u64,
}

/// Budgeted incremental-refit scheduling.
#[derive(Debug, Clone)]
pub struct RefitScheduler {
    /// Virtual-time cadence between ticks.
    pub interval: SimDuration,
    /// Maximum applications refit per tick.
    pub budget: usize,
    stats: RefitStats,
}

impl RefitScheduler {
    /// A scheduler refitting up to `budget` apps every `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn new(interval: SimDuration, budget: usize) -> Self {
        assert!(budget > 0, "refit budget must be positive");
        RefitScheduler {
            interval,
            budget,
            stats: RefitStats::default(),
        }
    }

    /// Runs one tick: refits the stalest apps within budget, defers the
    /// rest. Returns the number of apps refit.
    pub fn tick(&mut self, model: &mut OnlineLatencyModel) -> usize {
        self.stats.ticks += 1;
        let pending = model.pending_apps();
        let take = pending.len().min(self.budget);
        self.stats.deferred += (pending.len() - take) as u64;
        for &app in &pending[..take] {
            self.stats.absorbed += model.refit(app) as u64;
            self.stats.refits += 1;
        }
        take
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RefitStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_with_pending(apps: usize, per_app: usize) -> OnlineLatencyModel {
        let mut m = OnlineLatencyModel::service_default();
        for app in 0..apps {
            for i in 0..per_app {
                let v = (i as f64 + 1.0) / (per_app as f64 + 1.0);
                m.observe(app, &[v, 1.0 - v, 0.5], i as f64, 1.0 + v);
            }
        }
        m
    }

    #[test]
    fn budget_bounds_work_and_defers_the_rest() {
        let mut m = model_with_pending(5, 6);
        let mut sched = RefitScheduler::new(SimDuration::from_secs(10), 2);
        assert_eq!(sched.tick(&mut m), 2);
        let s = sched.stats();
        assert_eq!(s.refits, 2);
        assert_eq!(s.deferred, 3);
        assert_eq!(s.absorbed, 12, "both refit apps drained fully");
        // Deferred apps drain over subsequent ticks.
        assert_eq!(sched.tick(&mut m), 2);
        assert_eq!(sched.tick(&mut m), 1);
        assert_eq!(sched.tick(&mut m), 0, "everything drained");
        assert_eq!(sched.stats().absorbed, 30);
    }

    #[test]
    fn stalest_apps_win_the_budget() {
        let mut m = OnlineLatencyModel::service_default();
        for i in 0..3 {
            m.observe(7, &[0.1 * i as f64, 0.5, 0.5], i as f64, 1.0);
        }
        m.observe(1, &[0.9, 0.5, 0.5], 0.0, 1.0);
        let mut sched = RefitScheduler::new(SimDuration::from_secs(10), 1);
        sched.tick(&mut m);
        assert_eq!(m.staleness(7), 0, "stalest app was refit");
        assert_eq!(m.staleness(1), 1, "other app deferred");
    }

    #[test]
    #[should_panic(expected = "refit budget must be positive")]
    fn zero_budget_rejected() {
        let _ = RefitScheduler::new(SimDuration::from_secs(1), 0);
    }
}
