//! A hand-rolled, deterministic-when-seeded reactor.
//!
//! No tokio, no OS timers: the reactor is a virtual-clock timer wheel
//! over the simulation engine's [`EventQueue`] — the same future-event
//! list (binary heap, FIFO on ties) that makes whole-simulation replays
//! reproducible. The control plane runs as an ordinary event loop:
//!
//! ```text
//! while let Some((t, ev)) = reactor.next() { service.handle(t, ev) }
//! ```
//!
//! Determinism comes from three properties: the pop order is a pure
//! function of the pushed `(time, insertion-order)` pairs, all stochastic
//! sampling happens through seeded [`aqua_sim::SimRng`] streams owned by
//! the components, and wall-clock time is only ever *measured* (for
//! throughput metrics) — never consulted for control flow. The existing
//! `par_map`/`AQUA_THREADS` contract remains the sole concurrency
//! substrate elsewhere in the workspace; the reactor itself is
//! single-threaded by design, which is what makes shutdown draining and
//! replay proofs tractable.

use aqua_sim::{EventQueue, SimDuration, SimTime};

/// A virtual-clock event loop driver.
#[derive(Debug, Default)]
pub struct Reactor<E> {
    queue: EventQueue<E>,
    processed: u64,
}

impl<E> Reactor<E> {
    /// An empty reactor with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Reactor {
            queue: EventQueue::new(),
            processed: 0,
        }
    }

    /// Pre-sizes the heap for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        Reactor {
            queue: EventQueue::with_capacity(capacity),
            processed: 0,
        }
    }

    /// The current virtual time (timestamp of the last delivered event).
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Schedules `event` at absolute virtual time `at` (clamped to `now`
    /// so the clock never runs backwards).
    pub fn at(&mut self, at: SimTime, event: E) {
        self.queue.push(at, event);
    }

    /// Schedules `event` after a virtual delay.
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.queue.now() + delay, event);
    }

    /// Delivers the next event, advancing the virtual clock to its
    /// timestamp. `None` means the loop is drained and the process can
    /// exit.
    ///
    /// Named like `Iterator::next` on purpose — the reactor *is* an event
    /// stream — but it stays an inherent method: an `Iterator` impl would
    /// freeze the `(SimTime, E)` item shape into the public API and
    /// invite combinator use that hides the mutation of virtual time.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let ev = self.queue.pop();
        if ev.is_some() {
            self.processed += 1;
        }
        ev
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Events delivered so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_then_fifo_order() {
        let mut r = Reactor::new();
        r.at(SimTime::from_millis(20), "b");
        r.at(SimTime::from_millis(10), "a1");
        r.at(SimTime::from_millis(10), "a2");
        let order: Vec<&str> = std::iter::from_fn(|| r.next().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a1", "a2", "b"]);
        assert_eq!(r.processed(), 3);
        assert_eq!(r.now(), SimTime::from_millis(20));
    }

    #[test]
    fn after_is_relative_to_the_virtual_clock() {
        let mut r = Reactor::new();
        r.at(SimTime::from_secs(5), ());
        r.next();
        r.after(SimDuration::from_secs(2), ());
        let (t, _) = r.next().unwrap();
        assert_eq!(t, SimTime::from_secs(7));
    }

    #[test]
    fn rearming_inside_the_loop_keeps_running() {
        // The tick-re-arm pattern the service's filler task uses.
        let mut r = Reactor::new();
        r.at(SimTime::ZERO, 0u32);
        let mut ticks = 0;
        while let Some((_, n)) = r.next() {
            ticks += 1;
            if n < 4 {
                r.after(SimDuration::from_secs(1), n + 1);
            }
        }
        assert_eq!(ticks, 5);
        assert_eq!(r.now(), SimTime::from_secs(4));
    }
}
