//! Admission control and load shedding.
//!
//! Two bounded resources protect the control plane from overload:
//!
//! * a **workflow in-flight cap** — an arrival beyond it is shed at the
//!   front door (cheapest possible rejection, nothing was dispatched);
//! * **bounded per-function task queues** — a task that finds neither a
//!   warm container nor boot capacity waits in its function's queue, and
//!   a full queue sheds the task (aborting its workflow instance).
//!
//! Every shed increments a counter; the load driver reports the shed
//! rate alongside latency percentiles, because an overloaded service
//! that silently queues unboundedly would report beautiful percentiles
//! for the requests it ever finishes.

/// Bounds for [`Admission`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum workflow instances in flight at once.
    pub max_inflight: usize,
    /// Maximum waiting tasks per function queue.
    pub queue_cap: usize,
}

impl Default for AdmissionConfig {
    /// Generous service defaults: shedding should mean overload, not
    /// normal operation.
    fn default() -> Self {
        AdmissionConfig {
            max_inflight: 100_000,
            queue_cap: 1024,
        }
    }
}

/// Shedding and admission counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Workflow instances admitted.
    pub admitted: u64,
    /// Arrivals shed at the in-flight cap.
    pub shed_arrivals: u64,
    /// Tasks shed at a full function queue (each aborts its workflow).
    pub shed_tasks: u64,
    /// Admitted instances that finished (completed or aborted).
    pub finished: u64,
}

/// The admission/concurrency limiter.
#[derive(Debug, Clone, Default)]
pub struct Admission {
    cfg: AdmissionConfig,
    inflight: usize,
    stats: AdmissionStats,
}

impl Admission {
    /// A limiter with the given bounds.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Admission {
            cfg,
            inflight: 0,
            stats: AdmissionStats::default(),
        }
    }

    /// Tries to admit one workflow instance. `false` = shed (counted).
    pub fn try_admit(&mut self) -> bool {
        if self.inflight >= self.cfg.max_inflight {
            self.stats.shed_arrivals += 1;
            return false;
        }
        self.inflight += 1;
        self.stats.admitted += 1;
        true
    }

    /// Whether a task may join a function queue currently holding
    /// `queue_len` waiters. `false` = shed (counted).
    pub fn may_queue(&mut self, queue_len: usize) -> bool {
        if queue_len >= self.cfg.queue_cap {
            self.stats.shed_tasks += 1;
            return false;
        }
        true
    }

    /// Marks one in-flight instance finished (completed or aborted).
    pub fn finish(&mut self) {
        debug_assert!(self.inflight > 0, "finish without admit");
        self.inflight = self.inflight.saturating_sub(1);
        self.stats.finished += 1;
    }

    /// Instances currently in flight.
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Fraction of arrivals shed at the front door (0 when none arrived).
    pub fn shed_rate(&self) -> f64 {
        let arrivals = self.stats.admitted + self.stats.shed_arrivals;
        if arrivals == 0 {
            0.0
        } else {
            self.stats.shed_arrivals as f64 / arrivals as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_inflight_and_counts_sheds() {
        let mut a = Admission::new(AdmissionConfig {
            max_inflight: 2,
            queue_cap: 1,
        });
        assert!(a.try_admit());
        assert!(a.try_admit());
        assert!(!a.try_admit(), "third admit over the cap");
        assert_eq!(a.inflight(), 2);
        a.finish();
        assert!(a.try_admit(), "slot freed by finish");
        let s = a.stats();
        assert_eq!(s.admitted, 3);
        assert_eq!(s.shed_arrivals, 1);
        assert!((a.shed_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn queue_cap_sheds_tasks() {
        let mut a = Admission::new(AdmissionConfig {
            max_inflight: 10,
            queue_cap: 2,
        });
        assert!(a.may_queue(0));
        assert!(a.may_queue(1));
        assert!(!a.may_queue(2));
        assert_eq!(a.stats().shed_tasks, 1);
    }

    #[test]
    fn empty_limiter_sheds_nothing() {
        let a = Admission::new(AdmissionConfig::default());
        assert_eq!(a.shed_rate(), 0.0);
        assert_eq!(a.inflight(), 0);
    }
}
