//! Admission control and load shedding, tenant-aware.
//!
//! Two bounded resources protect the control plane from overload:
//!
//! * a **workflow in-flight cap** — an arrival beyond it is shed at the
//!   front door (cheapest possible rejection, nothing was dispatched);
//! * **bounded per-function task queues** — a task that finds neither a
//!   warm container nor boot capacity waits in its function's queue, and
//!   a full queue sheds the task (aborting its workflow instance).
//!
//! Both bounds exist at two scopes. The **global** [`AdmissionConfig`]
//! protects the plane as a whole; each tenant's [`QosClass`] additionally
//! caps that tenant's own in-flight instances and queue depth, so a noisy
//! neighbor exhausts *its* budget and sheds *its* arrivals while other
//! tenants' admission paths never see it. A third, distinct outcome is
//! the **predictive reject**: admission consults the online latency model
//! and refuses work whose predicted latency already misses its SLO (see
//! `ControlPlane`); it is counted separately from depth-based shedding
//! because the two mechanisms fail for different reasons and the matrix
//! report compares them head-to-head.
//!
//! Every shed increments a counter, globally and per tenant; the load
//! driver reports the shed rate alongside latency percentiles, because an
//! overloaded service that silently queues unboundedly would report
//! beautiful percentiles for the requests it ever finishes. Per tenant,
//! the counters form a ledger: every arrival is exactly one of admitted,
//! shed, or predictively rejected, and at drain `admitted == finished`.

use aqua_faas::tenant::{QosClass, TenantId};

/// Global bounds for [`Admission`], shared by all tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum workflow instances in flight at once.
    pub max_inflight: usize,
    /// Maximum waiting tasks per function queue.
    pub queue_cap: usize,
}

impl Default for AdmissionConfig {
    /// Generous service defaults: shedding should mean overload, not
    /// normal operation.
    fn default() -> Self {
        AdmissionConfig {
            max_inflight: 100_000,
            queue_cap: 1024,
        }
    }
}

/// Shedding and admission counters (kept globally and per tenant).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Workflow instances admitted.
    pub admitted: u64,
    /// Arrivals shed at an in-flight cap (global or tenant).
    pub shed_arrivals: u64,
    /// Tasks shed at a full function queue (each aborts its workflow).
    pub shed_tasks: u64,
    /// Arrivals refused because the latency model predicted an SLO miss.
    pub predictive_rejects: u64,
    /// Admitted instances that finished (completed or aborted).
    pub finished: u64,
}

impl AdmissionStats {
    /// Front-door arrivals seen: every one was admitted, shed, or
    /// predictively rejected (task sheds abort instances already counted
    /// as admitted, so they are not arrivals).
    pub fn arrivals(&self) -> u64 {
        self.admitted + self.shed_arrivals + self.predictive_rejects
    }
}

/// The admission/concurrency limiter.
#[derive(Debug, Clone)]
pub struct Admission {
    cfg: AdmissionConfig,
    inflight: usize,
    stats: AdmissionStats,
    /// One QoS class per tenant; `TenantId(i)` indexes this list.
    classes: Vec<QosClass>,
    tenant_inflight: Vec<usize>,
    tenant_stats: Vec<AdmissionStats>,
}

impl Default for Admission {
    fn default() -> Self {
        Admission::new(AdmissionConfig::default())
    }
}

impl Admission {
    /// A single-tenant limiter with the given global bounds; the one
    /// tenant is unlimited, so only the global config ever binds.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Admission::with_tenants(cfg, vec![QosClass::unlimited()])
    }

    /// A limiter with one QoS class per tenant on top of the global
    /// bounds. The effective cap for a tenant is the tighter of the two.
    pub fn with_tenants(cfg: AdmissionConfig, classes: Vec<QosClass>) -> Self {
        assert!(!classes.is_empty(), "at least one tenant class required");
        let n = classes.len();
        Admission {
            cfg,
            inflight: 0,
            stats: AdmissionStats::default(),
            classes,
            tenant_inflight: vec![0; n],
            tenant_stats: vec![AdmissionStats::default(); n],
        }
    }

    /// Tries to admit one workflow instance for `tenant`.
    /// `false` = shed (counted globally and against the tenant).
    pub fn try_admit(&mut self, tenant: TenantId) -> bool {
        let t = tenant.0;
        if self.inflight >= self.cfg.max_inflight
            || self.tenant_inflight[t] >= self.classes[t].max_inflight
        {
            self.stats.shed_arrivals += 1;
            self.tenant_stats[t].shed_arrivals += 1;
            return false;
        }
        self.inflight += 1;
        self.tenant_inflight[t] += 1;
        self.stats.admitted += 1;
        self.tenant_stats[t].admitted += 1;
        true
    }

    /// Whether a task of `tenant` may join a function queue currently
    /// holding `queue_len` waiters. `false` = shed (counted).
    pub fn may_queue(&mut self, tenant: TenantId, queue_len: usize) -> bool {
        let t = tenant.0;
        if queue_len >= self.cfg.queue_cap || queue_len >= self.classes[t].queue_cap {
            self.stats.shed_tasks += 1;
            self.tenant_stats[t].shed_tasks += 1;
            return false;
        }
        true
    }

    /// Counts one predictive rejection for `tenant` (the arrival was
    /// never admitted, so in-flight counts are untouched).
    pub fn predictive_reject(&mut self, tenant: TenantId) {
        self.stats.predictive_rejects += 1;
        self.tenant_stats[tenant.0].predictive_rejects += 1;
    }

    /// Marks one in-flight instance of `tenant` finished (completed or
    /// aborted).
    pub fn finish(&mut self, tenant: TenantId) {
        let t = tenant.0;
        debug_assert!(self.inflight > 0, "finish without admit");
        debug_assert!(self.tenant_inflight[t] > 0, "tenant finish without admit");
        self.inflight = self.inflight.saturating_sub(1);
        self.tenant_inflight[t] = self.tenant_inflight[t].saturating_sub(1);
        self.stats.finished += 1;
        self.tenant_stats[t].finished += 1;
    }

    /// Instances currently in flight across all tenants.
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Instances currently in flight for one tenant.
    pub fn tenant_inflight(&self, tenant: TenantId) -> usize {
        self.tenant_inflight[tenant.0]
    }

    /// Number of tenants.
    pub fn tenants(&self) -> usize {
        self.classes.len()
    }

    /// The QoS class of one tenant.
    pub fn class(&self, tenant: TenantId) -> &QosClass {
        &self.classes[tenant.0]
    }

    /// Global counter snapshot.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Counter snapshot for one tenant.
    pub fn tenant_stats(&self, tenant: TenantId) -> AdmissionStats {
        self.tenant_stats[tenant.0]
    }

    /// Fraction of arrivals shed at the front door (0 when none arrived).
    pub fn shed_rate(&self) -> f64 {
        let arrivals = self.stats.admitted + self.stats.shed_arrivals;
        if arrivals == 0 {
            0.0
        } else {
            self.stats.shed_arrivals as f64 / arrivals as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_sim::SimDuration;

    const T0: TenantId = TenantId(0);
    const T1: TenantId = TenantId(1);

    #[test]
    fn caps_inflight_and_counts_sheds() {
        let mut a = Admission::new(AdmissionConfig {
            max_inflight: 2,
            queue_cap: 1,
        });
        assert!(a.try_admit(T0));
        assert!(a.try_admit(T0));
        assert!(!a.try_admit(T0), "third admit over the cap");
        assert_eq!(a.inflight(), 2);
        a.finish(T0);
        assert!(a.try_admit(T0), "slot freed by finish");
        let s = a.stats();
        assert_eq!(s.admitted, 3);
        assert_eq!(s.shed_arrivals, 1);
        assert!((a.shed_rate() - 0.25).abs() < 1e-12);
        assert_eq!(a.tenant_stats(T0), s, "single tenant mirrors globals");
    }

    #[test]
    fn queue_cap_sheds_tasks() {
        let mut a = Admission::new(AdmissionConfig {
            max_inflight: 10,
            queue_cap: 2,
        });
        assert!(a.may_queue(T0, 0));
        assert!(a.may_queue(T0, 1));
        assert!(!a.may_queue(T0, 2));
        assert_eq!(a.stats().shed_tasks, 1);
    }

    #[test]
    fn empty_limiter_sheds_nothing() {
        let a = Admission::new(AdmissionConfig::default());
        assert_eq!(a.shed_rate(), 0.0);
        assert_eq!(a.inflight(), 0);
    }

    fn two_tenants(cap_a: usize, queue_a: usize) -> Admission {
        Admission::with_tenants(
            AdmissionConfig::default(),
            vec![
                QosClass::new(SimDuration::from_secs(1), cap_a, queue_a, 1024.0),
                QosClass::unlimited(),
            ],
        )
    }

    #[test]
    fn tenant_cap_binds_before_global_and_isolates_the_neighbor() {
        let mut a = two_tenants(1, 8);
        assert!(a.try_admit(T0));
        assert!(!a.try_admit(T0), "tenant 0 over its own cap");
        assert!(a.try_admit(T1), "tenant 1 untouched by tenant 0's sheds");
        assert_eq!(a.tenant_stats(T0).shed_arrivals, 1);
        assert_eq!(a.tenant_stats(T1).shed_arrivals, 0);
        assert_eq!(a.tenant_inflight(T0), 1);
        assert_eq!(a.tenant_inflight(T1), 1);
        a.finish(T0);
        assert!(a.try_admit(T0), "tenant slot freed by tenant finish");
    }

    #[test]
    fn tenant_queue_cap_tightens_the_global_one() {
        let mut a = two_tenants(8, 2);
        assert!(a.may_queue(T0, 1));
        assert!(!a.may_queue(T0, 2), "tenant queue cap binds");
        assert!(
            a.may_queue(T1, 2),
            "unlimited tenant sees only the global cap"
        );
        assert_eq!(a.tenant_stats(T0).shed_tasks, 1);
        assert_eq!(a.tenant_stats(T1).shed_tasks, 0);
    }

    #[test]
    fn predictive_rejects_balance_the_arrival_ledger() {
        let mut a = two_tenants(1, 8);
        assert!(a.try_admit(T0));
        assert!(!a.try_admit(T0));
        a.predictive_reject(T0);
        let s = a.tenant_stats(T0);
        assert_eq!(s.arrivals(), 3, "admit + shed + reject all count");
        assert_eq!(s.predictive_rejects, 1);
        assert_eq!(a.stats().predictive_rejects, 1);
        assert_eq!(a.inflight(), 1, "reject never touches in-flight");
    }
}
