//! The warm-pool manager: per-function container pools with a background
//! filler task, a boot-concurrency semaphore, and drain-aware shutdown.
//!
//! The manager owns the [`ContainerRuntime`] and all container ledgers
//! (idle / booting / busy, plus a memory budget). Control is split the
//! same way the simulator splits it:
//!
//! * a **policy** ([`aqua_faas::PrewarmController`]) decides per-function
//!   pre-warm *targets* and keep-alives once per control window — the
//!   service applies its decisions via [`WarmPoolManager::apply_decisions`];
//! * the **filler task** ([`WarmPoolManager::filler_tick`], scheduled by
//!   the reactor on its own shorter cadence) works toward those targets:
//!   it reaps keep-alive-expired idle containers, shrinks over-target
//!   pools when the policy asked for it, and boots replacements —
//!   never more than [`WarmPoolConfig::max_concurrent_boots`] pre-warm
//!   boots in flight at once (the boot semaphore). Demand boots (a
//!   request is waiting) bypass the semaphore: user-facing latency beats
//!   background-boot smoothing, but they still respect the memory budget.
//!
//! During shutdown ([`WarmPoolManager::begin_drain`]) the filler stops
//! creating pre-warm capacity; demand boots stay allowed so queued work
//! can still drain. [`WarmPoolManager::shutdown_sweep`] then reaps every
//! remaining container — after the service's event loop runs dry, the
//! runtime ledger must read zero or containers leaked.

//!
//! With [`WarmPoolManager::set_tenancy`] the memory budget is further
//! partitioned into per-tenant **guaranteed shares**: a tenant may always
//! reserve up to its share, and may *borrow* beyond it — but only for
//! demand boots, and only as long as the remaining budget still covers
//! every other tenant's unused guarantee, so no amount of borrowing can
//! ever deny another tenant its share. Pre-warm boots never borrow:
//! background headroom is a per-tenant luxury, not a reason to squat on a
//! neighbor's guarantee.

use std::collections::VecDeque;

use aqua_faas::runtime::{BootTicket, ContainerRuntime};
use aqua_faas::tenant::TenantId;
use aqua_faas::{FunctionId, PoolDecision, ResourceConfig};
use aqua_sim::{SimDuration, SimTime};

use crate::fxhash::FxHashMap;

/// Sizing knobs for the warm pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmPoolConfig {
    /// Boot semaphore: maximum pre-warm boots in flight at once across
    /// all functions.
    pub max_concurrent_boots: usize,
    /// Filler floor: minimum idle-plus-booting containers per function
    /// with a nonzero pre-warm target.
    pub min_idle: usize,
    /// Keep-alive applied before the policy's first decision.
    pub default_keep_alive: SimDuration,
    /// Total memory the pool may reserve, MiB.
    pub memory_budget_mb: f64,
}

impl Default for WarmPoolConfig {
    fn default() -> Self {
        WarmPoolConfig {
            max_concurrent_boots: 64,
            min_idle: 0,
            default_keep_alive: SimDuration::from_secs(600),
            memory_budget_mb: 256.0 * 16.0 * 1024.0,
        }
    }
}

/// Why a boot was started — determines semaphore accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootPurpose {
    /// A request is waiting on this container.
    Demand,
    /// The filler is building headroom toward a pre-warm target.
    Prewarm,
}

/// Result of asking the pool for a container.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Acquired {
    /// A warm container was available; it is now busy.
    Warm(aqua_faas::ContainerId),
    /// A demand boot was started; schedule its completion and queue the
    /// task.
    Cold(BootTicket),
    /// No warm container and no memory headroom to boot: queue or shed.
    NoCapacity,
}

/// Pool-manager lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmPoolStats {
    /// Acquisitions served from a warm container.
    pub warm_hits: u64,
    /// Demand boots started.
    pub demand_boots: u64,
    /// Pre-warm boots started by the filler.
    pub prewarm_boots: u64,
    /// Boots that failed (ticket said so and the failure landed).
    pub boot_failures: u64,
    /// Idle containers reaped by keep-alive expiry.
    pub reaped: u64,
    /// Idle containers killed by policy shrink decisions.
    pub shrunk: u64,
    /// Pre-warm boots the filler wanted but the semaphore deferred.
    pub semaphore_deferrals: u64,
    /// Pre-warm boots the filler wanted but the memory budget denied.
    pub memory_deferrals: u64,
    /// Idle containers LRU-evicted to make room for a demand boot.
    pub pressure_evictions: u64,
    /// Boots denied by the tenant-share borrowing rule while the global
    /// budget still had room (pre-warm beyond share, or a demand borrow
    /// that would have eaten a neighbor's guarantee).
    pub share_deferrals: u64,
    /// Containers killed by the final shutdown sweep.
    pub swept: u64,
}

/// Per-function pool state.
#[derive(Debug, Clone, Default)]
struct FnPool {
    /// Warm idle containers, most recently used last (LIFO reuse keeps
    /// the warmest container hot and lets the oldest expire).
    idle: VecDeque<(aqua_faas::ContainerId, SimTime)>,
    /// Containers currently booting (either purpose).
    booting: u32,
    /// Policy pre-warm target (`None` = demand-driven only).
    target: Option<usize>,
    /// Keep-alive horizon for idle containers.
    keep_alive: SimDuration,
    /// Whether the policy allows killing over-target idle containers.
    shrink: bool,
}

/// The warm-pool manager.
pub struct WarmPoolManager {
    cfg: WarmPoolConfig,
    runtime: Box<dyn ContainerRuntime>,
    pools: Vec<FnPool>,
    configs: Vec<ResourceConfig>,
    /// Purpose of each in-flight boot, keyed by container id.
    boot_purpose: FxHashMap<aqua_faas::ContainerId, (FunctionId, BootPurpose)>,
    /// Busy containers and the function they serve.
    busy: FxHashMap<aqua_faas::ContainerId, FunctionId>,
    /// Pre-warm boots currently in flight (semaphore counter).
    prewarm_inflight: usize,
    reserved_memory_mb: f64,
    /// Tenant of each function; all zeros until [`Self::set_tenancy`].
    fn_tenant: Vec<usize>,
    /// Guaranteed memory share per tenant, MiB. Empty = tenancy off
    /// (the single-tenant fast path skips all share accounting).
    tenant_shares_mb: Vec<f64>,
    /// Memory currently reserved by each tenant, MiB.
    tenant_reserved_mb: Vec<f64>,
    /// ∫ reserved_memory dt, MiB·s — the run's billable footprint.
    mem_integral_mb_s: f64,
    /// Virtual instant `mem_integral_mb_s` is integrated up to.
    last_mem_update: SimTime,
    draining: bool,
    stats: WarmPoolStats,
}

impl WarmPoolManager {
    /// A pool manager over `runtime` with one canonical [`ResourceConfig`]
    /// per function.
    pub fn new(
        cfg: WarmPoolConfig,
        runtime: Box<dyn ContainerRuntime>,
        configs: Vec<ResourceConfig>,
    ) -> Self {
        let pools = configs
            .iter()
            .map(|_| FnPool {
                keep_alive: cfg.default_keep_alive,
                ..FnPool::default()
            })
            .collect();
        WarmPoolManager {
            cfg,
            runtime,
            pools,
            configs,
            boot_purpose: FxHashMap::default(),
            busy: FxHashMap::default(),
            prewarm_inflight: 0,
            reserved_memory_mb: 0.0,
            fn_tenant: Vec::new(),
            tenant_shares_mb: Vec::new(),
            tenant_reserved_mb: Vec::new(),
            mem_integral_mb_s: 0.0,
            last_mem_update: SimTime::ZERO,
            draining: false,
            stats: WarmPoolStats::default(),
        }
    }

    /// Partitions the memory budget into per-tenant guaranteed shares.
    /// `fn_tenant[i]` is the owning tenant of function `i`; `shares_mb`
    /// holds each tenant's guarantee. Must be called before any boot.
    ///
    /// # Panics
    ///
    /// Panics when the mapping doesn't cover the functions, a function
    /// names an unknown tenant, the guarantees oversubscribe the budget,
    /// or containers already hold memory.
    pub fn set_tenancy(&mut self, fn_tenant: Vec<TenantId>, shares_mb: Vec<f64>) {
        assert_eq!(
            fn_tenant.len(),
            self.pools.len(),
            "tenancy must cover every function"
        );
        assert!(
            fn_tenant.iter().all(|t| t.0 < shares_mb.len()),
            "function owned by unknown tenant"
        );
        let total: f64 = shares_mb.iter().sum();
        assert!(
            total <= self.cfg.memory_budget_mb + 1e-6,
            "tenant shares ({total:.1} MiB) oversubscribe the budget \
             ({:.1} MiB)",
            self.cfg.memory_budget_mb
        );
        assert_eq!(
            self.reserved_memory_mb, 0.0,
            "set_tenancy after containers were booted"
        );
        self.fn_tenant = fn_tenant.into_iter().map(|t| t.0).collect();
        self.tenant_reserved_mb = vec![0.0; shares_mb.len()];
        self.tenant_shares_mb = shares_mb;
    }

    /// Number of functions managed.
    pub fn functions(&self) -> usize {
        self.pools.len()
    }

    /// The canonical config a function's containers boot with.
    pub fn config(&self, f: FunctionId) -> &ResourceConfig {
        &self.configs[f.0]
    }

    /// Tries to serve a task: warm container, else a demand boot, else
    /// [`Acquired::NoCapacity`].
    pub fn acquire(&mut self, f: FunctionId, now: SimTime) -> Acquired {
        self.advance_mem_clock(now);
        if let Some((id, _)) = self.pools[f.0].idle.pop_back() {
            self.busy.insert(id, f);
            self.stats.warm_hits += 1;
            return Acquired::Warm(id);
        }
        match self.start_boot(f, BootPurpose::Demand) {
            Some(ticket) => Acquired::Cold(ticket),
            None => Acquired::NoCapacity,
        }
    }

    /// Samples one warm execution for `f` under its canonical config.
    pub fn sample_exec(&mut self, f: FunctionId) -> SimDuration {
        let cfg = self.configs[f.0];
        self.runtime.exec(f, &cfg)
    }

    /// Returns a busy container to the idle pool.
    pub fn release(&mut self, container: aqua_faas::ContainerId, now: SimTime) {
        let f = self
            .busy
            .remove(&container)
            .expect("release of a container that is not busy");
        self.pools[f.0].idle.push_back((container, now));
    }

    /// Marks a finished boot warm-idle; returns the function and purpose
    /// so the service can match waiting tasks.
    pub fn on_boot_done(
        &mut self,
        container: aqua_faas::ContainerId,
        now: SimTime,
    ) -> (FunctionId, BootPurpose) {
        let (f, purpose) = self
            .boot_purpose
            .remove(&container)
            .expect("boot-done for unknown container");
        self.finish_boot_accounting(f, purpose);
        self.pools[f.0].idle.push_back((container, now));
        (f, purpose)
    }

    /// Handles a failed boot: the container is reaped immediately and its
    /// memory freed. Returns the function so the service can record the
    /// failure and consider a replacement.
    pub fn on_boot_failed(
        &mut self,
        container: aqua_faas::ContainerId,
        now: SimTime,
    ) -> FunctionId {
        self.advance_mem_clock(now);
        let (f, purpose) = self
            .boot_purpose
            .remove(&container)
            .expect("boot-failed for unknown container");
        self.finish_boot_accounting(f, purpose);
        self.free_container(f);
        assert!(self.runtime.kill(container), "failed boot not on ledger");
        self.stats.boot_failures += 1;
        f
    }

    /// Applies one control window's policy decisions (targets,
    /// keep-alives, shrink permissions). The filler works toward them on
    /// its own cadence.
    pub fn apply_decisions(&mut self, decisions: &[PoolDecision]) {
        for d in decisions {
            let pool = &mut self.pools[d.function.0];
            pool.target = d.prewarm_target;
            pool.keep_alive = d.keep_alive;
            pool.shrink = d.shrink;
        }
    }

    /// One background filler pass: reap expired idle containers, shrink
    /// over-target pools where allowed, then boot toward targets within
    /// the boot semaphore and memory budget. Returns the pre-warm boot
    /// tickets started (the service schedules their completions).
    pub fn filler_tick(&mut self, now: SimTime) -> Vec<BootTicket> {
        self.advance_mem_clock(now);
        let mut tickets = Vec::new();
        for i in 0..self.pools.len() {
            let f = FunctionId(i);
            // Keep-alive reaping: idle front is oldest.
            let keep_alive = self.pools[i].keep_alive;
            while let Some(&(id, since)) = self.pools[i].idle.front() {
                if now - since >= keep_alive {
                    self.pools[i].idle.pop_front();
                    self.free_container(f);
                    assert!(self.runtime.kill(id), "reaped container not on ledger");
                    self.stats.reaped += 1;
                } else {
                    break;
                }
            }
            let target = self.pools[i].target;
            // Policy-sanctioned shrink of over-target idle capacity. A
            // `None` target means "size the pool by demand" (the sim's
            // reading of [`PoolDecision`]), so reclamation is left to the
            // keep-alive above — shrinking to zero here would annihilate
            // every keep-alive-only policy's warm capacity on the spot.
            if let (true, Some(target)) = (self.pools[i].shrink, target) {
                while self.pools[i].idle.len() + self.pools[i].booting as usize > target {
                    let Some((id, _)) = self.pools[i].idle.pop_front() else {
                        break;
                    };
                    self.free_container(f);
                    assert!(self.runtime.kill(id), "shrunk container not on ledger");
                    self.stats.shrunk += 1;
                }
            }
            // Pre-warm boots toward the target (never during drain).
            if self.draining {
                continue;
            }
            let desired = match target {
                Some(t) => t.max(self.cfg.min_idle),
                None => continue,
            };
            let have = self.pools[i].idle.len() + self.pools[i].booting as usize;
            let mut deficit = desired.saturating_sub(have);
            while deficit > 0 {
                if self.prewarm_inflight >= self.cfg.max_concurrent_boots {
                    self.stats.semaphore_deferrals += deficit as u64;
                    break;
                }
                match self.start_boot(f, BootPurpose::Prewarm) {
                    Some(t) => tickets.push(t),
                    None => {
                        self.stats.memory_deferrals += deficit as u64;
                        break;
                    }
                }
                deficit -= 1;
            }
        }
        tickets
    }

    /// Enters drain mode: the filler stops creating pre-warm capacity.
    /// Demand boots remain allowed so queued work can finish.
    pub fn begin_drain(&mut self) {
        self.draining = true;
    }

    /// Kills every remaining container (idle, booting, busy). Call after
    /// the event loop has drained; any busy/booting entry at that point
    /// is a leak this sweep both cleans up and reports.
    pub fn shutdown_sweep(&mut self, now: SimTime) -> usize {
        self.advance_mem_clock(now);
        let mut killed = 0;
        for i in 0..self.pools.len() {
            let f = FunctionId(i);
            while let Some((id, _)) = self.pools[i].idle.pop_front() {
                self.free_container(f);
                assert!(self.runtime.kill(id), "swept container not on ledger");
                killed += 1;
            }
        }
        // Anything still booting or busy after a drained loop is a bug;
        // sweep it so the ledger ends clean, and count it.
        for (id, (f, purpose)) in std::mem::take(&mut self.boot_purpose) {
            self.finish_boot_accounting(f, purpose);
            self.free_container(f);
            let _ = self.runtime.kill(id);
            killed += 1;
        }
        for (id, f) in std::mem::take(&mut self.busy) {
            self.free_container(f);
            let _ = self.runtime.kill(id);
            killed += 1;
        }
        self.stats.swept += killed as u64;
        killed
    }

    /// Live containers on the runtime ledger (0 after a clean shutdown).
    pub fn live_containers(&self) -> usize {
        self.runtime.live()
    }

    /// Memory currently reserved, MiB.
    pub fn reserved_memory_mb(&self) -> f64 {
        self.reserved_memory_mb
    }

    /// Memory currently reserved by one tenant, MiB (0 with tenancy off).
    pub fn tenant_reserved_mb(&self, tenant: TenantId) -> f64 {
        self.tenant_reserved_mb
            .get(tenant.0)
            .copied()
            .unwrap_or(0.0)
    }

    /// The billable memory footprint so far: ∫ reserved dt in GB·s,
    /// integrated up to `now`.
    pub fn memory_gb_seconds(&mut self, now: SimTime) -> f64 {
        self.advance_mem_clock(now);
        self.mem_integral_mb_s / 1024.0
    }

    /// Per-function idle counts (for [`aqua_pool::LivePoolSignal::observe`]).
    pub fn idle_counts(&self) -> Vec<u32> {
        self.pools.iter().map(|p| p.idle.len() as u32).collect()
    }

    /// Idle containers for one function (allocation-free hot-path query).
    pub fn idle_count(&self, f: FunctionId) -> usize {
        self.pools[f.0].idle.len()
    }

    /// Containers of `f` currently booting (either purpose).
    pub fn booting_count(&self, f: FunctionId) -> u32 {
        self.pools[f.0].booting
    }

    /// Per-function booting counts.
    pub fn booting_counts(&self) -> Vec<u32> {
        self.pools.iter().map(|p| p.booting).collect()
    }

    /// Pre-warm boots currently holding the semaphore.
    pub fn prewarm_inflight(&self) -> usize {
        self.prewarm_inflight
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WarmPoolStats {
        self.stats
    }

    /// The underlying runtime's lifetime counters.
    pub fn runtime_stats(&self) -> aqua_faas::runtime::RuntimeStats {
        self.runtime.stats()
    }

    fn start_boot(&mut self, f: FunctionId, purpose: BootPurpose) -> Option<BootTicket> {
        let cfg = self.configs[f.0];
        // Demand boots may evict idle capacity under memory pressure —
        // the same LRU reclamation the simulator's cluster performs.
        // Without it, idle containers of the wrong function pin memory
        // for their whole keep-alive while queued work starves. Under
        // tenancy, victims are restricted to the booting tenant's own
        // pools: evicting a neighbor's idle container frees its memory
        // but grows its unused guarantee by exactly as much, so it can
        // never legalize a borrow — it would only destroy the
        // neighbor's warmth.
        if purpose == BootPurpose::Demand {
            let tenant = (!self.tenant_shares_mb.is_empty()).then(|| self.fn_tenant[f.0]);
            self.evict_lru_for(cfg.memory_mb, tenant);
        }
        if !self.tenant_shares_mb.is_empty() {
            let t = self.fn_tenant[f.0];
            let mem = cfg.memory_mb;
            let within_share = self.tenant_reserved_mb[t] + mem <= self.tenant_shares_mb[t];
            if !within_share {
                // Borrowing beyond the guarantee: demand boots only, and
                // the leftover budget must still cover every other
                // tenant's unused guarantee — so no tenant can ever be
                // denied a within-share boot by a neighbor's borrowing.
                // Note the borrow condition subsumes the global budget
                // check, so an over-share demand against a full budget is
                // counted here, as a share deferral.
                let others_guarantee: f64 = self
                    .tenant_shares_mb
                    .iter()
                    .zip(&self.tenant_reserved_mb)
                    .enumerate()
                    .filter(|&(s, _)| s != t)
                    .map(|(_, (share, reserved))| (share - reserved).max(0.0))
                    .sum();
                let may_borrow = purpose == BootPurpose::Demand
                    && self.reserved_memory_mb + mem
                        <= self.cfg.memory_budget_mb - others_guarantee;
                if !may_borrow {
                    self.stats.share_deferrals += 1;
                    return None;
                }
            }
        }
        if self.reserved_memory_mb + cfg.memory_mb > self.cfg.memory_budget_mb {
            return None;
        }
        if !self.tenant_shares_mb.is_empty() {
            self.tenant_reserved_mb[self.fn_tenant[f.0]] += cfg.memory_mb;
        }
        let ticket = self.runtime.boot(f, &cfg);
        self.reserved_memory_mb += cfg.memory_mb;
        self.pools[f.0].booting += 1;
        self.boot_purpose.insert(ticket.container, (f, purpose));
        match purpose {
            BootPurpose::Demand => self.stats.demand_boots += 1,
            BootPurpose::Prewarm => {
                self.prewarm_inflight += 1;
                self.stats.prewarm_boots += 1;
            }
        }
        Some(ticket)
    }

    fn finish_boot_accounting(&mut self, f: FunctionId, purpose: BootPurpose) {
        self.pools[f.0].booting -= 1;
        if purpose == BootPurpose::Prewarm {
            self.prewarm_inflight -= 1;
        }
    }

    /// Kills least-recently-used idle containers until `mem` MiB fits in
    /// the budget or no idle capacity remains. `tenant` restricts the
    /// victim set to one tenant's functions (`None` = every function).
    /// Deterministic: victims are ordered by (idle-since, container id).
    fn evict_lru_for(&mut self, mem: f64, tenant: Option<usize>) {
        while self.reserved_memory_mb + mem > self.cfg.memory_budget_mb {
            let victim = self
                .pools
                .iter()
                .enumerate()
                .filter(|&(i, _)| tenant.is_none_or(|t| self.fn_tenant[i] == t))
                .filter_map(|(i, p)| p.idle.front().map(|&(id, since)| (since, id, i)))
                .min();
            let Some((_, id, i)) = victim else {
                return;
            };
            self.pools[i].idle.pop_front();
            self.free_container(FunctionId(i));
            assert!(self.runtime.kill(id), "evicted container not on ledger");
            self.stats.pressure_evictions += 1;
        }
    }

    fn free_container(&mut self, f: FunctionId) {
        let mem = self.configs[f.0].memory_mb;
        self.reserved_memory_mb = (self.reserved_memory_mb - mem).max(0.0);
        if !self.tenant_shares_mb.is_empty() {
            let t = self.fn_tenant[f.0];
            self.tenant_reserved_mb[t] = (self.tenant_reserved_mb[t] - mem).max(0.0);
        }
    }

    /// Integrates reserved memory up to `now` (no-op when time stands
    /// still; every public mutator calls this before touching memory).
    fn advance_mem_clock(&mut self, now: SimTime) {
        if now > self.last_mem_update {
            self.mem_integral_mb_s +=
                self.reserved_memory_mb * (now - self.last_mem_update).as_secs_f64();
            self.last_mem_update = now;
        }
    }
}

impl std::fmt::Debug for WarmPoolManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarmPoolManager")
            .field("functions", &self.pools.len())
            .field("live", &self.runtime.live())
            .field("reserved_memory_mb", &self.reserved_memory_mb)
            .field("prewarm_inflight", &self.prewarm_inflight)
            .field("draining", &self.draining)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_faas::runtime::SimContainerRuntime;
    use aqua_faas::{FaultPlan, FunctionRegistry, FunctionSpec, NoiseModel};

    fn pool(max_boots: usize, budget_mb: f64) -> WarmPoolManager {
        let mut reg = FunctionRegistry::new();
        reg.register(FunctionSpec::new("f0"));
        reg.register(FunctionSpec::new("f1"));
        let rt = SimContainerRuntime::new(reg, NoiseModel::quiet(), 7, &FaultPlan::disabled());
        WarmPoolManager::new(
            WarmPoolConfig {
                max_concurrent_boots: max_boots,
                min_idle: 0,
                default_keep_alive: SimDuration::from_secs(600),
                memory_budget_mb: budget_mb,
            },
            Box::new(rt),
            vec![ResourceConfig::default(); 2],
        )
    }

    fn target(f: usize, n: usize) -> PoolDecision {
        PoolDecision {
            function: FunctionId(f),
            prewarm_target: Some(n),
            keep_alive: SimDuration::from_secs(600),
            shrink: false,
        }
    }

    #[test]
    fn cold_then_warm_acquisition() {
        let mut p = pool(8, 1e9);
        let f = FunctionId(0);
        let t0 = SimTime::ZERO;
        let Acquired::Cold(ticket) = p.acquire(f, t0) else {
            panic!("empty pool must boot");
        };
        p.on_boot_done(ticket.container, t0);
        let Acquired::Warm(id) = p.acquire(f, t0) else {
            panic!("booted container must be reusable");
        };
        assert_eq!(id, ticket.container);
        p.release(id, t0);
        assert_eq!(p.idle_counts(), vec![1, 0]);
        assert_eq!(p.stats().warm_hits, 1);
        assert_eq!(p.stats().demand_boots, 1);
    }

    #[test]
    fn filler_respects_the_boot_semaphore() {
        let mut p = pool(3, 1e9);
        p.apply_decisions(&[target(0, 10)]);
        let tickets = p.filler_tick(SimTime::ZERO);
        assert_eq!(tickets.len(), 3, "semaphore caps pre-warm boots");
        assert_eq!(p.prewarm_inflight(), 3);
        assert!(p.stats().semaphore_deferrals > 0);
        // Semaphore slots free as boots land; the next tick continues.
        for t in &tickets {
            p.on_boot_done(t.container, SimTime::from_secs(1));
        }
        assert_eq!(p.prewarm_inflight(), 0);
        let more = p.filler_tick(SimTime::from_secs(1));
        assert_eq!(more.len(), 3);
        assert_eq!(p.idle_counts()[0], 3);
    }

    #[test]
    fn demand_boots_bypass_the_semaphore_but_not_memory() {
        let mut p = pool(1, 3.5 * 1024.0);
        p.apply_decisions(&[target(0, 5)]);
        let _ = p.filler_tick(SimTime::ZERO); // 1 pre-warm boot holds the semaphore
        let Acquired::Cold(_) = p.acquire(FunctionId(0), SimTime::ZERO) else {
            panic!("demand boot must bypass the semaphore");
        };
        let Acquired::Cold(_) = p.acquire(FunctionId(0), SimTime::ZERO) else {
            panic!("budget still has room for a third container");
        };
        // 3 × 1024 MiB reserved; a fourth container exceeds 3.5 GiB.
        assert_eq!(
            p.acquire(FunctionId(0), SimTime::ZERO),
            Acquired::NoCapacity
        );
    }

    #[test]
    fn keep_alive_reaps_expired_idle() {
        let mut p = pool(8, 1e9);
        let Acquired::Cold(t) = p.acquire(FunctionId(0), SimTime::ZERO) else {
            panic!()
        };
        p.on_boot_done(t.container, SimTime::ZERO);
        let Acquired::Warm(id) = p.acquire(FunctionId(0), SimTime::ZERO) else {
            panic!()
        };
        p.release(id, SimTime::from_secs(10));
        p.apply_decisions(&[PoolDecision {
            function: FunctionId(0),
            prewarm_target: None,
            keep_alive: SimDuration::from_secs(60),
            shrink: false,
        }]);
        let _ = p.filler_tick(SimTime::from_secs(30));
        assert_eq!(p.idle_counts()[0], 1, "young idle survives");
        let _ = p.filler_tick(SimTime::from_secs(90));
        assert_eq!(p.idle_counts()[0], 0, "expired idle reaped");
        assert_eq!(p.stats().reaped, 1);
        assert_eq!(p.live_containers(), 0);
    }

    #[test]
    fn drain_stops_prewarm_but_allows_demand() {
        let mut p = pool(8, 1e9);
        p.apply_decisions(&[target(0, 4)]);
        p.begin_drain();
        assert!(
            p.filler_tick(SimTime::ZERO).is_empty(),
            "no pre-warm in drain"
        );
        match p.acquire(FunctionId(0), SimTime::ZERO) {
            Acquired::Cold(_) => {}
            other => panic!("demand boot must stay allowed in drain: {other:?}"),
        }
    }

    #[test]
    fn failed_boot_frees_memory_and_ledger() {
        use aqua_faas::FaultRates;
        let mut reg = FunctionRegistry::new();
        reg.register(FunctionSpec::new("f"));
        let plan = FaultPlan::from_seed(
            1,
            FaultRates {
                boot_fail: 1.0,
                ..FaultRates::default()
            },
        );
        let rt = SimContainerRuntime::new(reg, NoiseModel::quiet(), 7, &plan);
        let mut p = WarmPoolManager::new(
            WarmPoolConfig::default(),
            Box::new(rt),
            vec![ResourceConfig::default()],
        );
        let Acquired::Cold(t) = p.acquire(FunctionId(0), SimTime::ZERO) else {
            panic!()
        };
        assert!(t.fails);
        let f = p.on_boot_failed(t.container, SimTime::from_secs(1));
        assert_eq!(f, FunctionId(0));
        assert_eq!(p.reserved_memory_mb(), 0.0);
        assert_eq!(p.live_containers(), 0);
        assert_eq!(p.stats().boot_failures, 1);
    }

    #[test]
    fn shutdown_sweep_clears_everything() {
        let mut p = pool(8, 1e9);
        p.apply_decisions(&[target(0, 3), target(1, 2)]);
        let tickets = p.filler_tick(SimTime::ZERO);
        for t in &tickets {
            p.on_boot_done(t.container, SimTime::ZERO);
        }
        assert_eq!(p.live_containers(), 5);
        p.begin_drain();
        let killed = p.shutdown_sweep(SimTime::from_secs(1));
        assert_eq!(killed, 5);
        assert_eq!(p.live_containers(), 0, "zero orphaned containers");
        assert_eq!(p.reserved_memory_mb(), 0.0);
    }

    /// Two functions, one per tenant, 1024 MiB containers, 4 GiB budget
    /// split `shares` between the tenants.
    fn tenanted_pool(share0: f64, share1: f64) -> WarmPoolManager {
        let mut p = pool(8, 4.0 * 1024.0);
        p.set_tenancy(vec![TenantId(0), TenantId(1)], vec![share0, share1]);
        p
    }

    #[test]
    fn demand_borrowing_never_eats_a_neighbors_guarantee() {
        // Tenant 0 guaranteed 1 GiB, tenant 1 guaranteed 2 GiB; 1 GiB of
        // the 4 GiB budget is unguaranteed slack.
        let mut p = tenanted_pool(1024.0, 2.0 * 1024.0);
        let t0 = SimTime::ZERO;
        // Tenant 0: 1 within share + 1 borrowed from slack.
        assert!(matches!(p.acquire(FunctionId(0), t0), Acquired::Cold(_)));
        assert!(matches!(p.acquire(FunctionId(0), t0), Acquired::Cold(_)));
        // A third boot would leave only 1 GiB for tenant 1's untouched
        // 2 GiB guarantee: the borrowing rule must refuse while the
        // global budget still has room.
        assert_eq!(p.acquire(FunctionId(0), t0), Acquired::NoCapacity);
        assert_eq!(p.stats().share_deferrals, 1);
        assert_eq!(p.reserved_memory_mb(), 2.0 * 1024.0);
        // Tenant 1 can still claim its full guarantee.
        assert!(matches!(p.acquire(FunctionId(1), t0), Acquired::Cold(_)));
        assert!(matches!(p.acquire(FunctionId(1), t0), Acquired::Cold(_)));
        assert_eq!(p.tenant_reserved_mb(TenantId(1)), 2.0 * 1024.0);
    }

    #[test]
    fn prewarm_never_borrows_beyond_the_share() {
        let mut p = tenanted_pool(1024.0, 1024.0);
        p.apply_decisions(&[target(0, 3)]);
        let tickets = p.filler_tick(SimTime::ZERO);
        assert_eq!(tickets.len(), 1, "pre-warm stops at the 1-container share");
        assert!(p.stats().share_deferrals > 0);
        // The same deficit as a demand boot may borrow the slack.
        assert!(matches!(
            p.acquire(FunctionId(0), SimTime::ZERO),
            Acquired::Cold(_)
        ));
    }

    #[test]
    fn pressure_eviction_never_crosses_tenants() {
        // 2 + 2 GiB shares, no slack. Tenant 1 parks two idle warm
        // containers; tenant 0 fills its own share and then demands a
        // third container. The borrow is illegal (it would eat tenant
        // 1's guarantee), and crucially the attempt must not evict
        // tenant 1's idle warmth on the way to being refused.
        let mut p = tenanted_pool(2.0 * 1024.0, 2.0 * 1024.0);
        let t0 = SimTime::ZERO;
        let mut warm = Vec::new();
        for _ in 0..2 {
            let Acquired::Cold(t) = p.acquire(FunctionId(1), t0) else {
                panic!("tenant 1 within-share boot");
            };
            warm.push(t.container);
        }
        for (i, c) in warm.into_iter().enumerate() {
            p.on_boot_done(c, t0);
            let Acquired::Warm(id) = p.acquire(FunctionId(1), t0) else {
                panic!("warm after boot");
            };
            p.release(id, SimTime::from_secs(i as u64 + 1));
        }
        assert_eq!(p.idle_counts(), vec![0, 2]);
        // Tenant 0: two busy within-share containers.
        let mut boots = Vec::new();
        for _ in 0..2 {
            let got = p.acquire(FunctionId(0), t0);
            let Acquired::Cold(t) = got else {
                panic!("tenant 0 within-share boot: {got:?}");
            };
            boots.push(t.container);
        }
        for c in boots {
            p.on_boot_done(c, SimTime::from_secs(3));
            let Acquired::Warm(_) = p.acquire(FunctionId(0), SimTime::from_secs(3)) else {
                panic!("tenant 0 container stays busy");
            };
        }
        // The over-share demand: refused, and tenant 1's idle intact.
        assert_eq!(
            p.acquire(FunctionId(0), SimTime::from_secs(4)),
            Acquired::NoCapacity
        );
        assert_eq!(p.stats().pressure_evictions, 0);
        assert_eq!(p.idle_counts(), vec![0, 2], "neighbor warmth untouched");
        assert_eq!(p.stats().share_deferrals, 1);
    }

    #[test]
    fn set_tenancy_rejects_oversubscribed_shares() {
        let mut p = pool(8, 1024.0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.set_tenancy(vec![TenantId(0), TenantId(0)], vec![2048.0]);
        }));
        assert!(r.is_err(), "shares beyond the budget must panic");
    }

    #[test]
    fn memory_integral_tracks_reserved_area() {
        let mut p = pool(8, 1e9);
        let Acquired::Cold(t) = p.acquire(FunctionId(0), SimTime::ZERO) else {
            panic!()
        };
        p.on_boot_done(t.container, SimTime::ZERO);
        // One default container (1024 MiB) held for 10 s = 10 GB·s.
        let gbs = p.memory_gb_seconds(SimTime::from_secs(10));
        let expect = ResourceConfig::default().memory_mb / 1024.0 * 10.0;
        assert!((gbs - expect).abs() < 1e-9, "{gbs} vs {expect}");
        // Clock never runs backwards and idles at zero reservation.
        p.begin_drain();
        p.shutdown_sweep(SimTime::from_secs(10));
        let after = p.memory_gb_seconds(SimTime::from_secs(20));
        assert!(
            (after - expect).abs() < 1e-9,
            "freed memory accrues nothing"
        );
    }

    #[test]
    fn shrink_decision_kills_over_target_idle() {
        let mut p = pool(8, 1e9);
        p.apply_decisions(&[target(0, 4)]);
        let tickets = p.filler_tick(SimTime::ZERO);
        for t in &tickets {
            p.on_boot_done(t.container, SimTime::ZERO);
        }
        assert_eq!(p.idle_counts()[0], 4);
        p.apply_decisions(&[PoolDecision {
            function: FunctionId(0),
            prewarm_target: Some(1),
            keep_alive: SimDuration::from_secs(600),
            shrink: true,
        }]);
        let _ = p.filler_tick(SimTime::from_secs(1));
        assert_eq!(p.idle_counts()[0], 1);
        assert_eq!(p.stats().shrunk, 3);
    }

    #[test]
    fn demand_boot_evicts_lru_idle_under_memory_pressure() {
        // Budget fits exactly two default (1024 MiB) containers.
        let mut p = pool(8, 2048.0);
        // Warm one container of each function.
        for f in [FunctionId(0), FunctionId(1)] {
            let Acquired::Cold(t) = p.acquire(f, SimTime::ZERO) else {
                panic!("empty pool must boot");
            };
            p.on_boot_done(t.container, SimTime::ZERO);
            let Acquired::Warm(id) = p.acquire(f, SimTime::ZERO) else {
                panic!("boot-done container must be warm");
            };
            p.release(id, SimTime::from_secs(f.0 as u64 + 1));
        }
        // The pool is full. A fresh demand for f0 finds f0's idle warm...
        let Acquired::Warm(id) = p.acquire(FunctionId(0), SimTime::from_secs(5)) else {
            panic!("f0 idle container expected");
        };
        // ...so a concurrent f0 demand has no idle f0 capacity and must
        // evict f1's idle container (the LRU victim) to boot.
        let Acquired::Cold(t) = p.acquire(FunctionId(0), SimTime::from_secs(5)) else {
            panic!("demand boot must evict idle capacity, not starve");
        };
        assert_eq!(p.stats().pressure_evictions, 1);
        assert_eq!(p.idle_counts(), vec![0, 0]);
        // Prewarm boots never evict: a filler target for f1 defers.
        p.apply_decisions(&[target(1, 1)]);
        let tickets = p.filler_tick(SimTime::from_secs(5));
        assert!(tickets.is_empty(), "prewarm must not evict for room");
        assert_eq!(p.stats().memory_deferrals, 1);
        assert_eq!(p.stats().pressure_evictions, 1);
        p.release(id, SimTime::from_secs(6));
        p.on_boot_done(t.container, SimTime::from_secs(6));
        p.begin_drain();
        p.shutdown_sweep(SimTime::from_secs(7));
    }

    #[test]
    fn shrink_with_demand_sized_target_leaves_idle_to_keep_alive() {
        let mut p = pool(8, 1e9);
        p.apply_decisions(&[target(0, 2)]);
        let tickets = p.filler_tick(SimTime::ZERO);
        for t in &tickets {
            p.on_boot_done(t.container, SimTime::ZERO);
        }
        assert_eq!(p.idle_counts()[0], 2);
        // A keep-alive-only policy: no target, shrink permitted. The
        // pool must NOT treat the absent target as zero.
        p.apply_decisions(&[PoolDecision {
            function: FunctionId(0),
            prewarm_target: None,
            keep_alive: SimDuration::from_secs(600),
            shrink: true,
        }]);
        let _ = p.filler_tick(SimTime::from_secs(1));
        assert_eq!(p.idle_counts()[0], 2, "idle capacity left to keep-alive");
        assert_eq!(p.stats().shrunk, 0);
        // The keep-alive still reaps once containers actually expire.
        let _ = p.filler_tick(SimTime::from_secs(601));
        assert_eq!(p.idle_counts()[0], 0);
        assert_eq!(p.stats().reaped, 2);
    }
}
