//! The warm-pool manager: per-function container pools with a background
//! filler task, a boot-concurrency semaphore, and drain-aware shutdown.
//!
//! The manager owns the [`ContainerRuntime`] and all container ledgers
//! (idle / booting / busy, plus a memory budget). Control is split the
//! same way the simulator splits it:
//!
//! * a **policy** ([`aqua_faas::PrewarmController`]) decides per-function
//!   pre-warm *targets* and keep-alives once per control window — the
//!   service applies its decisions via [`WarmPoolManager::apply_decisions`];
//! * the **filler task** ([`WarmPoolManager::filler_tick`], scheduled by
//!   the reactor on its own shorter cadence) works toward those targets:
//!   it reaps keep-alive-expired idle containers, shrinks over-target
//!   pools when the policy asked for it, and boots replacements —
//!   never more than [`WarmPoolConfig::max_concurrent_boots`] pre-warm
//!   boots in flight at once (the boot semaphore). Demand boots (a
//!   request is waiting) bypass the semaphore: user-facing latency beats
//!   background-boot smoothing, but they still respect the memory budget.
//!
//! During shutdown ([`WarmPoolManager::begin_drain`]) the filler stops
//! creating pre-warm capacity; demand boots stay allowed so queued work
//! can still drain. [`WarmPoolManager::shutdown_sweep`] then reaps every
//! remaining container — after the service's event loop runs dry, the
//! runtime ledger must read zero or containers leaked.

use std::collections::VecDeque;

use aqua_faas::runtime::{BootTicket, ContainerRuntime};
use aqua_faas::{FunctionId, PoolDecision, ResourceConfig};
use aqua_sim::{SimDuration, SimTime};

use crate::fxhash::FxHashMap;

/// Sizing knobs for the warm pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmPoolConfig {
    /// Boot semaphore: maximum pre-warm boots in flight at once across
    /// all functions.
    pub max_concurrent_boots: usize,
    /// Filler floor: minimum idle-plus-booting containers per function
    /// with a nonzero pre-warm target.
    pub min_idle: usize,
    /// Keep-alive applied before the policy's first decision.
    pub default_keep_alive: SimDuration,
    /// Total memory the pool may reserve, MiB.
    pub memory_budget_mb: f64,
}

impl Default for WarmPoolConfig {
    fn default() -> Self {
        WarmPoolConfig {
            max_concurrent_boots: 64,
            min_idle: 0,
            default_keep_alive: SimDuration::from_secs(600),
            memory_budget_mb: 256.0 * 16.0 * 1024.0,
        }
    }
}

/// Why a boot was started — determines semaphore accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootPurpose {
    /// A request is waiting on this container.
    Demand,
    /// The filler is building headroom toward a pre-warm target.
    Prewarm,
}

/// Result of asking the pool for a container.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Acquired {
    /// A warm container was available; it is now busy.
    Warm(aqua_faas::ContainerId),
    /// A demand boot was started; schedule its completion and queue the
    /// task.
    Cold(BootTicket),
    /// No warm container and no memory headroom to boot: queue or shed.
    NoCapacity,
}

/// Pool-manager lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmPoolStats {
    /// Acquisitions served from a warm container.
    pub warm_hits: u64,
    /// Demand boots started.
    pub demand_boots: u64,
    /// Pre-warm boots started by the filler.
    pub prewarm_boots: u64,
    /// Boots that failed (ticket said so and the failure landed).
    pub boot_failures: u64,
    /// Idle containers reaped by keep-alive expiry.
    pub reaped: u64,
    /// Idle containers killed by policy shrink decisions.
    pub shrunk: u64,
    /// Pre-warm boots the filler wanted but the semaphore deferred.
    pub semaphore_deferrals: u64,
    /// Pre-warm boots the filler wanted but the memory budget denied.
    pub memory_deferrals: u64,
    /// Containers killed by the final shutdown sweep.
    pub swept: u64,
}

/// Per-function pool state.
#[derive(Debug, Clone, Default)]
struct FnPool {
    /// Warm idle containers, most recently used last (LIFO reuse keeps
    /// the warmest container hot and lets the oldest expire).
    idle: VecDeque<(aqua_faas::ContainerId, SimTime)>,
    /// Containers currently booting (either purpose).
    booting: u32,
    /// Policy pre-warm target (`None` = demand-driven only).
    target: Option<usize>,
    /// Keep-alive horizon for idle containers.
    keep_alive: SimDuration,
    /// Whether the policy allows killing over-target idle containers.
    shrink: bool,
}

/// The warm-pool manager.
pub struct WarmPoolManager {
    cfg: WarmPoolConfig,
    runtime: Box<dyn ContainerRuntime>,
    pools: Vec<FnPool>,
    configs: Vec<ResourceConfig>,
    /// Purpose of each in-flight boot, keyed by container id.
    boot_purpose: FxHashMap<aqua_faas::ContainerId, (FunctionId, BootPurpose)>,
    /// Busy containers and the function they serve.
    busy: FxHashMap<aqua_faas::ContainerId, FunctionId>,
    /// Pre-warm boots currently in flight (semaphore counter).
    prewarm_inflight: usize,
    reserved_memory_mb: f64,
    draining: bool,
    stats: WarmPoolStats,
}

impl WarmPoolManager {
    /// A pool manager over `runtime` with one canonical [`ResourceConfig`]
    /// per function.
    pub fn new(
        cfg: WarmPoolConfig,
        runtime: Box<dyn ContainerRuntime>,
        configs: Vec<ResourceConfig>,
    ) -> Self {
        let pools = configs
            .iter()
            .map(|_| FnPool {
                keep_alive: cfg.default_keep_alive,
                ..FnPool::default()
            })
            .collect();
        WarmPoolManager {
            cfg,
            runtime,
            pools,
            configs,
            boot_purpose: FxHashMap::default(),
            busy: FxHashMap::default(),
            prewarm_inflight: 0,
            reserved_memory_mb: 0.0,
            draining: false,
            stats: WarmPoolStats::default(),
        }
    }

    /// Number of functions managed.
    pub fn functions(&self) -> usize {
        self.pools.len()
    }

    /// The canonical config a function's containers boot with.
    pub fn config(&self, f: FunctionId) -> &ResourceConfig {
        &self.configs[f.0]
    }

    /// Tries to serve a task: warm container, else a demand boot, else
    /// [`Acquired::NoCapacity`].
    pub fn acquire(&mut self, f: FunctionId, _now: SimTime) -> Acquired {
        if let Some((id, _)) = self.pools[f.0].idle.pop_back() {
            self.busy.insert(id, f);
            self.stats.warm_hits += 1;
            return Acquired::Warm(id);
        }
        match self.start_boot(f, BootPurpose::Demand) {
            Some(ticket) => Acquired::Cold(ticket),
            None => Acquired::NoCapacity,
        }
    }

    /// Samples one warm execution for `f` under its canonical config.
    pub fn sample_exec(&mut self, f: FunctionId) -> SimDuration {
        let cfg = self.configs[f.0];
        self.runtime.exec(f, &cfg)
    }

    /// Returns a busy container to the idle pool.
    pub fn release(&mut self, container: aqua_faas::ContainerId, now: SimTime) {
        let f = self
            .busy
            .remove(&container)
            .expect("release of a container that is not busy");
        self.pools[f.0].idle.push_back((container, now));
    }

    /// Marks a finished boot warm-idle; returns the function and purpose
    /// so the service can match waiting tasks.
    pub fn on_boot_done(
        &mut self,
        container: aqua_faas::ContainerId,
        now: SimTime,
    ) -> (FunctionId, BootPurpose) {
        let (f, purpose) = self
            .boot_purpose
            .remove(&container)
            .expect("boot-done for unknown container");
        self.finish_boot_accounting(f, purpose);
        self.pools[f.0].idle.push_back((container, now));
        (f, purpose)
    }

    /// Handles a failed boot: the container is reaped immediately and its
    /// memory freed. Returns the function so the service can record the
    /// failure and consider a replacement.
    pub fn on_boot_failed(&mut self, container: aqua_faas::ContainerId) -> FunctionId {
        let (f, purpose) = self
            .boot_purpose
            .remove(&container)
            .expect("boot-failed for unknown container");
        self.finish_boot_accounting(f, purpose);
        self.free_container(f);
        assert!(self.runtime.kill(container), "failed boot not on ledger");
        self.stats.boot_failures += 1;
        f
    }

    /// Applies one control window's policy decisions (targets,
    /// keep-alives, shrink permissions). The filler works toward them on
    /// its own cadence.
    pub fn apply_decisions(&mut self, decisions: &[PoolDecision]) {
        for d in decisions {
            let pool = &mut self.pools[d.function.0];
            pool.target = d.prewarm_target;
            pool.keep_alive = d.keep_alive;
            pool.shrink = d.shrink;
        }
    }

    /// One background filler pass: reap expired idle containers, shrink
    /// over-target pools where allowed, then boot toward targets within
    /// the boot semaphore and memory budget. Returns the pre-warm boot
    /// tickets started (the service schedules their completions).
    pub fn filler_tick(&mut self, now: SimTime) -> Vec<BootTicket> {
        let mut tickets = Vec::new();
        for i in 0..self.pools.len() {
            let f = FunctionId(i);
            // Keep-alive reaping: idle front is oldest.
            let keep_alive = self.pools[i].keep_alive;
            while let Some(&(id, since)) = self.pools[i].idle.front() {
                if now - since >= keep_alive {
                    self.pools[i].idle.pop_front();
                    self.free_container(f);
                    assert!(self.runtime.kill(id), "reaped container not on ledger");
                    self.stats.reaped += 1;
                } else {
                    break;
                }
            }
            let target = self.pools[i].target;
            // Policy-sanctioned shrink of over-target idle capacity.
            if self.pools[i].shrink {
                let target = target.unwrap_or(0);
                while self.pools[i].idle.len() + self.pools[i].booting as usize > target {
                    let Some((id, _)) = self.pools[i].idle.pop_front() else {
                        break;
                    };
                    self.free_container(f);
                    assert!(self.runtime.kill(id), "shrunk container not on ledger");
                    self.stats.shrunk += 1;
                }
            }
            // Pre-warm boots toward the target (never during drain).
            if self.draining {
                continue;
            }
            let desired = match target {
                Some(t) => t.max(self.cfg.min_idle),
                None => continue,
            };
            let have = self.pools[i].idle.len() + self.pools[i].booting as usize;
            let mut deficit = desired.saturating_sub(have);
            while deficit > 0 {
                if self.prewarm_inflight >= self.cfg.max_concurrent_boots {
                    self.stats.semaphore_deferrals += deficit as u64;
                    break;
                }
                match self.start_boot(f, BootPurpose::Prewarm) {
                    Some(t) => tickets.push(t),
                    None => {
                        self.stats.memory_deferrals += deficit as u64;
                        break;
                    }
                }
                deficit -= 1;
            }
        }
        tickets
    }

    /// Enters drain mode: the filler stops creating pre-warm capacity.
    /// Demand boots remain allowed so queued work can finish.
    pub fn begin_drain(&mut self) {
        self.draining = true;
    }

    /// Kills every remaining container (idle, booting, busy). Call after
    /// the event loop has drained; any busy/booting entry at that point
    /// is a leak this sweep both cleans up and reports.
    pub fn shutdown_sweep(&mut self) -> usize {
        let mut killed = 0;
        for i in 0..self.pools.len() {
            let f = FunctionId(i);
            while let Some((id, _)) = self.pools[i].idle.pop_front() {
                self.free_container(f);
                assert!(self.runtime.kill(id), "swept container not on ledger");
                killed += 1;
            }
        }
        // Anything still booting or busy after a drained loop is a bug;
        // sweep it so the ledger ends clean, and count it.
        for (id, (f, purpose)) in std::mem::take(&mut self.boot_purpose) {
            self.finish_boot_accounting(f, purpose);
            self.free_container(f);
            let _ = self.runtime.kill(id);
            killed += 1;
        }
        for (id, f) in std::mem::take(&mut self.busy) {
            self.free_container(f);
            let _ = self.runtime.kill(id);
            killed += 1;
        }
        self.stats.swept += killed as u64;
        killed
    }

    /// Live containers on the runtime ledger (0 after a clean shutdown).
    pub fn live_containers(&self) -> usize {
        self.runtime.live()
    }

    /// Memory currently reserved, MiB.
    pub fn reserved_memory_mb(&self) -> f64 {
        self.reserved_memory_mb
    }

    /// Per-function idle counts (for [`aqua_pool::LivePoolSignal::observe`]).
    pub fn idle_counts(&self) -> Vec<u32> {
        self.pools.iter().map(|p| p.idle.len() as u32).collect()
    }

    /// Idle containers for one function (allocation-free hot-path query).
    pub fn idle_count(&self, f: FunctionId) -> usize {
        self.pools[f.0].idle.len()
    }

    /// Containers of `f` currently booting (either purpose).
    pub fn booting_count(&self, f: FunctionId) -> u32 {
        self.pools[f.0].booting
    }

    /// Per-function booting counts.
    pub fn booting_counts(&self) -> Vec<u32> {
        self.pools.iter().map(|p| p.booting).collect()
    }

    /// Pre-warm boots currently holding the semaphore.
    pub fn prewarm_inflight(&self) -> usize {
        self.prewarm_inflight
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WarmPoolStats {
        self.stats
    }

    /// The underlying runtime's lifetime counters.
    pub fn runtime_stats(&self) -> aqua_faas::runtime::RuntimeStats {
        self.runtime.stats()
    }

    fn start_boot(&mut self, f: FunctionId, purpose: BootPurpose) -> Option<BootTicket> {
        let cfg = self.configs[f.0];
        if self.reserved_memory_mb + cfg.memory_mb > self.cfg.memory_budget_mb {
            return None;
        }
        let ticket = self.runtime.boot(f, &cfg);
        self.reserved_memory_mb += cfg.memory_mb;
        self.pools[f.0].booting += 1;
        self.boot_purpose.insert(ticket.container, (f, purpose));
        match purpose {
            BootPurpose::Demand => self.stats.demand_boots += 1,
            BootPurpose::Prewarm => {
                self.prewarm_inflight += 1;
                self.stats.prewarm_boots += 1;
            }
        }
        Some(ticket)
    }

    fn finish_boot_accounting(&mut self, f: FunctionId, purpose: BootPurpose) {
        self.pools[f.0].booting -= 1;
        if purpose == BootPurpose::Prewarm {
            self.prewarm_inflight -= 1;
        }
    }

    fn free_container(&mut self, f: FunctionId) {
        self.reserved_memory_mb = (self.reserved_memory_mb - self.configs[f.0].memory_mb).max(0.0);
    }
}

impl std::fmt::Debug for WarmPoolManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarmPoolManager")
            .field("functions", &self.pools.len())
            .field("live", &self.runtime.live())
            .field("reserved_memory_mb", &self.reserved_memory_mb)
            .field("prewarm_inflight", &self.prewarm_inflight)
            .field("draining", &self.draining)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_faas::runtime::SimContainerRuntime;
    use aqua_faas::{FaultPlan, FunctionRegistry, FunctionSpec, NoiseModel};

    fn pool(max_boots: usize, budget_mb: f64) -> WarmPoolManager {
        let mut reg = FunctionRegistry::new();
        reg.register(FunctionSpec::new("f0"));
        reg.register(FunctionSpec::new("f1"));
        let rt = SimContainerRuntime::new(reg, NoiseModel::quiet(), 7, &FaultPlan::disabled());
        WarmPoolManager::new(
            WarmPoolConfig {
                max_concurrent_boots: max_boots,
                min_idle: 0,
                default_keep_alive: SimDuration::from_secs(600),
                memory_budget_mb: budget_mb,
            },
            Box::new(rt),
            vec![ResourceConfig::default(); 2],
        )
    }

    fn target(f: usize, n: usize) -> PoolDecision {
        PoolDecision {
            function: FunctionId(f),
            prewarm_target: Some(n),
            keep_alive: SimDuration::from_secs(600),
            shrink: false,
        }
    }

    #[test]
    fn cold_then_warm_acquisition() {
        let mut p = pool(8, 1e9);
        let f = FunctionId(0);
        let t0 = SimTime::ZERO;
        let Acquired::Cold(ticket) = p.acquire(f, t0) else {
            panic!("empty pool must boot");
        };
        p.on_boot_done(ticket.container, t0);
        let Acquired::Warm(id) = p.acquire(f, t0) else {
            panic!("booted container must be reusable");
        };
        assert_eq!(id, ticket.container);
        p.release(id, t0);
        assert_eq!(p.idle_counts(), vec![1, 0]);
        assert_eq!(p.stats().warm_hits, 1);
        assert_eq!(p.stats().demand_boots, 1);
    }

    #[test]
    fn filler_respects_the_boot_semaphore() {
        let mut p = pool(3, 1e9);
        p.apply_decisions(&[target(0, 10)]);
        let tickets = p.filler_tick(SimTime::ZERO);
        assert_eq!(tickets.len(), 3, "semaphore caps pre-warm boots");
        assert_eq!(p.prewarm_inflight(), 3);
        assert!(p.stats().semaphore_deferrals > 0);
        // Semaphore slots free as boots land; the next tick continues.
        for t in &tickets {
            p.on_boot_done(t.container, SimTime::from_secs(1));
        }
        assert_eq!(p.prewarm_inflight(), 0);
        let more = p.filler_tick(SimTime::from_secs(1));
        assert_eq!(more.len(), 3);
        assert_eq!(p.idle_counts()[0], 3);
    }

    #[test]
    fn demand_boots_bypass_the_semaphore_but_not_memory() {
        let mut p = pool(1, 3.5 * 1024.0);
        p.apply_decisions(&[target(0, 5)]);
        let _ = p.filler_tick(SimTime::ZERO); // 1 pre-warm boot holds the semaphore
        let Acquired::Cold(_) = p.acquire(FunctionId(0), SimTime::ZERO) else {
            panic!("demand boot must bypass the semaphore");
        };
        let Acquired::Cold(_) = p.acquire(FunctionId(0), SimTime::ZERO) else {
            panic!("budget still has room for a third container");
        };
        // 3 × 1024 MiB reserved; a fourth container exceeds 3.5 GiB.
        assert_eq!(
            p.acquire(FunctionId(0), SimTime::ZERO),
            Acquired::NoCapacity
        );
    }

    #[test]
    fn keep_alive_reaps_expired_idle() {
        let mut p = pool(8, 1e9);
        let Acquired::Cold(t) = p.acquire(FunctionId(0), SimTime::ZERO) else {
            panic!()
        };
        p.on_boot_done(t.container, SimTime::ZERO);
        let Acquired::Warm(id) = p.acquire(FunctionId(0), SimTime::ZERO) else {
            panic!()
        };
        p.release(id, SimTime::from_secs(10));
        p.apply_decisions(&[PoolDecision {
            function: FunctionId(0),
            prewarm_target: None,
            keep_alive: SimDuration::from_secs(60),
            shrink: false,
        }]);
        let _ = p.filler_tick(SimTime::from_secs(30));
        assert_eq!(p.idle_counts()[0], 1, "young idle survives");
        let _ = p.filler_tick(SimTime::from_secs(90));
        assert_eq!(p.idle_counts()[0], 0, "expired idle reaped");
        assert_eq!(p.stats().reaped, 1);
        assert_eq!(p.live_containers(), 0);
    }

    #[test]
    fn drain_stops_prewarm_but_allows_demand() {
        let mut p = pool(8, 1e9);
        p.apply_decisions(&[target(0, 4)]);
        p.begin_drain();
        assert!(
            p.filler_tick(SimTime::ZERO).is_empty(),
            "no pre-warm in drain"
        );
        match p.acquire(FunctionId(0), SimTime::ZERO) {
            Acquired::Cold(_) => {}
            other => panic!("demand boot must stay allowed in drain: {other:?}"),
        }
    }

    #[test]
    fn failed_boot_frees_memory_and_ledger() {
        use aqua_faas::FaultRates;
        let mut reg = FunctionRegistry::new();
        reg.register(FunctionSpec::new("f"));
        let plan = FaultPlan::from_seed(
            1,
            FaultRates {
                boot_fail: 1.0,
                ..FaultRates::default()
            },
        );
        let rt = SimContainerRuntime::new(reg, NoiseModel::quiet(), 7, &plan);
        let mut p = WarmPoolManager::new(
            WarmPoolConfig::default(),
            Box::new(rt),
            vec![ResourceConfig::default()],
        );
        let Acquired::Cold(t) = p.acquire(FunctionId(0), SimTime::ZERO) else {
            panic!()
        };
        assert!(t.fails);
        let f = p.on_boot_failed(t.container);
        assert_eq!(f, FunctionId(0));
        assert_eq!(p.reserved_memory_mb(), 0.0);
        assert_eq!(p.live_containers(), 0);
        assert_eq!(p.stats().boot_failures, 1);
    }

    #[test]
    fn shutdown_sweep_clears_everything() {
        let mut p = pool(8, 1e9);
        p.apply_decisions(&[target(0, 3), target(1, 2)]);
        let tickets = p.filler_tick(SimTime::ZERO);
        for t in &tickets {
            p.on_boot_done(t.container, SimTime::ZERO);
        }
        assert_eq!(p.live_containers(), 5);
        p.begin_drain();
        let killed = p.shutdown_sweep();
        assert_eq!(killed, 5);
        assert_eq!(p.live_containers(), 0, "zero orphaned containers");
        assert_eq!(p.reserved_memory_mb(), 0.0);
    }

    #[test]
    fn shrink_decision_kills_over_target_idle() {
        let mut p = pool(8, 1e9);
        p.apply_decisions(&[target(0, 4)]);
        let tickets = p.filler_tick(SimTime::ZERO);
        for t in &tickets {
            p.on_boot_done(t.container, SimTime::ZERO);
        }
        assert_eq!(p.idle_counts()[0], 4);
        p.apply_decisions(&[PoolDecision {
            function: FunctionId(0),
            prewarm_target: Some(1),
            keep_alive: SimDuration::from_secs(600),
            shrink: true,
        }]);
        let _ = p.filler_tick(SimTime::from_secs(1));
        assert_eq!(p.idle_counts()[0], 1);
        assert_eq!(p.stats().shrunk, 3);
    }
}
