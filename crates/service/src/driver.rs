//! Open-loop load driver for the control plane.
//!
//! Replays an [`aqua_workflows::azure`] arrival trace against a
//! [`ControlPlane`] at full speed and measures the *wall-clock* rate the
//! service sustains: simulated invocations per real second, events per
//! real second, and the latency/shedding profile of the run. Open loop
//! means arrivals fire at their trace timestamps regardless of how the
//! service is coping — exactly the load model the admission layer exists
//! for: an overloaded plane must shed, not slow the generator down.
//!
//! Virtual time is free (the reactor jumps between events), so the
//! sustained-throughput headline is events-processed divided by measured
//! wall time. The wall clock is only *measured* here — control flow stays
//! purely virtual, which keeps runs deterministic and replayable.

use std::time::Instant;

use aqua_faas::{FaultPlan, PrewarmController, TenantPlan, WorkflowJob};
use aqua_sim::SimDuration;
use aqua_workflows::azure::{azure_scale, AzureScaleConfig};

use crate::service::{ControlPlane, ServiceConfig, ServiceReport};

/// A finished load-driver run: the service report plus wall-clock rates.
#[derive(Debug, Clone)]
pub struct DriverReport {
    /// The control plane's own end-of-run report.
    pub service: ServiceReport,
    /// Wall-clock seconds the run took.
    pub wall_secs: f64,
    /// Virtual seconds the run covered (arrival horizon plus drain).
    pub sim_secs: f64,
    /// Simulated invocations executed per wall-clock second — the
    /// headline rate (the acceptance floor is 100k/s on the full trace).
    pub invocations_per_sec: f64,
    /// Reactor events delivered per wall-clock second.
    pub events_per_sec: f64,
    /// Workflow arrivals in the trace.
    pub trace_arrivals: usize,
    /// Stage invocations the trace implies.
    pub trace_invocations: usize,
}

/// Generates the Azure-shaped workload for `azure`, runs a control plane
/// over it under `policy`, and measures wall-clock throughput.
///
/// `cfg.run_for` is overridden to the trace horizon so shutdown begins
/// exactly when arrivals end and the drain covers in-flight work.
pub fn drive(
    azure: &AzureScaleConfig,
    cfg: ServiceConfig,
    policy: Box<dyn PrewarmController>,
    faults: &FaultPlan,
) -> DriverReport {
    drive_tenanted(azure, cfg, policy, faults, |jobs| {
        TenantPlan::single(jobs.len())
    })
}

/// [`drive`] with a tenancy plan: `plan` sees the generated job list and
/// returns the [`TenantPlan`] to install, so callers can split the trace's
/// apps into QoS-classed tenants without re-generating the workload.
pub fn drive_tenanted(
    azure: &AzureScaleConfig,
    mut cfg: ServiceConfig,
    policy: Box<dyn PrewarmController>,
    faults: &FaultPlan,
    plan: impl FnOnce(&[WorkflowJob]) -> TenantPlan,
) -> DriverReport {
    let workload = azure_scale(azure);
    cfg.run_for = SimDuration::from_secs(azure.minutes * 60);
    let tenants = plan(&workload.jobs);
    let plane = ControlPlane::new(workload.registry, workload.jobs, policy, faults, cfg)
        .with_tenants(tenants);
    let start = Instant::now();
    let service = plane.run();
    let wall_secs = start.elapsed().as_secs_f64().max(1e-9);
    DriverReport {
        sim_secs: service.sim_horizon.as_secs_f64(),
        invocations_per_sec: service.invocations_executed as f64 / wall_secs,
        events_per_sec: service.events_processed as f64 / wall_secs,
        trace_arrivals: workload.arrivals,
        trace_invocations: workload.invocations,
        service,
        wall_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_pool::HistogramPolicy;

    #[test]
    fn smoke_trace_completes_and_measures() {
        let mut azure = AzureScaleConfig::smoke();
        azure.apps = 24;
        azure.minutes = 2;
        azure.total_rpm = 600.0;
        let report = drive(
            &azure,
            ServiceConfig::default(),
            Box::new(HistogramPolicy::default()),
            &FaultPlan::disabled(),
        );
        assert!(report.service.completed > 0, "workload must make progress");
        assert_eq!(report.service.live_containers_at_exit, 0);
        assert_eq!(report.service.stranded_instances, 0);
        assert!(report.invocations_per_sec > 0.0);
        assert!(report.wall_secs > 0.0);
        assert!(
            report.sim_secs >= 120.0,
            "drain runs at least to the shutdown horizon"
        );
    }

    #[test]
    fn driver_is_deterministic_modulo_wall_clock() {
        let azure = AzureScaleConfig {
            apps: 12,
            minutes: 1,
            total_rpm: 300.0,
            ..AzureScaleConfig::smoke()
        };
        let run = || {
            drive(
                &azure,
                ServiceConfig::default(),
                Box::new(HistogramPolicy::default()),
                &FaultPlan::disabled(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.service.completed, b.service.completed);
        assert_eq!(a.service.events_processed, b.service.events_processed);
        assert_eq!(a.service.latency, b.service.latency);
        assert_eq!(a.service.runtime, b.service.runtime);
    }
}
