//! A tiny deterministic hasher for the service's hot-path maps.
//!
//! The control plane keys its ledgers by dense integer ids (instance
//! counters, container ids). The standard library's default SipHash is
//! DoS-resistant but costs tens of nanoseconds per lookup — measurable
//! when the load driver pushes over a hundred thousand invocations per
//! second through two or three map operations each. These keys are
//! process-internal (never attacker-controlled), so a multiply-rotate
//! hash in the Firefox `FxHasher` family is safe and several times
//! faster. It is also seed-free, which makes map iteration order a pure
//! function of the insert/remove sequence — one less source of run-to-run
//! divergence for the deterministic-service tests.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher for small internal integer keys.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// Odd multiplier from the `fxhash` lineage (derived from the golden
/// ratio); spreads consecutive integer keys across the table.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`] — drop-in for the service ledgers.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_integer_keys() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for k in 0..1000u64 {
            m.insert(k * 7, (k % 97) as u32);
        }
        for k in 0..1000u64 {
            assert_eq!(m.get(&(k * 7)), Some(&((k % 97) as u32)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let h = |n: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(n);
            hasher.finish()
        };
        assert_eq!(h(42), h(42), "seed-free: same input, same hash");
        // Consecutive ids must not collide in the low bits the table uses.
        let low: std::collections::HashSet<u64> = (0..64).map(|n| h(n) & 0x3f).collect();
        assert!(low.len() > 32, "consecutive keys spread across buckets");
    }

    #[test]
    fn byte_writes_cover_the_fallback_path() {
        let mut a = FxHasher::default();
        a.write(b"container-17");
        let mut b = FxHasher::default();
        b.write(b"container-18");
        assert_ne!(a.finish(), b.finish());
    }
}
