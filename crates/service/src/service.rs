//! The control plane: a long-running service process around the reactor.
//!
//! [`ControlPlane`] hosts everything the batch simulator used to drive in
//! one shot, as a resident event loop:
//!
//! * **request path** — workflow arrivals are admitted ([`Admission`]),
//!   their root stages dispatched against the warm pool
//!   ([`WarmPoolManager`]), and stage completions unlock dependents until
//!   the workflow finishes;
//! * **warm-pool control** — a policy tick cuts a [`aqua_pool::LivePoolSignal`]
//!   window once per second and feeds any [`PrewarmController`], and a
//!   filler tick works toward the resulting pre-warm targets under the
//!   boot semaphore;
//! * **model maintenance** — workflow latencies stream into an
//!   [`OnlineLatencyModel`] in O(1); the [`RefitScheduler`] folds them
//!   into the GP on its own budgeted cadence, never on the request path;
//! * **graceful shutdown** — a `Shutdown` event flips the plane into
//!   drain mode: intake stops, periodic ticks stop re-arming, demand
//!   boots stay allowed so queued work can finish, and once the reactor
//!   runs dry a final sweep kills every remaining container and asserts
//!   the runtime ledger reads zero.
//!
//! Everything is deterministic given the [`ServiceConfig`] seed and the
//! fault plan: the reactor pops in `(time, insertion)` order and all
//! sampling flows through forked [`aqua_sim::SimRng`] streams.

use std::collections::VecDeque;

use aqua_alloc::{OnlineLatencyModel, OnlineModelStats};
use aqua_faas::runtime::{BootTicket, RuntimeStats};
use aqua_faas::types::ConfigSpace;
use aqua_faas::{
    ContainerId, FaultPlan, FunctionId, FunctionRegistry, NoiseModel, PrewarmController,
    SimContainerRuntime, StageConfigs, TenantId, TenantPlan, WorkflowDag, WorkflowJob,
};
use aqua_pool::LivePoolSignal;
use aqua_sim::{LatencySummary, SimDuration, SimTime};
use aqua_telemetry::{EventSink, LiveSink, LiveStats, ShedReason, SimEvent};

use crate::admission::{Admission, AdmissionConfig, AdmissionStats};
use crate::fxhash::FxHashMap;
use crate::reactor::Reactor;
use crate::refit::{RefitScheduler, RefitStats};
use crate::warm_pool::{Acquired, WarmPoolConfig, WarmPoolManager, WarmPoolStats};

/// Events the control plane's reactor delivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvcEvent {
    /// The `k`-th arrival of `job` (lazily re-armed: handling arrival `k`
    /// schedules arrival `k + 1`, so the reactor heap stays O(jobs), not
    /// O(total arrivals)).
    Arrival { job: usize, k: usize },
    /// A container boot finished warm.
    BootDone { container: ContainerId },
    /// A container boot failed at the moment it would have turned warm.
    BootFailed { container: ContainerId },
    /// One task execution finished on `container`.
    ExecDone {
        wf: u64,
        stage: usize,
        container: ContainerId,
    },
    /// Cut a pool-signal window and run the pre-warm policy.
    PolicyTick,
    /// Run the warm-pool filler task.
    FillerTick,
    /// Run the budgeted model-refit scheduler.
    RefitTick,
    /// Begin graceful drain.
    Shutdown,
}

/// Predictive-admission knobs: how often and how conservatively the
/// plane consults the online latency model at the front door.
///
/// An arrival of a tenant with a finite SLO is rejected when the model's
/// workflow-latency prediction `mean + k_sigma · σ` already exceeds the
/// SLO — the work is doomed, so shedding it *now* keeps queues short for
/// arrivals that can still make it. The budget counts prediction *checks*
/// per policy window (not rejects), bounding the per-arrival GP cost on
/// the hot path; `0` disables the mechanism entirely, and a disabled
/// plane is bit-identical to one without the feature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictiveConfig {
    /// Model consultations allowed per policy window (0 = disabled).
    pub checks_per_window: u32,
    /// Uncertainty multiplier in the reject criterion `mean + k·σ > SLO`.
    pub k_sigma: f64,
}

impl Default for PredictiveConfig {
    fn default() -> Self {
        PredictiveConfig {
            checks_per_window: 0,
            k_sigma: 1.0,
        }
    }
}

impl PredictiveConfig {
    /// An enabled config with a per-window check budget.
    pub fn enabled(checks_per_window: u32, k_sigma: f64) -> Self {
        PredictiveConfig {
            checks_per_window,
            k_sigma,
        }
    }
}

/// Tunables for [`ControlPlane`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Warm-pool sizing (semaphore width, keep-alive, memory budget).
    pub pool: WarmPoolConfig,
    /// Admission bounds (in-flight cap, queue caps).
    pub admission: AdmissionConfig,
    /// Pre-warm policy control window.
    pub policy_window: SimDuration,
    /// Filler-task cadence (shorter than the policy window so targets are
    /// approached smoothly within one window).
    pub filler_interval: SimDuration,
    /// Model-refit cadence.
    pub refit_interval: SimDuration,
    /// Maximum apps refit per refit tick.
    pub refit_budget: usize,
    /// Feed every n-th completed workflow per app into the latency model
    /// (bounds GP growth under heavy traffic).
    pub model_sample_every: u64,
    /// Virtual time at which graceful shutdown begins.
    pub run_for: SimDuration,
    /// Seed for the runtime's boot/exec sampling streams.
    pub seed: u64,
    /// Predictive-admission knobs (disabled by default).
    pub predictive: PredictiveConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            pool: WarmPoolConfig::default(),
            admission: AdmissionConfig::default(),
            policy_window: LivePoolSignal::default_window(),
            filler_interval: SimDuration::from_millis(200),
            refit_interval: SimDuration::from_secs(10),
            refit_budget: 4,
            model_sample_every: 32,
            run_for: SimDuration::from_secs(3600),
            seed: 0xA9_5EED,
            predictive: PredictiveConfig::default(),
        }
    }
}

/// Per-tenant slice of the end-of-run report.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The tenant's admission/shedding ledger.
    pub admission: AdmissionStats,
    /// End-to-end latency summary over this tenant's completions, seconds.
    pub latency: LatencySummary,
    /// Completed workflows that still missed the tenant's SLO.
    pub qos_misses: u64,
    /// The SLO the misses were counted against (+inf = best-effort).
    pub slo_secs: f64,
}

/// End-of-run report of a [`ControlPlane`].
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Virtual time when the loop ran dry.
    pub sim_horizon: SimTime,
    /// Reactor events delivered over the whole run.
    pub events_processed: u64,
    /// Workflow instances that completed every stage.
    pub completed: u64,
    /// Admitted instances aborted because a task was shed at a full queue.
    pub rejected_workflows: u64,
    /// Arrival events ignored because they fired during drain.
    pub arrivals_skipped_in_drain: u64,
    /// Task executions completed.
    pub invocations_executed: u64,
    /// End-to-end workflow latency summary, seconds.
    pub latency: LatencySummary,
    /// Admission/shedding counters.
    pub admission: AdmissionStats,
    /// Warm-pool counters.
    pub pool: WarmPoolStats,
    /// Container-runtime counters.
    pub runtime: RuntimeStats,
    /// Refit-scheduler counters.
    pub refit: RefitStats,
    /// Online-model counters.
    pub model: OnlineModelStats,
    /// Telemetry counters when a sink was attached.
    pub telemetry: Option<LiveStats>,
    /// Runtime ledger size after the shutdown sweep (0 = clean).
    pub live_containers_at_exit: usize,
    /// Containers the final sweep had to kill.
    pub swept_at_exit: usize,
    /// Workflow instances still open when the loop ran dry (0 = clean).
    pub stranded_instances: usize,
    /// Billable memory footprint of the run, GB·s.
    pub cost_gb_s: f64,
    /// Per-tenant ledgers and latency summaries, indexed by `TenantId`.
    pub tenants: Vec<TenantReport>,
}

/// Per-job static state the plane derives once at construction.
struct JobState {
    dag: WorkflowDag,
    arrivals: Vec<SimTime>,
    /// `dependents[s]` = stages unblocked by stage `s` completing.
    dependents: Vec<Vec<usize>>,
    roots: Vec<usize>,
    /// Stage-0 config normalized into `[0,1]^3` — the model coordinate
    /// for this app's workflow latency observations.
    u: [f64; 3],
    completions: u64,
}

/// One in-flight workflow instance.
struct WfInstance {
    job: usize,
    admitted_at: SimTime,
    /// Tasks left per stage.
    remaining: Vec<u32>,
    /// Unmet dependencies per stage.
    deps_left: Vec<u32>,
    stages_left: u32,
    /// Tasks dispatched or queued and not yet retired.
    outstanding: u32,
    aborted: bool,
}

/// The long-running AQUATOPE control plane.
pub struct ControlPlane {
    cfg: ServiceConfig,
    reactor: Reactor<SvcEvent>,
    pool: WarmPoolManager,
    admission: Admission,
    signal: LivePoolSignal,
    policy: Box<dyn PrewarmController>,
    model: OnlineLatencyModel,
    refit: RefitScheduler,
    jobs: Vec<JobState>,
    instances: FxHashMap<u64, WfInstance>,
    next_instance: u64,
    /// Per-function queues of `(instance, stage)` tasks waiting for a
    /// container.
    pending: Vec<VecDeque<(u64, usize)>>,
    /// Functions whose waiters found no capacity, in discovery order.
    starved: VecDeque<FunctionId>,
    starved_flag: Vec<bool>,
    draining: bool,
    telemetry: Option<LiveSink<Box<dyn EventSink + Send>>>,
    latencies: Vec<f64>,
    completed: u64,
    rejected: u64,
    skipped_in_drain: u64,
    invocations_executed: u64,
    /// Tenancy: QoS classes plus the job → tenant map. Defaults to one
    /// unlimited tenant, which reproduces the untenanted plane exactly.
    plan: TenantPlan,
    /// Per-tenant completion latencies, seconds.
    tenant_latencies: Vec<Vec<f64>>,
    /// Per-tenant completed-but-late counts.
    tenant_qos_misses: Vec<u64>,
    /// Predictive checks left in the current policy window.
    predictive_left: u32,
}

/// Normalizes a stage-0 config into the default [`ConfigSpace`] unit cube.
fn stage0_u(configs: &StageConfigs) -> [f64; 3] {
    let cs = ConfigSpace::default();
    let c = configs.stage(0);
    let norm = |v: f64, (lo, hi): (f64, f64)| ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
    [
        norm(c.cpu, cs.cpu),
        norm(c.memory_mb, cs.memory_mb),
        norm(c.concurrency as f64, (1.0, cs.concurrency_max as f64)),
    ]
}

impl ControlPlane {
    /// A control plane serving `jobs` over `registry`'s functions, with
    /// `policy` deciding pre-warm targets and `faults` driving boot
    /// failures.
    ///
    /// Each function's containers boot under the config of the first
    /// job stage that uses it (jobs come popularity-ordered from the
    /// workload generators, so popular apps pin their functions' shapes).
    pub fn new(
        registry: FunctionRegistry,
        jobs: Vec<WorkflowJob>,
        policy: Box<dyn PrewarmController>,
        faults: &FaultPlan,
        cfg: ServiceConfig,
    ) -> Self {
        let functions = registry.len();
        let mut configs = vec![aqua_faas::ResourceConfig::default(); functions];
        let mut pinned = vec![false; functions];
        for job in &jobs {
            for (i, s) in job.dag.stages().enumerate() {
                if !pinned[s.function.0] {
                    pinned[s.function.0] = true;
                    configs[s.function.0] = job.configs.stage(i);
                }
            }
        }
        let runtime = SimContainerRuntime::new(registry, NoiseModel::default(), cfg.seed, faults);
        let jobs: Vec<JobState> = jobs
            .into_iter()
            .map(|job| JobState {
                dependents: job.dag.dependents(),
                roots: job.dag.roots(),
                u: stage0_u(&job.configs),
                dag: job.dag,
                arrivals: job.arrivals,
                completions: 0,
            })
            .collect();
        let plan = TenantPlan::single(jobs.len());
        let predictive_left = cfg.predictive.checks_per_window;
        ControlPlane {
            reactor: Reactor::with_capacity(jobs.len() + 64),
            pool: WarmPoolManager::new(cfg.pool, Box::new(runtime), configs),
            admission: Admission::new(cfg.admission),
            signal: LivePoolSignal::new(functions, cfg.pool.memory_budget_mb, SimTime::ZERO),
            policy,
            model: OnlineLatencyModel::service_default(),
            refit: RefitScheduler::new(cfg.refit_interval, cfg.refit_budget),
            jobs,
            instances: FxHashMap::default(),
            next_instance: 0,
            pending: (0..functions).map(|_| VecDeque::new()).collect(),
            starved: VecDeque::new(),
            starved_flag: vec![false; functions],
            draining: false,
            telemetry: None,
            latencies: Vec::new(),
            completed: 0,
            rejected: 0,
            skipped_in_drain: 0,
            invocations_executed: 0,
            tenant_latencies: vec![Vec::new()],
            tenant_qos_misses: vec![0],
            predictive_left,
            plan,
            cfg,
        }
    }

    /// Installs a multi-tenant plan: per-tenant admission budgets, and —
    /// when any class carries a nonzero memory share — a partitioned
    /// warm-pool budget with work-conserving borrowing. Call before
    /// [`ControlPlane::run`]. A plan of all-[`aqua_faas::QosClass::unlimited`]
    /// classes leaves every decision identical to the untenanted plane.
    ///
    /// # Panics
    ///
    /// Panics when the plan doesn't cover this plane's jobs or a job
    /// names an unknown tenant.
    #[must_use]
    pub fn with_tenants(mut self, plan: TenantPlan) -> Self {
        plan.validate();
        assert_eq!(
            plan.job_tenants.len(),
            self.jobs.len(),
            "tenant plan must cover every job"
        );
        self.admission = Admission::with_tenants(self.cfg.admission, plan.classes.clone());
        if plan.classes.iter().any(|c| c.memory_share_mb > 0.0) {
            // Functions inherit the tenant of the first job stage that
            // uses them — the same pinning rule as boot configs.
            let mut fn_tenant = vec![TenantId(0); self.pool.functions()];
            let mut pinned = vec![false; self.pool.functions()];
            for (j, job) in self.jobs.iter().enumerate() {
                for s in job.dag.stages() {
                    if !pinned[s.function.0] {
                        pinned[s.function.0] = true;
                        fn_tenant[s.function.0] = plan.job_tenants[j];
                    }
                }
            }
            let shares: Vec<f64> = plan.classes.iter().map(|c| c.memory_share_mb).collect();
            self.pool.set_tenancy(fn_tenant, shares);
        }
        self.tenant_latencies = vec![Vec::new(); plan.tenants()];
        self.tenant_qos_misses = vec![0; plan.tenants()];
        self.plan = plan;
        self
    }

    /// Replaces the online latency model — e.g.
    /// [`OnlineLatencyModel::scalable_default`] for high-traffic planes
    /// whose per-app training sets should auto-switch to the sparse
    /// surrogate tier (each switch is surfaced as a
    /// [`SimEvent::SurrogateTierSwitch`] telemetry event at the refit
    /// tick that performed it). Call before [`ControlPlane::run`].
    #[must_use]
    pub fn with_model(mut self, model: OnlineLatencyModel) -> Self {
        self.model = model;
        self
    }

    /// Attaches a live telemetry sink flushed every `flush_every` events.
    /// Only coarse container-lifecycle events (warm hits, cold-start
    /// begins) are emitted, keeping the request path cheap.
    pub fn attach_telemetry(&mut self, sink: Box<dyn EventSink + Send>, flush_every: u64) {
        self.telemetry = Some(LiveSink::new(sink, flush_every));
    }

    /// Runs the service to completion: arrivals are injected lazily, the
    /// periodic ticks re-arm themselves, `Shutdown` fires at
    /// [`ServiceConfig::run_for`], and the loop exits when the drain
    /// finishes. Consumes the plane and returns its report.
    pub fn run(mut self) -> ServiceReport {
        for j in 0..self.jobs.len() {
            if let Some(&t) = self.jobs[j].arrivals.first() {
                self.reactor.at(t, SvcEvent::Arrival { job: j, k: 0 });
            }
        }
        self.reactor
            .after(self.cfg.policy_window, SvcEvent::PolicyTick);
        self.reactor
            .after(self.cfg.filler_interval, SvcEvent::FillerTick);
        self.reactor
            .after(self.cfg.refit_interval, SvcEvent::RefitTick);
        self.reactor.after(self.cfg.run_for, SvcEvent::Shutdown);
        while let Some((now, ev)) = self.reactor.next() {
            self.handle(now, ev);
        }
        self.finish()
    }

    fn handle(&mut self, now: SimTime, ev: SvcEvent) {
        match ev {
            SvcEvent::Arrival { job, k } => {
                if self.draining {
                    self.skipped_in_drain += 1;
                    return;
                }
                if let Some(&t) = self.jobs[job].arrivals.get(k + 1) {
                    self.reactor.at(t, SvcEvent::Arrival { job, k: k + 1 });
                }
                self.admit(job, now);
            }
            SvcEvent::BootDone { container } => {
                let (f, _) = self.pool.on_boot_done(container, now);
                self.serve_pending(f, now);
                self.relieve_starved(now);
            }
            SvcEvent::BootFailed { container } => {
                let f = self.pool.on_boot_failed(container, now);
                self.signal.on_boot_failure(f);
                // Replacement boots for waiters the failed boot was
                // covering, then let other starved functions at the
                // freed memory.
                self.cover(f, now);
                self.relieve_starved(now);
            }
            SvcEvent::ExecDone {
                wf,
                stage,
                container,
            } => {
                let f = {
                    let job = self.instances.get(&wf).expect("exec-done orphan").job;
                    self.jobs[job].dag.stage(stage).function
                };
                self.pool.release(container, now);
                self.signal.on_complete(f);
                self.invocations_executed += 1;
                self.serve_pending(f, now);
                self.relieve_starved(now);
                self.task_complete(wf, stage, now);
            }
            SvcEvent::PolicyTick => {
                let idle = self.pool.idle_counts();
                let booting = self.pool.booting_counts();
                let obs = self.signal.observe(
                    now,
                    &idle,
                    &booting,
                    self.pool.reserved_memory_mb(),
                    self.pool.live_containers(),
                );
                let decisions = self.policy.tick(&obs);
                self.pool.apply_decisions(&decisions);
                self.predictive_left = self.cfg.predictive.checks_per_window;
                if !self.draining {
                    self.reactor
                        .after(self.cfg.policy_window, SvcEvent::PolicyTick);
                }
            }
            SvcEvent::FillerTick => {
                let tickets = self.pool.filler_tick(now);
                for t in &tickets {
                    self.emit_cold_start(t, now, true);
                    self.schedule_boot(t);
                }
                // Keep-alive reaping may have freed memory for starved
                // waiters even when no boot started.
                self.relieve_starved(now);
                if !self.draining {
                    self.reactor
                        .after(self.cfg.filler_interval, SvcEvent::FillerTick);
                }
            }
            SvcEvent::RefitTick => {
                self.refit.tick(&mut self.model);
                for sw in self.model.drain_tier_switches() {
                    if let Some(t) = &mut self.telemetry {
                        t.record(&SimEvent::SurrogateTierSwitch {
                            at: now,
                            app: sw.app,
                            train: sw.train,
                            inducing: sw.inducing,
                        });
                    }
                }
                if !self.draining {
                    self.reactor
                        .after(self.cfg.refit_interval, SvcEvent::RefitTick);
                }
            }
            SvcEvent::Shutdown => {
                self.draining = true;
                self.pool.begin_drain();
                self.relieve_starved(now);
            }
        }
    }

    /// Predictive front-door check: consumes one budgeted model
    /// consultation and returns `true` when the arrival should be
    /// rejected because its predicted latency already misses the SLO.
    fn predictive_veto(&mut self, job: usize, tenant: TenantId, now: SimTime) -> bool {
        if self.predictive_left == 0 {
            return false;
        }
        let slo = self.plan.classes[tenant.0].slo_secs();
        if !slo.is_finite() {
            return false; // best-effort tenants are never vetoed
        }
        // Only consult the model under visible congestion: with every
        // function queue empty a fresh arrival inherits nobody's wait,
        // and — crucially — admitting freely while uncongested keeps
        // completions flowing into the model, so a pessimistic forecast
        // learned during a burst can never starve its own correction.
        if self.pending.iter().all(|q| q.is_empty()) {
            return false;
        }
        self.predictive_left -= 1;
        let u = self.jobs[job].u;
        let Some((mean, var)) = self.model.predict(job, &u, now.as_secs_f64()) else {
            return false; // model not fitted yet: admit optimistically
        };
        let sigma = var.max(0.0).sqrt();
        let predicted = mean + self.cfg.predictive.k_sigma * sigma;
        if predicted <= slo {
            return false;
        }
        self.admission.predictive_reject(tenant);
        if let Some(t) = &mut self.telemetry {
            t.record(&SimEvent::PredictiveReject {
                at: now,
                tenant: tenant.0,
                workflow: job,
                predicted_secs: predicted,
                sigma_secs: sigma,
                slo_secs: slo,
            });
        }
        true
    }

    fn admit(&mut self, job: usize, now: SimTime) {
        let tenant = self.plan.job_tenants[job];
        if self.predictive_veto(job, tenant, now) {
            return;
        }
        if !self.admission.try_admit(tenant) {
            // Shed at the front door, counted by the limiter.
            if let Some(t) = &mut self.telemetry {
                t.record(&SimEvent::TenantShed {
                    at: now,
                    tenant: tenant.0,
                    workflow: job,
                    reason: ShedReason::Inflight,
                });
            }
            return;
        }
        let id = self.next_instance;
        self.next_instance += 1;
        if let Some(t) = &mut self.telemetry {
            t.record(&SimEvent::TenantAdmit {
                at: now,
                tenant: tenant.0,
                workflow: job,
                instance: id,
            });
        }
        let dag = &self.jobs[job].dag;
        self.instances.insert(
            id,
            WfInstance {
                job,
                admitted_at: now,
                remaining: dag.stages().map(|s| s.tasks).collect(),
                deps_left: dag.stages().map(|s| s.deps.len() as u32).collect(),
                stages_left: dag.num_stages() as u32,
                outstanding: 0,
                aborted: false,
            },
        );
        // Indexed loop: `dispatch_stage` needs `&mut self`, and cloning the
        // root list here would put an allocation on every admission.
        for r in 0..self.jobs[job].roots.len() {
            let s = self.jobs[job].roots[r];
            if !self.dispatch_stage(id, s, now) {
                break;
            }
        }
    }

    /// Dispatches every task of one stage. Returns `false` when the
    /// instance was aborted part-way (a task was shed).
    fn dispatch_stage(&mut self, wf: u64, stage: usize, now: SimTime) -> bool {
        let (f, tasks) = {
            let job = self
                .instances
                .get(&wf)
                .expect("dispatch for gone instance")
                .job;
            let s = self.jobs[job].dag.stage(stage);
            (s.function, s.tasks)
        };
        for _ in 0..tasks {
            if !self.dispatch_task(wf, stage, f, now) {
                return false;
            }
        }
        true
    }

    /// Dispatches one task: warm container, else demand boot, else queue,
    /// else shed (aborting the instance). Returns `false` on shed.
    fn dispatch_task(&mut self, wf: u64, stage: usize, f: FunctionId, now: SimTime) -> bool {
        self.signal.on_dispatch(f);
        match self.pool.acquire(f, now) {
            Acquired::Warm(id) => {
                self.bump_outstanding(wf);
                self.start_exec(wf, stage, f, id, now);
                true
            }
            Acquired::Cold(ticket) => {
                self.bump_outstanding(wf);
                self.emit_cold_start(&ticket, now, false);
                self.schedule_boot(&ticket);
                self.pending[f.0].push_back((wf, stage));
                true
            }
            Acquired::NoCapacity => {
                let job = self.instances.get(&wf).expect("dispatch orphan").job;
                let tenant = self.plan.job_tenants[job];
                if self.admission.may_queue(tenant, self.pending[f.0].len()) {
                    self.bump_outstanding(wf);
                    self.pending[f.0].push_back((wf, stage));
                    self.mark_starved(f);
                    true
                } else {
                    if let Some(t) = &mut self.telemetry {
                        t.record(&SimEvent::TenantShed {
                            at: now,
                            tenant: tenant.0,
                            workflow: job,
                            reason: ShedReason::Queue,
                        });
                    }
                    self.signal.on_complete(f); // undo the dispatch count
                    self.abort(wf);
                    false
                }
            }
        }
    }

    fn bump_outstanding(&mut self, wf: u64) {
        self.instances
            .get_mut(&wf)
            .expect("outstanding bump for gone instance")
            .outstanding += 1;
    }

    fn start_exec(
        &mut self,
        wf: u64,
        stage: usize,
        f: FunctionId,
        container: ContainerId,
        now: SimTime,
    ) {
        let d = self.pool.sample_exec(f);
        self.reactor.after(
            d,
            SvcEvent::ExecDone {
                wf,
                stage,
                container,
            },
        );
        if let Some(t) = &mut self.telemetry {
            t.record(&SimEvent::WarmHit {
                at: now,
                function: f.0,
                container: container.0,
            });
        }
    }

    fn schedule_boot(&mut self, t: &BootTicket) {
        let ev = if t.fails {
            SvcEvent::BootFailed {
                container: t.container,
            }
        } else {
            SvcEvent::BootDone {
                container: t.container,
            }
        };
        self.reactor.after(t.boot, ev);
    }

    fn emit_cold_start(&mut self, ticket: &BootTicket, now: SimTime, prewarmed: bool) {
        let memory_mb = self.pool.config(ticket.function).memory_mb;
        if let Some(t) = &mut self.telemetry {
            t.record(&SimEvent::ColdStartBegin {
                at: now,
                function: ticket.function.0,
                container: ticket.container.0,
                worker: 0,
                memory_mb,
                slots: 1,
                prewarmed,
            });
        }
    }

    /// Serves waiting tasks from idle containers until one side runs out.
    fn serve_pending(&mut self, f: FunctionId, now: SimTime) {
        while self.pool.idle_count(f) > 0 {
            let Some((wf, stage)) = self.pending[f.0].pop_front() else {
                return;
            };
            let alive = self.instances.get(&wf).map(|i| !i.aborted).unwrap_or(false);
            if !alive {
                // Dead waiter: retire it without consuming a container.
                self.signal.on_complete(f);
                self.retire_aborted_task(wf);
                continue;
            }
            match self.pool.acquire(f, now) {
                Acquired::Warm(id) => self.start_exec(wf, stage, f, id, now),
                _ => unreachable!("idle_count > 0 guarantees a warm acquire"),
            }
        }
    }

    /// Makes sure every waiter of `f` is covered by a booting container,
    /// starting demand boots as memory allows.
    fn cover(&mut self, f: FunctionId, now: SimTime) {
        self.serve_pending(f, now);
        while self.pending[f.0].len() > self.pool.booting_count(f) as usize {
            match self.pool.acquire(f, now) {
                Acquired::Warm(_) => unreachable!("serve_pending drained idle first"),
                Acquired::Cold(t) => {
                    self.emit_cold_start(&t, now, false);
                    self.schedule_boot(&t);
                }
                Acquired::NoCapacity => {
                    self.mark_starved(f);
                    break;
                }
            }
        }
    }

    fn mark_starved(&mut self, f: FunctionId) {
        if !self.starved_flag[f.0] {
            self.starved_flag[f.0] = true;
            self.starved.push_back(f);
        }
    }

    /// Gives each starved function one chance at newly-freed capacity, in
    /// discovery order; stops at the first function that stays starved.
    fn relieve_starved(&mut self, now: SimTime) {
        for _ in 0..self.starved.len() {
            let Some(f) = self.starved.pop_front() else {
                break;
            };
            self.starved_flag[f.0] = false;
            self.cover(f, now);
            if self.starved_flag[f.0] {
                break;
            }
        }
    }

    /// Retires one outstanding task of an aborted instance, finishing the
    /// instance when its last task drains.
    fn retire_aborted_task(&mut self, wf: u64) {
        let (done, job) = {
            let inst = self
                .instances
                .get_mut(&wf)
                .expect("retire for gone instance");
            inst.outstanding -= 1;
            (inst.aborted && inst.outstanding == 0, inst.job)
        };
        if done {
            self.instances.remove(&wf);
            self.admission.finish(self.plan.job_tenants[job]);
        }
    }

    fn abort(&mut self, wf: u64) {
        let (finish_now, job) = {
            let inst = self.instances.get_mut(&wf).expect("abort of gone instance");
            if inst.aborted {
                return;
            }
            inst.aborted = true;
            (inst.outstanding == 0, inst.job)
        };
        self.rejected += 1;
        if finish_now {
            self.instances.remove(&wf);
            self.admission.finish(self.plan.job_tenants[job]);
        }
    }

    fn task_complete(&mut self, wf: u64, stage: usize, now: SimTime) {
        let (aborted, stage_done, wf_done, job) = {
            let inst = self
                .instances
                .get_mut(&wf)
                .expect("completion for gone instance");
            if inst.aborted {
                (true, false, false, inst.job)
            } else {
                inst.outstanding -= 1;
                inst.remaining[stage] -= 1;
                let sd = inst.remaining[stage] == 0;
                if sd {
                    inst.stages_left -= 1;
                }
                (false, sd, sd && inst.stages_left == 0, inst.job)
            }
        };
        if aborted {
            self.retire_aborted_task(wf);
            return;
        }
        if wf_done {
            let inst = self.instances.remove(&wf).expect("double completion");
            let tenant = self.plan.job_tenants[job];
            self.admission.finish(tenant);
            self.completed += 1;
            let latency = (now - inst.admitted_at).as_secs_f64();
            self.latencies.push(latency);
            self.tenant_latencies[tenant.0].push(latency);
            if latency > self.plan.classes[tenant.0].slo_secs() {
                self.tenant_qos_misses[tenant.0] += 1;
            }
            if let Some(t) = &mut self.telemetry {
                t.record(&SimEvent::TenantComplete {
                    at: now,
                    tenant: tenant.0,
                    workflow: job,
                    instance: wf,
                    latency_secs: latency,
                });
            }
            let js = &mut self.jobs[job];
            js.completions += 1;
            if js.completions.is_multiple_of(self.cfg.model_sample_every) {
                let u = js.u;
                self.model.observe(job, &u, now.as_secs_f64(), latency);
            }
            return;
        }
        if !stage_done {
            return;
        }
        // Indexed loop for the same reason as `admit`: stage completions
        // are hot, and the dependent list is immutable while we dispatch.
        for di in 0..self.jobs[job].dependents[stage].len() {
            let d = self.jobs[job].dependents[stage][di];
            let ready = {
                let Some(inst) = self.instances.get_mut(&wf) else {
                    break;
                };
                if inst.aborted {
                    break;
                }
                inst.deps_left[d] -= 1;
                inst.deps_left[d] == 0
            };
            if ready && !self.dispatch_stage(wf, d, now) {
                break;
            }
        }
    }

    fn finish(mut self) -> ServiceReport {
        let stranded = self.instances.len();
        let cost_gb_s = self.pool.memory_gb_seconds(self.reactor.now());
        let swept = self.pool.shutdown_sweep(self.reactor.now());
        let live = self.pool.live_containers();
        if let Some(t) = &mut self.telemetry {
            t.flush();
        }
        let tenants = (0..self.plan.tenants())
            .map(|t| TenantReport {
                admission: self.admission.tenant_stats(TenantId(t)),
                latency: LatencySummary::of(&self.tenant_latencies[t]),
                qos_misses: self.tenant_qos_misses[t],
                slo_secs: self.plan.classes[t].slo_secs(),
            })
            .collect();
        ServiceReport {
            sim_horizon: self.reactor.now(),
            events_processed: self.reactor.processed(),
            completed: self.completed,
            rejected_workflows: self.rejected,
            arrivals_skipped_in_drain: self.skipped_in_drain,
            invocations_executed: self.invocations_executed,
            latency: LatencySummary::of(&self.latencies),
            admission: self.admission.stats(),
            pool: self.pool.stats(),
            runtime: self.pool.runtime_stats(),
            refit: self.refit.stats(),
            model: self.model.stats(),
            telemetry: self.telemetry.as_ref().map(|t| t.stats()),
            live_containers_at_exit: live,
            swept_at_exit: swept,
            stranded_instances: stranded,
            cost_gb_s,
            tenants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_faas::{FunctionSpec, StageConfigs};

    fn chain_jobs(apps: usize, arrivals_per_app: usize) -> (FunctionRegistry, Vec<WorkflowJob>) {
        let mut reg = FunctionRegistry::new();
        let mut jobs = Vec::new();
        for a in 0..apps {
            let f = reg.register(FunctionSpec::new(format!("f{a}")).with_work_ms(40.0));
            let dag = WorkflowDag::chain(format!("app{a}"), vec![f]);
            let configs = StageConfigs::uniform(&dag, aqua_faas::ResourceConfig::default());
            let arrivals = (0..arrivals_per_app)
                .map(|i| SimTime::from_millis(500 * (i as u64 + 1) + 37 * a as u64))
                .collect();
            jobs.push(WorkflowJob {
                dag,
                configs,
                arrivals,
            });
        }
        (reg, jobs)
    }

    fn small_cfg() -> ServiceConfig {
        ServiceConfig {
            run_for: SimDuration::from_secs(120),
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn completes_every_arrival_and_shuts_down_clean() {
        let (reg, jobs) = chain_jobs(3, 20);
        let plane = ControlPlane::new(
            reg,
            jobs,
            Box::new(aqua_pool::ReactiveAutoscale::default()),
            &FaultPlan::disabled(),
            small_cfg(),
        );
        let report = plane.run();
        assert_eq!(report.completed, 60);
        assert_eq!(report.rejected_workflows, 0);
        assert_eq!(report.live_containers_at_exit, 0, "no orphaned containers");
        assert_eq!(report.stranded_instances, 0);
        assert_eq!(report.invocations_executed, 60);
        assert!(report.latency.p50 > 0.0);
        assert_eq!(report.admission.admitted, 60);
        assert_eq!(report.admission.finished, 60);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let (reg, jobs) = chain_jobs(4, 15);
            ControlPlane::new(
                reg,
                jobs,
                Box::new(aqua_pool::HistogramPolicy::default()),
                &FaultPlan::disabled(),
                small_cfg(),
            )
            .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.pool, b.pool);
        assert_eq!(a.runtime, b.runtime);
    }

    #[test]
    fn multi_stage_chains_respect_dependencies() {
        let mut reg = FunctionRegistry::new();
        let f0 = reg.register(FunctionSpec::new("extract").with_work_ms(30.0));
        let f1 = reg.register(FunctionSpec::new("transform").with_work_ms(30.0));
        let dag = WorkflowDag::chain("etl", vec![f0, f1]);
        let configs = StageConfigs::uniform(&dag, aqua_faas::ResourceConfig::default());
        let jobs = vec![WorkflowJob {
            dag,
            configs,
            arrivals: (0..10).map(|i| SimTime::from_secs(i + 1)).collect(),
        }];
        let report = ControlPlane::new(
            reg,
            jobs,
            Box::new(aqua_pool::ReactiveAutoscale::default()),
            &FaultPlan::disabled(),
            small_cfg(),
        )
        .run();
        assert_eq!(report.completed, 10);
        assert_eq!(report.invocations_executed, 20, "two stages per workflow");
        assert_eq!(report.live_containers_at_exit, 0);
    }

    #[test]
    fn tight_admission_sheds_instead_of_queueing_unboundedly() {
        let (reg, jobs) = chain_jobs(2, 40);
        let cfg = ServiceConfig {
            admission: AdmissionConfig {
                max_inflight: 1,
                queue_cap: 1,
            },
            ..small_cfg()
        };
        let report = ControlPlane::new(
            reg,
            jobs,
            Box::new(aqua_pool::ReactiveAutoscale::default()),
            &FaultPlan::disabled(),
            cfg,
        )
        .run();
        assert!(report.admission.shed_arrivals > 0, "cap must bite");
        assert_eq!(
            report.admission.admitted + report.admission.shed_arrivals,
            80
        );
        assert_eq!(report.live_containers_at_exit, 0);
        assert_eq!(report.stranded_instances, 0);
    }

    #[test]
    fn latency_sampling_feeds_the_online_model() {
        let (reg, jobs) = chain_jobs(1, 30);
        let cfg = ServiceConfig {
            model_sample_every: 2,
            refit_interval: SimDuration::from_secs(5),
            ..small_cfg()
        };
        let report = ControlPlane::new(
            reg,
            jobs,
            Box::new(aqua_pool::ReactiveAutoscale::default()),
            &FaultPlan::disabled(),
            cfg,
        )
        .run();
        assert_eq!(report.completed, 30);
        assert_eq!(report.model.observed, 15, "every 2nd completion sampled");
        assert!(report.refit.ticks > 0);
        assert!(report.refit.absorbed > 0, "refits folded observations in");
    }

    #[test]
    fn refit_tick_switches_tier_and_emits_telemetry() {
        let (reg, jobs) = chain_jobs(1, 60);
        let cfg = ServiceConfig {
            model_sample_every: 1,
            refit_interval: SimDuration::from_secs(5),
            ..small_cfg()
        };
        let mut plane = ControlPlane::new(
            reg,
            jobs,
            Box::new(aqua_pool::ReactiveAutoscale::default()),
            &FaultPlan::disabled(),
            cfg,
        )
        .with_model(
            OnlineLatencyModel::scalable_default()
                .with_tier_threshold(16)
                .with_inducing(8),
        );
        plane.attach_telemetry(Box::new(aqua_telemetry::Recorder::unbounded()), 64);
        let report = plane.run();
        assert_eq!(report.completed, 60);
        assert_eq!(report.model.tier_switches, 1, "exact tier crossed 16 obs");
        let live = report.telemetry.expect("sink attached");
        assert_eq!(live.kind("surrogate_tier_switch"), 1);
    }

    #[test]
    fn telemetry_sees_warm_hits_and_cold_starts() {
        let (reg, jobs) = chain_jobs(2, 10);
        let mut plane = ControlPlane::new(
            reg,
            jobs,
            Box::new(aqua_pool::ReactiveAutoscale::default()),
            &FaultPlan::disabled(),
            small_cfg(),
        );
        plane.attach_telemetry(Box::new(aqua_telemetry::Recorder::unbounded()), 64);
        let report = plane.run();
        let live = report.telemetry.expect("sink attached");
        assert!(live.kind("cold_start_begin") > 0);
        assert!(live.kind("warm_hit") > 0);
        assert_eq!(
            live.kind("warm_hit")
                + live.kind("cold_start_begin")
                + live.kind("tenant_admit")
                + live.kind("tenant_complete"),
            live.events
        );
        assert_eq!(live.kind("tenant_admit"), 20, "one admit per arrival");
        assert_eq!(live.kind("tenant_complete"), 20);
    }

    #[test]
    fn tenant_plan_partitions_admission_and_reports_per_tenant() {
        use aqua_faas::QosClass;
        let (reg, jobs) = chain_jobs(2, 20);
        let plan = TenantPlan {
            classes: vec![
                QosClass::new(SimDuration::from_secs(30), 1, 4, 0.0),
                QosClass::unlimited(),
            ],
            job_tenants: vec![TenantId(0), TenantId(1)],
        };
        let report = ControlPlane::new(
            reg,
            jobs,
            Box::new(aqua_pool::ReactiveAutoscale::default()),
            &FaultPlan::disabled(),
            small_cfg(),
        )
        .with_tenants(plan)
        .run();
        assert_eq!(report.tenants.len(), 2);
        let t0 = &report.tenants[0];
        let t1 = &report.tenants[1];
        assert_eq!(t1.admission.admitted, 20, "unlimited tenant admits all");
        assert_eq!(t1.admission.shed_arrivals, 0);
        assert_eq!(t0.admission.arrivals(), 20, "tenant ledger balances");
        assert_eq!(
            t0.admission.admitted + t1.admission.admitted,
            report.admission.admitted,
            "tenant ledgers sum to the global one"
        );
        assert_eq!(t0.slo_secs, 30.0);
        assert!(t1.slo_secs.is_infinite());
        assert_eq!(report.stranded_instances, 0);
        assert_eq!(report.live_containers_at_exit, 0);
        assert!(report.cost_gb_s > 0.0, "containers held memory for a while");
    }

    #[test]
    fn predictive_rejection_vetoes_doomed_arrivals() {
        use aqua_faas::QosClass;
        // One slow single-container function fed faster than it serves:
        // the queue never drains, so arrivals face real congestion (the
        // veto only consults the model while queues are non-empty).
        let mut reg = FunctionRegistry::new();
        let f = reg.register(FunctionSpec::new("slow").with_work_ms(400.0));
        let dag = WorkflowDag::chain("app0", vec![f]);
        let configs = StageConfigs::uniform(&dag, aqua_faas::ResourceConfig::default());
        let arrivals = (0..60)
            .map(|i| SimTime::from_millis(100 * (i as u64 + 1)))
            .collect();
        let jobs = vec![WorkflowJob {
            dag,
            configs,
            arrivals,
        }];
        let cfg = ServiceConfig {
            pool: crate::warm_pool::WarmPoolConfig {
                memory_budget_mb: 1024.0,
                ..Default::default()
            },
            model_sample_every: 1,
            refit_interval: SimDuration::from_secs(2),
            predictive: PredictiveConfig::enabled(u32::MAX, 0.0),
            ..small_cfg()
        };
        // An SLO far below any achievable latency: once the model fits,
        // every checked arrival is predictively rejected.
        let plan = TenantPlan {
            classes: vec![QosClass::new(SimDuration::from_micros(1), 1000, 1000, 0.0)],
            job_tenants: vec![TenantId(0)],
        };
        let mut plane = ControlPlane::new(
            reg,
            jobs,
            Box::new(aqua_pool::ReactiveAutoscale::default()),
            &FaultPlan::disabled(),
            cfg,
        )
        .with_tenants(plan);
        plane.attach_telemetry(Box::new(aqua_telemetry::Recorder::unbounded()), 64);
        let report = plane.run();
        let s = report.admission;
        assert!(s.predictive_rejects > 0, "model must veto once fitted");
        assert_eq!(s.arrivals(), 60, "rejects balance the arrival ledger");
        assert_eq!(s.admitted, s.finished, "every admitted instance drained");
        let live = report.telemetry.expect("sink attached");
        assert_eq!(live.kind("predictive_reject"), s.predictive_rejects);
        assert_eq!(report.live_containers_at_exit, 0);
    }

    #[test]
    fn zero_predictive_budget_is_identical_to_default_plane() {
        let run = |predictive: PredictiveConfig| {
            let (reg, jobs) = chain_jobs(3, 20);
            ControlPlane::new(
                reg,
                jobs,
                Box::new(aqua_pool::HistogramPolicy::default()),
                &FaultPlan::disabled(),
                ServiceConfig {
                    predictive,
                    ..small_cfg()
                },
            )
            .run()
        };
        let off = run(PredictiveConfig::default());
        let zero = run(PredictiveConfig {
            checks_per_window: 0,
            k_sigma: 3.0,
        });
        assert_eq!(off.events_processed, zero.events_processed);
        assert_eq!(off.latency, zero.latency);
        assert_eq!(off.pool, zero.pool);
        assert_eq!(off.runtime, zero.runtime);
        assert_eq!(off.admission, zero.admission);
    }
}
