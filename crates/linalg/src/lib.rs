//! Dense linear algebra and statistics kernels for the AQUATOPE reproduction.
//!
//! Everything the Gaussian processes and neural networks need, implemented
//! from scratch: a row-major dense [`Matrix`], Cholesky factorization with
//! triangular solves, and scalar statistics (normal PDF/CDF/quantile, sample
//! moments, SMAPE).
//!
//! # Examples
//!
//! ```
//! use aqua_linalg::{Cholesky, Matrix};
//!
//! // Solve the SPD system A x = b.
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let chol = Cholesky::new(&a).unwrap();
//! let x = chol.solve_vec(&[1.0, 2.0]);
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! assert!((x[0] + 3.0 * x[1] - 2.0).abs() < 1e-12);
//! ```

pub mod chol;
pub mod gemm;
pub mod matrix;
pub mod stats;

pub use chol::{Cholesky, NotPositiveDefiniteError};
pub use gemm::{col_sum_acc, gemm, gemm_acc, gemm_sub_acc, gemm_tn, pack_transpose};
pub use matrix::Matrix;
pub use stats::{
    mean, normal_cdf, normal_pdf, normal_quantile, quantile, sample_std, sample_var, smape,
};
