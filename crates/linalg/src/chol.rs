//! Cholesky factorization and SPD solves.
//!
//! The GP surrogate models factor their kernel matrices here. The
//! factorization also exposes log-determinant (for marginal likelihood) and
//! rank-1-friendly triangular solves (for posterior covariance).

use std::error::Error;
use std::fmt;

use crate::matrix::Matrix;

/// Error returned when a matrix is not (numerically) positive definite.
///
/// # Examples
///
/// ```
/// use aqua_linalg::{Cholesky, Matrix};
///
/// let not_spd = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
/// assert!(Cholesky::new(&not_spd).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotPositiveDefiniteError {
    /// Pivot index at which factorization failed.
    pub pivot: usize,
}

impl fmt::Display for NotPositiveDefiniteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is not positive definite (pivot {})", self.pivot)
    }
}

impl Error for NotPositiveDefiniteError {}

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// # Examples
///
/// ```
/// use aqua_linalg::{Cholesky, Matrix};
///
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let chol = Cholesky::new(&a).unwrap();
/// let x = chol.solve_vec(&[3.0, 3.0]);
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    l: Matrix,
    /// Diagonal jitter that was added to the factored matrix (0 when the
    /// plain factorization succeeded). [`Cholesky::extend`] adds the same
    /// jitter to the new diagonal entry so an extended factor is
    /// bit-identical to refactoring the augmented matrix from scratch.
    jitter: f64,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NotPositiveDefiniteError`] if a pivot is non-positive
    /// (the matrix is singular or indefinite).
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn new(a: &Matrix) -> Result<Self, NotPositiveDefiniteError> {
        assert_eq!(a.rows(), a.cols(), "Cholesky of a non-square matrix");
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(NotPositiveDefiniteError { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l, jitter: 0.0 })
    }

    /// Factors `a` after adding progressively larger diagonal jitter until it
    /// succeeds (up to `1e-4 * max|a|`). Standard practice for kernel
    /// matrices that are PSD up to rounding.
    ///
    /// # Errors
    ///
    /// Returns the final [`NotPositiveDefiniteError`] if even the largest
    /// jitter fails.
    pub fn new_with_jitter(a: &Matrix) -> Result<Self, NotPositiveDefiniteError> {
        if let Ok(c) = Cholesky::new(a) {
            return Ok(c);
        }
        let scale = a.max_abs().max(1.0);
        let mut jitter = 1e-10 * scale;
        let mut last_err = NotPositiveDefiniteError { pivot: 0 };
        while jitter <= 1e-4 * scale {
            let mut aj = a.clone();
            aj.add_diagonal(jitter);
            match Cholesky::new(&aj) {
                Ok(mut c) => {
                    c.jitter = jitter;
                    return Ok(c);
                }
                Err(e) => last_err = e,
            }
            jitter *= 10.0;
        }
        Err(last_err)
    }

    /// The diagonal jitter added before the factorization succeeded (0 for
    /// a plain [`Cholesky::new`]).
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Rank-1 extension: the factor of the `(n+1)×(n+1)` matrix obtained by
    /// bordering the factored matrix with column `col` and diagonal entry
    /// `diag` (to which the recorded jitter is re-applied).
    ///
    /// Runs in O(n²) — one forward solve plus a row append — and performs
    /// *exactly* the arithmetic [`Cholesky::new`] would perform for the new
    /// row, so the result is bit-identical to refactoring the augmented
    /// matrix from scratch (the leading `n×n` block of that factorization
    /// only depends on the already-factored block).
    ///
    /// # Errors
    ///
    /// Returns [`NotPositiveDefiniteError`] if the new pivot is
    /// non-positive; callers should fall back to a full factorization with
    /// a fresh jitter ladder.
    ///
    /// # Panics
    ///
    /// Panics if `col.len() != dim()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use aqua_linalg::{Cholesky, Matrix};
    ///
    /// let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
    /// let base = Cholesky::new(&a).unwrap();
    /// let ext = base.extend(&[0.5, 0.2], 2.0).unwrap();
    /// let full = Matrix::from_rows(&[
    ///     &[4.0, 1.0, 0.5],
    ///     &[1.0, 3.0, 0.2],
    ///     &[0.5, 0.2, 2.0],
    /// ]);
    /// assert_eq!(ext, Cholesky::new(&full).unwrap());
    /// ```
    pub fn extend(&self, col: &[f64], diag: f64) -> Result<Cholesky, NotPositiveDefiniteError> {
        let n = self.dim();
        assert_eq!(col.len(), n, "dimension mismatch");
        let w = self.forward_solve(col);
        let mut pivot = diag + self.jitter;
        for wk in &w {
            pivot -= wk * wk;
        }
        if pivot <= 0.0 || !pivot.is_finite() {
            return Err(NotPositiveDefiniteError { pivot: n });
        }
        let mut l = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            l.row_mut(i)[..n].copy_from_slice(self.l.row(i));
        }
        l.row_mut(n)[..n].copy_from_slice(&w);
        l[(n, n)] = pivot.sqrt();
        Ok(Cholesky {
            l,
            jitter: self.jitter,
        })
    }

    /// The lower-triangular factor.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `L y = b` (forward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn forward_solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "dimension mismatch");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            let lrow = self.l.row(i);
            for k in 0..i {
                sum -= lrow[k] * y[k];
            }
            y[i] = sum / lrow[i];
        }
        y
    }

    /// Solves `Lᵀ x = y` (backward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != dim()`.
    pub fn backward_solve(&self, y: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(y.len(), n, "dimension mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (k, xk) in x.iter().enumerate().skip(i + 1) {
                sum -= self.l[(k, i)] * xk;
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// Solves `A x = b` for the original matrix `A = L Lᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve_vec(&self, b: &[f64]) -> Vec<f64> {
        self.backward_solve(&self.forward_solve(b))
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows() != dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        assert_eq!(b.rows(), self.dim(), "dimension mismatch");
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col: Vec<f64> = (0..b.rows()).map(|i| b[(i, j)]).collect();
            let x = self.solve_vec(&col);
            for i in 0..b.rows() {
                out[(i, j)] = x[i];
            }
        }
        out
    }

    /// Log-determinant of the original matrix: `2 Σ ln L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Draws `z ↦ L z`, mapping i.i.d. standard normals to samples with
    /// covariance `A`.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != dim()`.
    pub fn correlate(&self, z: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(z.len(), n, "dimension mismatch");
        (0..n)
            .map(|i| {
                self.l.row(i)[..=i]
                    .iter()
                    .zip(z)
                    .map(|(l, zz)| l * zz)
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reconstruct(c: &Cholesky) -> Matrix {
        c.factor().matmul(&c.factor().transpose())
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]]);
        let c = Cholesky::new(&a).unwrap();
        let r = reconstruct(&c);
        for i in 0..3 {
            for j in 0..3 {
                assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_matches_direct() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let c = Cholesky::new(&a).unwrap();
        let x = c.solve_vec(&[9.0, 8.0]);
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn log_det_known_value() {
        // det([[2,0],[0,8]]) = 16.
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 8.0]]);
        let c = Cholesky::new(&a).unwrap();
        assert!((c.log_det() - 16.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(Cholesky::new(&a).is_err());
    }

    #[test]
    fn jitter_rescues_near_singular() {
        // Rank-1 PSD matrix: plain Cholesky fails, jitter succeeds.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(Cholesky::new(&a).is_err());
        assert!(Cholesky::new_with_jitter(&a).is_ok());
    }

    #[test]
    fn solve_matrix_identity_gives_inverse() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let c = Cholesky::new(&a).unwrap();
        let inv = c.solve_matrix(&Matrix::identity(2));
        let prod = a.matmul(&inv);
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn correlate_matches_factor_product() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let c = Cholesky::new(&a).unwrap();
        let z = vec![1.0, -2.0];
        let got = c.correlate(&z);
        let want = c.factor().matvec(&z);
        assert!((got[0] - want[0]).abs() < 1e-12);
        assert!((got[1] - want[1]).abs() < 1e-12);
    }

    fn arb_spd(n: usize) -> impl Strategy<Value = Matrix> {
        prop::collection::vec(-2.0f64..2.0, n * n).prop_map(move |data| {
            let b = Matrix::from_vec(n, n, data);
            let mut g = b.matmul(&b.transpose());
            g.add_diagonal(0.5); // ensure strictly PD
            g
        })
    }

    proptest! {
        /// Solving and re-multiplying recovers the RHS for random SPD systems.
        #[test]
        fn prop_solve_roundtrip(a in arb_spd(4), b in prop::collection::vec(-5.0f64..5.0, 4)) {
            let c = Cholesky::new(&a).unwrap();
            let x = c.solve_vec(&b);
            let back = a.matvec(&x);
            for i in 0..4 {
                prop_assert!((back[i] - b[i]).abs() < 1e-6);
            }
        }

        /// log det agrees with the product of squared pivots.
        #[test]
        fn prop_log_det_positive_definite(a in arb_spd(3)) {
            let c = Cholesky::new(&a).unwrap();
            prop_assert!(c.log_det().is_finite());
        }

        /// Extending the factor of the leading block with the last
        /// column reproduces the full factorization — bit for bit, and in
        /// particular within the 1e-8 the GP layer relies on.
        #[test]
        fn prop_extend_matches_scratch(a in arb_spd(5)) {
            let lead = Matrix::from_fn(4, 4, |i, j| a[(i, j)]);
            let base = Cholesky::new(&lead).unwrap();
            let col: Vec<f64> = (0..4).map(|i| a[(i, 4)]).collect();
            let ext = base.extend(&col, a[(4, 4)]).unwrap();
            let full = Cholesky::new(&a).unwrap();
            for i in 0..5 {
                for j in 0..=i {
                    let (e, f) = (ext.factor()[(i, j)], full.factor()[(i, j)]);
                    prop_assert!((e - f).abs() < 1e-8, "({i},{j}): {e} vs {f}");
                    prop_assert!(e.to_bits() == f.to_bits(), "({i},{j}) not bit-identical");
                }
            }
        }

        /// Extension under a jittered base matches refactoring the
        /// jitter-augmented matrix, keeping the recorded jitter.
        #[test]
        fn prop_extend_respects_jitter(b in arb_matrix_vec(5)) {
            // Rank-deficient Gram matrix: plain Cholesky fails, the jitter
            // ladder kicks in.
            let m = Matrix::from_vec(5, 1, b);
            let gram = m.matmul(&m.transpose());
            let lead = Matrix::from_fn(4, 4, |i, j| gram[(i, j)]);
            if let Ok(base) = Cholesky::new_with_jitter(&lead) {
                let col: Vec<f64> = (0..4).map(|i| gram[(i, 4)]).collect();
                if let Ok(ext) = base.extend(&col, gram[(4, 4)]) {
                    prop_assert!(ext.jitter() == base.jitter());
                    let mut aug = gram.clone();
                    aug.add_diagonal(base.jitter());
                    let full = Cholesky::new(&aug).unwrap();
                    for i in 0..5 {
                        for j in 0..=i {
                            prop_assert!(ext.factor()[(i, j)].to_bits() == full.factor()[(i, j)].to_bits());
                        }
                    }
                }
            }
        }
    }

    fn arb_matrix_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(0.1f64..2.0, n)
    }

    #[test]
    fn extend_rejects_indefinite_border() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let c = Cholesky::new(&a).unwrap();
        // Bordering with a huge column makes the Schur complement negative.
        let err = c.extend(&[10.0, 10.0], 1.0).unwrap_err();
        assert_eq!(err.pivot, 2);
    }
}
